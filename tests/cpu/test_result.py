"""Tests for SimResult derived metrics."""

from __future__ import annotations

import pytest

from repro.cpu.result import SimResult


def make(cycles, mm=10, bypass=4):
    return SimResult(
        design="d",
        program="p",
        cycles=cycles,
        instructions=100,
        mm_count=mm,
        bypass_count=bypass,
        weight_loads=mm - bypass,
        engine_busy_cycles=cycles // 4,
        clock_mhz=2000,
    )


def test_seconds():
    assert make(2_000_000).seconds == pytest.approx(1e-3)


def test_ipc():
    assert make(50).ipc == pytest.approx(2.0)


def test_bypass_rate():
    assert make(100).bypass_rate == pytest.approx(0.4)
    assert make(100, mm=0, bypass=0).bypass_rate == 0.0


def test_cycles_per_mm():
    assert make(950).cycles_per_mm == pytest.approx(95.0)


def test_normalized_to():
    assert make(250).normalized_to(make(1000)) == pytest.approx(0.25)
    assert make(250).normalized_to(make(0)) == 0.0
