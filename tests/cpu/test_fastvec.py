"""Bit-identity of the vectorized fast model against the scalar reference.

The vectorized kernel (`repro.cpu.fastvec`) is only allowed to exist
because it is *exactly* the scalar `FastCoreModel` — same `SimResult`
field for field, same per-mm `StageTimes`, same exceptions.  These tests
enforce that contract three ways:

- a hypothesis sweep over random well-formed programs, random designs and
  random core configurations (including the non-power-of-two and
  multi-store-port shapes that must fall back to the scalar path);
- every suite workload at scale 4 across all 8 paper designs, the exact
  grid the CI equality oracle gates on;
- targeted edge cases (empty programs, drain-conflict exceptions, decode
  memoization identity).
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.config import CoreConfig
from repro.cpu.decode import decode_program
from repro.cpu.fast import FastCoreModel
from repro.cpu.fastvec import FastVecCoreModel
from repro.engine.designs import DESIGNS
from repro.errors import ScheduleError
from repro.experiments.runner import ExperimentSettings, workload_shapes
from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import ScalarReg, TileReg
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.runtime.session import cached_program
from repro.workloads.codegen import CodegenOptions

T = [TileReg(i) for i in range(8)]

SCALE4 = ExperimentSettings(scale=4)


def assert_identical(program, design_key, core=CoreConfig(), memory=None):
    """Full-result equality: SimResult fields AND the kept StageTimes."""
    config = DESIGNS[design_key].config
    scalar = FastCoreModel(core=core, engine=config, memory=memory)
    vector = FastVecCoreModel(core=core, engine=config, memory=memory)
    expected = scalar.run(program, keep_schedule=True)
    actual = vector.run(program, keep_schedule=True)
    assert dataclasses.asdict(actual) == dataclasses.asdict(expected)
    assert vector.last_schedule == scalar.last_schedule
    # keep_schedule=False must clear the retained schedule identically.
    assert vector.run(program) == scalar.run(program)
    assert vector.last_schedule is None and scalar.last_schedule is None


@st.composite
def tile_programs(draw):
    """Random well-formed programs: loads, stores, mms, scalar noise."""
    builder = ProgramBuilder("fuzz")
    written = set()
    for reg in (0, 4, 6):
        builder.tl(T[reg], reg * 0x400)
        written.add(reg)
    for _ in range(draw(st.integers(0, 60))):
        kind = draw(st.sampled_from(["tl", "ts", "mm", "mm", "scalar"]))
        if kind == "tl":
            reg = draw(st.integers(0, 7))
            builder.tl(T[reg], draw(st.integers(0, 1 << 20)) * 64)
            written.add(reg)
        elif kind == "ts":
            builder.ts(
                draw(st.integers(0, 1 << 20)) * 64,
                T[draw(st.sampled_from(sorted(written)))],
            )
        elif kind == "mm":
            c = draw(st.sampled_from(sorted(written)))
            builder.mm(
                T[c],
                T[draw(st.sampled_from(sorted(written)))],
                T[draw(st.sampled_from(sorted(written)))],
            )
            written.add(c)
        else:
            builder.scalar(
                draw(st.sampled_from([Opcode.ADD, Opcode.MUL, Opcode.MOV])),
                dst=ScalarReg(draw(st.integers(0, 15))),
                srcs=(ScalarReg(draw(st.integers(0, 15))),),
            )
    return builder.build()


@st.composite
def core_configs(draw):
    """Core shapes spanning the vectorized gate and the scalar fallback:
    non-power-of-two fetch/retire widths and store_ports > 1 must delegate,
    and still be bit-identical."""
    return CoreConfig(
        rob_size=draw(st.sampled_from([1, 3, 8, 13, 97])),
        fetch_width=draw(st.sampled_from([1, 2, 3, 4])),
        retire_width=draw(st.sampled_from([1, 2, 4, 6])),
        load_ports=draw(st.integers(1, 4)),
        store_ports=draw(st.integers(1, 2)),
        alu_ports=draw(st.integers(1, 4)),
    )


class TestPropertyEquality:
    @settings(max_examples=40, deadline=None)
    @given(
        program=tile_programs(),
        design=st.sampled_from(sorted(DESIGNS)),
        core=core_configs(),
    )
    def test_random_programs_bit_identical(self, program, design, core):
        assert_identical(program, design, core=core)


class TestSuitePrograms:
    """The CI oracle grid: every scale-4 suite workload x all 8 designs."""

    @pytest.mark.parametrize(
        "workload", sorted(workload_shapes(SCALE4)), ids=str
    )
    @pytest.mark.parametrize("design", sorted(DESIGNS), ids=str)
    def test_suite_workload_bit_identical(self, workload, design):
        shape = workload_shapes(SCALE4)[workload]
        program = cached_program(shape, CodegenOptions())
        assert_identical(program, design)


class TestEdgeCases:
    def test_empty_program(self):
        assert_identical(Program([], name="empty"), "baseline")

    def test_scalar_only_program(self):
        builder = ProgramBuilder("scalars")
        for i in range(20):
            builder.scalar(
                Opcode.ADD, dst=ScalarReg(i % 4), srcs=(ScalarReg((i + 1) % 4),)
            )
        assert_identical(builder.build(), "rasa-pipe")

    def test_drain_conflict_raises_identically(self):
        """Both models must raise the same ScheduleError, same message.

        The paper's designs keep dr <= ff so bypassed back-to-back mms
        never collide on the drain port; a counterfactual wide-output tile
        geometry (tile_n > tile_m, as the register-scaling experiment
        sweeps) makes the conflict reachable.
        """
        from repro.engine.config import ControlPolicy, EngineConfig
        from repro.systolic.pe import BASELINE_PE

        config = EngineConfig(
            pe=BASELINE_PE,
            control=ControlPolicy.WLBP,
            tile_m=8,
            tile_n=32,
            tile_k=32,
        )
        builder = ProgramBuilder("drain")
        builder.tl(T[0], 0x0).tl(T[1], 0x400).tl(T[2], 0x800).tl(T[3], 0xc00)
        builder.mm(T[0], T[1], T[2])
        # Independent C, resident B: bypassed FF starts right behind the
        # previous FF and its drain collides with the previous drain.
        builder.mm(T[3], T[1], T[2])
        program = builder.build()
        core = CoreConfig()
        with pytest.raises(ScheduleError) as scalar_exc:
            FastCoreModel(core=core, engine=config).run(program)
        with pytest.raises(ScheduleError) as vector_exc:
            FastVecCoreModel(core=core, engine=config).run(program)
        assert "drain-port conflict" in str(scalar_exc.value)
        assert str(vector_exc.value) == str(scalar_exc.value)

    def test_decode_is_memoized_per_program(self):
        program = cached_program(
            workload_shapes(SCALE4)["table1-m1"]
            if "table1-m1" in workload_shapes(SCALE4)
            else next(iter(workload_shapes(SCALE4).values())),
            CodegenOptions(),
        )
        assert decode_program(program) is decode_program(program)
