"""Cycle-accurate OoO core tests, including fast-model cross-validation."""

from __future__ import annotations

import pytest

from repro.cpu.config import CoreConfig
from repro.cpu.fast import FastCoreModel
from repro.cpu.ooo.core import OutOfOrderCore
from repro.engine.designs import DESIGNS
from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import ScalarReg, TileReg
from repro.isa.opcodes import Opcode
from repro.workloads.codegen import CodegenOptions, generate_gemm_program
from repro.workloads.gemm import GemmShape
from repro.workloads.tiling import BlockingConfig, MMOrder

T = [TileReg(i) for i in range(8)]


class TestBasics:
    def test_empty_program(self):
        from repro.isa.program import Program

        result = OutOfOrderCore().run(Program([], name="empty"))
        assert result.cycles == 0

    def test_single_scalar(self):
        b = ProgramBuilder()
        b.scalar(Opcode.ADD, dst=ScalarReg(0), srcs=())
        result = OutOfOrderCore().run(b.build())
        # Frontend fill + execute + retire: a small constant.
        assert 8 <= result.cycles <= 16

    def test_retire_is_in_order(self):
        # A slow mm followed by fast scalars: total time is bound by the mm
        # even though the scalars complete long before it.
        b = ProgramBuilder()
        b.tl(T[0], 0x0).tl(T[4], 0x400).tl(T[6], 0x800)
        b.mm(T[0], T[6], T[4])
        for _ in range(8):
            b.scalar(Opcode.ADD, dst=ScalarReg(1), srcs=())
        result = OutOfOrderCore().run(b.build())
        assert result.cycles > 380  # 95 engine cycles * 4

    def test_rob_limits_inflight(self):
        program = generate_gemm_program(GemmShape(m=64, n=64, k=64, name="rob-ooo"))
        big = OutOfOrderCore(core=CoreConfig(rob_size=97)).run(program)
        tiny = OutOfOrderCore(core=CoreConfig(rob_size=8)).run(program)
        assert tiny.cycles > big.cycles


class TestFastModelAgreement:
    """The central validation: both models must tell the same story."""

    @pytest.mark.parametrize("key", sorted(DESIGNS))
    def test_agreement_on_gemm_all_designs(self, key):
        program = generate_gemm_program(GemmShape(m=64, n=64, k=128, name="agree"))
        config = DESIGNS[key].config
        fast = FastCoreModel(engine=config).run(program)
        ooo = OutOfOrderCore(engine=config).run(program)
        assert fast.cycles == pytest.approx(ooo.cycles, rel=0.02)
        assert fast.bypass_count == ooo.bypass_count
        assert fast.weight_loads == ooo.weight_loads
        assert fast.mm_count == ooo.mm_count

    def test_agreement_on_alternate_order_stream(self):
        options = CodegenOptions(
            blocking=BlockingConfig(bm=2, bn=2, mm_order=MMOrder.ALTERNATE)
        )
        program = generate_gemm_program(
            GemmShape(m=64, n=64, k=64, name="alt"), options
        )
        config = DESIGNS["rasa-wlbp"].config
        fast = FastCoreModel(engine=config).run(program)
        ooo = OutOfOrderCore(engine=config).run(program)
        assert fast.bypass_count == ooo.bypass_count == 0
        assert fast.cycles == pytest.approx(ooo.cycles, rel=0.02)

    def test_agreement_on_scalar_heavy_stream(self):
        b = ProgramBuilder("scalar-heavy")
        for i in range(50):
            b.tl(T[i % 4], i * 0x400)
            b.loop_overhead(12)
        fast = FastCoreModel().run(b.build())
        ooo = OutOfOrderCore().run(b.build())
        assert fast.cycles == pytest.approx(ooo.cycles, rel=0.05)


class TestNormalizedAgreement:
    def test_normalized_runtimes_match_fast_model(self):
        """Fig. 5's actual metric (normalized runtime) must agree closely."""
        program = generate_gemm_program(GemmShape(m=64, n=64, k=128, name="norm"))
        for key in ("rasa-wlbp", "rasa-dmdb-wls"):
            config = DESIGNS[key].config
            base_cfg = DESIGNS["baseline"].config
            fast_norm = (
                FastCoreModel(engine=config).run(program).cycles
                / FastCoreModel(engine=base_cfg).run(program).cycles
            )
            ooo_norm = (
                OutOfOrderCore(engine=config).run(program).cycles
                / OutOfOrderCore(engine=base_cfg).run(program).cycles
            )
            assert fast_norm == pytest.approx(ooo_norm, rel=0.02)
