"""Analytic-tier tests: exact counts, bounded cycle error, suite validation.

The contract (see :mod:`repro.cpu.analytic`): counts are *exact* against
the fast model, cycles stay within :data:`ANALYTIC_CYCLE_ERROR_BOUND`
relative error on every validated point.  Empirically the model is exact
on cycles too — the unit tests below assert full :class:`SimResult`
equality, while the suite-level validation asserts only the documented
bound (the conservative contract the docs promise).
"""

from __future__ import annotations

import pytest

from repro.cpu.analytic import ANALYTIC_CYCLE_ERROR_BOUND, AnalyticCoreModel
from repro.cpu.fast import FastCoreModel
from repro.cpu.result import SimResult
from repro.engine.designs import DESIGNS, get_design
from repro.errors import ExperimentError
from repro.experiments import ExperimentSettings
from repro.experiments.analytic_validation import (
    EXACT_FIELDS,
    ValidationPoint,
    ValidationReport,
    validate_analytic,
)
from repro.physical.energy import EnergyBreakdown, EnergyModel
from repro.workloads.codegen import CodegenOptions, generate_gemm_program
from repro.workloads.gemm import GemmShape
from repro.workloads.tiling import BlockingConfig, MMOrder

#: Scaled-down settings: full-size layers shrink 16x per dimension, so the
#: fast-model reference side of each comparison stays test-suite cheap.
FAST_SETTINGS = ExperimentSettings(scale=16)

SQUARE = GemmShape(256, 256, 256, name="square")
TALL = GemmShape(1024, 16, 64, name="tall")  # degenerate bn' = 1 edge column
TINY = GemmShape(16, 16, 32, name="tiny")    # single tile, single K step

ALT_CODEGENS = (
    CodegenOptions(blocking=BlockingConfig(bm=1, bn=3)),
    CodegenOptions(blocking=BlockingConfig(bm=3, bn=1)),
    CodegenOptions(blocking=BlockingConfig(bm=2, bn=2, mm_order=MMOrder.ALTERNATE)),
)


def _fast_reference(design_key: str, shape: GemmShape, codegen: CodegenOptions):
    config = get_design(design_key).config
    return FastCoreModel(engine=config).run(generate_gemm_program(shape, codegen))


class TestAnalyticMatchesFast:
    """Unit-level: the analytic SimResult equals the fast model's, bit for bit."""

    @pytest.mark.parametrize("shape", [SQUARE, TALL, TINY], ids=lambda s: s.name)
    def test_every_design_default_codegen(self, design_key, shape):
        config = get_design(design_key).config
        analytic = AnalyticCoreModel(engine=config).run_shape(shape, CodegenOptions())
        assert analytic == _fast_reference(design_key, shape, CodegenOptions())

    @pytest.mark.parametrize("codegen", ALT_CODEGENS)
    @pytest.mark.parametrize("design", ["baseline", "rasa-dmdb-wls"])
    def test_alternate_blockings(self, design, codegen):
        config = get_design(design).config
        model = AnalyticCoreModel(engine=config)
        for shape in (SQUARE, TALL):
            assert model.run_shape(shape, codegen) == _fast_reference(
                design, shape, codegen
            )

    def test_unnamed_shape_gets_generated_program_name(self):
        config = get_design("baseline").config
        result = AnalyticCoreModel(engine=config).run_shape(
            GemmShape(64, 64, 64), CodegenOptions()
        )
        assert result.program == "gemm_64x64x64"

    def test_energy_matches_fast_pipeline(self):
        config = get_design("rasa-dmdb-wls").config
        analytic, breakdown = AnalyticCoreModel(engine=config).energy(
            SQUARE, CodegenOptions()
        )
        fast = _fast_reference("rasa-dmdb-wls", SQUARE, CodegenOptions())
        assert analytic == fast
        assert isinstance(breakdown, EnergyBreakdown)
        assert breakdown == EnergyModel().run_energy(fast, config)


class TestSuiteValidation:
    """Satellite contract: all 8 designs across the three richest suites."""

    @pytest.mark.parametrize("suite", ["table1", "bert-full", "resnet50-train"])
    def test_suite_within_documented_bound(self, suite):
        report = validate_analytic(suites=(suite,), settings=FAST_SETTINGS)
        # Every catalog design on every distinct shape of the suite.
        assert {p.design_key for p in report.points} == set(DESIGNS)
        assert report.max_cycle_error <= ANALYTIC_CYCLE_ERROR_BOUND
        for point in report.points:
            assert point.counts_exact, (
                f"{point.suite}/{point.design_key}/{point.shape.dims} "
                f"count mismatch: {point.count_mismatches}"
            )
        assert report.ok
        assert "PASS" in report.render()

    def test_empty_sample_rejected(self):
        with pytest.raises(ExperimentError):
            validate_analytic(suites=())


def _result(cycles: int, mm_count: int = 4) -> SimResult:
    return SimResult(
        design="d",
        program="p",
        cycles=cycles,
        instructions=10,
        mm_count=mm_count,
        bypass_count=1,
        weight_loads=2,
        engine_busy_cycles=5,
        clock_mhz=2000,
    )


class TestReportMechanics:
    """The report's arithmetic, without running any simulator."""

    def test_cycle_error_and_count_mismatch(self):
        point = ValidationPoint(
            suite="s",
            design_key="d",
            shape=TINY,
            fast=_result(1000),
            analytic=_result(1030, mm_count=5),
        )
        assert point.cycle_error == pytest.approx(0.03)
        assert point.count_mismatches == ("mm_count",)
        assert not point.counts_exact
        assert "mm_count" in EXACT_FIELDS

    def test_report_fails_above_bound(self):
        good = ValidationPoint("s", "d", TINY, _result(1000), _result(1001))
        report = ValidationReport(points=(good,), bound=0.0001)
        assert report.max_cycle_error == pytest.approx(0.001)
        assert report.worst is good
        assert not report.ok
        assert "FAIL" in report.render()

    def test_exact_report_passes(self):
        point = ValidationPoint("s", "d", TINY, _result(1000), _result(1000))
        report = ValidationReport(points=(point,), bound=ANALYTIC_CYCLE_ERROR_BOUND)
        assert report.ok
        assert report.count_violations == ()
