"""Tests for the core configuration."""

from __future__ import annotations

import pytest

from repro.cpu.config import CoreConfig
from repro.errors import ConfigError


def test_paper_defaults():
    # Sec. V: "CPU (and NoC) at 2GHz, 16 pipeline stages, ROB size of 97,
    # fetch/issue/retire width of 4, similar to Intel's Skylake."
    config = CoreConfig()
    assert config.clock_mhz == 2000
    assert config.pipeline_stages == 16
    assert config.rob_size == 97
    assert config.fetch_width == config.issue_width == config.retire_width == 4


def test_tile_transfer():
    config = CoreConfig()
    assert config.tile_transfer_cycles == 16  # 1 KB / 64 B per cycle
    assert config.tile_load_latency == 4 + 16


def test_engine_clock_ratio():
    config = CoreConfig()
    assert config.engine_clock_ratio(500) == 4
    with pytest.raises(ConfigError):
        config.engine_clock_ratio(600)  # 2000/600 is not an integer


def test_frontend_latency():
    assert CoreConfig().frontend_latency == 8


def test_invalid_fields_rejected():
    with pytest.raises(ConfigError):
        CoreConfig(rob_size=0)
    with pytest.raises(ConfigError):
        CoreConfig(fetch_width=-1)
