"""Unit tests for the OoO core's building blocks."""

from __future__ import annotations

import pytest

from repro.cpu.config import CoreConfig
from repro.cpu.ooo.frontend import FetchUnit
from repro.cpu.ooo.ports import ExecutionPorts, PortGroup
from repro.cpu.ooo.rename import RenameTable
from repro.cpu.ooo.rob import ReorderBuffer
from repro.cpu.ooo.uop import Uop
from repro.isa.instructions import ScalarReg, TileReg, rasa_mm, rasa_tl, scalar_op
from repro.isa.opcodes import Opcode


class TestFetchUnit:
    def test_pipeline_fill_delay(self):
        fetch = FetchUnit(CoreConfig(), program_length=100)
        assert fetch.available(0) == 0
        assert fetch.available(7) == 0
        assert fetch.available(8) == 4  # frontend_latency = 8, width 4

    def test_rate_and_consumption(self):
        fetch = FetchUnit(CoreConfig(), program_length=100)
        assert fetch.available(9) == 8
        fetch.consume(5)
        assert fetch.available(9) == 3
        assert not fetch.done

    def test_bounded_by_program_length(self):
        fetch = FetchUnit(CoreConfig(), program_length=6)
        assert fetch.available(1000) == 6
        fetch.consume(6)
        assert fetch.done


class TestReorderBuffer:
    def _uop(self, index, complete=None):
        uop = Uop(index, scalar_op(Opcode.NOP))
        uop.complete_cycle = complete
        return uop

    def test_capacity(self):
        rob = ReorderBuffer(CoreConfig(rob_size=2))
        rob.allocate(self._uop(0))
        rob.allocate(self._uop(1))
        assert rob.free_slots == 0
        with pytest.raises(OverflowError):
            rob.allocate(self._uop(2))

    def test_in_order_retire_blocks_on_head(self):
        rob = ReorderBuffer(CoreConfig())
        rob.allocate(self._uop(0, complete=None))     # head incomplete
        rob.allocate(self._uop(1, complete=5))
        assert rob.retire(10) == []                   # younger cannot pass

    def test_retire_width(self):
        rob = ReorderBuffer(CoreConfig(retire_width=2))
        for i in range(5):
            rob.allocate(self._uop(i, complete=1))
        assert len(rob.retire(10)) == 2
        assert len(rob.retire(11)) == 2
        assert rob.retired_count == 4

    def test_retire_requires_complete_before_cycle(self):
        rob = ReorderBuffer(CoreConfig())
        rob.allocate(self._uop(0, complete=10))
        assert rob.retire(10) == []    # completes *at* 10: retires after
        assert len(rob.retire(11)) == 1
        assert rob.last_retire_cycle == 11


class TestRenameTable:
    def test_tile_dependencies(self):
        rename = RenameTable()
        producer = Uop(0, rasa_tl(TileReg(4), 0x0))
        rename.rename(producer)
        consumer = Uop(1, rasa_mm(TileReg(0), TileReg(6), TileReg(4)))
        rename.rename(consumer)
        assert producer in consumer.deps

    def test_retired_producers_dropped(self):
        rename = RenameTable()
        producer = Uop(0, rasa_tl(TileReg(4), 0x0))
        producer.retired = True
        rename.rename(producer)
        consumer = Uop(1, rasa_mm(TileReg(0), TileReg(6), TileReg(4)))
        rename.rename(consumer)
        assert consumer.deps == []

    def test_versions_count_writes(self):
        rename = RenameTable()
        for i in range(3):
            rename.rename(Uop(i, rasa_tl(TileReg(4), 0x0)))
        assert rename.tile_version(TileReg(4)) == 3
        assert rename.tile_version(TileReg(5)) == 0

    def test_scalar_dependencies(self):
        rename = RenameTable()
        producer = Uop(0, scalar_op(Opcode.ADD, dst=ScalarReg(1), srcs=()))
        rename.rename(producer)
        consumer = Uop(1, scalar_op(Opcode.ADD, dst=ScalarReg(2), srcs=(ScalarReg(1),)))
        rename.rename(consumer)
        assert producer in consumer.deps


class TestPorts:
    def test_acquire_and_occupancy(self):
        group = PortGroup(1, "load")
        assert group.acquire(0, occupancy=16)
        assert not group.acquire(10, occupancy=16)  # still busy
        assert group.acquire(16, occupancy=16)

    def test_multiple_ports(self):
        group = PortGroup(2, "load")
        assert group.acquire(0, 16)
        assert group.acquire(0, 16)
        assert not group.acquire(0, 16)
        assert group.any_free(16)

    def test_execution_ports_complement(self):
        ports = ExecutionPorts(CoreConfig())
        assert ports.alu.any_free(0)
        assert ports.load.any_free(0)
        assert ports.store.any_free(0)


class TestUop:
    def test_ready_tracking(self):
        producer = Uop(0, rasa_tl(TileReg(4), 0x0))
        consumer = Uop(1, rasa_mm(TileReg(0), TileReg(6), TileReg(4)))
        consumer.deps.append(producer)
        assert not consumer.ready_at(5)
        producer.complete_cycle = 5
        assert consumer.ready_at(5)
        assert not consumer.ready_at(4)

    def test_repr_states(self):
        uop = Uop(0, scalar_op(Opcode.NOP))
        assert "waiting" in repr(uop)
        uop.issued = True
        assert "issued" in repr(uop)
        uop.complete_cycle = 3
        assert "complete" in repr(uop)
        uop.retired = True
        assert "retired" in repr(uop)
