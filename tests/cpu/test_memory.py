"""Tests for the memory-system models."""

from __future__ import annotations

import pytest

from repro.cpu.config import CoreConfig
from repro.cpu.fast import FastCoreModel
from repro.cpu.memory import (
    CacheHierarchy,
    CacheLevelConfig,
    HierarchyConfig,
    IdealMemory,
)
from repro.engine.designs import DESIGNS
from repro.errors import ConfigError
from repro.workloads.codegen import generate_gemm_program
from repro.workloads.gemm import GemmShape


class TestIdealMemory:
    def test_constant_latency(self):
        mem = IdealMemory(l1_latency=4, transfer_cycles=16)
        assert mem.tile_load_latency(0x0, 64, 0) == 20
        assert mem.tile_load_latency(0xDEAD000, 4096, 99.5) == 20

    def test_matches_core_config_default(self):
        # The default FastCoreModel memory reproduces CoreConfig's constant.
        core = CoreConfig()
        mem = IdealMemory(core.l1_latency, core.tile_transfer_cycles)
        assert mem.tile_load_latency(0, 64, 0) == core.tile_load_latency


class TestCacheLevel:
    def test_geometry(self):
        level = CacheLevelConfig("L1", size_kib=32, ways=8, hit_latency=4)
        assert level.num_sets == 64

    def test_too_small_rejected(self):
        with pytest.raises(ConfigError):
            CacheLevelConfig("bad", size_kib=1, ways=32, hit_latency=1, line_bytes=64)


class TestCacheHierarchy:
    def test_cold_misses_then_hits(self):
        mem = CacheHierarchy()
        cold = mem.tile_load_latency(0x10000, 64, 0)
        warm = mem.tile_load_latency(0x10000, 64, 100)
        assert cold > warm
        assert warm == mem.config.l1.hit_latency + mem.config.transfer_cycles
        assert mem.dram_fills == 16  # all 16 rows missed everywhere once

    def test_l2_catches_l1_evictions(self):
        # Touch more than L1 (32 KiB) but less than L2: second pass must be
        # L2 hits, not DRAM.
        mem = CacheHierarchy()
        footprint = 128 * 1024
        for addr in range(0, footprint, 1024):
            mem.tile_load_latency(addr, 64, 0)
        mem.l1_hits = mem.l2_hits = mem.dram_fills = 0
        for addr in range(0, footprint, 1024):
            mem.tile_load_latency(addr, 64, 0)
        rates = mem.hit_rates()
        assert rates["dram"] == 0.0
        assert rates["l2"] > 0.5

    def test_strided_rows_touch_distinct_lines(self):
        mem = CacheHierarchy()
        mem.tile_load_latency(0x0, 4096, 0)  # 16 rows, 4 KiB apart
        assert mem.accesses == 16
        assert mem.dram_fills == 16

    def test_mlp_batches_misses(self):
        fast = CacheHierarchy(HierarchyConfig(mlp=16))
        slow = CacheHierarchy(HierarchyConfig(mlp=1))
        assert slow.tile_load_latency(0x0, 64, 0) > fast.tile_load_latency(0x0, 64, 0)

    def test_reset(self):
        mem = CacheHierarchy()
        mem.tile_load_latency(0x0, 64, 0)
        mem.reset()
        assert mem.accesses == 0
        assert mem.tile_load_latency(0x0, 64, 0) > (
            mem.config.l1.hit_latency + mem.config.transfer_cycles
        )


class TestEndToEndWithCaches:
    def test_ideal_default_unchanged(self):
        # Supplying IdealMemory explicitly must match the default exactly.
        program = generate_gemm_program(GemmShape(m=64, n=64, k=64, name="mem"))
        core = CoreConfig()
        default = FastCoreModel(core=core).run(program)
        explicit = FastCoreModel(
            core=core,
            memory=IdealMemory(core.l1_latency, core.tile_transfer_cycles),
        ).run(program)
        assert default.cycles == explicit.cycles

    def test_slow_memory_hurts_more_with_rasa(self):
        """The ablation's point: RASA consumes operands faster, so a slow
        memory erodes its relative gain."""
        program = generate_gemm_program(GemmShape(m=128, n=64, k=128, name="mem2"))

        def normalized(memory_factory):
            base = FastCoreModel(
                engine=DESIGNS["baseline"].config, memory=memory_factory()
            ).run(program)
            best = FastCoreModel(
                engine=DESIGNS["rasa-dmdb-wls"].config, memory=memory_factory()
            ).run(program)
            return best.cycles / base.cycles

        ideal = normalized(lambda: IdealMemory())
        # A pathologically slow uncached memory.
        slow = normalized(
            lambda: CacheHierarchy(
                HierarchyConfig(
                    l1=CacheLevelConfig("L1", size_kib=2, ways=2, hit_latency=4),
                    l2=CacheLevelConfig("L2", size_kib=8, ways=2, hit_latency=14),
                    dram_latency=400,
                    mlp=1,
                )
            )
        )
        assert slow > ideal

    def test_realistic_hierarchy_close_to_ideal(self):
        """With Skylake-ish caches the workloads' tiles mostly hit: the
        paper's no-stall assumption is sane for these layer sizes."""
        program = generate_gemm_program(GemmShape(m=128, n=64, k=128, name="mem3"))
        config = DESIGNS["rasa-dmdb-wls"].config
        ideal = FastCoreModel(engine=config).run(program)
        cached = FastCoreModel(engine=config, memory=CacheHierarchy()).run(program)
        assert cached.cycles <= ideal.cycles * 1.25
