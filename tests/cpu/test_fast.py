"""Tests for the fast timestamp-propagation core model."""

from __future__ import annotations

import pytest

from repro.cpu.config import CoreConfig
from repro.cpu.fast import FastCoreModel
from repro.engine.designs import DESIGNS
from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import ScalarReg, TileReg
from repro.isa.opcodes import Opcode
from repro.workloads.codegen import generate_gemm_program
from repro.workloads.gemm import GemmShape

T = [TileReg(i) for i in range(8)]


def single_mm_program():
    b = ProgramBuilder("one-mm")
    b.tl(T[0], 0x0).tl(T[4], 0x400).tl(T[6], 0x800)
    b.mm(T[0], T[6], T[4])
    b.ts(0x0, T[0])
    return b.build()


class TestBasics:
    def test_single_mm_latency_dominated_by_engine(self):
        result = FastCoreModel().run(single_mm_program())
        # One serialized mm takes 95 engine cycles = 380 CPU cycles, plus
        # load latency and pipeline fill: total must sit just above that.
        assert 380 < result.cycles < 500
        assert result.mm_count == 1
        assert result.weight_loads == 1

    def test_empty_program(self):
        from repro.isa.program import Program

        result = FastCoreModel().run(Program([], name="empty"))
        assert result.cycles == 0
        assert result.instructions == 0

    def test_scalar_only_program_ipc_near_width(self):
        b = ProgramBuilder("scalars")
        # Independent one-cycle ops on distinct registers: width-bound.
        for i in range(4000):
            b.scalar(Opcode.ADD, dst=ScalarReg(i % 8), srcs=())
        result = FastCoreModel().run(b.build())
        assert result.ipc == pytest.approx(4.0, rel=0.05)

    def test_scalar_dependency_chain_serializes(self):
        b = ProgramBuilder("chain")
        for _ in range(1000):
            b.scalar(Opcode.ADD, dst=ScalarReg(0), srcs=(ScalarReg(0),))
        result = FastCoreModel().run(b.build())
        assert result.ipc == pytest.approx(1.0, rel=0.05)


class TestTileDataflow:
    def test_mm_waits_for_loads(self):
        # The mm cannot start its FF before all operand loads complete;
        # compare against a program where operands were loaded long before.
        late = FastCoreModel().run(single_mm_program())
        b = ProgramBuilder("early")
        b.tl(T[0], 0x0).tl(T[4], 0x400).tl(T[6], 0x800)
        b.loop_overhead(400)  # plenty of time for the loads to finish
        b.mm(T[0], T[6], T[4])
        b.ts(0x0, T[0])
        early = FastCoreModel().run(b.build())
        # The early version pays the scalar time but the mm itself is not
        # load-blocked; total difference must stay near the scalar overhead.
        assert early.cycles > late.cycles

    def test_store_waits_for_mm(self):
        result = FastCoreModel().run(single_mm_program())
        # The final ts must retire after the mm's 380-CPU-cycle latency.
        assert result.cycles > 380

    def test_dependent_mms_serialize_on_c(self):
        b = ProgramBuilder("acc-chain")
        b.tl(T[0], 0x0).tl(T[4], 0x400).tl(T[6], 0x800)
        for _ in range(10):
            b.mm(T[0], T[6], T[4])  # same accumulator: C dependence chain
        result = FastCoreModel(engine=DESIGNS["rasa-db-wls"].config).run(b.build())
        # Even on the best design, a C-dependence chain cannot pipeline:
        # each mm waits for the previous writeback.
        assert result.cycles > 10 * 16 * 4  # far above the II floor
        assert result.bypass_count == 9  # B reuse still bypasses WL


class TestRobPressure:
    def test_small_rob_hurts(self):
        program = generate_gemm_program(GemmShape(m=64, n=64, k=128, name="rob"))
        big = FastCoreModel(core=CoreConfig(rob_size=97)).run(program)
        tiny = FastCoreModel(core=CoreConfig(rob_size=8)).run(program)
        assert tiny.cycles > big.cycles

    def test_load_port_bandwidth_matters_for_load_heavy_streams(self):
        b = ProgramBuilder("loads")
        for i in range(512):
            b.tl(T[i % 8], i * 0x400)
        one = FastCoreModel(core=CoreConfig(load_ports=1)).run(b.build())
        two = FastCoreModel(core=CoreConfig(load_ports=2)).run(b.build())
        # Pure load stream: halving the ports should nearly halve throughput.
        assert one.cycles > 1.7 * two.cycles


class TestDesignOrdering:
    def test_fig5_ordering_holds(self):
        """The paper's design ordering must hold on any reasonable GEMM."""
        program = generate_gemm_program(GemmShape(m=128, n=128, k=256, name="order"))
        cycles = {
            key: FastCoreModel(engine=DESIGNS[key].config).run(program).cycles
            for key in DESIGNS
        }
        assert cycles["baseline"] > cycles["rasa-pipe"]
        assert cycles["rasa-pipe"] > cycles["rasa-wlbp"]
        assert cycles["rasa-wlbp"] > cycles["rasa-dm-wlbp"]
        assert cycles["rasa-dm-wlbp"] > cycles["rasa-db-wls"]
        assert cycles["rasa-db-wls"] >= cycles["rasa-dmdb-wls"]

    def test_dmdb_wls_approaches_asymptote(self):
        program = generate_gemm_program(GemmShape(m=512, n=256, k=256, name="asym"))
        base = FastCoreModel(engine=DESIGNS["baseline"].config).run(program)
        best = FastCoreModel(engine=DESIGNS["rasa-dmdb-wls"].config).run(program)
        ratio = best.cycles / base.cycles
        assert ratio == pytest.approx(16 / 95, abs=0.02)


class TestSchedule:
    def test_keep_schedule(self):
        model = FastCoreModel()
        model.run(single_mm_program(), keep_schedule=True)
        assert len(model.last_schedule) == 1
        model.run(single_mm_program())
        assert model.last_schedule is None
