"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.designs import DESIGNS


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator (fresh per test)."""
    return np.random.default_rng(0x5A5A)


@pytest.fixture(params=list(DESIGNS))
def design_key(request) -> str:
    """Parametrize a test over every registered design point."""
    return request.param
