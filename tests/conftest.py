"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.engine.designs import DESIGNS


@pytest.fixture(scope="session", autouse=True)
def _isolated_result_cache(tmp_path_factory):
    """Point the runtime result cache at a per-session temp dir.

    Tests must exercise the current simulator, never stale entries from
    (or pollution of) the user's persistent ``~/.cache/repro``.
    """
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro-cache"))
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator (fresh per test)."""
    return np.random.default_rng(0x5A5A)


@pytest.fixture(params=list(DESIGNS))
def design_key(request) -> str:
    """Parametrize a test over every registered design point."""
    return request.param
