"""Tests for the Program container and its statistics."""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import TileReg
from repro.isa.opcodes import Opcode
from repro.isa.program import Program


def algorithm1() -> Program:
    """The paper's Algorithm 1, verbatim."""
    b = ProgramBuilder("algorithm1")
    t = [TileReg(i) for i in range(8)]
    c_addrs = [0x1000 + i * 0x400 for i in range(4)]
    for i in range(4):
        b.tl(t[i], c_addrs[i])
    b.tl(t[4], 0x8000)       # BTile0
    b.tl(t[6], 0xA000)       # ATile0
    b.mm(t[0], t[6], t[4])
    b.tl(t[7], 0xB000)       # ATile1
    b.mm(t[1], t[7], t[4])
    b.tl(t[5], 0x9000)       # BTile1
    b.mm(t[2], t[6], t[5])
    b.mm(t[3], t[7], t[5])
    for i in range(4):
        b.ts(c_addrs[i], t[i])
    return b.build()


class TestProgram:
    def test_stats(self):
        p = algorithm1()
        s = p.stats
        assert s.total == 16
        assert s.tile_loads == 8
        assert s.tile_stores == 4
        assert s.matmuls == 4
        assert s.scalars == 0
        assert s.tile_fraction == 1.0

    def test_len_iter_getitem(self):
        p = algorithm1()
        assert len(p) == 16
        assert p[4].opcode is Opcode.RASA_TL
        assert len(list(p)) == 16
        sliced = p[0:4]
        assert isinstance(sliced, Program)
        assert len(sliced) == 4

    def test_concatenation(self):
        p = algorithm1()
        combined = p + p
        assert len(combined) == 32
        assert combined.stats.matmuls == 8

    def test_matmuls_view(self):
        p = algorithm1()
        mms = p.matmuls()
        assert len(mms) == 4
        assert all(m.opcode is Opcode.RASA_MM for m in mms)

    def test_weight_reuse_fraction_algorithm1(self):
        # Lines 9/11 reuse treg4, lines 13/14 reuse treg5: 2 of 4 mm's.
        # The intervening rasa_tl to treg7 does not dirty the B register.
        assert algorithm1().weight_reuse_fraction() == 0.5

    def test_weight_reuse_broken_by_write(self):
        b = ProgramBuilder()
        t = [TileReg(i) for i in range(8)]
        b.tl(t[4], 0x0).tl(t[6], 0x400)
        b.mm(t[0], t[6], t[4])
        b.tl(t[4], 0x800)          # rewrite the weight register
        b.mm(t[1], t[6], t[4])     # same B name, but dirty -> no reuse
        assert b.build().weight_reuse_fraction() == 0.0

    def test_empty_program(self):
        p = Program([])
        assert p.stats.total == 0
        assert p.weight_reuse_fraction() == 0.0
        assert p.stats.tile_fraction == 0.0

    def test_repr(self):
        assert "4 mm" in repr(algorithm1())
