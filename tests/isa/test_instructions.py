"""Tests for instruction construction, validation, and dataflow views."""

from __future__ import annotations

import pytest

from repro.errors import IsaError
from repro.isa.instructions import (
    Instruction,
    MemOperand,
    ScalarReg,
    TileReg,
    rasa_mm,
    rasa_tl,
    rasa_ts,
    scalar_op,
)
from repro.isa.opcodes import Opcode


class TestRegisters:
    def test_tile_reg_range(self):
        assert TileReg(0).index == 0
        assert TileReg(7).index == 7
        with pytest.raises(IsaError):
            TileReg(8)
        with pytest.raises(IsaError):
            TileReg(-1)

    def test_scalar_reg_range(self):
        assert ScalarReg(15).index == 15
        with pytest.raises(IsaError):
            ScalarReg(16)

    def test_str(self):
        assert str(TileReg(3)) == "treg3"
        assert str(ScalarReg(4)) == "r4"


class TestMemOperand:
    def test_defaults(self):
        mem = MemOperand(0x1000)
        assert mem.stride == 64

    def test_negative_address_rejected(self):
        with pytest.raises(IsaError):
            MemOperand(-4)

    def test_zero_stride_rejected(self):
        with pytest.raises(IsaError):
            MemOperand(0, stride=0)


class TestConstruction:
    def test_tl(self):
        inst = rasa_tl(TileReg(2), 0x1000, stride=128)
        assert inst.opcode is Opcode.RASA_TL
        assert inst.tile_writes == (TileReg(2),)
        assert inst.tile_reads == ()
        assert inst.mem.stride == 128

    def test_ts(self):
        inst = rasa_ts(0x2000, TileReg(5))
        assert inst.tile_reads == (TileReg(5),)
        assert inst.tile_writes == ()

    def test_mm_reads_and_writes(self):
        inst = rasa_mm(TileReg(0), TileReg(6), TileReg(4))
        assert inst.mm_c == TileReg(0)
        assert inst.mm_a == TileReg(6)
        assert inst.mm_b == TileReg(4)
        assert set(inst.tile_reads) == {TileReg(0), TileReg(6), TileReg(4)}
        assert inst.tile_writes == (TileReg(0),)

    def test_mm_dst_must_be_c(self):
        with pytest.raises(IsaError):
            Instruction(
                Opcode.RASA_MM,
                dst=TileReg(1),
                srcs=(TileReg(0), TileReg(6), TileReg(4)),
            )

    def test_scalar_op(self):
        inst = scalar_op(Opcode.ADD, dst=ScalarReg(0), srcs=(ScalarReg(0),))
        assert inst.scalar_writes == (ScalarReg(0),)
        assert inst.scalar_reads == (ScalarReg(0),)

    def test_scalar_op_rejects_tile_opcode(self):
        with pytest.raises(IsaError):
            scalar_op(Opcode.RASA_MM)

    def test_branch_has_no_dst(self):
        inst = scalar_op(Opcode.BRANCH)
        assert inst.dst is None
        with pytest.raises(IsaError):
            Instruction(Opcode.BRANCH, dst=ScalarReg(0))

    def test_tl_requires_mem(self):
        with pytest.raises(IsaError):
            Instruction(Opcode.RASA_TL, dst=TileReg(0))

    def test_ts_requires_single_tile_source(self):
        with pytest.raises(IsaError):
            Instruction(Opcode.RASA_TS, mem=MemOperand(0), srcs=())

    def test_mm_accessors_reject_non_mm(self):
        inst = rasa_tl(TileReg(0), 0)
        with pytest.raises(IsaError):
            _ = inst.mm_b


class TestOpcodeProperties:
    def test_classification(self):
        assert Opcode.RASA_TL.is_tile and Opcode.RASA_TL.is_memory
        assert Opcode.RASA_MM.is_tile and Opcode.RASA_MM.is_matmul
        assert not Opcode.RASA_MM.is_memory
        assert Opcode.ADD.is_scalar and not Opcode.ADD.is_tile

    def test_str_rendering(self):
        assert str(rasa_tl(TileReg(0), 0x1000)) == "rasa_tl treg0, [0x1000]"
        assert str(rasa_mm(TileReg(0), TileReg(6), TileReg(4))) == (
            "rasa_mm treg0, treg6, treg4"
        )
        assert str(rasa_ts(0x20, TileReg(1))) == "rasa_ts [0x20], treg1"
