"""Tests for the textual assembler/disassembler, including round-trips."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AssemblerError
from repro.isa.assembler import assemble, disassemble
from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import ScalarReg, TileReg
from repro.isa.opcodes import Opcode

EXAMPLE = """
// Step 1: load C
rasa_tl treg0, ptr[0x1000]
rasa_tl treg4, ptr[0x8000, stride=128]   # B tile, strided
rasa_mm treg0, treg6, treg4
rasa_ts ptr[0x1000], treg0
add r0, r0
cmp r1, r0
branch
nop
"""


class TestAssemble:
    def test_example(self):
        p = assemble(EXAMPLE)
        assert len(p) == 8
        assert p[0].opcode is Opcode.RASA_TL
        assert p[1].mem.stride == 128
        assert p[2].mm_b == TileReg(4)
        assert p[4].dst == ScalarReg(0)

    def test_comments_and_blanks_ignored(self):
        assert len(assemble("// nothing\n\n# more nothing\n")) == 0

    def test_decimal_address(self):
        p = assemble("rasa_tl treg1, ptr[4096]")
        assert p[0].mem.address == 4096

    def test_bad_mnemonic(self):
        with pytest.raises(AssemblerError, match="unknown mnemonic"):
            assemble("frobnicate treg0")

    def test_bad_register(self):
        with pytest.raises(AssemblerError, match="tile register"):
            assemble("rasa_mm treg0, r3, treg4")

    def test_wrong_arity(self):
        with pytest.raises(AssemblerError, match="3 operands"):
            assemble("rasa_mm treg0, treg1")

    def test_bad_ptr(self):
        with pytest.raises(AssemblerError, match="ptr"):
            assemble("rasa_tl treg0, [0x1000]")

    def test_error_reports_line_number(self):
        with pytest.raises(AssemblerError, match="line 3"):
            assemble("nop\nnop\nbogus one\n")


class TestRoundTrip:
    def test_example_roundtrip(self):
        p = assemble(EXAMPLE)
        again = assemble(disassemble(p))
        assert [str(i) for i in again] == [str(i) for i in p]

    def test_builder_roundtrip(self):
        b = ProgramBuilder()
        b.tl(TileReg(0), 0x100).tl(TileReg(4), 0x8000, stride=256)
        b.mm(TileReg(0), TileReg(6), TileReg(4))
        b.ts(0x100, TileReg(0))
        b.loop_overhead(4)
        p = b.build()
        again = assemble(disassemble(p))
        assert [str(i) for i in again] == [str(i) for i in p]


@st.composite
def random_programs(draw):
    b = ProgramBuilder()
    for _ in range(draw(st.integers(0, 30))):
        kind = draw(st.sampled_from(["tl", "ts", "mm", "scalar"]))
        if kind == "tl":
            b.tl(
                TileReg(draw(st.integers(0, 7))),
                draw(st.integers(0, 1 << 30)),
                stride=draw(st.sampled_from([64, 128, 4096])),
            )
        elif kind == "ts":
            b.ts(draw(st.integers(0, 1 << 30)), TileReg(draw(st.integers(0, 7))))
        elif kind == "mm":
            c = TileReg(draw(st.integers(0, 7)))
            b.mm(c, TileReg(draw(st.integers(0, 7))), TileReg(draw(st.integers(0, 7))))
        else:
            b.scalar(Opcode.ADD, dst=ScalarReg(draw(st.integers(0, 15))),
                     srcs=(ScalarReg(draw(st.integers(0, 15))),))
    return b.build()


@settings(max_examples=50, deadline=None)
@given(random_programs())
def test_roundtrip_random_programs(program):
    again = assemble(disassemble(program))
    assert [str(i) for i in again] == [str(i) for i in program]
