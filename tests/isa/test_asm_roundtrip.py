"""Round-trip property: ``assemble(disassemble(p)) == p`` (modulo tags).

Runs over every distinct program each workload suite generates, deduplicated
across suites by padded shape, so the textual syntax provably covers the
whole codegen output space — not just hand-picked examples.
"""

import dataclasses

import pytest

from repro.cli import main
from repro.isa.assembler import assemble, disassemble
from repro.workloads.codegen import build_gemm_kernel
from repro.workloads.suites import get_suite, suite_names

SCALE = 8


def _untagged(program):
    return [dataclasses.replace(inst, tag="") for inst in program]


def _distinct_shapes():
    seen = set()
    shapes = []
    for name in suite_names():
        for entry in get_suite(name, scale=SCALE).distinct():
            padded = entry.shape.tile_padded()
            if padded.dims in seen:
                continue
            seen.add(padded.dims)
            shapes.append(pytest.param(padded, id=f"{name}-{'x'.join(map(str, padded.dims))}"))
    return shapes


@pytest.mark.parametrize("shape", _distinct_shapes())
def test_roundtrip_over_every_suite_program(shape):
    program = build_gemm_kernel(shape).program
    text = disassemble(program)
    rebuilt = assemble(text, name=program.name)
    assert len(rebuilt) == len(program)
    assert _untagged(rebuilt) == _untagged(program)
    # Second pass is a fixed point: disassembling the rebuild is identical.
    assert disassemble(rebuilt) == text


def test_roundtrip_keeps_nondefault_strides():
    program = build_gemm_kernel(get_suite("table1", scale=SCALE).distinct()[0].shape).program
    strides = {inst.mem.stride for inst in program if inst.mem is not None}
    assert strides - {64}, "expected at least one non-default stride to exercise"
    rebuilt = assemble(disassemble(program))
    assert [i.mem for i in rebuilt if i.mem] == [i.mem for i in program if i.mem]


def test_cli_asm_rejects_ill_formed_text(tmp_path, capsys):
    source = tmp_path / "bad.rasa"
    source.write_text("rasa_tl treg0 ptr[0x1000]\n")  # missing comma
    assert main(["asm", str(source), str(tmp_path / "out.jsonl")]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert err.count("\n") == 1  # exactly one line


def test_cli_asm_rejects_unknown_mnemonic(tmp_path, capsys):
    source = tmp_path / "bad.rasa"
    source.write_text("rasa_frobnicate treg0\n")
    assert main(["asm", str(source), str(tmp_path / "out.jsonl")]) == 1
    assert "error:" in capsys.readouterr().err
