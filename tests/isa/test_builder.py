"""Tests for the fluent ProgramBuilder."""

from __future__ import annotations

import pytest

from repro.errors import IsaError
from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import TileReg
from repro.isa.opcodes import Opcode


def test_fluent_chaining():
    b = ProgramBuilder("chained")
    result = b.tl(TileReg(0), 0).mm(TileReg(0), TileReg(6), TileReg(4)).ts(0, TileReg(0))
    assert result is b
    assert len(b) == 3


def test_loop_overhead_mix():
    b = ProgramBuilder()
    b.loop_overhead(8)
    p = b.build()
    opcodes = [i.opcode for i in p]
    assert len(p) == 8
    assert opcodes.count(Opcode.BRANCH) == 2
    assert opcodes.count(Opcode.CMP) == 2
    assert opcodes.count(Opcode.ADD) == 4


def test_loop_overhead_zero():
    b = ProgramBuilder()
    b.loop_overhead(0)
    assert len(b) == 0


def test_loop_overhead_negative_rejected():
    with pytest.raises(IsaError):
        ProgramBuilder().loop_overhead(-1)


def test_extend():
    b1 = ProgramBuilder("a")
    b1.tl(TileReg(0), 0)
    p1 = b1.build()
    b2 = ProgramBuilder("b")
    b2.extend(p1).extend(p1)
    assert len(b2.build()) == 2


def test_build_name():
    assert ProgramBuilder("kernel").build().name == "kernel"
