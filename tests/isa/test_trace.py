"""Tests for JSONL trace persistence."""

from __future__ import annotations

import pytest

from repro.errors import IsaError
from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import ScalarReg, TileReg
from repro.isa.opcodes import Opcode
from repro.isa.trace import load_trace, save_trace


def make_program():
    b = ProgramBuilder("traced")
    b.tl(TileReg(0), 0x1000).tl(TileReg(4), 0x8000, stride=128, tag="B[0,0]")
    b.mm(TileReg(0), TileReg(6), TileReg(4), tag="mm[0,0,0]")
    b.ts(0x1000, TileReg(0))
    b.scalar(Opcode.ADD, dst=ScalarReg(1), srcs=(ScalarReg(2),))
    b.scalar(Opcode.BRANCH)
    return b.build()


def test_roundtrip(tmp_path):
    program = make_program()
    path = tmp_path / "trace.jsonl"
    save_trace(program, path)
    loaded = load_trace(path)
    assert loaded.name == "traced"
    assert len(loaded) == len(program)
    assert [str(i) for i in loaded] == [str(i) for i in program]
    assert [i.tag for i in loaded] == [i.tag for i in program]


def test_tags_preserved(tmp_path):
    path = tmp_path / "t.jsonl"
    save_trace(make_program(), path)
    loaded = load_trace(path)
    assert loaded[1].tag == "B[0,0]"
    assert loaded[2].tag == "mm[0,0,0]"


def test_bad_opcode_raises(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"op": "rasa_frobnicate"}\n')
    with pytest.raises(IsaError):
        load_trace(path)


def test_blank_lines_skipped(tmp_path):
    path = tmp_path / "gaps.jsonl"
    save_trace(make_program(), path)
    content = path.read_text().replace("\n", "\n\n")
    path.write_text(content)
    assert len(load_trace(path)) == len(make_program())
