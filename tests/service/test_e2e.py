"""The crash-survival end-to-end test (satellite of the service tentpole).

Submit a real table1 plan, point worker *subprocesses* at the service,
SIGKILL one mid-shard, and assert that (a) the lease reaper re-queues the
orphaned shard and (b) the final merged report is byte-identical to an
unsharded ``Session.run`` of the same plan.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.experiments.runner import ExperimentSettings
from repro.runtime.plan import SweepPlan
from repro.runtime.session import Session


def table1_plan() -> SweepPlan:
    from repro.cli import _sweep_shapes

    shapes = _sweep_shapes("table1", ExperimentSettings(scale=1))
    return SweepPlan(
        designs=("baseline", "rasa-dmdb-wls"),
        workloads=tuple(list(shapes.items())[:4]),
        scale=16,
    )


def spawn_worker(url, cache_dir, *extra):
    """A real ``repro worker`` process (what SIGKILL actually kills)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(p) for p in (env.get("PYTHONPATH"),) if p] + ["src"]
    )
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "worker",
            "--url", url, "--jobs", "1", "--poll", "0.1",
            "--cache-dir", str(cache_dir), *extra,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def wait_until(predicate, timeout, what):
    start = time.monotonic()
    while time.monotonic() - start < timeout:
        value = predicate()
        if value:
            return value
        time.sleep(0.1)
    pytest.fail(f"timed out after {timeout}s waiting for {what}")


@pytest.mark.slow
def test_sigkilled_worker_is_reaped_and_the_report_is_bit_identical(
    live_service, tmp_path
):
    client = live_service.client
    plan = table1_plan()
    response = client.submit(plan, 2)
    assert response["shard_count"] == 2
    plan_id = response["plan_id"]

    # A worker that claims a shard and then hangs forever: stall_seconds
    # parks it between claim and simulate, exactly where SIGKILL lands.
    victim = spawn_worker(
        live_service.url, tmp_path / "cache",
        "--stall-seconds", "600", "--max-shards", "1", "--worker-id", "victim",
    )
    try:
        claimed = wait_until(
            lambda: [
                shard
                for shard in client.plan_status(plan_id)["shards"]
                if shard["state"] == "ACTIVE" and shard["worker_id"] == "victim"
            ],
            timeout=60.0,
            what="the victim to claim a shard",
        )
        victim.kill()  # SIGKILL: no cleanup, no fail() call, heartbeats stop
        victim.wait(timeout=30.0)
        assert victim.returncode == -signal.SIGKILL

        # The reaper must notice the silent lease and re-queue the shard.
        requeued = wait_until(
            lambda: [
                shard
                for shard in client.plan_status(plan_id)["shards"]
                if shard["shard_id"] == claimed[0]["shard_id"]
                and shard["state"] == "PENDING"
            ],
            timeout=60.0,
            what="the reaper to re-queue the orphaned shard",
        )
        assert requeued[0]["attempts"] == 1
        assert "lease expired" in requeued[0]["last_error"]
        assert "'victim'" in requeued[0]["last_error"]
    finally:
        if victim.poll() is None:
            victim.kill()
            victim.wait(timeout=30.0)

    # Two healthy workers drain the queue, orphaned shard included.
    rescuers = [
        spawn_worker(live_service.url, tmp_path / "cache", "--idle-exit", "2")
        for _ in range(2)
    ]
    try:
        for process in rescuers:
            out, _ = process.communicate(timeout=300.0)
            assert process.returncode == 0, out
    finally:
        for process in rescuers:
            if process.poll() is None:
                process.kill()

    status = client.plan_status(plan_id)
    assert status["state"] == "completed", status
    retried = [s for s in status["shards"] if s["shard_id"] == claimed[0]["shard_id"]]
    assert retried[0]["attempts"] == 2  # the SIGKILLed claim plus the retry

    with Session(cache=None, workers=1) as session:
        single_shot = session.run(plan).to_json()
    assert client.plan_report(plan_id) == single_shot
