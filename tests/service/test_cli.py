"""CLI tests for serve/submit/worker/status (in-process ``cli.main``)."""

from __future__ import annotations

import pytest

from repro import cli
from repro.runtime.session import Session

from tests.service.conftest import tiny_plan


@pytest.fixture
def plan_file(tmp_path):
    path = tmp_path / "plan.json"
    path.write_text(tiny_plan().to_json())
    return path


class TestErrorConvention:
    """Malformed service addresses: one ``error:`` line, exit code 1."""

    def test_malformed_env_url(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_SERVICE_URL", "not-a-url")
        assert cli.main(["status"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: malformed REPRO_SERVICE_URL")
        assert err.count("\n") == 1

    def test_malformed_env_port(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_SERVICE_URL", "http://host:99999")
        assert cli.main(["submit", "--id-only"]) == 1
        assert capsys.readouterr().err.startswith("error: malformed")

    def test_malformed_url_flag(self, capsys):
        assert cli.main(["worker", "--url", "http://h:80/api"]) == 1
        assert "drop the path" in capsys.readouterr().err

    def test_out_of_range_serve_port(self, capsys):
        assert cli.main(["serve", "--port", "70000"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: port must be an integer in [0, 65535]")

    def test_unreachable_service(self, capsys):
        assert cli.main(["status", "--url", "http://127.0.0.1:9"]) == 1
        assert "cannot reach sweep service" in capsys.readouterr().err


class TestAgainstALiveService:
    def test_submit_id_only_is_bare(self, live_service, capsys, plan_file):
        code = cli.main([
            "submit", "--plan", str(plan_file), "--shards", "2",
            "--url", live_service.url, "--id-only",
        ])
        assert code == 0
        out = capsys.readouterr().out.strip()
        assert out == live_service.client.list_plans()[0]["plan_id"]

    def test_submit_rejects_axis_flags_with_plan_file(
        self, live_service, capsys, plan_file
    ):
        code = cli.main([
            "submit", "--plan", str(plan_file), "--scale", "4",
            "--url", live_service.url,
        ])
        assert code == 1
        assert "--scale" in capsys.readouterr().err

    def test_worker_drains_the_queue_and_status_reports(
        self, live_service, capsys, plan_file, tmp_path
    ):
        assert cli.main([
            "submit", "--plan", str(plan_file), "--shards", "2",
            "--url", live_service.url, "--id-only",
        ]) == 0
        plan_id = capsys.readouterr().out.strip()

        assert cli.main([
            "worker", "--url", live_service.url, "--jobs", "1",
            "--cache-dir", str(tmp_path / "cache"),
            "--poll", "0.02", "--idle-exit", "0.3",
        ]) == 0
        assert "2 shard(s) completed" in capsys.readouterr().out

        served = tmp_path / "served.json"
        assert cli.main([
            "status", plan_id, "--url", live_service.url, "-o", str(served),
        ]) == 0
        out = capsys.readouterr().out
        assert f"plan {plan_id}: completed" in out
        assert "2 COMPLETED" in out

        with Session(cache=None, workers=1) as session:
            single = session.run(tiny_plan()).to_json()
        assert served.read_text() == single

    def test_submit_wait_writes_the_served_bytes(
        self, live_service, capsys, plan_file, tmp_path
    ):
        import threading

        def drain():
            cli.main([
                "worker", "--url", live_service.url, "--jobs", "1",
                "--cache-dir", str(tmp_path / "cache"),
                "--poll", "0.02", "--idle-exit", "2",
            ])

        worker = threading.Thread(target=drain)
        worker.start()
        served = tmp_path / "served.json"
        try:
            code = cli.main([
                "submit", "--plan", str(plan_file), "--shards", "2",
                "--url", live_service.url, "--wait", "--timeout", "120",
                "--poll", "0.05", "-o", str(served),
            ])
        finally:
            worker.join(timeout=120.0)
        assert code == 0
        with Session(cache=None, workers=1) as session:
            assert served.read_text() == session.run(tiny_plan()).to_json()

    def test_status_without_id_lists_plans(self, live_service, capsys, plan_file):
        assert cli.main([
            "status", "--url", live_service.url,
        ]) == 0
        assert "no plans submitted" in capsys.readouterr().out
        cli.main([
            "submit", "--plan", str(plan_file), "--shards", "2",
            "--url", live_service.url, "--id-only",
        ])
        plan_id = capsys.readouterr().out.strip()
        assert cli.main(["status", "--url", live_service.url]) == 0
        listing = capsys.readouterr().out
        assert plan_id in listing
        assert "running" in listing

    def test_status_report_before_completion_is_an_error(
        self, live_service, capsys, plan_file, tmp_path
    ):
        cli.main([
            "submit", "--plan", str(plan_file), "--shards", "2",
            "--url", live_service.url, "--id-only",
        ])
        plan_id = capsys.readouterr().out.strip()
        code = cli.main([
            "status", plan_id, "--url", live_service.url,
            "-o", str(tmp_path / "served.json"),
        ])
        assert code == 1
        assert "no merged report yet" in capsys.readouterr().err
