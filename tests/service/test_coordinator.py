"""Coordinator policy tests: submission, retries, reaping, merging."""

from __future__ import annotations

import pytest

from repro.errors import ServiceError, TransitionError
from repro.runtime.plan import SweepReport
from repro.runtime.session import Session
from repro.service import Coordinator, ServiceConfig, ShardState

from tests.service.conftest import tiny_plan


@pytest.fixture
def coordinator(job_store):
    return Coordinator(
        job_store, ServiceConfig(lease_seconds=10.0, max_attempts=2)
    )


def run_shard(lease) -> str:
    """Simulate one leased shard exactly as a worker would."""
    from repro.runtime.plan import SweepPlan

    plan = SweepPlan.from_json(lease["plan"])
    if lease["shard_count"] > 1:
        plan = plan.shard(lease["shard_index"], lease["shard_count"])
    with Session(cache=None, workers=1) as session:
        return session.run(plan).to_json()


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs,match",
        [
            ({"lease_seconds": 0}, "lease"),
            ({"lease_seconds": -1}, "lease"),
            ({"max_attempts": 0}, "attempts"),
            ({"reap_interval": 0}, "reap"),
        ],
    )
    def test_rejects_bad_knobs(self, kwargs, match):
        with pytest.raises(ServiceError, match=match):
            ServiceConfig(**kwargs)


class TestSubmit:
    def test_clamps_fanout_to_distinct_points(self, coordinator):
        plan = tiny_plan(shapes=2)  # 2 designs x 2 shapes = 4 points
        response = coordinator.submit(plan.to_json(), 64)
        assert response["shard_count"] == 4
        assert response["distinct_points"] == 4

    def test_idempotent(self, coordinator):
        plan = tiny_plan().to_json()
        first = coordinator.submit(plan, 2)
        second = coordinator.submit(plan, 2)
        assert first["plan_id"] == second["plan_id"]
        assert (first["created"], second["created"]) == (True, False)

    def test_rejects_presharded_plans(self, coordinator):
        shard = tiny_plan().shard(0, 2)
        with pytest.raises(ServiceError, match="unsharded"):
            coordinator.submit(shard.to_json(), 2)

    def test_rejects_non_positive_shards(self, coordinator):
        with pytest.raises(ServiceError, match="positive"):
            coordinator.submit(tiny_plan().to_json(), 0)

    def test_canonicalizes_posted_json(self, coordinator):
        """Reformatted-but-equal plan JSON maps to the same plan id."""
        plan = tiny_plan()
        pretty = plan.to_json(indent=2)
        assert coordinator.submit(pretty, 2)["plan_id"] == (
            coordinator.submit(plan.to_json(), 2)["plan_id"]
        )

    def test_priority_flows_to_claims_and_status(self, coordinator):
        low = coordinator.submit(tiny_plan(shapes=1).to_json(), 1, priority=0)
        high = coordinator.submit(tiny_plan(shapes=2).to_json(), 1, priority=9)
        lease = coordinator.claim("w1")
        assert lease["plan_id"] == high["plan_id"]
        assert coordinator.plan_status(high["plan_id"])["priority"] == 9
        assert coordinator.plan_status(low["plan_id"])["priority"] == 0
        listed = {p["plan_id"]: p["priority"] for p in coordinator.list_plans()}
        assert listed == {low["plan_id"]: 0, high["plan_id"]: 9}

    def test_rejects_non_integer_priority(self, coordinator):
        with pytest.raises(ServiceError, match="priority"):
            coordinator.submit(tiny_plan().to_json(), 2, priority="urgent")


class TestProgressHeartbeats:
    def test_progress_surfaces_in_plan_status(self, coordinator):
        submitted = coordinator.submit(tiny_plan(shapes=2).to_json(), 1)
        lease = coordinator.claim("w1")
        coordinator.heartbeat(lease["shard_id"], "w1", completed=2, total=4)
        shard = coordinator.plan_status(submitted["plan_id"])["shards"][0]
        assert (shard["progress_completed"], shard["progress_total"]) == (2, 4)

    def test_rejects_malformed_progress(self, coordinator):
        coordinator.submit(tiny_plan(shapes=1).to_json(), 1)
        lease = coordinator.claim("w1")
        with pytest.raises(ServiceError, match="completed"):
            coordinator.heartbeat(lease["shard_id"], "w1", completed=-1, total=4)
        with pytest.raises(ServiceError, match="total"):
            coordinator.heartbeat(lease["shard_id"], "w1", completed=1, total="x")


class TestCompleteValidation:
    def test_rejects_report_for_a_different_plan(self, coordinator):
        coordinator.submit(tiny_plan(shapes=1).to_json(), 1)
        lease = coordinator.claim("w1")
        alien = tiny_plan(shapes=3)
        with Session(cache=None, workers=1) as session:
            report = session.run(alien).to_json()
        with pytest.raises(ServiceError, match="different plan"):
            coordinator.complete(lease["shard_id"], "w1", report)

    def test_rejects_report_for_the_wrong_shard(self, coordinator):
        plan = tiny_plan()
        coordinator.submit(plan.to_json(), 2)
        lease = coordinator.claim("w1")  # shard 0
        wrong = plan.shard(1, 2)
        with Session(cache=None, workers=1) as session:
            report = session.run(wrong).to_json()
        with pytest.raises(ServiceError, match="expected 0/2"):
            coordinator.complete(lease["shard_id"], "w1", report)

    def test_recanonicalizes_worker_formatting(self, coordinator, job_store):
        """Stored shard bytes never depend on a client's JSON style."""
        plan = tiny_plan(shapes=1)
        coordinator.submit(plan.to_json(), 1)
        lease = coordinator.claim("w1")
        canonical = run_shard(lease)
        pretty = SweepReport.from_json(canonical).to_json(indent=2)
        coordinator.complete(lease["shard_id"], "w1", pretty)
        shard = job_store.get_shard(lease["shard_id"])
        assert shard.report_json == canonical


class TestMergeOnCompletion:
    def test_served_report_is_byte_identical_to_single_shot(self, coordinator):
        plan = tiny_plan()
        response = coordinator.submit(plan.to_json(), 2)
        for worker in ("w1", "w2"):
            lease = coordinator.claim(worker)
            done = coordinator.complete(
                lease["shard_id"], worker, run_shard(lease)
            )
        assert done["done"] is True
        with Session(cache=None, workers=1) as session:
            single = session.run(plan).to_json()
        assert coordinator.plan_report(response["plan_id"]) == single

    def test_report_unavailable_until_every_shard_lands(self, coordinator):
        response = coordinator.submit(tiny_plan().to_json(), 2)
        lease = coordinator.claim("w1")
        coordinator.complete(lease["shard_id"], "w1", run_shard(lease))
        with pytest.raises(ServiceError, match="no merged report yet"):
            coordinator.plan_report(response["plan_id"])
        assert coordinator.plan_status(response["plan_id"])["state"] == "running"


class TestRetryBudget:
    def test_fail_requeues_until_budget_exhausted(self, coordinator):
        """max_attempts=2: first failure re-queues, second seals FAILED."""
        response = coordinator.submit(tiny_plan(shapes=1).to_json(), 1)
        lease = coordinator.claim("w1")
        first = coordinator.fail(lease["shard_id"], "w1", "boom")
        assert first["state"] == "PENDING"

        lease = coordinator.claim("w2")
        assert lease["attempts"] == 2
        second = coordinator.fail(lease["shard_id"], "w2", "boom again")
        assert second["state"] == "FAILED"
        status = coordinator.plan_status(response["plan_id"])
        assert status["state"] == "failed"
        (shard,) = status["shards"]
        assert "retry budget exhausted (2/2 attempts)" in shard["last_error"]

    def test_fail_from_a_zombie_worker_is_rejected(self, coordinator):
        coordinator.submit(tiny_plan(shapes=1).to_json(), 1)
        lease = coordinator.claim("w1")
        with pytest.raises(TransitionError, match="held by 'w1', not 'w2'"):
            coordinator.fail(lease["shard_id"], "w2", "not mine")


class TestReaper:
    def test_reap_requeues_expired_leases(self, coordinator):
        """A dead worker's shard flows back into the queue at deadline."""
        coordinator.submit(tiny_plan(shapes=1).to_json(), 1)
        lease = coordinator.claim("w1")
        assert coordinator.reap(now=lease["lease_deadline"] - 1.0) == []
        outcomes = coordinator.reap(now=lease["lease_deadline"] + 1.0)
        assert outcomes == [(lease["shard_id"], "PENDING")]
        again = coordinator.claim("w2")
        assert again["shard_id"] == lease["shard_id"]
        assert again["attempts"] == 2

    def test_reap_seals_after_the_budget(self, coordinator, job_store):
        coordinator.submit(tiny_plan(shapes=1).to_json(), 1)
        lease = coordinator.claim("w1")
        coordinator.reap(now=lease["lease_deadline"] + 1.0)
        lease = coordinator.claim("w1")  # attempt 2 of 2
        outcomes = coordinator.reap(now=lease["lease_deadline"] + 1.0)
        assert outcomes == [(lease["shard_id"], "FAILED")]
        shard = job_store.get_shard(lease["shard_id"])
        assert shard.state is ShardState.FAILED
        assert "lease expired" in shard.last_error

    def test_heartbeat_holds_off_the_reaper(self, coordinator, job_store):
        coordinator.submit(tiny_plan(shapes=1).to_json(), 1)
        lease = coordinator.claim("w1")
        beat = coordinator.heartbeat(lease["shard_id"], "w1")
        assert beat["shard_id"] == lease["shard_id"]
        # Extend the lease far out (store-level, injectable clock): the
        # reaper must respect the *heartbeated* deadline, not the original.
        job_store.heartbeat_shard(
            lease["shard_id"], "w1", 10.0, now=lease["lease_deadline"] + 100.0
        )
        assert coordinator.reap(now=lease["lease_deadline"] + 1.0) == []
