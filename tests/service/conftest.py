"""Shared fixtures for the sweep-service tests.

``live_service`` is the full stack short-fused for tests: an in-thread
HTTP server over a real on-disk job store, with a 2-second lease and a
fast reaper, plus a client already pointed at the ephemeral port.
"""

from __future__ import annotations

import threading
from types import SimpleNamespace

import pytest

from repro.runtime.plan import SweepPlan
from repro.service import (
    Coordinator,
    JobStore,
    ServiceClient,
    ServiceConfig,
    create_server,
)
from repro.workloads.gemm import GemmShape


def tiny_plan(shapes: int = 2, fidelity: str = "analytic") -> SweepPlan:
    """A fast deterministic plan: 2 designs x ``shapes`` distinct GEMMs."""
    workloads = tuple(
        (f"g{i}", GemmShape(m=16 * (i + 1), n=16, k=32, name=f"g{i}"))
        for i in range(shapes)
    )
    return SweepPlan(
        designs=("baseline", "rasa-dmdb-wls"),
        workloads=workloads,
        fidelity=fidelity,
    )


@pytest.fixture
def job_store(tmp_path):
    store = JobStore(tmp_path / "service.db")
    yield store
    store.close()


@pytest.fixture
def live_service(tmp_path):
    store = JobStore(tmp_path / "service.db")
    coordinator = Coordinator(
        store,
        ServiceConfig(lease_seconds=2.0, max_attempts=3, reap_interval=0.05),
    )
    server = create_server(coordinator, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    coordinator.start_reaper()
    yield SimpleNamespace(
        store=store,
        coordinator=coordinator,
        server=server,
        url=server.url,
        client=ServiceClient(server.url, timeout=10.0),
    )
    coordinator.stop()
    server.shutdown()
    thread.join(timeout=5.0)
    server.server_close()
    store.close()
