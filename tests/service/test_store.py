"""Job-store tests: the lifecycle matrix, leases, and durability."""

from __future__ import annotations

import itertools
import sqlite3

import pytest

from repro.errors import ServiceError, ServiceLookupError, TransitionError
from repro.service import (
    JobStore,
    LEGAL_TRANSITIONS,
    ShardState,
    TERMINAL_STATES,
    check_transition,
)

PLAN_JSON = '{"designs":["baseline"],"format":1}'  # stores don't parse plans


def submit(store: JobStore, shards: int = 2, text: str = PLAN_JSON):
    row, created = store.submit_plan(text, shards, now=100.0)
    return row


class TestTransitionMatrix:
    """Every one of the 16 (old, new) pairs, checked against the matrix."""

    @pytest.mark.parametrize(
        "old,new", list(itertools.product(ShardState, ShardState))
    )
    def test_every_pair(self, old, new):
        if new in LEGAL_TRANSITIONS[old]:
            check_transition(old, new)  # must not raise
        else:
            with pytest.raises(TransitionError, match=f"{old.value} -> {new.value}"):
                check_transition(old, new)

    def test_exactly_four_legal_edges(self):
        legal = [
            (old, new)
            for old in ShardState
            for new in LEGAL_TRANSITIONS[old]
        ]
        assert sorted((o.value, n.value) for o, n in legal) == [
            ("ACTIVE", "COMPLETED"),
            ("ACTIVE", "FAILED"),
            ("ACTIVE", "PENDING"),
            ("PENDING", "ACTIVE"),
        ]

    def test_self_transitions_all_illegal(self):
        for state in ShardState:
            with pytest.raises(TransitionError):
                check_transition(state, state)

    def test_terminal_states_are_sealed(self):
        assert TERMINAL_STATES == {ShardState.COMPLETED, ShardState.FAILED}
        with pytest.raises(TransitionError, match="sealed"):
            check_transition(ShardState.COMPLETED, ShardState.PENDING)


class TestPlans:
    def test_submit_is_idempotent(self, job_store):
        first, created_first = job_store.submit_plan(PLAN_JSON, 2, now=1.0)
        second, created_second = job_store.submit_plan(PLAN_JSON, 2, now=2.0)
        assert (created_first, created_second) == (True, False)
        assert first.plan_id == second.plan_id
        assert len(job_store.shards(first.plan_id)) == 2

    def test_different_fanout_is_a_different_plan(self, job_store):
        one, _ = job_store.submit_plan(PLAN_JSON, 1, now=1.0)
        two, _ = job_store.submit_plan(PLAN_JSON, 2, now=1.0)
        assert one.plan_id != two.plan_id

    def test_rejects_non_positive_fanout(self, job_store):
        with pytest.raises(ServiceError, match="positive"):
            job_store.submit_plan(PLAN_JSON, 0, now=1.0)

    def test_unknown_ids_raise_lookup_errors(self, job_store):
        with pytest.raises(ServiceLookupError, match="unknown plan"):
            job_store.get_plan("nope")
        with pytest.raises(ServiceLookupError, match="unknown shard"):
            job_store.get_shard(77)
        with pytest.raises(ServiceLookupError):
            job_store.store_plan_report("nope", "{}")

    def test_wal_mode_is_on(self, job_store):
        mode = job_store._conn.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"


class TestLeaseProtocol:
    def test_claim_hands_out_oldest_pending_and_counts_attempts(self, job_store):
        plan = submit(job_store, shards=2)
        first = job_store.claim_shard("w1", lease_seconds=30.0, now=10.0)
        second = job_store.claim_shard("w2", lease_seconds=30.0, now=10.0)
        assert (first.shard_index, second.shard_index) == (0, 1)
        assert first.state is ShardState.ACTIVE
        assert first.attempts == 1
        assert first.worker_id == "w1"
        assert first.lease_deadline == 40.0
        assert job_store.claim_shard("w3", 30.0, now=10.0) is None  # queue dry
        assert plan.plan_id == first.plan_id

    def test_claim_needs_a_worker_id(self, job_store):
        submit(job_store)
        with pytest.raises(ServiceError, match="worker id"):
            job_store.claim_shard("", 30.0, now=0.0)

    def test_heartbeat_extends_the_lease(self, job_store):
        submit(job_store, shards=1)
        shard = job_store.claim_shard("w1", 30.0, now=0.0)
        deadline = job_store.heartbeat_shard(shard.shard_id, "w1", 30.0, now=25.0)
        assert deadline == 55.0
        assert job_store.get_shard(shard.shard_id).lease_deadline == 55.0

    def test_zombie_worker_is_rejected(self, job_store):
        """A worker that lost its lease cannot heartbeat or complete."""
        submit(job_store, shards=1)
        shard = job_store.claim_shard("w1", 1.0, now=0.0)
        job_store.requeue_shard(shard.shard_id, "lease expired")
        job_store.claim_shard("w2", 30.0, now=5.0)  # re-assigned
        with pytest.raises(TransitionError, match="held by 'w2', not 'w1'"):
            job_store.heartbeat_shard(shard.shard_id, "w1", 30.0, now=6.0)
        with pytest.raises(TransitionError, match="held by 'w2', not 'w1'"):
            job_store.complete_shard(shard.shard_id, "w1", "{}")

    def test_expired_shards_only_past_deadline(self, job_store):
        submit(job_store, shards=2)
        job_store.claim_shard("w1", 10.0, now=0.0)  # deadline 10
        job_store.claim_shard("w2", 50.0, now=0.0)  # deadline 50
        expired = job_store.expired_shards(now=20.0)
        assert [s.worker_id for s in expired] == ["w1"]
        assert job_store.expired_shards(now=5.0) == []


class TestShardTransitionsViaStore:
    def test_complete_seals_and_clears_the_lease(self, job_store):
        submit(job_store, shards=1)
        shard = job_store.claim_shard("w1", 30.0, now=0.0)
        done = job_store.complete_shard(shard.shard_id, "w1", '{"r":1}')
        assert done.state is ShardState.COMPLETED
        assert done.report_json == '{"r":1}'
        assert done.worker_id is None
        assert done.lease_deadline is None
        with pytest.raises(TransitionError, match="sealed"):
            job_store.complete_shard(shard.shard_id, "w1", "{}")

    def test_requeue_then_reclaim(self, job_store):
        submit(job_store, shards=1)
        shard = job_store.claim_shard("w1", 30.0, now=0.0)
        back = job_store.requeue_shard(shard.shard_id, "worker died")
        assert back.state is ShardState.PENDING
        assert back.worker_id is None
        assert back.last_error == "worker died"
        again = job_store.claim_shard("w2", 30.0, now=1.0)
        assert again.shard_id == shard.shard_id
        assert again.attempts == 2

    def test_cannot_requeue_pending_or_complete_pending(self, job_store):
        plan = submit(job_store, shards=1)
        shard = job_store.shards(plan.plan_id)[0]
        with pytest.raises(TransitionError, match="PENDING -> PENDING"):
            job_store.requeue_shard(shard.shard_id, None)
        with pytest.raises(TransitionError, match="PENDING -> COMPLETED"):
            job_store.complete_shard(shard.shard_id, "w1", "{}")
        with pytest.raises(TransitionError, match="PENDING -> FAILED"):
            job_store.fail_shard(shard.shard_id, "boom")

    def test_failed_is_terminal_and_never_reclaimed(self, job_store):
        submit(job_store, shards=1)
        shard = job_store.claim_shard("w1", 30.0, now=0.0)
        dead = job_store.fail_shard(shard.shard_id, "budget spent")
        assert dead.state is ShardState.FAILED
        assert dead.last_error == "budget spent"
        assert job_store.claim_shard("w2", 30.0, now=1.0) is None
        with pytest.raises(TransitionError, match="sealed"):
            job_store.requeue_shard(shard.shard_id, None)

    def test_state_counts(self, job_store):
        plan = submit(job_store, shards=3)
        job_store.claim_shard("w1", 30.0, now=0.0)
        counts = job_store.state_counts(plan.plan_id)
        assert counts[ShardState.PENDING] == 2
        assert counts[ShardState.ACTIVE] == 1
        assert counts[ShardState.COMPLETED] == 0
        assert counts[ShardState.FAILED] == 0


class TestPriorityScheduling:
    """Plan priority steers the claim queue without entering identity."""

    def test_higher_priority_plan_drains_first(self, job_store):
        low, _ = job_store.submit_plan('{"p":"low"}', 2, now=1.0, priority=0)
        high, _ = job_store.submit_plan('{"p":"high"}', 2, now=2.0, priority=7)
        order = [
            job_store.claim_shard(f"w{i}", 30.0, now=3.0).plan_id
            for i in range(4)
        ]
        assert order == [high.plan_id] * 2 + [low.plan_id] * 2

    def test_equal_priority_is_submission_order(self, job_store):
        first, _ = job_store.submit_plan('{"p":"a"}', 1, now=1.0, priority=3)
        second, _ = job_store.submit_plan('{"p":"b"}', 1, now=2.0, priority=3)
        assert job_store.claim_shard("w1", 30.0, now=3.0).plan_id == first.plan_id
        assert job_store.claim_shard("w2", 30.0, now=3.0).plan_id == second.plan_id

    def test_negative_priority_yields_to_default(self, job_store):
        back, _ = job_store.submit_plan('{"p":"bg"}', 1, now=1.0, priority=-5)
        normal, _ = job_store.submit_plan('{"p":"n"}', 1, now=2.0)
        assert job_store.claim_shard("w1", 30.0, now=3.0).plan_id == normal.plan_id

    def test_priority_is_not_identity(self, job_store):
        """Resubmitting at a new priority is idempotent and keeps the old."""
        first, created = job_store.submit_plan(PLAN_JSON, 2, now=1.0, priority=4)
        again, created_again = job_store.submit_plan(
            PLAN_JSON, 2, now=2.0, priority=99
        )
        assert (created, created_again) == (True, False)
        assert again.plan_id == first.plan_id
        assert again.priority == 4

    def test_priority_must_be_an_integer(self, job_store):
        with pytest.raises(ServiceError, match="priority"):
            job_store.submit_plan(PLAN_JSON, 1, now=1.0, priority="high")
        with pytest.raises(ServiceError, match="priority"):
            job_store.submit_plan(PLAN_JSON, 1, now=1.0, priority=True)

    def test_retried_shard_rejoins_at_its_plan_priority(self, job_store):
        """A re-queued high-priority shard outranks pending low-priority work."""
        job_store.submit_plan('{"p":"low"}', 1, now=1.0, priority=0)
        high, _ = job_store.submit_plan('{"p":"high"}', 1, now=2.0, priority=5)
        shard = job_store.claim_shard("w1", 30.0, now=3.0)
        assert shard.plan_id == high.plan_id
        job_store.requeue_shard(shard.shard_id, "lease expired")
        assert job_store.claim_shard("w2", 30.0, now=4.0).plan_id == high.plan_id


class TestProgressHeartbeats:
    def test_heartbeat_records_progress(self, job_store):
        submit(job_store, shards=1)
        shard = job_store.claim_shard("w1", 30.0, now=0.0)
        assert (shard.progress_completed, shard.progress_total) == (None, None)
        job_store.heartbeat_shard(
            shard.shard_id, "w1", 30.0, now=5.0, completed=3, total=12
        )
        row = job_store.get_shard(shard.shard_id)
        assert (row.progress_completed, row.progress_total) == (3, 12)

    def test_plain_heartbeat_keeps_last_progress(self, job_store):
        submit(job_store, shards=1)
        shard = job_store.claim_shard("w1", 30.0, now=0.0)
        job_store.heartbeat_shard(
            shard.shard_id, "w1", 30.0, now=5.0, completed=3, total=12
        )
        deadline = job_store.heartbeat_shard(shard.shard_id, "w1", 30.0, now=9.0)
        assert deadline == 39.0
        row = job_store.get_shard(shard.shard_id)
        assert (row.progress_completed, row.progress_total) == (3, 12)

    def test_requeue_resets_progress(self, job_store):
        """A fresh claim must not inherit the dead worker's progress."""
        submit(job_store, shards=1)
        shard = job_store.claim_shard("w1", 30.0, now=0.0)
        job_store.heartbeat_shard(
            shard.shard_id, "w1", 30.0, now=5.0, completed=9, total=12
        )
        back = job_store.requeue_shard(shard.shard_id, "lease expired")
        assert (back.progress_completed, back.progress_total) == (None, None)

    def test_zombie_progress_report_is_rejected(self, job_store):
        submit(job_store, shards=1)
        shard = job_store.claim_shard("w1", 1.0, now=0.0)
        job_store.requeue_shard(shard.shard_id, "lease expired")
        job_store.claim_shard("w2", 30.0, now=5.0)
        with pytest.raises(TransitionError, match="held by 'w2'"):
            job_store.heartbeat_shard(
                shard.shard_id, "w1", 30.0, now=6.0, completed=1, total=2
            )


class TestSchemaMigration:
    def test_v1_store_gains_priority_and_progress_columns(self, tmp_path):
        """Opening a pre-priority DB migrates it in place, data intact."""
        path = tmp_path / "v1.db"
        conn = sqlite3.connect(path)
        conn.executescript(
            """
            CREATE TABLE plans (
                plan_id TEXT PRIMARY KEY, plan_json TEXT NOT NULL,
                shard_count INTEGER NOT NULL, submitted_at REAL NOT NULL,
                report_json TEXT
            );
            CREATE TABLE shards (
                shard_id INTEGER PRIMARY KEY AUTOINCREMENT,
                plan_id TEXT NOT NULL, shard_index INTEGER NOT NULL,
                state TEXT NOT NULL DEFAULT 'PENDING',
                attempts INTEGER NOT NULL DEFAULT 0,
                worker_id TEXT, lease_deadline REAL,
                report_json TEXT, last_error TEXT,
                UNIQUE (plan_id, shard_index)
            );
            """
        )
        conn.execute(
            "INSERT INTO plans VALUES ('old-plan', '{}', 1, 5.0, NULL)"
        )
        conn.execute(
            "INSERT INTO shards (plan_id, shard_index) VALUES ('old-plan', 0)"
        )
        conn.commit()
        conn.close()

        store = JobStore(path)
        plan = store.get_plan("old-plan")
        assert plan.priority == 0
        shard = store.shards("old-plan")[0]
        assert (shard.progress_completed, shard.progress_total) == (None, None)
        claimed = store.claim_shard("w1", 30.0, now=6.0)
        assert claimed.plan_id == "old-plan"
        store.heartbeat_shard(
            claimed.shard_id, "w1", 30.0, now=7.0, completed=1, total=1
        )
        assert store.get_shard(claimed.shard_id).progress_completed == 1
        store.close()

    def test_migration_is_idempotent_across_reopens(self, tmp_path):
        path = tmp_path / "twice.db"
        JobStore(path).close()
        store = JobStore(path)  # second open must not re-add columns
        store.submit_plan(PLAN_JSON, 1, now=1.0, priority=2)
        store.close()


class TestDurability:
    def test_reopen_resumes_exact_states(self, tmp_path):
        """Crash-resume: a new process over the same file sees everything."""
        path = tmp_path / "service.db"
        store = JobStore(path)
        plan = submit(store, shards=2)
        shard = store.claim_shard("w1", 30.0, now=0.0)
        store.complete_shard(shard.shard_id, "w1", '{"r":1}')
        store.store_plan_report(plan.plan_id, '{"merged":1}')
        store.close()  # the coordinator "dies" here

        reopened = JobStore(path)
        assert reopened.get_plan(plan.plan_id).report_json == '{"merged":1}'
        states = [s.state for s in reopened.shards(plan.plan_id)]
        assert states == [ShardState.COMPLETED, ShardState.PENDING]
        # ...and the queue keeps serving where it left off.
        nxt = reopened.claim_shard("w2", 30.0, now=1.0)
        assert nxt.shard_index == 1
        reopened.close()

    def test_active_lease_survives_restart_for_the_reaper(self, tmp_path):
        path = tmp_path / "service.db"
        store = JobStore(path)
        submit(store, shards=1)
        store.claim_shard("w1", 10.0, now=0.0)
        store.close()

        reopened = JobStore(path)
        expired = reopened.expired_shards(now=99.0)
        assert [s.worker_id for s in expired] == ["w1"]
        reopened.close()
