"""Job-store tests: the lifecycle matrix, leases, and durability."""

from __future__ import annotations

import itertools

import pytest

from repro.errors import ServiceError, ServiceLookupError, TransitionError
from repro.service import (
    JobStore,
    LEGAL_TRANSITIONS,
    ShardState,
    TERMINAL_STATES,
    check_transition,
)

PLAN_JSON = '{"designs":["baseline"],"format":1}'  # stores don't parse plans


def submit(store: JobStore, shards: int = 2, text: str = PLAN_JSON):
    row, created = store.submit_plan(text, shards, now=100.0)
    return row


class TestTransitionMatrix:
    """Every one of the 16 (old, new) pairs, checked against the matrix."""

    @pytest.mark.parametrize(
        "old,new", list(itertools.product(ShardState, ShardState))
    )
    def test_every_pair(self, old, new):
        if new in LEGAL_TRANSITIONS[old]:
            check_transition(old, new)  # must not raise
        else:
            with pytest.raises(TransitionError, match=f"{old.value} -> {new.value}"):
                check_transition(old, new)

    def test_exactly_four_legal_edges(self):
        legal = [
            (old, new)
            for old in ShardState
            for new in LEGAL_TRANSITIONS[old]
        ]
        assert sorted((o.value, n.value) for o, n in legal) == [
            ("ACTIVE", "COMPLETED"),
            ("ACTIVE", "FAILED"),
            ("ACTIVE", "PENDING"),
            ("PENDING", "ACTIVE"),
        ]

    def test_self_transitions_all_illegal(self):
        for state in ShardState:
            with pytest.raises(TransitionError):
                check_transition(state, state)

    def test_terminal_states_are_sealed(self):
        assert TERMINAL_STATES == {ShardState.COMPLETED, ShardState.FAILED}
        with pytest.raises(TransitionError, match="sealed"):
            check_transition(ShardState.COMPLETED, ShardState.PENDING)


class TestPlans:
    def test_submit_is_idempotent(self, job_store):
        first, created_first = job_store.submit_plan(PLAN_JSON, 2, now=1.0)
        second, created_second = job_store.submit_plan(PLAN_JSON, 2, now=2.0)
        assert (created_first, created_second) == (True, False)
        assert first.plan_id == second.plan_id
        assert len(job_store.shards(first.plan_id)) == 2

    def test_different_fanout_is_a_different_plan(self, job_store):
        one, _ = job_store.submit_plan(PLAN_JSON, 1, now=1.0)
        two, _ = job_store.submit_plan(PLAN_JSON, 2, now=1.0)
        assert one.plan_id != two.plan_id

    def test_rejects_non_positive_fanout(self, job_store):
        with pytest.raises(ServiceError, match="positive"):
            job_store.submit_plan(PLAN_JSON, 0, now=1.0)

    def test_unknown_ids_raise_lookup_errors(self, job_store):
        with pytest.raises(ServiceLookupError, match="unknown plan"):
            job_store.get_plan("nope")
        with pytest.raises(ServiceLookupError, match="unknown shard"):
            job_store.get_shard(77)
        with pytest.raises(ServiceLookupError):
            job_store.store_plan_report("nope", "{}")

    def test_wal_mode_is_on(self, job_store):
        mode = job_store._conn.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"


class TestLeaseProtocol:
    def test_claim_hands_out_oldest_pending_and_counts_attempts(self, job_store):
        plan = submit(job_store, shards=2)
        first = job_store.claim_shard("w1", lease_seconds=30.0, now=10.0)
        second = job_store.claim_shard("w2", lease_seconds=30.0, now=10.0)
        assert (first.shard_index, second.shard_index) == (0, 1)
        assert first.state is ShardState.ACTIVE
        assert first.attempts == 1
        assert first.worker_id == "w1"
        assert first.lease_deadline == 40.0
        assert job_store.claim_shard("w3", 30.0, now=10.0) is None  # queue dry
        assert plan.plan_id == first.plan_id

    def test_claim_needs_a_worker_id(self, job_store):
        submit(job_store)
        with pytest.raises(ServiceError, match="worker id"):
            job_store.claim_shard("", 30.0, now=0.0)

    def test_heartbeat_extends_the_lease(self, job_store):
        submit(job_store, shards=1)
        shard = job_store.claim_shard("w1", 30.0, now=0.0)
        deadline = job_store.heartbeat_shard(shard.shard_id, "w1", 30.0, now=25.0)
        assert deadline == 55.0
        assert job_store.get_shard(shard.shard_id).lease_deadline == 55.0

    def test_zombie_worker_is_rejected(self, job_store):
        """A worker that lost its lease cannot heartbeat or complete."""
        submit(job_store, shards=1)
        shard = job_store.claim_shard("w1", 1.0, now=0.0)
        job_store.requeue_shard(shard.shard_id, "lease expired")
        job_store.claim_shard("w2", 30.0, now=5.0)  # re-assigned
        with pytest.raises(TransitionError, match="held by 'w2', not 'w1'"):
            job_store.heartbeat_shard(shard.shard_id, "w1", 30.0, now=6.0)
        with pytest.raises(TransitionError, match="held by 'w2', not 'w1'"):
            job_store.complete_shard(shard.shard_id, "w1", "{}")

    def test_expired_shards_only_past_deadline(self, job_store):
        submit(job_store, shards=2)
        job_store.claim_shard("w1", 10.0, now=0.0)  # deadline 10
        job_store.claim_shard("w2", 50.0, now=0.0)  # deadline 50
        expired = job_store.expired_shards(now=20.0)
        assert [s.worker_id for s in expired] == ["w1"]
        assert job_store.expired_shards(now=5.0) == []


class TestShardTransitionsViaStore:
    def test_complete_seals_and_clears_the_lease(self, job_store):
        submit(job_store, shards=1)
        shard = job_store.claim_shard("w1", 30.0, now=0.0)
        done = job_store.complete_shard(shard.shard_id, "w1", '{"r":1}')
        assert done.state is ShardState.COMPLETED
        assert done.report_json == '{"r":1}'
        assert done.worker_id is None
        assert done.lease_deadline is None
        with pytest.raises(TransitionError, match="sealed"):
            job_store.complete_shard(shard.shard_id, "w1", "{}")

    def test_requeue_then_reclaim(self, job_store):
        submit(job_store, shards=1)
        shard = job_store.claim_shard("w1", 30.0, now=0.0)
        back = job_store.requeue_shard(shard.shard_id, "worker died")
        assert back.state is ShardState.PENDING
        assert back.worker_id is None
        assert back.last_error == "worker died"
        again = job_store.claim_shard("w2", 30.0, now=1.0)
        assert again.shard_id == shard.shard_id
        assert again.attempts == 2

    def test_cannot_requeue_pending_or_complete_pending(self, job_store):
        plan = submit(job_store, shards=1)
        shard = job_store.shards(plan.plan_id)[0]
        with pytest.raises(TransitionError, match="PENDING -> PENDING"):
            job_store.requeue_shard(shard.shard_id, None)
        with pytest.raises(TransitionError, match="PENDING -> COMPLETED"):
            job_store.complete_shard(shard.shard_id, "w1", "{}")
        with pytest.raises(TransitionError, match="PENDING -> FAILED"):
            job_store.fail_shard(shard.shard_id, "boom")

    def test_failed_is_terminal_and_never_reclaimed(self, job_store):
        submit(job_store, shards=1)
        shard = job_store.claim_shard("w1", 30.0, now=0.0)
        dead = job_store.fail_shard(shard.shard_id, "budget spent")
        assert dead.state is ShardState.FAILED
        assert dead.last_error == "budget spent"
        assert job_store.claim_shard("w2", 30.0, now=1.0) is None
        with pytest.raises(TransitionError, match="sealed"):
            job_store.requeue_shard(shard.shard_id, None)

    def test_state_counts(self, job_store):
        plan = submit(job_store, shards=3)
        job_store.claim_shard("w1", 30.0, now=0.0)
        counts = job_store.state_counts(plan.plan_id)
        assert counts[ShardState.PENDING] == 2
        assert counts[ShardState.ACTIVE] == 1
        assert counts[ShardState.COMPLETED] == 0
        assert counts[ShardState.FAILED] == 0


class TestDurability:
    def test_reopen_resumes_exact_states(self, tmp_path):
        """Crash-resume: a new process over the same file sees everything."""
        path = tmp_path / "service.db"
        store = JobStore(path)
        plan = submit(store, shards=2)
        shard = store.claim_shard("w1", 30.0, now=0.0)
        store.complete_shard(shard.shard_id, "w1", '{"r":1}')
        store.store_plan_report(plan.plan_id, '{"merged":1}')
        store.close()  # the coordinator "dies" here

        reopened = JobStore(path)
        assert reopened.get_plan(plan.plan_id).report_json == '{"merged":1}'
        states = [s.state for s in reopened.shards(plan.plan_id)]
        assert states == [ShardState.COMPLETED, ShardState.PENDING]
        # ...and the queue keeps serving where it left off.
        nxt = reopened.claim_shard("w2", 30.0, now=1.0)
        assert nxt.shard_index == 1
        reopened.close()

    def test_active_lease_survives_restart_for_the_reaper(self, tmp_path):
        path = tmp_path / "service.db"
        store = JobStore(path)
        submit(store, shards=1)
        store.claim_shard("w1", 10.0, now=0.0)
        store.close()

        reopened = JobStore(path)
        expired = reopened.expired_shards(now=99.0)
        assert [s.worker_id for s in expired] == ["w1"]
        reopened.close()
