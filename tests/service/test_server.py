"""HTTP API tests: routes, error-status mapping, verbatim report bytes."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.errors import ServiceError, ServiceLookupError, TransitionError
from repro.runtime.session import Session

from tests.service.conftest import tiny_plan


def http(url, method="GET", payload=None):
    """Raw request, returning (status, parsed body) without raising."""
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(url, data=data, method=method)
    try:
        with urllib.request.urlopen(request, timeout=10.0) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode("utf-8"))


class TestRoutes:
    def test_healthz(self, live_service):
        assert live_service.client.healthz() == {"status": "ok"}

    def test_full_flow_over_http(self, live_service):
        """submit -> claim -> complete -> merged report, all through HTTP."""
        client = live_service.client
        plan = tiny_plan()
        response = client.submit(plan, 2)
        assert response["created"] is True

        while (lease := client.claim("w1")) is not None:
            from repro.runtime.plan import SweepPlan

            shard_plan = SweepPlan.from_json(lease["plan"]).shard(
                lease["shard_index"], lease["shard_count"]
            )
            with Session(cache=None, workers=1) as session:
                client.complete(
                    lease["shard_id"], "w1", session.run(shard_plan).to_json()
                )

        status = client.plan_status(response["plan_id"])
        assert status["state"] == "completed"
        with Session(cache=None, workers=1) as session:
            assert client.plan_report(response["plan_id"]) == (
                session.run(plan).to_json()
            )

    def test_plan_accepts_inline_json_object(self, live_service):
        """POST /plans takes the plan as an embedded object, not only text."""
        plan_doc = json.loads(tiny_plan().to_json())
        status, body = http(
            f"{live_service.url}/plans",
            method="POST",
            payload={"plan": plan_doc, "shards": 2},
        )
        assert status == 200
        assert body["shard_count"] == 2

    def test_claim_on_a_dry_queue_returns_null(self, live_service):
        assert live_service.client.claim("w1") is None

    def test_list_plans(self, live_service):
        assert live_service.client.list_plans() == []
        response = live_service.client.submit(tiny_plan(), 2)
        (entry,) = live_service.client.list_plans()
        assert entry["plan_id"] == response["plan_id"]
        assert entry["state"] == "running"
        assert entry["priority"] == 0

    def test_priority_round_trips_over_http(self, live_service):
        client = live_service.client
        response = client.submit(tiny_plan(), 2, priority=4)
        assert response["priority"] == 4
        assert client.plan_status(response["plan_id"])["priority"] == 4

    def test_heartbeat_carries_progress_over_http(self, live_service):
        client = live_service.client
        response = client.submit(tiny_plan(), 1)
        lease = client.claim("w1")
        client.heartbeat(lease["shard_id"], "w1", completed=1, total=4)
        shard = client.plan_status(response["plan_id"])["shards"][0]
        assert (shard["progress_completed"], shard["progress_total"]) == (1, 4)


class TestErrorMapping:
    def test_unknown_plan_is_404(self, live_service):
        with pytest.raises(ServiceLookupError, match="unknown plan"):
            live_service.client.plan_status("nope")

    def test_unknown_route_is_404(self, live_service):
        status, body = http(f"{live_service.url}/frobnicate")
        assert status == 404
        assert "no such route" in body["error"]

    def test_malformed_plan_is_400(self, live_service):
        with pytest.raises(ServiceError) as excinfo:
            live_service.client.submit("{not json", 2)
        assert not isinstance(excinfo.value, (ServiceLookupError, TransitionError))

    def test_bad_priority_is_400(self, live_service):
        status, body = http(
            f"{live_service.url}/plans",
            method="POST",
            payload={"plan": tiny_plan().to_json(), "priority": "urgent"},
        )
        assert status == 400
        assert "priority" in body["error"]

    def test_bad_progress_is_400(self, live_service):
        client = live_service.client
        client.submit(tiny_plan(shapes=1), 1)
        lease = client.claim("w1")
        status, body = http(
            f"{live_service.url}/shards/{lease['shard_id']}/heartbeat",
            method="POST",
            payload={"worker": "w1", "completed": -1, "total": 4},
        )
        assert status == 400
        assert "completed" in body["error"]

    def test_non_json_body_is_400(self, live_service):
        status, body = http(
            f"{live_service.url}/shards/claim", method="POST", payload=None
        )
        assert status == 400  # empty body has no "worker"
        assert "worker" in body["error"]

    def test_zombie_complete_is_409(self, live_service):
        client = live_service.client
        client.submit(tiny_plan(shapes=1), 1)
        lease = client.claim("w1")
        live_service.store.requeue_shard(lease["shard_id"], "expired")
        client.claim("w2")
        with pytest.raises(TransitionError, match="held by 'w2'"):
            client.complete(lease["shard_id"], "w1", "{}")

    def test_sealed_transition_is_409_over_http(self, live_service):
        client = live_service.client
        client.submit(tiny_plan(shapes=1), 1)
        lease = client.claim("w1")
        from repro.runtime.plan import SweepPlan

        with Session(cache=None, workers=1) as session:
            report = session.run(SweepPlan.from_json(lease["plan"])).to_json()
        client.complete(lease["shard_id"], "w1", report)
        status, body = http(
            f"{live_service.url}/shards/{lease['shard_id']}/fail",
            method="POST",
            payload={"worker": "w1", "error": "too late"},
        )
        assert status == 409
        assert "sealed" in body["error"]
