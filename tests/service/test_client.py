"""Client-side tests: URL/port validation and transport error surfacing."""

from __future__ import annotations

import pytest

from repro.errors import ServiceError
from repro.service import ServiceClient, service_url, validate_port


class TestServiceUrl:
    def test_default_when_nothing_is_set(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVICE_URL", raising=False)
        assert service_url() == "http://127.0.0.1:8035"

    def test_env_var_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_URL", "http://sweep-host:9000")
        assert service_url() == "http://sweep-host:9000"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_URL", "http://wrong:1")
        assert service_url("https://right:2") == "https://right:2"

    def test_trailing_slash_is_tolerated(self):
        assert service_url("http://h:80/") == "http://h:80"

    @pytest.mark.parametrize(
        "raw,match",
        [
            ("not-a-url", "scheme"),
            ("ftp://host:21", "scheme"),
            ("http://", "no host"),
            ("http://host:port", "malformed"),
            ("http://host:99999", "malformed"),
            ("http://host:0", "port 0"),
            ("http://host:80/api", "drop the path"),
            ("http://host:80?x=1", "drop the path"),
        ],
    )
    def test_malformed_urls_raise_one_liners(self, raw, match):
        with pytest.raises(ServiceError, match=match) as excinfo:
            service_url(raw)
        assert "\n" not in str(excinfo.value)

    def test_env_var_named_in_the_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_URL", "garbage")
        with pytest.raises(ServiceError, match="REPRO_SERVICE_URL"):
            service_url()


class TestValidatePort:
    @pytest.mark.parametrize("port", [0, 1, 8035, 65535])
    def test_accepts_the_full_range(self, port):
        assert validate_port(port) == port

    @pytest.mark.parametrize("port", [-1, 65536, 10**6, True, "8035"])
    def test_rejects_junk(self, port):
        with pytest.raises(ServiceError, match=r"\[0, 65535\]"):
            validate_port(port)


class TestTransport:
    def test_unreachable_service_is_one_clear_error(self):
        client = ServiceClient("http://127.0.0.1:9", timeout=0.5)
        with pytest.raises(ServiceError, match="cannot reach sweep service"):
            client.healthz()

    def test_client_validates_its_url_eagerly(self):
        with pytest.raises(ServiceError, match="malformed"):
            ServiceClient("not-a-url")
