"""Shard-worker tests: the claim/run/report loop, retries, lost leases."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ExperimentError
from repro.runtime.session import Session
from repro.service import ServiceClient, ShardWorker, default_worker_id

from tests.service.conftest import tiny_plan


def make_session():
    return Session(cache=None, workers=1)


def run_workers(url, count, **kwargs):
    workers = [
        ShardWorker(
            ServiceClient(url, timeout=10.0),
            session_factory=make_session,
            worker_id=f"w{i}",
            poll_interval=0.02,
            idle_exit=0.3,
            log=lambda message: None,
            **kwargs,
        )
        for i in range(count)
    ]
    threads = [threading.Thread(target=worker.run) for worker in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120.0)
    return workers


class TestWorkerLoop:
    def test_two_workers_complete_a_plan_byte_identically(self, live_service):
        plan = tiny_plan()
        response = live_service.client.submit(plan, 2)
        workers = run_workers(live_service.url, 2)
        assert sum(worker.completed for worker in workers) == 2
        assert live_service.client.plan_status(response["plan_id"])[
            "state"
        ] == "completed"
        with Session(cache=None, workers=1) as session:
            assert live_service.client.plan_report(response["plan_id"]) == (
                session.run(plan).to_json()
            )

    def test_idle_exit_returns_promptly_on_a_dry_queue(self, live_service):
        (worker,) = run_workers(live_service.url, 1)
        assert (worker.completed, worker.failed) == (0, 0)

    def test_default_worker_id_is_host_pid(self):
        import os
        import socket

        assert default_worker_id() == f"{socket.gethostname()}-{os.getpid()}"

    def test_heartbeats_report_simulation_progress(self, live_service):
        """A slow shard's heartbeats carry (completed, total) to the
        coordinator, where plan status exposes them per shard."""
        import time

        class SlowSession(Session):
            # Pace the run so at least one heartbeat (every ~0.67s at the
            # test lease of 2s) fires while progress is partial.
            def run(self, plan, progress=None):
                def paced(completed, total):
                    if progress is not None:
                        progress(completed, total)
                    time.sleep(0.3)

                return super().run(plan, progress=paced)

        response = live_service.client.submit(tiny_plan(shapes=2), 1)
        worker = ShardWorker(
            ServiceClient(live_service.url, timeout=10.0),
            session_factory=lambda: SlowSession(cache=None, workers=1),
            worker_id="slowpoke",
            poll_interval=0.02,
            idle_exit=0.3,
            max_shards=1,
            log=lambda message: None,
        )
        worker.run()
        assert worker.completed == 1
        status = live_service.client.plan_status(response["plan_id"])
        (shard,) = status["shards"]
        assert shard["state"] == "COMPLETED"
        # 2 designs x 2 shapes = 4 distinct points in the single shard.
        assert shard["progress_total"] == 4
        assert 0 <= shard["progress_completed"] <= 4


class TestPoisonedShards:
    def test_simulation_error_consumes_the_retry_budget(self, live_service):
        """A shard that always fails seals FAILED without killing workers."""

        class ExplodingSession:
            def run(self, plan, progress=None):
                raise ExperimentError("injected simulation failure")

            def close(self):
                pass

        response = live_service.client.submit(tiny_plan(shapes=1), 1)
        worker = ShardWorker(
            ServiceClient(live_service.url, timeout=10.0),
            session_factory=ExplodingSession,
            worker_id="poisoned",
            poll_interval=0.02,
            idle_exit=0.5,
            log=lambda message: None,
        )
        worker.run()
        assert worker.completed == 0
        assert worker.failed == 3  # max_attempts claims, all failed
        status = live_service.client.plan_status(response["plan_id"])
        assert status["state"] == "failed"
        (shard,) = status["shards"]
        assert "injected simulation failure" in shard["last_error"]
        assert "retry budget exhausted" in shard["last_error"]


class TestLostLeases:
    def test_stalled_worker_loses_the_shard_and_moves_on(self, live_service):
        """Fault injection: worker A stalls past its lease; the reaper
        re-queues the shard, worker B completes it, and A's late report
        is rejected (409) without crashing A.  The served report is still
        byte-identical to the single-shot run."""
        plan = tiny_plan(shapes=1)  # 2 distinct points, 1 shard
        response = live_service.client.submit(plan, 1)

        staller = ShardWorker(
            ServiceClient(live_service.url, timeout=10.0),
            session_factory=make_session,
            worker_id="staller",
            poll_interval=0.02,
            idle_exit=0.3,
            max_shards=1,
            stall_seconds=4.0,  # lease is 2s and stalls don't heartbeat...
            log=lambda message: None,
        )
        # ...except they do: the heartbeat thread keeps even a stalled
        # worker alive.  Kill its heartbeats the way SIGKILL would — by
        # making them fail — so the lease really expires mid-stall.
        staller.client.heartbeat = lambda *a, **k: None

        stall_thread = threading.Thread(target=staller.run)
        stall_thread.start()
        try:
            _wait_for_requeue(live_service, response["plan_id"])
            rescuers = run_workers(live_service.url, 1)
            assert rescuers[0].completed == 1
        finally:
            stall_thread.join(timeout=120.0)
        assert staller.completed == 0
        assert staller.failed == 1  # its complete() came back 409
        with Session(cache=None, workers=1) as session:
            assert live_service.client.plan_report(response["plan_id"]) == (
                session.run(plan).to_json()
            )


def _wait_for_requeue(live_service, plan_id, timeout=30.0):
    """Block until the reaper has re-queued the stalled shard."""
    import time

    start = time.monotonic()
    while time.monotonic() - start < timeout:
        status = live_service.client.plan_status(plan_id)
        (shard,) = status["shards"]
        if shard["state"] == "PENDING" and shard["attempts"] == 1:
            assert "lease expired" in shard["last_error"]
            return
        time.sleep(0.05)
    pytest.fail("reaper never re-queued the stalled shard")
