"""The invariant lint: clean on the real tree, loud on seeded violations."""

import importlib.util
import pathlib
import sys

import pytest

TOOL = pathlib.Path(__file__).resolve().parents[2] / "tools" / "lint_invariants.py"


@pytest.fixture(scope="module")
def lint():
    spec = importlib.util.spec_from_file_location("lint_invariants", TOOL)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("lint_invariants", module)
    spec.loader.exec_module(module)
    return module


def test_repository_is_clean(lint, capsys):
    assert lint.main([]) == 0
    assert "clean" in capsys.readouterr().out


def test_every_scoped_module_exists(lint):
    for module in lint.SCOPED_MODULES:
        assert (lint.SRC / module).exists(), module


def test_unfrozen_dataclass_flagged(lint, tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "import dataclasses\n"
        "@dataclasses.dataclass\n"
        "class Key:\n"
        "    m: int\n"
    )
    problems = lint.check_file(bad, "repro/fake.py")
    assert len(problems) == 1
    assert "frozen=True" in problems[0]
    assert "'Key'" in problems[0]


def test_frozen_false_flagged(lint, tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "from dataclasses import dataclass\n"
        "@dataclass(frozen=False, order=True)\n"
        "class Key:\n"
        "    m: int\n"
    )
    assert len(lint.check_file(bad, "repro/fake.py")) == 1


def test_frozen_true_passes(lint, tmp_path):
    good = tmp_path / "good.py"
    good.write_text(
        "import dataclasses\n"
        "@dataclasses.dataclass(frozen=True)\n"
        "class Key:\n"
        "    m: int\n"
    )
    assert lint.check_file(good, "repro/fake.py") == []


def test_allowlisted_class_passes(lint, tmp_path):
    module, name = next(iter(lint.ALLOW_MUTABLE))
    source = tmp_path / "allowed.py"
    source.write_text(
        "import dataclasses\n"
        "@dataclasses.dataclass\n"
        f"class {name}:\n"
        "    m: int\n"
    )
    assert lint.check_file(source, module) == []


def test_nondataclass_decorators_ignored(lint, tmp_path):
    source = tmp_path / "plain.py"
    source.write_text(
        "import functools\n"
        "@functools.total_ordering\n"
        "class NotAKey:\n"
        "    pass\n"
    )
    assert lint.check_file(source, "repro/fake.py") == []


@pytest.mark.parametrize(
    "line",
    ["import time", "import random", "from time import monotonic",
     "import uuid as u", "import random.whatever"],
)
def test_nondeterministic_import_flagged(lint, tmp_path, line):
    bad = tmp_path / "bad.py"
    bad.write_text(line + "\n")
    problems = lint.check_file(bad, "repro/fake.py")
    assert len(problems) == 1
    assert "deterministic" in problems[0]


def test_benign_imports_pass(lint, tmp_path):
    good = tmp_path / "good.py"
    good.write_text("import dataclasses\nfrom typing import Tuple\nimport math\n")
    assert lint.check_file(good, "repro/fake.py") == []


@pytest.mark.parametrize(
    "source",
    [
        "def f(acc=[]):\n    return acc\n",
        "def f(table={}):\n    return table\n",
        "def f(seen=set()):\n    return seen\n".replace("set()", "{1}"),
        "def f(*, acc=[]):\n    return acc\n",
        "g = lambda acc=[]: acc\n",
        "def f(xs=[x for x in range(3)]):\n    return xs\n",
    ],
)
def test_mutable_default_flagged_everywhere(lint, tmp_path, source):
    bad = tmp_path / "bad.py"
    bad.write_text(source)
    problems = lint.check_tree_rules(bad, "repro/fake.py")
    assert len(problems) == 1
    assert "mutable default" in problems[0]


def test_immutable_defaults_pass(lint, tmp_path):
    good = tmp_path / "good.py"
    good.write_text(
        "def f(a=None, b=(), c=0, d='x', e=frozenset()):\n"
        "    return a, b, c, d, e\n"
    )
    assert lint.check_tree_rules(good, "repro/fake.py") == []


def test_bare_except_flagged_on_runtime_and_analysis(lint, tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("try:\n    pass\nexcept:\n    pass\n")
    for module in ("repro/runtime/session.py", "repro/analysis/bounds.py"):
        problems = lint.check_tree_rules(bad, module)
        assert len(problems) == 1, module
        assert "bare 'except:'" in problems[0]


def test_bare_except_tolerated_off_the_scoped_paths(lint, tmp_path):
    source = tmp_path / "elsewhere.py"
    source.write_text("try:\n    pass\nexcept:\n    pass\n")
    assert lint.check_tree_rules(source, "repro/cli.py") == []


def test_named_except_passes_on_scoped_paths(lint, tmp_path):
    good = tmp_path / "good.py"
    good.write_text("try:\n    pass\nexcept Exception:\n    pass\n")
    assert lint.check_tree_rules(good, "repro/runtime/session.py") == []
