"""Tests for table/series formatting."""

from __future__ import annotations

import pytest

from repro.utils.tables import format_series, format_table


def test_basic_table():
    text = format_table(["a", "bb"], [(1, 2.5), ("x", 0.123456)], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert "0.1235" in text  # 4 significant digits


def test_column_alignment():
    text = format_table(["col"], [("short",), ("a-much-longer-cell",)])
    lines = text.splitlines()
    assert len(lines[0]) == len(lines[2])  # header padded to widest cell


def test_row_arity_checked():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [(1,)])


def test_series():
    text = format_series("S", [1, 2], [0.5, 0.25], x_label="batch", y_label="norm")
    assert "batch" in text and "norm" in text and "0.25" in text


def test_series_length_mismatch():
    with pytest.raises(ValueError):
        format_series("S", [1], [0.5, 0.25])
