"""Tests for the ASCII plot helper."""

from __future__ import annotations

import pytest

from repro.utils.plot import ascii_plot


def test_single_series_extremes_on_axis():
    text = ascii_plot({"u": [0.0, 0.5, 1.0]}, x_labels=[1, 2, 3], height=5)
    lines = text.splitlines()
    # Max value appears in the top plot row, min in the bottom one.
    assert "o" in lines[0]
    assert "o" in lines[4]


def test_multiple_series_get_distinct_marks():
    text = ascii_plot(
        {"a": [0.1, 0.2], "b": [0.9, 0.8]}, x_labels=["x", "y"], height=4
    )
    assert "o=a" in text and "x=b" in text


def test_title_and_x_listing():
    text = ascii_plot({"s": [1, 2]}, x_labels=[10, 20], title="T")
    assert text.splitlines()[0] == "T"
    assert "10, 20" in text


def test_length_mismatch_rejected():
    with pytest.raises(ValueError):
        ascii_plot({"s": [1.0]}, x_labels=[1, 2])


def test_empty_rejected():
    with pytest.raises(ValueError):
        ascii_plot({}, x_labels=[])


def test_flat_series_does_not_divide_by_zero():
    text = ascii_plot({"s": [0.5, 0.5, 0.5]}, x_labels=[1, 2, 3])
    assert "o" in text
