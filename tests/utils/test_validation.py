"""Tests for the validation helpers."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.utils.validation import (
    check_in_range,
    check_multiple_of,
    check_non_negative,
    check_positive,
    check_power_of_two,
)


def test_check_positive():
    assert check_positive("x", 5) == 5
    for bad in (0, -1, 1.5, True, "3"):
        with pytest.raises(ConfigError, match="x"):
            check_positive("x", bad)


def test_check_non_negative():
    assert check_non_negative("x", 0) == 0
    with pytest.raises(ConfigError):
        check_non_negative("x", -1)
    with pytest.raises(ConfigError):
        check_non_negative("x", False)


def test_check_power_of_two():
    for good in (1, 2, 4, 1024):
        assert check_power_of_two("x", good) == good
    for bad in (0, 3, 6, -4):
        with pytest.raises(ConfigError):
            check_power_of_two("x", bad)


def test_check_in_range():
    assert check_in_range("x", 5, 0, 10) == 5
    with pytest.raises(ConfigError):
        check_in_range("x", 11, 0, 10)
    with pytest.raises(ConfigError):
        check_in_range("x", 5.0, 0, 10)


def test_check_multiple_of():
    assert check_multiple_of("x", 64, 16) == 64
    with pytest.raises(ConfigError):
        check_multiple_of("x", 65, 16)
