"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestInformational:
    def test_designs(self, capsys):
        assert main(["designs"]) == 0
        out = capsys.readouterr().out
        assert "rasa-dmdb-wls" in out and "95" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "ResNet50-2" in capsys.readouterr().out

    def test_fig1(self, capsys):
        assert main(["fig", "1"]) == 0
        assert "28.6%" in capsys.readouterr().out

    def test_fig2(self, capsys):
        assert main(["fig", "2"]) == 0
        assert "TM" in capsys.readouterr().out

    def test_fig5_scaled(self, capsys):
        assert main(["fig", "5", "--scale", "16"]) == 0
        out = capsys.readouterr().out
        assert "GEOMEAN" in out and "paper avg" in out

    def test_area(self, capsys):
        assert main(["area", "--scale", "16"]) == 0
        assert "0.847" in capsys.readouterr().out


class TestSimulate:
    def test_simulate(self, capsys):
        assert main(["simulate", "--design", "rasa-wlbp",
                     "--m", "64", "--n", "64", "--k", "64"]) == 0
        out = capsys.readouterr().out
        assert "rasa_mm" in out and "WLBP bypass" in out

    def test_simulate_fidelity(self, capsys):
        assert main(["simulate", "--design", "rasa-wlbp", "--fidelity", "engine",
                     "--m", "64", "--n", "64", "--k", "64"]) == 0
        assert "fidelity    : engine" in capsys.readouterr().out

    def test_sweep(self, capsys):
        assert main(["sweep", "--m", "64", "--n", "64", "--k", "64",
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "Baseline" in out and "RASA-DMDB-WLS" in out

    def test_unknown_design_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "--design", "bogus", "--m", "16", "--n", "16", "--k", "32"])


class TestGridSweep:
    def test_table1_grid_cold_then_warm(self, tmp_path, capsys):
        argv = ["sweep", "--designs", "all", "--workloads", "table1",
                "--scale", "16", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "GEOMEAN" in cold and "72 simulations" in cold
        assert "0 hits, 72 misses" in cold

        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "72 hits, 0 misses" in warm
        # Bit-identical cycles: the tables match apart from the stats line.
        assert cold.splitlines()[:-1] == warm.splitlines()[:-1]

    def test_design_subset_gets_baseline_for_normalization(self, tmp_path, capsys):
        assert main(["sweep", "--designs", "rasa-wlbp", "--workloads", "DLRM-2",
                     "--scale", "16", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Baseline" in out and "RASA-WLBP" in out

    def test_unknown_workload(self, capsys):
        assert main(["sweep", "--workloads", "nope", "--no-cache"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_unknown_design_key(self, capsys):
        assert main(["sweep", "--designs", "nope", "--no-cache"]) == 2
        assert "unknown design" in capsys.readouterr().err

    def test_partial_mnk_rejected(self, capsys):
        assert main(["sweep", "--m", "64", "--no-cache"]) == 2
        assert "together" in capsys.readouterr().err


class TestSuiteSweep:
    def test_bert_base_dedups_72_layers_to_3_points(self, tmp_path, capsys):
        argv = ["sweep", "--workloads", "bert-base", "--scale", "16",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        # 8 designs x 3 distinct points, standing in for 8 x 72 layer runs.
        assert "24 distinct points for 576 suite GEMM runs (24.0x dedup)" in cold
        assert "24 simulated, 0 cached" in cold
        assert "bert-base | 72    | 3" in cold

        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "0 simulated, 24 cached" in warm
        assert cold.splitlines()[:-1] == warm.splitlines()[:-1]

    def test_all_suites(self, tmp_path, capsys):
        assert main(["sweep", "--workloads", "all", "--designs",
                     "rasa-dmdb-wls", "--scale", "16",
                     "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        for suite in ("table1", "resnet50", "bert-base", "dlrm", "training"):
            assert suite in out
        assert "GEOMEAN" in out

    def test_suite_batch_override(self, tmp_path, capsys):
        assert main(["sweep", "--workloads", "dlrm", "--batch", "64",
                     "--designs", "rasa-wlbp", "--scale", "8",
                     "--cache-dir", str(tmp_path)]) == 0
        assert "dlrm" in capsys.readouterr().out

    def test_batch_rejected_for_layer_names(self, capsys):
        assert main(["sweep", "--workloads", "DLRM-2", "--batch", "64",
                     "--no-cache"]) == 2
        assert "apply to suite workloads" in capsys.readouterr().err

    def test_batch_rejected_for_adhoc_gemm(self, capsys):
        assert main(["sweep", "--m", "64", "--n", "64", "--k", "64",
                     "--batch", "8", "--no-cache"]) == 2
        assert "--batch" in capsys.readouterr().err

    def test_mixed_suite_and_layer_names_rejected(self, capsys):
        assert main(["sweep", "--workloads", "bert-base,DLRM-2",
                     "--no-cache"]) == 2
        assert "cannot mix" in capsys.readouterr().err

    def test_all_mixed_with_layer_name_rejected(self, capsys):
        assert main(["sweep", "--workloads", "all,DLRM-2", "--no-cache"]) == 2
        assert "cannot mix" in capsys.readouterr().err

    def test_all_mixed_into_a_list_expands_once(self, tmp_path, capsys):
        assert main(["sweep", "--workloads", "all,bert-base", "--designs",
                     "rasa-wlbp", "--scale", "16",
                     "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        for suite in ("table1", "resnet50", "bert-base", "dlrm", "training"):
            assert suite in out
        assert out.count("bert-base") == 1

    def test_repeated_suite_names_collapse_to_one(self, tmp_path, capsys):
        assert main(["sweep", "--workloads", "dlrm,dlrm", "--designs",
                     "rasa-wlbp", "--scale", "16",
                     "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert out.count("dlrm") == 1  # one row, honest stats
        assert "18 suite GEMM runs" in out  # 9 GEMMs x 2 designs, not x2 suites

    def test_suite_with_typo_names_the_unknown_token(self, capsys):
        assert main(["sweep", "--workloads", "bert-base,bertbase",
                     "--no-cache"]) == 2
        err = capsys.readouterr().err
        assert "unknown workload 'bertbase'" in err

    def test_cross_suite_dedup_in_stats_line(self, tmp_path, capsys):
        # training's forward GEMMs share dims with table1's FC layers: the
        # union has 16 distinct points at scale 16, not 9 + 13 = 22.
        assert main(["sweep", "--workloads", "table1,training", "--designs",
                     "rasa-wlbp", "--scale", "16",
                     "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        sims, runs = 2 * 16, 2 * (9 + 18)  # baseline + rasa-wlbp
        assert f"{sims} distinct points for {runs} suite GEMM runs" in out
        assert f"{sims} simulated, 0 cached" in out


class TestSuiteBatchSweep:
    def test_dlrm_two_batches(self, tmp_path, capsys):
        assert main(["sweep", "--workloads", "dlrm", "--batches", "64,512",
                     "--scale", "8", "--designs", "rasa-dmdb-wls",
                     "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "suite batch sweep — dlrm" in out
        assert "cross-batch dedup" in out
        # Two batch rows plus the geomean across the batch axis.
        assert "GEOMEAN" in out

    def test_sub_tile_batches_dedup_onto_one_point(self, tmp_path, capsys):
        # At scale 8, batches 1/2/4 all floor to one register block: the
        # dlrm suite's 6 distinct points simulate once for all 3 batches.
        assert main(["sweep", "--workloads", "dlrm", "--batches", "1,2,4",
                     "--scale", "8", "--designs", "rasa-wlbp",
                     "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "12 distinct points for 36 per-batch suite points" in out
        assert "(3.0x cross-batch dedup)" in out
        assert "12 simulated, 0 cached" in out

    def test_batch_curve_matches_per_batch_suite_sweep(self, tmp_path, capsys):
        """The curve's warm-cache rerun serves every point from the store."""
        argv = ["sweep", "--workloads", "dlrm", "--batches", "64,512",
                "--scale", "8", "--designs", "rasa-wlbp",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "0 cached" in cold
        assert "0 simulated" in warm
        assert cold.splitlines()[:-1] == warm.splitlines()[:-1]

    def test_batch_and_batches_mutually_exclusive(self, capsys):
        assert main(["sweep", "--workloads", "dlrm", "--batch", "64",
                     "--batches", "1,2", "--no-cache"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_batches_rejected_for_layer_names(self, capsys):
        assert main(["sweep", "--workloads", "DLRM-2", "--batches", "1,2",
                     "--no-cache"]) == 2
        assert "apply to suite workloads" in capsys.readouterr().err

    def test_batches_rejected_for_adhoc_gemm(self, capsys):
        assert main(["sweep", "--m", "64", "--n", "64", "--k", "64",
                     "--batches", "1,2", "--no-cache"]) == 2
        assert "--batches" in capsys.readouterr().err

    def test_non_integer_batches_rejected(self, capsys):
        assert main(["sweep", "--workloads", "dlrm", "--batches", "1,two",
                     "--no-cache"]) == 2
        assert "comma-separated integers" in capsys.readouterr().err

    def test_duplicate_batches_rejected(self, capsys):
        assert main(["sweep", "--workloads", "dlrm", "--batches", "64,64",
                     "--no-cache"]) == 2
        assert "duplicates" in capsys.readouterr().err

    def test_non_positive_batches_rejected(self, capsys):
        assert main(["sweep", "--workloads", "dlrm", "--batches", "0,64",
                     "--no-cache"]) == 2
        assert "positive" in capsys.readouterr().err

    def test_negative_jobs_rejected(self, capsys):
        assert main(["sweep", "--workloads", "dlrm", "--jobs", "-3",
                     "--no-cache"]) == 2
        assert "workers must be a positive integer" in capsys.readouterr().err

    def test_zero_jobs_rejected(self, capsys):
        assert main(["sweep", "--workloads", "table1", "--jobs", "0",
                     "--no-cache"]) == 2
        assert "workers must be a positive integer" in capsys.readouterr().err


class TestFig7Suites:
    def test_fig7_suite_curves(self, capsys):
        assert main(["fig", "7", "--workloads", "dlrm", "--scale", "16"]) == 0
        out = capsys.readouterr().out
        assert "E16" in out and "0.168" in out and "dlrm" in out

    def test_workloads_rejected_for_other_figures(self, capsys):
        assert main(["fig", "5", "--workloads", "dlrm"]) == 2
        assert "fig 7 only" in capsys.readouterr().err

    def test_unknown_suite_rejected(self, capsys):
        assert main(["fig", "7", "--workloads", "bogus"]) == 2
        assert "unknown workload suite" in capsys.readouterr().err


class TestModels:
    def test_models_lists_suites(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        for suite in ("table1", "resnet50", "bert-base", "dlrm", "training"):
            assert suite in out
        assert "24.0x" in out  # bert-base dedup factor

    def test_models_batch_override(self, capsys):
        assert main(["models", "--batch", "64"]) == 0
        assert "64" in capsys.readouterr().out


class TestAsmRoundtrip:
    def test_asm_disasm(self, tmp_path, capsys):
        source = tmp_path / "k.rasa"
        source.write_text(
            "rasa_tl treg0, ptr[0x1000]\n"
            "rasa_tl treg4, ptr[0x2000]\n"
            "rasa_tl treg6, ptr[0x3000]\n"
            "rasa_mm treg0, treg6, treg4\n"
            "rasa_ts ptr[0x1000], treg0\n"
        )
        trace = tmp_path / "k.jsonl"
        assert main(["asm", str(source), str(trace)]) == 0
        assert trace.exists()
        capsys.readouterr()
        assert main(["disasm", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "rasa_mm treg0, treg6, treg4" in out

    def test_missing_file(self, capsys):
        assert main(["disasm", "/nonexistent/trace.jsonl"]) == 2
        assert "error" in capsys.readouterr().err

    def test_bad_assembly(self, tmp_path, capsys):
        source = tmp_path / "bad.rasa"
        source.write_text("frobnicate treg0\n")
        assert main(["asm", str(source), str(tmp_path / "out.jsonl")]) == 2
        assert "unknown mnemonic" in capsys.readouterr().err


def test_module_entry_point():
    import subprocess
    import sys

    proc = subprocess.run(
        [sys.executable, "-m", "repro", "designs"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0
    assert "baseline" in proc.stdout
