"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestInformational:
    def test_designs(self, capsys):
        assert main(["designs"]) == 0
        out = capsys.readouterr().out
        assert "rasa-dmdb-wls" in out and "95" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "ResNet50-2" in capsys.readouterr().out

    def test_fig1(self, capsys):
        assert main(["fig", "1"]) == 0
        assert "28.6%" in capsys.readouterr().out

    def test_fig2(self, capsys):
        assert main(["fig", "2"]) == 0
        assert "TM" in capsys.readouterr().out

    def test_fig5_scaled(self, capsys):
        assert main(["fig", "5", "--scale", "16"]) == 0
        out = capsys.readouterr().out
        assert "GEOMEAN" in out and "paper avg" in out

    def test_area(self, capsys):
        assert main(["area", "--scale", "16"]) == 0
        assert "0.847" in capsys.readouterr().out


class TestSimulate:
    def test_simulate(self, capsys):
        assert main(["simulate", "--design", "rasa-wlbp",
                     "--m", "64", "--n", "64", "--k", "64"]) == 0
        out = capsys.readouterr().out
        assert "rasa_mm" in out and "WLBP bypass" in out

    def test_simulate_fidelity(self, capsys):
        assert main(["simulate", "--design", "rasa-wlbp", "--fidelity", "engine",
                     "--m", "64", "--n", "64", "--k", "64"]) == 0
        assert "fidelity    : engine" in capsys.readouterr().out

    def test_simulate_analytic_matches_fast(self, capsys):
        args = ["simulate", "--design", "rasa-wlbp",
                "--m", "64", "--n", "64", "--k", "64"]
        assert main(args) == 0
        fast_out = capsys.readouterr().out
        assert main(args + ["--fidelity", "analytic"]) == 0
        analytic_out = capsys.readouterr().out
        assert "fidelity    : analytic" in analytic_out
        # The analytic tier reproduces the fast model's numbers exactly on
        # this point; only the fidelity line differs.
        assert analytic_out.replace("analytic", "fast") == fast_out

    def test_sweep_analytic(self, capsys):
        assert main(["sweep", "--m", "64", "--n", "64", "--k", "64",
                     "--fidelity", "analytic", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "Baseline" in out and "RASA-DMDB-WLS" in out

    def test_sweep(self, capsys):
        assert main(["sweep", "--m", "64", "--n", "64", "--k", "64",
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "Baseline" in out and "RASA-DMDB-WLS" in out

    def test_unknown_design_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "--design", "bogus", "--m", "16", "--n", "16", "--k", "32"])


class TestGridSweep:
    def test_table1_grid_cold_then_warm(self, tmp_path, capsys):
        argv = ["sweep", "--designs", "all", "--workloads", "table1",
                "--scale", "16", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "GEOMEAN" in cold and "72 simulations" in cold
        assert "0 hits, 72 misses" in cold

        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "72 hits, 0 misses" in warm
        # Bit-identical cycles: the tables match apart from the stats line.
        assert cold.splitlines()[:-1] == warm.splitlines()[:-1]

    def test_design_subset_gets_baseline_for_normalization(self, tmp_path, capsys):
        assert main(["sweep", "--designs", "rasa-wlbp", "--workloads", "DLRM-2",
                     "--scale", "16", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Baseline" in out and "RASA-WLBP" in out

    def test_unknown_workload(self, capsys):
        assert main(["sweep", "--workloads", "nope", "--no-cache"]) == 1
        assert "unknown workload" in capsys.readouterr().err

    def test_unknown_design_key(self, capsys):
        assert main(["sweep", "--designs", "nope", "--no-cache"]) == 1
        assert "unknown design" in capsys.readouterr().err

    def test_partial_mnk_rejected(self, capsys):
        assert main(["sweep", "--m", "64", "--no-cache"]) == 1
        assert "together" in capsys.readouterr().err

    def test_scale_rejected_for_adhoc_gemm(self, capsys):
        # Silently ignoring --scale would report results for different
        # dimensions than the flag implies.
        assert main(["sweep", "--m", "512", "--n", "512", "--k", "512",
                     "--scale", "8", "--no-cache"]) == 1
        assert "--scale does not apply" in capsys.readouterr().err


class TestSuiteSweep:
    def test_bert_base_dedups_72_layers_to_3_points(self, tmp_path, capsys):
        argv = ["sweep", "--workloads", "bert-base", "--scale", "16",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        # 8 designs x 3 distinct points, standing in for 8 x 72 layer runs.
        assert "24 distinct points for 576 suite GEMM runs (24.0x dedup)" in cold
        assert "24 simulated, 0 cached" in cold
        assert "bert-base | 72    | 3" in cold

        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "0 simulated, 24 cached" in warm
        assert cold.splitlines()[:-1] == warm.splitlines()[:-1]

    def test_all_suites(self, tmp_path, capsys):
        assert main(["sweep", "--workloads", "all", "--designs",
                     "rasa-dmdb-wls", "--scale", "16",
                     "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        for suite in ("table1", "resnet50", "bert-base", "dlrm", "training"):
            assert suite in out
        assert "GEOMEAN" in out

    def test_suite_batch_override(self, tmp_path, capsys):
        assert main(["sweep", "--workloads", "dlrm", "--batch", "64",
                     "--designs", "rasa-wlbp", "--scale", "8",
                     "--cache-dir", str(tmp_path)]) == 0
        assert "dlrm" in capsys.readouterr().out

    def test_batch_rejected_for_layer_names(self, capsys):
        assert main(["sweep", "--workloads", "DLRM-2", "--batch", "64",
                     "--no-cache"]) == 1
        assert "apply to suite workloads" in capsys.readouterr().err

    def test_batch_rejected_for_adhoc_gemm(self, capsys):
        assert main(["sweep", "--m", "64", "--n", "64", "--k", "64",
                     "--batch", "8", "--no-cache"]) == 1
        assert "--batch" in capsys.readouterr().err

    def test_mixed_suite_and_layer_names_rejected(self, capsys):
        assert main(["sweep", "--workloads", "bert-base,DLRM-2",
                     "--no-cache"]) == 1
        assert "cannot mix" in capsys.readouterr().err

    def test_all_mixed_with_layer_name_rejected(self, capsys):
        assert main(["sweep", "--workloads", "all,DLRM-2", "--no-cache"]) == 1
        assert "cannot mix" in capsys.readouterr().err

    def test_all_mixed_into_a_list_expands_once(self, tmp_path, capsys):
        assert main(["sweep", "--workloads", "all,bert-base", "--designs",
                     "rasa-wlbp", "--scale", "16",
                     "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        for suite in ("table1", "resnet50", "bert-base", "dlrm", "training"):
            assert suite in out
        assert out.count("bert-base") == 1

    def test_repeated_suite_names_collapse_to_one(self, tmp_path, capsys):
        assert main(["sweep", "--workloads", "dlrm,dlrm", "--designs",
                     "rasa-wlbp", "--scale", "16",
                     "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert out.count("dlrm") == 1  # one row, honest stats
        assert "18 suite GEMM runs" in out  # 9 GEMMs x 2 designs, not x2 suites

    def test_suite_with_typo_names_the_unknown_token(self, capsys):
        assert main(["sweep", "--workloads", "bert-base,bertbase",
                     "--no-cache"]) == 1
        err = capsys.readouterr().err
        assert "unknown workload 'bertbase'" in err

    def test_cross_suite_dedup_in_stats_line(self, tmp_path, capsys):
        # training's forward GEMMs share dims with table1's FC layers: the
        # union has 16 distinct points at scale 16, not 9 + 13 = 22.
        assert main(["sweep", "--workloads", "table1,training", "--designs",
                     "rasa-wlbp", "--scale", "16",
                     "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        sims, runs = 2 * 16, 2 * (9 + 18)  # baseline + rasa-wlbp
        assert f"{sims} distinct points for {runs} suite GEMM runs" in out
        assert f"{sims} simulated, 0 cached" in out


class TestSuiteBatchSweep:
    def test_dlrm_two_batches(self, tmp_path, capsys):
        assert main(["sweep", "--workloads", "dlrm", "--batches", "64,512",
                     "--scale", "8", "--designs", "rasa-dmdb-wls",
                     "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "suite batch sweep — dlrm" in out
        assert "cross-batch dedup" in out
        # Two batch rows plus the geomean across the batch axis.
        assert "GEOMEAN" in out

    def test_sub_tile_batches_dedup_onto_one_point(self, tmp_path, capsys):
        # At scale 8, batches 1/2/4 all floor to one register block: the
        # dlrm suite's 6 distinct points simulate once for all 3 batches.
        assert main(["sweep", "--workloads", "dlrm", "--batches", "1,2,4",
                     "--scale", "8", "--designs", "rasa-wlbp",
                     "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "12 distinct points for 36 per-batch suite points" in out
        assert "(3.0x cross-batch dedup)" in out
        assert "12 simulated, 0 cached" in out

    def test_batch_curve_matches_per_batch_suite_sweep(self, tmp_path, capsys):
        """The curve's warm-cache rerun serves every point from the store."""
        argv = ["sweep", "--workloads", "dlrm", "--batches", "64,512",
                "--scale", "8", "--designs", "rasa-wlbp",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "0 cached" in cold
        assert "0 simulated" in warm
        assert cold.splitlines()[:-1] == warm.splitlines()[:-1]

    def test_batch_and_batches_mutually_exclusive(self, capsys):
        assert main(["sweep", "--workloads", "dlrm", "--batch", "64",
                     "--batches", "1,2", "--no-cache"]) == 1
        assert "mutually exclusive" in capsys.readouterr().err

    def test_batches_rejected_for_layer_names(self, capsys):
        assert main(["sweep", "--workloads", "DLRM-2", "--batches", "1,2",
                     "--no-cache"]) == 1
        assert "apply to suite workloads" in capsys.readouterr().err

    def test_batches_rejected_for_adhoc_gemm(self, capsys):
        assert main(["sweep", "--m", "64", "--n", "64", "--k", "64",
                     "--batches", "1,2", "--no-cache"]) == 1
        assert "--batches" in capsys.readouterr().err

    def test_non_integer_batches_rejected(self, capsys):
        assert main(["sweep", "--workloads", "dlrm", "--batches", "1,two",
                     "--no-cache"]) == 1
        assert "comma-separated integers" in capsys.readouterr().err

    def test_duplicate_batches_rejected(self, capsys):
        assert main(["sweep", "--workloads", "dlrm", "--batches", "64,64",
                     "--no-cache"]) == 1
        assert "duplicates" in capsys.readouterr().err

    def test_non_positive_batches_rejected(self, capsys):
        assert main(["sweep", "--workloads", "dlrm", "--batches", "0,64",
                     "--no-cache"]) == 1
        assert "positive" in capsys.readouterr().err

    def test_negative_jobs_rejected(self, capsys):
        assert main(["sweep", "--workloads", "dlrm", "--jobs", "-3",
                     "--no-cache"]) == 1
        assert "workers must be a positive integer" in capsys.readouterr().err

    def test_zero_jobs_rejected(self, capsys):
        assert main(["sweep", "--workloads", "table1", "--jobs", "0",
                     "--no-cache"]) == 1
        assert "workers must be a positive integer" in capsys.readouterr().err


class TestFig7Suites:
    def test_fig7_suite_curves(self, capsys):
        assert main(["fig", "7", "--workloads", "dlrm", "--scale", "16"]) == 0
        out = capsys.readouterr().out
        assert "E16" in out and "0.168" in out and "dlrm" in out

    def test_workloads_rejected_for_other_figures(self, capsys):
        assert main(["fig", "5", "--workloads", "dlrm"]) == 1
        assert "fig 7 only" in capsys.readouterr().err

    def test_unknown_suite_rejected(self, capsys):
        assert main(["fig", "7", "--workloads", "bogus"]) == 1
        assert "unknown workload suite" in capsys.readouterr().err


class TestModels:
    def test_models_lists_suites(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        for suite in ("table1", "resnet50", "bert-base", "bert-full", "dlrm",
                      "training", "resnet50-train"):
            assert suite in out
        assert "24.0x" in out  # bert-base dedup factor

    def test_models_batch_override(self, capsys):
        assert main(["models", "--batch", "64"]) == 0
        assert "64" in capsys.readouterr().out

    def test_models_shows_op_composition(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "ops" in out
        assert "53 conv-fwd / 53 conv-dgrad / 53 conv-wgrad" in out
        assert "72 fc-fwd / 24 batched-matmul" in out
        assert "6 fc-fwd / 6 fc-dgrad / 6 fc-wgrad" in out


class TestRoleAwareScaleKnobs:
    def test_scale_spatial_keeps_bert_full_tractable(self, tmp_path, capsys):
        # The CI smoke flags: head-batched attention shrinks its sequence
        # dims; batches 1 and 8 rebuild the token axis.
        assert main(["sweep", "--workloads", "bert-full", "--batches", "1,8",
                     "--scale-spatial", "8", "--designs", "rasa-dmdb-wls",
                     "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "suite batch sweep — bert-full" in out
        assert "cross-batch dedup" in out

    def test_resnet50_train_single_design_run(self, tmp_path, capsys):
        assert main(["sweep", "--workloads", "resnet50-train", "--designs",
                     "baseline", "--scale", "16", "--scale-batch", "8",
                     "--scale-spatial", "8",
                     "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "resnet50-train | 159" in out

    def test_knobs_change_the_simulated_points(self, tmp_path, capsys):
        base = ["sweep", "--workloads", "resnet50", "--designs", "rasa-wlbp",
                "--scale", "16", "--cache-dir", str(tmp_path)]
        assert main(base + ["--scale-spatial", "64"]) == 0
        spatial = capsys.readouterr().out
        assert main(base) == 0
        plain = capsys.readouterr().out
        # The spatially shrunk lowering simulates its own (cheaper) points;
        # the unknobbed rerun cannot be served by them.
        assert "0 cached" in spatial
        assert "0 simulated" not in plain.splitlines()[-1]

    def test_knobs_rejected_for_layer_names(self, capsys):
        assert main(["sweep", "--workloads", "DLRM-2", "--scale-batch", "4",
                     "--no-cache"]) == 1
        assert "apply to suite workloads" in capsys.readouterr().err

    def test_knobs_rejected_for_adhoc_gemm(self, capsys):
        assert main(["sweep", "--m", "64", "--n", "64", "--k", "64",
                     "--scale-spatial", "4", "--no-cache"]) == 1
        assert "--scale-batch/--scale-spatial" in capsys.readouterr().err

    def test_knobs_conflict_with_plan_file(self, tmp_path, capsys):
        plan_file = tmp_path / "plan.json"
        assert main(["plan", "show", "--workloads", "dlrm", "--scale", "8",
                     "-o", str(plan_file)]) == 0
        capsys.readouterr()
        assert main(["plan", "show", "--plan", str(plan_file),
                     "--scale-batch", "2"]) == 1
        err = capsys.readouterr().err
        assert "cannot amend a plan file" in err and "--scale-batch" in err

    def test_plan_show_records_the_knobs(self, capsys):
        assert main(["plan", "show", "--workloads", "resnet50",
                     "--scale-batch", "8", "--scale-spatial", "4"]) == 0
        out = capsys.readouterr().out
        assert "batch 1/8" in out and "spatial 1/4" in out
        assert '"scale_batch": 8' in out and '"scale_spatial": 4' in out

    def test_plan_json_round_trips_the_knobs(self, tmp_path, capsys):
        plan_file = tmp_path / "plan.json"
        assert main(["plan", "show", "--workloads", "resnet50-train",
                     "--scale", "16", "--scale-batch", "8", "--scale-spatial",
                     "8", "-o", str(plan_file)]) == 0
        capsys.readouterr()
        assert main(["plan", "run", "--plan", str(plan_file),
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "resnet50-train" in out and "simulated" in out


class TestPlanShow:
    def test_show_summary_and_json(self, capsys):
        assert main(["plan", "show", "--workloads", "dlrm", "--scale", "8"]) == 0
        out = capsys.readouterr().out
        assert "distinct points" in out
        assert '"format": 1' in out and '"dlrm"' in out

    def test_show_shard_ownership(self, capsys):
        assert main(["plan", "show", "--workloads", "dlrm", "--scale", "8",
                     "--shard", "0/2"]) == 0
        assert "shard     : 0/2 — owns" in capsys.readouterr().out

    def test_show_writes_plan_file_that_reloads(self, tmp_path, capsys):
        plan_file = tmp_path / "plan.json"
        assert main(["plan", "show", "--workloads", "dlrm", "--scale", "8",
                     "-o", str(plan_file)]) == 0
        capsys.readouterr()
        assert main(["plan", "show", "--plan", str(plan_file)]) == 0
        assert "dlrm" in capsys.readouterr().out

    def test_bad_shard_spec_exits_1(self, capsys):
        assert main(["plan", "show", "--workloads", "dlrm",
                     "--shard", "zero/two"]) == 1
        assert "bad --shard spec" in capsys.readouterr().err

    def test_grid_plan_records_the_scale(self, capsys):
        # Table I grid plans keep unscaled shapes + the scale knob, so the
        # summary and JSON report the shrink actually applied.
        assert main(["plan", "show", "--workloads", "DLRM-2",
                     "--scale", "8"]) == 0
        out = capsys.readouterr().out
        assert "scale     : 1/8" in out
        assert '"scale": 8' in out

    def test_axis_flags_conflict_with_plan_file(self, tmp_path, capsys):
        plan_file = tmp_path / "plan.json"
        assert main(["plan", "show", "--workloads", "dlrm", "--scale", "8",
                     "-o", str(plan_file)]) == 0
        capsys.readouterr()
        assert main(["plan", "show", "--plan", str(plan_file),
                     "--workloads", "bogus-model", "--scale", "2"]) == 1
        err = capsys.readouterr().err
        assert "cannot amend a plan file" in err
        assert "--workloads" in err and "--scale" in err

    def test_default_valued_axis_flags_also_conflict_with_plan_file(
        self, tmp_path, capsys
    ):
        # Explicitly typing a flag at its default value must still be
        # caught — the user asked for table1, the file says dlrm.
        plan_file = tmp_path / "plan.json"
        assert main(["plan", "show", "--workloads", "dlrm", "--scale", "8",
                     "-o", str(plan_file)]) == 0
        capsys.readouterr()
        assert main(["plan", "show", "--plan", str(plan_file),
                     "--workloads", "table1"]) == 1
        assert "cannot amend a plan file" in capsys.readouterr().err

    def test_out_of_range_shard_exits_1(self, capsys):
        assert main(["plan", "show", "--workloads", "dlrm",
                     "--shard", "2/2"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_unknown_suite_exits_1(self, capsys):
        assert main(["plan", "show", "--workloads", "bogus-model,dlrm"]) == 1
        assert "error:" in capsys.readouterr().err


class TestPlanRunAndMerge:
    ARGS = ["--workloads", "dlrm", "--scale", "8", "--designs",
            "rasa-dmdb-wls", "--no-cache"]

    def test_full_run_prints_suite_table(self, capsys):
        assert main(["plan", "run"] + self.ARGS) == 0
        out = capsys.readouterr().out
        assert "suite sweep" in out and "dlrm" in out
        assert "simulated" in out

    def test_two_shards_merge_bit_identical_to_single_shot(
        self, tmp_path, capsys
    ):
        s0, s1 = tmp_path / "s0.json", tmp_path / "s1.json"
        full, merged = tmp_path / "full.json", tmp_path / "merged.json"
        assert main(["plan", "run"] + self.ARGS
                    + ["--shard", "0/2", "-o", str(s0)]) == 0
        assert main(["plan", "run"] + self.ARGS
                    + ["--shard", "1/2", "-o", str(s1)]) == 0
        assert main(["plan", "run"] + self.ARGS + ["-o", str(full)]) == 0
        capsys.readouterr()
        assert main(["plan", "merge", str(s0), str(s1),
                     "-o", str(merged)]) == 0
        out = capsys.readouterr().out
        assert "merged 2 report(s)" in out
        assert merged.read_text() == full.read_text()  # bit-identical

    def test_shard_run_prints_partial_summary(self, tmp_path, capsys):
        out_file = tmp_path / "s1.json"
        assert main(["plan", "run"] + self.ARGS
                    + ["--shard", "1/2", "-o", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "shard 1/2" in out and "of 12 distinct points" in out

    def test_shard_run_without_any_result_sink_refused(self, capsys):
        # --no-cache and no -o would simulate the shard and throw it away.
        assert main(["plan", "run"] + self.ARGS + ["--shard", "1/2"]) == 1
        assert "discards its results" in capsys.readouterr().err

    def test_shard_run_with_cache_needs_no_output_file(self, tmp_path, capsys):
        assert main(["plan", "run", "--workloads", "dlrm", "--scale", "8",
                     "--designs", "rasa-dmdb-wls", "--shard", "0/2",
                     "--cache-dir", str(tmp_path)]) == 0
        assert "shard 0/2" in capsys.readouterr().out

    def test_run_honors_cache(self, tmp_path, capsys):
        argv = ["plan", "run", "--workloads", "dlrm", "--scale", "8",
                "--designs", "rasa-dmdb-wls", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "12 simulated, 0 cached" in cold
        assert main(argv) == 0
        assert "0 simulated, 12 cached" in capsys.readouterr().out

    def test_run_loaded_plan_file(self, tmp_path, capsys):
        plan_file = tmp_path / "plan.json"
        assert main(["plan", "show", "--workloads", "dlrm", "--scale", "8",
                     "--designs", "rasa-dmdb-wls", "-o", str(plan_file)]) == 0
        capsys.readouterr()
        assert main(["plan", "run", "--plan", str(plan_file),
                     "--no-cache"]) == 0
        assert "suite sweep" in capsys.readouterr().out

    def test_baseline_less_plan_prints_raw_cycles(self, tmp_path, capsys):
        # A hand-built plan may omit 'baseline'; cells and title must then
        # report raw cycles, not claim normalization.
        import json

        from repro.runtime import SweepPlan

        plan = SweepPlan(designs=("rasa-dmdb-wls",), suites=("dlrm",), scale=8)
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(plan.to_json())
        assert main(["plan", "run", "--plan", str(plan_file),
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "end-to-end cycles, fidelity=fast" in out
        assert "normalized to baseline" not in out
        assert "(" not in out.splitlines()[2]  # raw cycle cells, no ratio
        json.loads(plan.to_json())  # and the file we ran was valid JSON

    def test_missing_plan_file_exits_1(self, capsys):
        assert main(["plan", "run", "--plan", "/nonexistent/plan.json"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_malformed_plan_file_exits_1(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["plan", "run", "--plan", str(bad)]) == 1
        assert "malformed plan JSON" in capsys.readouterr().err

    def test_merge_missing_shard_exits_1(self, tmp_path, capsys):
        s0 = tmp_path / "s0.json"
        assert main(["plan", "run"] + self.ARGS
                    + ["--shard", "0/2", "-o", str(s0)]) == 0
        capsys.readouterr()
        assert main(["plan", "merge", str(s0)]) == 1
        assert "missing" in capsys.readouterr().err

    def test_merge_mismatched_plans_exits_1(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["plan", "run"] + self.ARGS + ["-o", str(a)]) == 0
        assert main(["plan", "run", "--workloads", "training", "--scale", "8",
                     "--no-cache", "-o", str(b)]) == 0
        capsys.readouterr()
        assert main(["plan", "merge", str(a), str(b)]) == 1
        assert "different plans" in capsys.readouterr().err


class TestAsmRoundtrip:
    def test_asm_disasm(self, tmp_path, capsys):
        source = tmp_path / "k.rasa"
        source.write_text(
            "rasa_tl treg0, ptr[0x1000]\n"
            "rasa_tl treg4, ptr[0x2000]\n"
            "rasa_tl treg6, ptr[0x3000]\n"
            "rasa_mm treg0, treg6, treg4\n"
            "rasa_ts ptr[0x1000], treg0\n"
        )
        trace = tmp_path / "k.jsonl"
        assert main(["asm", str(source), str(trace)]) == 0
        assert trace.exists()
        capsys.readouterr()
        assert main(["disasm", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "rasa_mm treg0, treg6, treg4" in out

    def test_missing_file(self, capsys):
        assert main(["disasm", "/nonexistent/trace.jsonl"]) == 1
        assert "error" in capsys.readouterr().err

    def test_bad_assembly(self, tmp_path, capsys):
        source = tmp_path / "bad.rasa"
        source.write_text("frobnicate treg0\n")
        assert main(["asm", str(source), str(tmp_path / "out.jsonl")]) == 1
        assert "unknown mnemonic" in capsys.readouterr().err


def test_module_entry_point():
    import subprocess
    import sys

    proc = subprocess.run(
        [sys.executable, "-m", "repro", "designs"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0
    assert "baseline" in proc.stdout
