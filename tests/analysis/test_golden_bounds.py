"""Golden cycle-bound reports for the Table I suite across all designs.

``table1_bounds.json`` pins, for every distinct Table I program x design:
the dependence/resource lower bounds (every component), the list-schedule
upper bound, the bottleneck attribution, and the fast model's achieved
cycles.  Any change to codegen, the schedulers, or the bound math shows up
as a bit-exact golden diff instead of silently different paper numbers.
"""

import json
import pathlib

import pytest

from repro.analysis.bounds import bound_program, cross_check_bounds
from repro.engine.designs import DESIGNS
from repro.workloads.codegen import CodegenOptions, build_gemm_kernel
from repro.workloads.suites import get_suite

GOLDEN = pathlib.Path(__file__).parent / "data" / "table1_bounds.json"


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN.read_text())


@pytest.fixture(scope="module")
def distinct(golden):
    return get_suite("table1", scale=golden["scale"]).distinct()


def test_golden_covers_every_distinct_program(golden, distinct):
    assert [tuple(p["dims"]) for p in golden["programs"]] == [
        entry.shape.dims for entry in distinct
    ]
    assert all(set(p["designs"]) == set(DESIGNS) for p in golden["programs"])


def test_static_bounds_match_golden_bit_exactly(golden, distinct):
    for entry, pinned in zip(distinct, golden["programs"]):
        program = build_gemm_kernel(entry.shape, CodegenOptions()).program
        for key, expected in pinned["designs"].items():
            report = bound_program(program, key)
            assert report.lower_bound == expected["lower_bound"], (entry.shape, key)
            assert report.upper_bound == expected["upper_bound"], (entry.shape, key)
            assert report.binding == expected["binding"], (entry.shape, key)
            assert {
                b.resource: b.cycles for b in report.components
            } == expected["components"], (entry.shape, key)


def test_golden_programs_pass_the_cycle_oracle(golden, distinct):
    for entry, pinned in zip(distinct, golden["programs"]):
        for check in cross_check_bounds(entry.shape):
            assert check.ok, (entry.shape, check.violations)
            expected = pinned["designs"][check.design_key]
            assert check.fast_cycles == expected["fast_cycles"], \
                (entry.shape, check.design_key)
