"""Golden verifier/hazard reports for the Table I suite across all designs.

The JSON under ``tests/analysis/data/`` pins what the verifier derives from
every distinct Table I program: static counters, hazard structure, and the
per-design weight-load/bypass projection.  A codegen or verifier change that
shifts any of these shows up as a golden diff, not as silently different
paper numbers.
"""

import json
import pathlib

import pytest

from repro.analysis.verifier import cross_check_counters, lint_shape
from repro.engine.designs import DESIGNS, get_design
from repro.workloads.suites import get_suite

GOLDEN = pathlib.Path(__file__).parent / "data" / "table1_verifier.json"


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN.read_text())


@pytest.fixture(scope="module")
def distinct(golden):
    return get_suite("table1", scale=golden["scale"]).distinct()


def test_golden_covers_every_distinct_program(golden, distinct):
    assert [tuple(p["dims"]) for p in golden["programs"]] == [
        entry.shape.dims for entry in distinct
    ]
    assert all(set(p["designs"]) == set(DESIGNS) for p in golden["programs"])


def test_counters_and_hazards_match_golden(golden, distinct):
    for entry, pinned in zip(distinct, golden["programs"]):
        report = lint_shape(entry.shape)
        assert report.ok, (entry.shape, report.diagnostics)
        c, h = report.counters, report.hazards
        assert {
            "instructions": c.instructions,
            "mm_count": c.mm_count,
            "tile_loads": c.tile_loads,
            "tile_stores": c.tile_stores,
            "scalars": c.scalars,
            "weight_reuses": c.weight_reuses,
        } == pinned["counters"], entry.shape
        assert {
            "raw": h.raw,
            "war": h.war,
            "waw": h.waw,
            "longest_raw_chain": h.longest_raw_chain,
            "max_live": h.max_live,
            "pressure": list(h.pressure),
        } == pinned["hazards"], entry.shape


def test_per_design_projection_matches_golden(golden, distinct):
    for entry, pinned in zip(distinct, golden["programs"]):
        counters = lint_shape(entry.shape).counters
        for key, expected in pinned["designs"].items():
            policy = counters.for_policy(
                get_design(key).config.control.bypasses_on_reuse
            )
            assert policy.weight_loads == expected["weight_loads"], (entry.shape, key)
            assert policy.bypass_count == expected["bypass_count"], (entry.shape, key)


def test_golden_programs_pass_the_three_way_oracle(golden, distinct):
    for entry in distinct:
        assert cross_check_counters(entry.shape) == (), entry.shape
