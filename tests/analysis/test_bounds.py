"""Tests for the static cycle-bound analyzer (:mod:`repro.analysis.bounds`).

The load-bearing assertions are the cycle-level oracle — ``LB <= fast <= UB``
exactly, analytic within its documented tolerance — over every design, and
the seeded-mutation tests proving the oracle actually *fails* when a bound
is wrong (the ISSUE's "drop a dependence edge's latency" check, applied at
the analyzer's documented seam).
"""

from __future__ import annotations

import pytest

from repro.analysis import bounds
from repro.analysis.bounds import (
    RESOURCE_ORDER,
    BoundsReport,
    BoundsSweep,
    ResourceBound,
    bound_program,
    bound_shape,
    cross_check_bounds,
)
from repro.engine.designs import DESIGNS
from repro.errors import ConfigError, ExperimentError
from repro.isa.program import Program
from repro.workloads.gemm import GemmShape

SMALL = GemmShape(64, 64, 64, name="small")
TALL = GemmShape(128, 32, 64, name="tall")
ODD = GemmShape(17, 33, 65, name="odd")


class TestOracle:
    @pytest.mark.parametrize("shape", [SMALL, TALL, ODD], ids=lambda s: s.name)
    def test_cross_check_is_clean_on_every_design(self, shape):
        checks = cross_check_bounds(shape)
        assert [c.design_key for c in checks] == list(DESIGNS)
        for check in checks:
            assert check.ok, (shape, check.violations)

    @pytest.mark.parametrize("shape", [SMALL, TALL, ODD], ids=lambda s: s.name)
    def test_bounds_sandwich_the_fast_model(self, shape):
        for check in cross_check_bounds(shape):
            assert check.report.lower_bound <= check.fast_cycles, check.design_key
            assert check.fast_cycles <= check.report.upper_bound, check.design_key

    def test_list_schedule_ub_is_exact_on_ideal_memory(self):
        # The UB transcribes the fast model's machine description; with the
        # ideal memory system both walk the same greedy program-order
        # schedule, so they must agree to the cycle on every design.
        for check in cross_check_bounds(SMALL):
            assert check.report.upper_bound == check.fast_cycles, check.design_key

    def test_large_gemm_binds_on_mm_issue(self):
        # Compute-bound GEMMs bottleneck on the engine, not the core.
        report = bound_shape(GemmShape(256, 256, 256), design_key="baseline")
        assert report.binding == "mm-issue"
        assert report.lower_bound == report.component("mm-issue")


class TestSeededMutations:
    def test_dropped_dataflow_latency_breaks_the_upper_bound(self, monkeypatch):
        # Zeroing the FF+FS+DR+extra dataflow latency drops every mm's
        # modeled completion: the list-schedule UB lands below the fast
        # model and the oracle must say so.
        monkeypatch.setattr(bounds, "_mm_dataflow_cycles", lambda stages: 0)
        checks = cross_check_bounds(SMALL)
        assert any(
            v.kind == "ub-below-fast" for c in checks for v in c.violations
        )

    def test_inflated_dependence_latency_breaks_the_lower_bound(self, monkeypatch):
        # An overlong dependence edge pushes the critical-path LB past the
        # achieved cycles — an unsound bound the oracle must reject.
        monkeypatch.setattr(bounds, "_mm_dataflow_cycles", lambda stages: 10**6)
        checks = cross_check_bounds(SMALL)
        assert all(not c.ok for c in checks)
        assert any(
            v.kind == "lb-exceeds-fast" for c in checks for v in c.violations
        )


class TestReportApi:
    def test_components_follow_resource_order(self):
        report = bound_shape(SMALL)
        assert tuple(b.resource for b in report.components) == RESOURCE_ORDER

    def test_unknown_component_raises(self):
        with pytest.raises(ExperimentError, match="unknown bound resource"):
            bound_shape(SMALL).component("dram-refresh")

    def test_unknown_design_raises(self):
        with pytest.raises(ConfigError):
            bound_shape(SMALL, design_key="rasa-quantum")

    def test_tightness_is_fraction_of_achieved(self):
        report = BoundsReport(
            name="t", design_key="baseline", lower_bound=80, upper_bound=120,
            components=(ResourceBound("mm-issue", 80),), binding="mm-issue",
        )
        assert report.tightness(100) == pytest.approx(0.8)
        assert report.tightness(0) == 0.0

    def test_empty_program_bounds_are_zero(self):
        report = bound_program(Program(instructions=()), "baseline")
        assert report.lower_bound == 0
        assert report.upper_bound == 0


class TestBoundsSweep:
    def _report(self, name):
        return BoundsReport(
            name=name, design_key="baseline", lower_bound=1, upper_bound=2,
            components=(ResourceBound("mm-issue", 1),), binding="mm-issue",
        )

    def test_merge_is_a_disjoint_union(self):
        a = BoundsSweep(reports={"k1": self._report("a")})
        b = BoundsSweep(reports={"k2": self._report("b")})
        assert set(a.merge(b).reports) == {"k1", "k2"}

    def test_merge_tolerates_equal_duplicates(self):
        a = BoundsSweep(reports={"k1": self._report("a")})
        assert a.merge(BoundsSweep(reports={"k1": self._report("a")})) == a

    def test_merge_rejects_disagreeing_reports(self):
        a = BoundsSweep(reports={"k1": self._report("a")})
        with pytest.raises(ExperimentError, match="k1"):
            a.merge(BoundsSweep(reports={"k1": self._report("b")}))
