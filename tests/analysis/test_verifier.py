"""Static verifier: well-formedness, counters, lints, hazards, and the oracle."""

import dataclasses

import pytest

from repro.analysis.verifier import (
    Diagnostic,
    Region,
    cross_check_counters,
    hazard_report,
    kernel_regions,
    lint_shape,
    static_counters,
    verify_kernel,
    verify_program,
)
from repro.engine.designs import DESIGNS, get_design
from repro.isa.instructions import (
    Instruction,
    MemOperand,
    ScalarReg,
    TileReg,
    rasa_mm,
    rasa_tl,
    rasa_ts,
    scalar_op,
)
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.runtime.registry import resolve_backend
from repro.tile.hostmem import HostMatrix
from repro.workloads.codegen import build_gemm_kernel
from repro.workloads.gemm import GemmShape


def _kernel(m=64, n=64, k=64):
    return build_gemm_kernel(GemmShape(m=m, n=n, k=k))


def _codes(report):
    return [d.code for d in report.diagnostics]


# -- clean programs ------------------------------------------------------------


@pytest.mark.parametrize("dims", [(64, 64, 64), (50, 70, 90), (128, 256, 64)])
def test_codegen_output_is_clean(dims):
    report = verify_kernel(_kernel(*dims))
    assert report.ok
    assert report.errors == ()
    assert report.warnings == ()


def test_counters_match_program_stats():
    kernel = _kernel()
    stats = kernel.program.stats
    counters = static_counters(kernel.program)
    assert counters.instructions == stats.total
    assert counters.mm_count == stats.matmuls
    assert counters.tile_loads == stats.tile_loads
    assert counters.tile_stores == stats.tile_stores
    assert counters.scalars == stats.scalars


# -- seeded mutations: every corruption class must be caught -------------------


def _mutate(program, pc, replacement):
    insts = list(program)
    insts[pc] = replacement
    return Program(insts, name=f"{program.name}+mutated")


def test_mutation_register_clobber_is_use_before_def():
    # A single-tile GEMM only touches three registers, so rewriting the
    # first mm's A operand to an untouched register is a guaranteed clobber.
    kernel = _kernel(16, 16, 32)
    program = kernel.program
    first_mm = next(
        pc for pc, inst in enumerate(program) if inst.opcode is Opcode.RASA_MM
    )
    written_before = set()
    for inst in program[:first_mm]:
        written_before.update(r.index for r in inst.tile_writes)
    clobber = next(i for i in range(8) if i not in written_before)
    old = program[first_mm]
    mutated = _mutate(
        program, first_mm, rasa_mm(old.mm_c, TileReg(clobber), old.mm_b)
    )
    report = verify_program(mutated, regions=kernel_regions(kernel))
    bad = [d for d in report.errors if d.code == "use-before-def"]
    assert bad, report.diagnostics
    assert bad[0].pc == first_mm
    assert f"treg{clobber}" in bad[0].registers


def test_mutation_shrunk_region_is_oob():
    kernel = _kernel()
    a, b, c = kernel_regions(kernel)
    shrunk = Region(
        dataclasses.replace(c.matrix, rows=c.matrix.rows - 16), writable=True
    )
    report = verify_program(kernel.program, regions=(a, b, shrunk))
    oob = [d for d in report.errors if d.code == "oob-access"]
    assert oob  # the last C row of tiles now extends past / falls outside C
    assert all(d.opcode in ("rasa_tl", "rasa_ts") for d in oob)


def test_mutation_store_into_input_is_aliasing():
    kernel = _kernel()
    program = kernel.program
    store_pc = next(
        pc for pc, inst in enumerate(program) if inst.opcode is Opcode.RASA_TS
    )
    old = program[store_pc]
    mutated = _mutate(
        program,
        store_pc,
        rasa_ts(kernel.a_host.base, old.srcs[0], kernel.a_host.stride),
    )
    report = verify_program(mutated, regions=kernel_regions(kernel))
    alias = [d for d in report.errors if d.code == "store-aliases-input"]
    assert len(alias) == 1
    assert alias[0].pc == store_pc
    assert "'A'" in alias[0].reason


def test_mutation_wrong_stride_is_bad_stride():
    kernel = _kernel()
    program = kernel.program
    load_pc = next(
        pc for pc, inst in enumerate(program) if inst.opcode is Opcode.RASA_TL
    )
    old = program[load_pc]
    mutated = _mutate(
        program, load_pc, rasa_tl(old.dst, old.mem.address, old.mem.stride * 2)
    )
    report = verify_program(mutated, regions=kernel_regions(kernel))
    bad = [d for d in report.errors if d.code == "bad-stride"]
    assert len(bad) == 1
    assert bad[0].pc == load_pc


def test_stride_below_row_bytes_rejected_without_regions():
    program = Program([rasa_tl(TileReg(0), 0x1000, 32)], name="narrow")
    report = verify_program(program)  # no regions: the stride floor still applies
    assert _codes(report) == ["bad-stride"]
    assert "overlap" in report.diagnostics[0].reason


def test_mutation_misaligned_address():
    kernel = _kernel()
    program = kernel.program
    load_pc = next(
        pc for pc, inst in enumerate(program) if inst.opcode is Opcode.RASA_TL
    )
    old = program[load_pc]
    mutated = _mutate(
        program, load_pc, rasa_tl(old.dst, old.mem.address + 8, old.mem.stride)
    )
    report = verify_program(mutated, regions=kernel_regions(kernel))
    mis = [d for d in report.errors if d.code == "misaligned-tile"]
    assert len(mis) == 1
    assert mis[0].pc == load_pc


def test_tile_read_before_any_write():
    program = Program(
        [rasa_ts(0x1000, TileReg(3)), rasa_tl(TileReg(3), 0x1000)], name="cold"
    )
    report = verify_program(program)
    ubd = [d for d in report.errors if d.code == "use-before-def"]
    assert len(ubd) == 1
    assert ubd[0].pc == 0
    assert ubd[0].registers == ("treg3",)


def test_scalar_liveness_default_vs_strict():
    program = Program(
        [scalar_op(Opcode.ADD, dst=ScalarReg(0), srcs=(ScalarReg(0),))],
        name="loop",
    )
    assert verify_program(program).ok  # scalars are live-in by default
    strict = verify_program(program, scalar_live_in=frozenset())
    assert _codes(strict) == ["use-before-def"]
    assert strict.diagnostics[0].registers == ("r0",)


def test_each_clobbered_register_reported_once():
    program = Program(
        [rasa_ts(0x1000, TileReg(3)), rasa_ts(0x2000, TileReg(3))], name="twice"
    )
    report = verify_program(program)
    assert len([d for d in report.errors if d.code == "use-before-def"]) == 1


# -- lints ---------------------------------------------------------------------


def test_dead_store_flagged():
    program = Program(
        [
            rasa_tl(TileReg(0), 0x1000),
            rasa_ts(0x9000, TileReg(0)),
            rasa_ts(0x9000, TileReg(0)),
        ],
        name="dead",
    )
    report = verify_program(program)
    dead = [d for d in report.warnings if d.code == "dead-store"]
    assert len(dead) == 1
    assert dead[0].pc == 1
    assert report.errors == ()


def test_store_observed_by_load_is_not_dead():
    program = Program(
        [
            rasa_tl(TileReg(0), 0x1000),
            rasa_ts(0x9000, TileReg(0)),
            rasa_tl(TileReg(1), 0x9000),
            rasa_ts(0x9000, TileReg(0)),
        ],
        name="observed",
    )
    assert "dead-store" not in _codes(verify_program(program))


def test_redundant_weight_reload_flagged():
    # The canonical anti-pattern: reload B between two mms that use it —
    # the second mm would have bypassed its WL stage.
    program = Program(
        [
            rasa_tl(TileReg(0), 0x1000),
            rasa_tl(TileReg(6), 0x2000),
            rasa_tl(TileReg(4), 0x3000),
            rasa_mm(TileReg(0), TileReg(6), TileReg(4)),
            rasa_tl(TileReg(4), 0x3000),  # same bytes, kills the bypass
            rasa_mm(TileReg(0), TileReg(6), TileReg(4)),
        ],
        name="naive",
    )
    report = verify_program(program)
    redundant = [d for d in report.warnings if d.code == "redundant-load"]
    assert len(redundant) == 1
    assert redundant[0].pc == 4
    assert redundant[0].registers == ("treg4",)
    # The lint's claim is checkable against the counters: eliding pc 4
    # turns the reuse back on.
    assert static_counters(program).weight_reuses == 0
    elided = Program([i for pc, i in enumerate(program) if pc != 4], name="x")
    assert static_counters(elided).weight_reuses == 1


def test_streaming_reload_not_flagged():
    # Reloading the same A bytes is a block-scheduling tradeoff, not a
    # residency kill: the next mm's weight operand is treg4 either way.
    program = Program(
        [
            rasa_tl(TileReg(0), 0x1000),
            rasa_tl(TileReg(6), 0x2000),
            rasa_tl(TileReg(4), 0x3000),
            rasa_mm(TileReg(0), TileReg(6), TileReg(4)),
            rasa_tl(TileReg(6), 0x2000),  # same A bytes
            rasa_mm(TileReg(0), TileReg(6), TileReg(4)),
        ],
        name="stream",
    )
    assert "redundant-load" not in _codes(verify_program(program))


def test_reload_whose_bypass_an_intervening_mm_kills_anyway_not_flagged():
    # treg5's reload is content-identical, but the next mm reads treg4 and
    # resets residency regardless — eliding the reload changes nothing.
    program = Program(
        [
            rasa_tl(TileReg(0), 0x1000),
            rasa_tl(TileReg(6), 0x2000),
            rasa_tl(TileReg(4), 0x3000),
            rasa_tl(TileReg(5), 0x3040),
            rasa_mm(TileReg(0), TileReg(6), TileReg(4)),
            rasa_mm(TileReg(0), TileReg(6), TileReg(5)),
            rasa_tl(TileReg(4), 0x3000),
            rasa_tl(TileReg(5), 0x3040),  # next mm reads treg4 first
            rasa_mm(TileReg(0), TileReg(6), TileReg(4)),
            rasa_mm(TileReg(0), TileReg(6), TileReg(5)),
        ],
        name="reset",
    )
    assert "redundant-load" not in _codes(verify_program(program))


def test_store_between_reloads_invalidates_held_bytes():
    # A store overlapping the held region means the reload fetches *new*
    # bytes — not redundant.
    program = Program(
        [
            rasa_tl(TileReg(0), 0x1000),
            rasa_tl(TileReg(6), 0x2000),
            rasa_tl(TileReg(4), 0x3000),
            rasa_mm(TileReg(0), TileReg(6), TileReg(4)),
            rasa_ts(0x3000, TileReg(0)),
            rasa_tl(TileReg(4), 0x3000),
            rasa_mm(TileReg(0), TileReg(6), TileReg(4)),
        ],
        name="clobbered-memory",
    )
    assert "redundant-load" not in _codes(verify_program(program))


# -- static counters vs the residency rule -------------------------------------


def test_weight_reuse_counts_consecutive_same_b():
    c, a0, a1, b = TileReg(0), TileReg(6), TileReg(7), TileReg(4)
    program = Program(
        [
            rasa_tl(c, 0x1000),
            rasa_tl(a0, 0x2000),
            rasa_tl(a1, 0x2040),
            rasa_tl(b, 0x3000),
            rasa_mm(c, a0, b),
            rasa_mm(c, a1, b),  # reuse: same B register, same version
            rasa_tl(b, 0x3040),
            rasa_mm(c, a0, b),  # reload bumped the version: no reuse
        ],
        name="reuse",
    )
    counters = static_counters(program)
    assert counters.mm_count == 3
    assert counters.weight_reuses == 1
    wlbp = counters.for_policy(bypasses_on_reuse=True)
    assert (wlbp.weight_loads, wlbp.bypass_count) == (2, 1)
    base = counters.for_policy(bypasses_on_reuse=False)
    assert (base.weight_loads, base.bypass_count) == (3, 0)


@pytest.mark.parametrize("dims", [(64, 64, 64), (50, 70, 90), (48, 32, 96)])
def test_cross_check_counters_clean(dims):
    assert cross_check_counters(GemmShape(*dims)) == ()


def test_static_counters_equal_fast_model_on_every_design():
    kernel = _kernel(48, 80, 64)
    counters = static_counters(kernel.program)
    for key in DESIGNS:
        bypasses = get_design(key).config.control.bypasses_on_reuse
        static = counters.for_policy(bypasses)
        fast = resolve_backend(key, fidelity="fast").prepare(kernel.program).run()
        assert static.instructions == fast.instructions
        assert static.mm_count == fast.mm_count
        assert static.weight_loads == fast.weight_loads
        assert static.bypass_count == fast.bypass_count


# -- hazards -------------------------------------------------------------------


def test_hazard_report_hand_counted():
    c, a, b = TileReg(0), TileReg(6), TileReg(4)
    program = Program(
        [
            rasa_tl(c, 0x1000),
            rasa_tl(a, 0x2000),
            rasa_tl(b, 0x3000),
            rasa_mm(c, a, b),
            rasa_mm(c, a, b),
            rasa_ts(0x1000, c),
        ],
        name="hand",
    )
    report = hazard_report(program)
    assert report.raw == 7  # 3 per mm + 1 for the store
    assert report.waw == 2  # each mm overwrites C
    assert report.war == 0  # an mm's own C read never WARs its write
    assert report.longest_raw_chain == 4  # tl -> mm -> mm -> ts
    assert report.max_live == 3
    assert report.pressure == (1, 2, 1, 2, 0, 0, 0, 0, 0)
    assert sum(report.pressure) == len(program)


def test_war_from_earlier_reader():
    t = TileReg(0)
    program = Program(
        [rasa_tl(t, 0x1000), rasa_ts(0x2000, t), rasa_tl(t, 0x3000)],
        name="war",
    )
    report = hazard_report(program)
    assert report.war == 1
    assert report.waw == 1
    assert report.raw == 1


def test_kernel_pressure_histogram_covers_whole_program():
    kernel = _kernel()
    report = hazard_report(kernel.program)
    assert sum(report.pressure) == len(kernel.program)
    assert report.max_live <= 8
    # The 2x2 register blocking keeps 4 C accumulators plus operands live.
    assert report.max_live >= 4


# -- report plumbing -----------------------------------------------------------


def test_diagnostics_sorted_by_pc():
    kernel = _kernel()
    a, b, c = kernel_regions(kernel)
    shrunk = Region(
        dataclasses.replace(c.matrix, rows=c.matrix.rows - 16), writable=True
    )
    report = verify_program(kernel.program, regions=(a, b, shrunk))
    pcs = [d.pc for d in report.diagnostics]
    assert pcs == sorted(pcs)


def test_diagnostic_str_carries_location():
    d = Diagnostic("oob-access", 17, "rasa_tl", ("treg2",), "went walkabout")
    assert str(d) == "pc 17: rasa_tl [treg2]: oob-access: went walkabout"


def test_lint_shape_end_to_end():
    report = lint_shape(GemmShape(64, 64, 64))
    assert report.ok
    assert report.counters.mm_count == GemmShape(64, 64, 64).mm_count


def test_oob_lists_known_regions():
    matrix = HostMatrix(0x1000, 16, 32, element_bytes=2, name="A")
    program = Program([rasa_tl(TileReg(0), 0x90000)], name="lost")
    report = verify_program(program, regions=(Region(matrix),))
    assert _codes(report) == ["oob-access"]
    assert "'A'" in report.diagnostics[0].reason or "A=" in report.diagnostics[0].reason


def test_operand_accessor_guard():
    inst = rasa_tl(TileReg(0), 0x1000)
    assert inst.tile_writes == (TileReg(0),)
    assert Instruction(Opcode.NOP).tile_reads == ()
    assert MemOperand(0x40, 64).stride == 64
