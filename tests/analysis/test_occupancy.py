"""Tests for the analytical occupancy model, cross-checked three ways."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.occupancy import (
    occupancy_timeline,
    schedule_utilization,
    single_mm_active_pes,
)
from repro.engine.config import ControlPolicy, EngineConfig
from repro.engine.scheduler import EngineScheduler
from repro.systolic.array import SystolicArray
from repro.systolic.pe import DB_PE
from repro.systolic.utilization import utilization_single_fold


def schedule_stream(config, keys):
    scheduler = EngineScheduler(config)
    return [scheduler.schedule_mm(0, 0, key) for key in keys]


class TestSingleInstruction:
    def test_matches_cycle_accurate_array(self, rng):
        """The analytical trapezoid must equal the functional array's
        measured activity trace, cycle by cycle."""
        config = EngineConfig()
        a = rng.standard_normal((16, 32)).astype(np.float32)
        b = rng.standard_normal((32, 16)).astype(np.float32)
        run = SystolicArray(32, 16).execute(b, a)
        measured = run.active_pes[run.wl_cycles :]  # activity after WL
        analytic = [
            single_mm_active_pes(config, offset) for offset in range(len(measured))
        ]
        assert analytic == measured

    def test_peak_is_full_array_when_tm_spans_diagonals(self):
        config = EngineConfig()
        # TM=16 < R+C-1=47: the wave never covers the whole 32x16 array.
        peak = max(single_mm_active_pes(config, o) for o in range(120))
        assert peak < config.num_pes
        # A hypothetical TM = 64 > 46 saturates it.
        import dataclasses

        big = dataclasses.replace(config, tile_m=64)
        peak_big = max(single_mm_active_pes(big, o) for o in range(160))
        assert peak_big == big.num_pes


class TestScheduleUtilization:
    def test_base_schedule_matches_fig2_value(self):
        """A serialized BASE stream utilizes TM / (2TK+TM+TN-1) = 16/95."""
        config = EngineConfig(control=ControlPolicy.BASE)
        schedule = schedule_stream(config, range(20))
        report = schedule_utilization(schedule, config)
        expected = utilization_single_fold(tm=16, tk=32, tn=16)
        assert report.utilization == pytest.approx(expected, rel=0.02)

    def test_wls_schedule_near_full_utilization(self):
        config = EngineConfig(pe=DB_PE, control=ControlPolicy.WLS)
        schedule = schedule_stream(config, range(60))
        report = schedule_utilization(schedule, config)
        # Back-to-back FFs every TM cycles keep the whole wave marching.
        assert report.utilization > 0.9
        assert report.peak_active == config.num_pes

    def test_policy_ordering_of_utilization(self):
        utils = {}
        for policy, pe in [
            (ControlPolicy.BASE, None),
            (ControlPolicy.PIPE, None),
            (ControlPolicy.WLS, DB_PE),
        ]:
            config = EngineConfig(control=policy) if pe is None else EngineConfig(
                pe=pe, control=policy
            )
            schedule = schedule_stream(config, range(30))
            utils[policy] = schedule_utilization(schedule, config).utilization
        assert utils[ControlPolicy.BASE] < utils[ControlPolicy.PIPE]
        assert utils[ControlPolicy.PIPE] < utils[ControlPolicy.WLS]

    def test_empty_schedule(self):
        config = EngineConfig()
        report = schedule_utilization([], config)
        assert report.utilization == 0.0
        assert occupancy_timeline([], config).size == 0

    def test_active_pe_cycles_equal_total_macs(self):
        """Conservation: every scheduled mm contributes exactly
        TM x (R x C) PE-cycles regardless of overlap."""
        config = EngineConfig(control=ControlPolicy.PIPE)
        schedule = schedule_stream(config, range(7))
        report = schedule_utilization(schedule, config)
        assert report.active_pe_cycles == 7 * 16 * config.num_pes
