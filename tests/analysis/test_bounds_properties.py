"""Property tests for the static cycle bounds.

Both bounds are monotone non-decreasing in every GEMM dimension: growing
``m``, ``n``, or ``k`` can only add work (more tiles, more weight loads,
more drains), never remove it.  Equality is allowed — dims inside the same
tile pad onto the identical program.  This is the contract that makes the
lower bound safe for Pareto-frontier pruning: a design rejected on a small
shape's LB can never win on a larger one.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.analysis.bounds import bound_shape
from repro.engine.designs import DESIGNS
from repro.workloads.gemm import GemmShape

# Small dims keep the static walks fast; tile edges (16/32) sit inside the
# range so padding boundaries get exercised.
dims = st.integers(min_value=1, max_value=80)
deltas = st.integers(min_value=1, max_value=40)
designs = st.sampled_from(sorted(DESIGNS))
axes = st.sampled_from(["m", "n", "k"])


def _bounds(m: int, n: int, k: int, design: str):
    report = bound_shape(GemmShape(m, n, k), design_key=design)
    return report.lower_bound, report.upper_bound


@settings(max_examples=60, deadline=None)
@given(m=dims, n=dims, k=dims, delta=deltas, axis=axes, design=designs)
def test_bounds_are_monotone_in_every_dim(m, n, k, delta, axis, design):
    grown = {"m": m, "n": n, "k": k}
    grown[axis] += delta
    lb, ub = _bounds(m, n, k, design)
    lb_grown, ub_grown = _bounds(grown["m"], grown["n"], grown["k"], design)
    assert lb_grown >= lb, (m, n, k, axis, delta, design)
    assert ub_grown >= ub, (m, n, k, axis, delta, design)


@settings(max_examples=60, deadline=None)
@given(m=dims, n=dims, k=dims, design=designs)
def test_bounds_sandwich_is_internally_consistent(m, n, k, design):
    lb, ub = _bounds(m, n, k, design)
    assert 0 < lb <= ub, (m, n, k, design)
