"""Tests for the PE MAC semantics and the golden GEMM oracles."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.numerics.bf16 import quantize_bf16
from repro.numerics.mac import mac_bf16, matmul_bf16_fp32, matmul_bf16_fp32_chained


class TestMac:
    def test_simple_mac(self):
        assert mac_bf16(1.0, 2.0, 3.0) == np.float32(7.0)

    def test_product_is_exact_in_fp32(self, rng):
        # A BF16 x BF16 product has <= 15 mantissa bits: exact in float32.
        a = quantize_bf16(rng.standard_normal(1000).astype(np.float32))
        b = quantize_bf16(rng.standard_normal(1000).astype(np.float32))
        prod32 = (a * b).astype(np.float64)
        prod64 = a.astype(np.float64) * b.astype(np.float64)
        assert np.array_equal(prod32, prod64)

    def test_inputs_are_quantized(self):
        # 1 + 2^-12 is not BF16-representable; it must round to 1.0 first.
        assert mac_bf16(0.0, 1.0 + 2.0**-12, 1.0) == np.float32(1.0)


class TestMatmulOracle:
    def test_matches_float64_loosely(self, rng):
        a = rng.standard_normal((16, 32)).astype(np.float32)
        b = rng.standard_normal((32, 16)).astype(np.float32)
        ours = matmul_bf16_fp32(a, b)
        ref = quantize_bf16(a).astype(np.float64) @ quantize_bf16(b).astype(np.float64)
        assert np.allclose(ours, ref, rtol=1e-5, atol=1e-5)

    def test_accumulator_used(self, rng):
        a = rng.standard_normal((4, 8)).astype(np.float32)
        b = rng.standard_normal((8, 4)).astype(np.float32)
        c = np.full((4, 4), 100.0, dtype=np.float32)
        with_c = matmul_bf16_fp32(a, b, c)
        without = matmul_bf16_fp32(a, b)
        assert np.allclose(with_c - without, 100.0, atol=1e-3)

    def test_ascending_k_order(self):
        # Construct a case where accumulation order changes the rounded sum:
        # (1e8 + 1) - 1e8 == 0 in fp32 if the small value is added first.
        a = np.array([[1.0, 1.0, 1.0]], dtype=np.float32)
        b = np.array([[1.0], [2.0**27], [-(2.0**27)]], dtype=np.float32)
        # ascending k: ((0+1) + 2^27) - 2^27 == 0 in fp32 (1 absorbed)
        out = matmul_bf16_fp32(a, b)
        assert out[0, 0] == np.float32(0.0)

    def test_shape_errors(self):
        with pytest.raises(ValueError):
            matmul_bf16_fp32(np.zeros((2, 3)), np.zeros((4, 2)))
        with pytest.raises(ValueError):
            matmul_bf16_fp32(np.zeros((2, 3)), np.zeros((3, 2)), np.zeros((3, 3)))

    def test_does_not_mutate_accumulator(self, rng):
        a = rng.standard_normal((4, 4)).astype(np.float32)
        b = rng.standard_normal((4, 4)).astype(np.float32)
        c = np.ones((4, 4), dtype=np.float32)
        c_copy = c.copy()
        matmul_bf16_fp32(a, b, c)
        assert np.array_equal(c, c_copy)


class TestChainedOracle:
    def test_single_chain_equals_plain(self, rng):
        a = rng.standard_normal((8, 16)).astype(np.float32)
        b = rng.standard_normal((16, 8)).astype(np.float32)
        c = rng.standard_normal((8, 8)).astype(np.float32)
        assert np.array_equal(
            matmul_bf16_fp32_chained(a, b, c, chains=1), matmul_bf16_fp32(a, b, c)
        )

    def test_two_chains_close_to_plain(self, rng):
        a = rng.standard_normal((8, 32)).astype(np.float32)
        b = rng.standard_normal((32, 8)).astype(np.float32)
        plain = matmul_bf16_fp32(a, b)
        chained = matmul_bf16_fp32_chained(a, b, chains=2)
        assert np.allclose(plain, chained, rtol=1e-5, atol=1e-5)

    def test_chain_split_order(self):
        # Even-k products go to chain 0 (with C), odd-k to chain 1; the merge
        # adds chain 1 after.  Same absorbing construction as above but with
        # the huge values on the *even* positions only cancels post-merge.
        a = np.array([[1.0, 1.0, 1.0, 1.0]], dtype=np.float32)
        b = np.array([[2.0**27], [1.0], [-(2.0**27)], [1.0]], dtype=np.float32)
        # chain0 = 2^27 - 2^27 = 0; chain1 = 1 + 1 = 2; merged = 2.
        out = matmul_bf16_fp32_chained(a, b, chains=2)
        assert out[0, 0] == np.float32(2.0)
        # Plain ascending order absorbs the middle 1 into 2^27 (ulp 16), so
        # only the final +1 survives: ((2^27 + 1) - 2^27) + 1 = 0 + 1.
        assert matmul_bf16_fp32(a, b)[0, 0] == np.float32(1.0)

    def test_k_not_multiple_of_chains_rejected(self):
        with pytest.raises(ValueError):
            matmul_bf16_fp32_chained(np.zeros((2, 3)), np.zeros((3, 2)), chains=2)


@settings(max_examples=25, deadline=None)
@given(
    m=st.integers(1, 6),
    n=st.integers(1, 6),
    k2=st.integers(1, 6),
    seed=st.integers(0, 2**31),
)
def test_oracles_agree_with_float64_within_tolerance(m, n, k2, seed):
    rng = np.random.default_rng(seed)
    k = 2 * k2
    a = rng.standard_normal((m, k)).astype(np.float32)
    b = rng.standard_normal((k, n)).astype(np.float32)
    ref = quantize_bf16(a).astype(np.float64) @ quantize_bf16(b).astype(np.float64)
    for chains in (1, 2):
        ours = matmul_bf16_fp32_chained(a, b, chains=chains)
        np.testing.assert_allclose(ours, ref, rtol=1e-4, atol=1e-4)
