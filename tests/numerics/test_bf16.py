"""Unit + property tests for the software bfloat16 conversion."""

from __future__ import annotations

import numpy as np
from hypothesis import given, strategies as st

from repro.numerics.bf16 import (
    BF16_EPS,
    bf16_bits_to_f32,
    f32_to_bf16_bits,
    is_bf16_exact,
    quantize_bf16,
)


class TestExactValues:
    def test_small_integers_are_exact(self):
        values = np.arange(-256, 257, dtype=np.float32)
        assert np.array_equal(quantize_bf16(values), values)

    def test_powers_of_two_are_exact(self):
        values = np.float32(2.0) ** np.arange(-30, 31, dtype=np.float32)
        assert np.array_equal(quantize_bf16(values), values)

    def test_zero_and_signed_zero(self):
        q = quantize_bf16(np.array([0.0, -0.0], dtype=np.float32))
        assert q[0] == 0.0 and q[1] == 0.0
        assert np.signbit(q[1]) and not np.signbit(q[0])

    def test_infinities_preserved(self):
        q = quantize_bf16(np.array([np.inf, -np.inf], dtype=np.float32))
        assert q[0] == np.inf and q[1] == -np.inf

    def test_nan_canonicalized(self):
        bits = f32_to_bf16_bits(np.array([np.nan], dtype=np.float32))
        assert bits[0] == 0x7FC0
        assert np.isnan(bf16_bits_to_f32(bits))[0]


class TestRounding:
    def test_round_to_nearest(self):
        # BF16 ulp in [1, 2) is 2^-7, so 1 + 2^-8 is exactly halfway between
        # 1.0 and 1 + 2^-7 -> ties to even (mantissa of 1.0 is even): down.
        assert quantize_bf16(np.float32(1.0 + 2.0**-8)) == np.float32(1.0)
        # Slightly above the midpoint must round up.
        assert quantize_bf16(np.float32(1.0 + 2.0**-8 + 2.0**-16)) == np.float32(
            1.0 + 2.0**-7
        )

    def test_ties_to_even_up(self):
        # (1 + 3*2^-8) is halfway between 1 + 2^-7 (odd mantissa) and
        # 1 + 2^-6 (even mantissa): RNE picks the even one, rounding UP.
        value = np.float32(1.0 + 3.0 * 2.0**-8)
        assert quantize_bf16(value) == np.float32(1.0 + 2.0**-6)

    def test_mantissa_overflow_carries_to_exponent(self):
        # Largest mantissa + tie rounds into the next binade.
        value = np.float32(1.9921875 + 2.0**-8)  # 1.1111111b + half-ulp
        assert quantize_bf16(value) == np.float32(2.0)

    def test_overflow_to_infinity(self):
        # Values above the BF16 max (~3.39e38) round to +inf.
        big = np.float32(3.4e38)
        assert quantize_bf16(big) == np.inf

    def test_relative_error_bound(self, rng):
        # RNE error is at most half a BF16 ulp; relative to the value that is
        # at most BF16_EPS (worst case just above a binade boundary).
        values = rng.standard_normal(10_000).astype(np.float32) * 100
        q = quantize_bf16(values)
        rel = np.abs(q - values) / np.maximum(np.abs(values), 1e-30)
        assert rel.max() <= BF16_EPS + 1e-7


class TestBitRoundTrips:
    def test_bits_roundtrip_all_finite_patterns(self):
        # Every finite BF16 bit pattern must survive f32 expansion and re-rounding.
        bits = np.arange(0, 1 << 16, dtype=np.uint16)
        f32 = bf16_bits_to_f32(bits)
        finite = np.isfinite(f32)
        again = f32_to_bf16_bits(f32[finite])
        assert np.array_equal(again, bits[finite])

    def test_is_bf16_exact_after_quantize(self, rng):
        values = rng.standard_normal(1000).astype(np.float32)
        assert is_bf16_exact(quantize_bf16(values)).all()


@given(st.floats(width=32, allow_nan=False, allow_infinity=False))
def test_quantize_is_idempotent(value):
    once = quantize_bf16(np.float32(value))
    twice = quantize_bf16(once)
    assert np.array_equal(once, twice)


@given(
    st.floats(
        width=32,
        allow_nan=False,
        allow_infinity=False,
        min_value=np.float32(-1e38),
        max_value=np.float32(1e38),
    )
)
def test_quantize_error_within_one_ulp_relative(value):
    q = float(quantize_bf16(np.float32(value)))
    v = float(np.float32(value))
    if v == 0:
        assert q == 0
    else:
        # Half a BF16 ulp, which relative to the value is at most BF16_EPS
        # (normals); subnormals get the absolute half-ulp floor 2^-134.
        assert abs(q - v) <= abs(v) * BF16_EPS * (1 + 1e-6) + 2.0**-133


_F32 = st.floats(
    width=32,
    allow_nan=False,
    allow_infinity=False,
    min_value=np.float32(-1e30),
    max_value=np.float32(1e30),
)


@given(_F32, _F32)
def test_quantize_is_monotonic(x, y):
    lo, hi = sorted((np.float32(x), np.float32(y)))
    assert quantize_bf16(lo) <= quantize_bf16(hi)


def test_shape_preserved(rng):
    values = rng.standard_normal((3, 5, 7)).astype(np.float32)
    assert quantize_bf16(values).shape == (3, 5, 7)
