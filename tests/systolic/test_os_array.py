"""Tests for the output-stationary functional array."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimError
from repro.numerics.mac import matmul_bf16_fp32
from repro.systolic.dataflow import Dataflow, fold_cycles
from repro.systolic.os_array import OutputStationaryArray


class TestFunctional:
    def test_matches_oracle(self, rng):
        a = rng.standard_normal((4, 6)).astype(np.float32)
        b = rng.standard_normal((6, 3)).astype(np.float32)
        run = OutputStationaryArray(4, 3).execute(a, b)
        assert np.array_equal(run.output, matmul_bf16_fp32(a, b))

    def test_accumulator(self, rng):
        a = rng.standard_normal((4, 8)).astype(np.float32)
        b = rng.standard_normal((8, 4)).astype(np.float32)
        c = rng.standard_normal((4, 4)).astype(np.float32)
        run = OutputStationaryArray(4, 4).execute(a, b, c)
        assert np.array_equal(run.output, matmul_bf16_fp32(a, b, c))

    def test_shape_validation(self):
        array = OutputStationaryArray(4, 4)
        with pytest.raises(SimError):
            array.execute(np.zeros((3, 4), dtype=np.float32), np.zeros((4, 4), dtype=np.float32))
        with pytest.raises(SimError):
            array.execute(np.zeros((4, 4), dtype=np.float32), np.zeros((5, 4), dtype=np.float32))


class TestTiming:
    @pytest.mark.parametrize("rows,cols,k", [(2, 2, 2), (4, 4, 8), (8, 4, 16), (3, 5, 7)])
    def test_latency_matches_dataflow_model(self, rng, rows, cols, k):
        a = rng.standard_normal((rows, k)).astype(np.float32)
        b = rng.standard_normal((k, cols)).astype(np.float32)
        run = OutputStationaryArray(rows, cols).execute(a, b)
        expected = fold_cycles(Dataflow.OS, rows, cols, tm=1, tn=1, tk=k)
        assert run.total_cycles == expected

    def test_total_macs(self, rng):
        rows, cols, k = 3, 4, 5
        a = rng.standard_normal((rows, k)).astype(np.float32)
        b = rng.standard_normal((k, cols)).astype(np.float32)
        run = OutputStationaryArray(rows, cols).execute(a, b)
        assert run.total_macs == rows * cols * k

    def test_utilization_improves_with_k(self, rng):
        """OS utilization grows with the reduction depth — the K-dimension
        analogue of Fig. 2's TM effect."""

        def util(k):
            a = rng.standard_normal((4, k)).astype(np.float32)
            b = rng.standard_normal((k, 4)).astype(np.float32)
            return OutputStationaryArray(4, 4).execute(a, b).utilization

        assert util(64) > util(8) > util(2)


@settings(max_examples=20, deadline=None)
@given(
    rows=st.integers(1, 5),
    cols=st.integers(1, 5),
    k=st.integers(1, 8),
    seed=st.integers(0, 2**31),
)
def test_os_array_property(rows, cols, k, seed):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((rows, k)).astype(np.float32)
    b = rng.standard_normal((k, cols)).astype(np.float32)
    c = rng.standard_normal((rows, cols)).astype(np.float32)
    run = OutputStationaryArray(rows, cols).execute(a, b, c)
    assert np.array_equal(run.output, matmul_bf16_fp32(a, b, c))
    assert run.total_cycles == 2 * rows + cols + k - 2
