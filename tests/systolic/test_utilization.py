"""Tests for the Fig. 2 utilization model, cross-checked against the array."""

from __future__ import annotations

import numpy as np
import pytest

from repro.systolic.array import SystolicArray
from repro.systolic.utilization import (
    inactive_fraction,
    utilization_single_fold,
    utilization_sweep,
)


class TestClosedForm:
    def test_toy_value(self):
        assert utilization_single_fold(tm=2, tk=2, tn=2) == pytest.approx(2 / 7)

    def test_paper_configuration(self):
        assert utilization_single_fold(tm=16, tk=32, tn=16) == pytest.approx(16 / 95)

    def test_inactive_fraction_toy(self):
        # Sec. III: "active for TM = 2 cycles and inactive for the remaining
        # 5 cycles (71 % performance degradation)".
        assert inactive_fraction(tm=2, tk=2, tn=2) == pytest.approx(5 / 7)

    def test_monotonically_increasing_in_tm(self):
        values = [utilization_single_fold(tm, 32, 16) for tm in (4, 16, 64, 256, 4096)]
        assert values == sorted(values)
        assert values[-1] > 0.95  # converges toward 1 (Fig. 2's message)

    def test_decreasing_in_array_size(self):
        # At fixed TM, growing the array hurts utilization.
        small = utilization_single_fold(tm=64, tk=8, tn=8)
        large = utilization_single_fold(tm=64, tk=128, tn=128)
        assert small > large


class TestSweep:
    def test_sweep_shape(self):
        sweep = utilization_sweep([4, 16, 64], [(4, 4), (32, 16)])
        assert set(sweep) == {(4, 4), (32, 16)}
        assert len(sweep[(4, 4)]) == 3

    def test_matches_cycle_accurate_array(self, rng):
        # The closed form must equal the measured activity of the functional
        # array for every small configuration.
        for rows, cols, m in [(2, 2, 2), (4, 4, 8), (8, 4, 5), (4, 8, 16)]:
            a = rng.standard_normal((m, rows)).astype(np.float32)
            b = rng.standard_normal((rows, cols)).astype(np.float32)
            run = SystolicArray(rows, cols).execute(b, a)
            assert run.utilization == pytest.approx(
                utilization_single_fold(tm=m, tk=rows, tn=cols)
            )
