"""Tests for the SCALE-Sim-style dataflow models."""

from __future__ import annotations

import pytest

from repro.systolic.dataflow import Dataflow, fold_cycles, gemm_dataflow_latency
from repro.systolic.timing import fold_latency


def test_ws_fold_matches_eq1():
    assert fold_cycles(Dataflow.WS, rows=32, cols=16, tm=16, tn=16, tk=32) == (
        fold_latency(tk=32, tm=16, tn=16)
    )


def test_fold_counts():
    r = gemm_dataflow_latency(Dataflow.WS, m=100, n=64, k=128, rows=32, cols=16)
    assert r.folds == 4 * 4  # ceil(128/32) * ceil(64/16)
    r = gemm_dataflow_latency(Dataflow.OS, m=100, n=64, k=128, rows=32, cols=16)
    assert r.folds == 4 * 4  # ceil(100/32) * ceil(64/16)


def test_utilization_bounded():
    for df in Dataflow:
        r = gemm_dataflow_latency(df, m=512, n=512, k=512, rows=32, cols=16)
        assert 0 < r.utilization <= 1


def test_large_streaming_dim_favors_ws():
    # WS streams M: huge M amortizes fill/drain, tiny M does not.
    big = gemm_dataflow_latency(Dataflow.WS, m=10_000, n=16, k=32, rows=32, cols=16)
    small = gemm_dataflow_latency(Dataflow.WS, m=16, n=16, k=32, rows=32, cols=16)
    assert big.utilization > 0.9
    assert small.utilization < 0.2


def test_total_is_folds_times_fold():
    r = gemm_dataflow_latency(Dataflow.IS, m=64, n=64, k=64, rows=16, cols=16)
    assert r.total_cycles == r.folds * r.fold_cycles


def test_rejects_nonpositive():
    with pytest.raises(Exception):
        gemm_dataflow_latency(Dataflow.WS, m=0, n=1, k=1, rows=4, cols=4)
