"""Tests for sub-stage durations."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.systolic.substage import StageDurations, SubStage


class TestStageDurations:
    def test_baseline_array(self):
        d = StageDurations.for_array(phys_rows=32, phys_cols=16, tm=16)
        assert (d.wl, d.ff, d.fs, d.dr) == (32, 16, 31, 16)
        assert d.serial_total == 95

    def test_db_doubles_weight_load_rate(self):
        d = StageDurations.for_array(phys_rows=32, phys_cols=16, tm=16, wl_rows_per_cycle=2)
        assert d.wl == 16
        assert d.serial_total == 79

    def test_dm_array(self):
        d = StageDurations.for_array(phys_rows=16, phys_cols=16, tm=16, extra=1)
        assert (d.wl, d.ff, d.fs, d.dr, d.extra) == (16, 16, 15, 16, 1)
        assert d.serial_total == 64

    def test_toy(self):
        d = StageDurations.for_array(phys_rows=2, phys_cols=2, tm=2)
        assert d.serial_total == 7

    def test_of_accessor(self):
        d = StageDurations.for_array(phys_rows=4, phys_cols=4, tm=8)
        assert d.of(SubStage.WL) == 4
        assert d.of(SubStage.FF) == 8
        assert d.of(SubStage.FS) == 3
        assert d.of(SubStage.DR) == 4

    def test_stage_order(self):
        assert [s.order for s in SubStage] == [0, 1, 2, 3]

    def test_odd_wl_rate_rounds_up(self):
        d = StageDurations.for_array(phys_rows=5, phys_cols=4, tm=4, wl_rows_per_cycle=2)
        assert d.wl == 3

    def test_invalid_rejected(self):
        with pytest.raises(ConfigError):
            StageDurations.for_array(phys_rows=0, phys_cols=4, tm=4)
        with pytest.raises(ConfigError):
            StageDurations(wl=1, ff=1, fs=-1, dr=1)
