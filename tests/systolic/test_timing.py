"""Tests for the closed-form timing model (Eq. 1 / Eq. 2)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.systolic.timing import (
    drain_port_interval,
    fold_latency,
    inactive_time,
    mac_interval,
    output_exit_cycle,
    pe_active_cycles,
    weight_disturb_interval,
)


class TestFoldLatency:
    def test_paper_baseline_is_95(self):
        # Sec. V: "L_baseline = 95 cycles for the configuration in our
        # evaluation" — the 32x16 array with TM = TN = 16.
        assert fold_latency(tk=32, tm=16, tn=16) == 95

    def test_toy_example_is_7(self):
        assert fold_latency(tk=2, tm=2, tn=2) == 7

    def test_overlap_form(self):
        # Fig. 1's parenthetical: one cycle less when the last WL cycle
        # overlaps the first FF cycle.
        assert fold_latency(tk=2, tm=2, tn=2, overlap_wl_ff=True) == 6

    def test_inactive_time(self):
        # Eq. 2 for the toy example: each PE idles 5 of 7 cycles (71 %).
        assert inactive_time(tk=2, tm=2, tn=2) == 5
        assert pe_active_cycles(tm=2) == 2

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            fold_latency(tk=0, tm=16, tn=16)


class TestOccupancyWindows:
    def test_mac_interval_offsets(self):
        # PE (k, n) starts k+n cycles after FF and computes TM cycles.
        assert mac_interval(ff_start=100, k=0, n=0, tm=16) == (100, 116)
        assert mac_interval(ff_start=100, k=3, n=5, tm=16) == (108, 124)

    def test_weight_disturb_window(self):
        assert weight_disturb_interval(wl_start=10, wl_cycles=32) == (10, 42)

    def test_output_exit(self):
        # Output (m, n) exits the bottom of column n one cycle after the
        # bottom-row MAC: ff_start + m + (R-1) + n + 1.
        assert output_exit_cycle(ff_start=0, m=0, n=0, phys_rows=32) == 32
        assert output_exit_cycle(ff_start=0, m=15, n=15, phys_rows=32) == 62

    def test_drain_port_interval(self):
        start, end = drain_port_interval(ff_start=0, n=0, tm=16, phys_rows=32)
        assert (start, end) == (32, 48)

    def test_serial_latency_decomposes_into_stages(self):
        # WL + FF + FS + DR must reproduce Eq. 1 for any geometry.
        for tk, tm, tn in [(32, 16, 16), (2, 2, 2), (8, 4, 8), (16, 16, 16)]:
            stages = tk + tm + (tk - 1) + tn
            assert stages == fold_latency(tk, tm, tn)
