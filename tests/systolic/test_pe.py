"""Tests for PE structural specs."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.systolic.pe import BASELINE_PE, DB_PE, DM_PE, DMDB_PE, PE_SPECS, PESpec


def test_registry_names():
    assert set(PE_SPECS) == {"baseline", "db", "dm", "dmdb"}


def test_baseline_structure():
    assert BASELINE_PE.multipliers == 1
    assert BASELINE_PE.weight_buffer_bytes == 2
    assert not BASELINE_PE.is_double_buffered
    assert BASELINE_PE.psum_chains == 1


def test_db_adds_shadow_buffer():
    assert DB_PE.is_double_buffered
    assert DB_PE.weight_buffer_bytes == 4  # two 2 B buffers (Fig. 4c)


def test_dm_structure():
    assert DM_PE.is_double_multiplier
    assert DM_PE.adders == 2
    assert DM_PE.weight_buffer_bytes == 4  # one 4 B buffer
    assert DM_PE.psum_chains == 2


def test_dmdb_combines_both():
    assert DMDB_PE.is_double_buffered and DMDB_PE.is_double_multiplier
    assert DMDB_PE.weight_buffer_bytes == 8  # two 4 B buffers


def test_invalid_specs_rejected():
    with pytest.raises(ConfigError):
        PESpec("bad", multipliers=3, adders=3, weight_buffers=1, weights_per_buffer=3)
    with pytest.raises(ConfigError):
        PESpec("bad", multipliers=2, adders=1, weight_buffers=1, weights_per_buffer=2)
    with pytest.raises(ConfigError):
        PESpec("bad", multipliers=1, adders=1, weight_buffers=3, weights_per_buffer=1)
    with pytest.raises(ConfigError):
        PESpec("bad", multipliers=1, adders=1, weight_buffers=1, weights_per_buffer=2)
