"""Tests for the cycle-accurate functional systolic array.

These cross-validate the three levels of the model against each other:
functional output vs the NumPy golden oracles (bit-exact), measured latency
vs Eq. 1's closed form, and activity traces vs the paper's Fig. 1 numbers.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimError
from repro.numerics.mac import matmul_bf16_fp32, matmul_bf16_fp32_chained
from repro.systolic.array import SystolicArray
from repro.systolic.pe import BASELINE_PE, DB_PE, DM_PE, DMDB_PE
from repro.systolic.timing import fold_latency


class TestFig1Toy:
    def test_activity_trace_matches_paper(self, rng):
        a = rng.standard_normal((2, 2)).astype(np.float32)
        b = rng.standard_normal((2, 2)).astype(np.float32)
        run = SystolicArray(2, 2).execute(b, a)
        # Fig. 1: utilizations 0%, 0%, 25%, 75%, 75%, 25%, 0% over 7 cycles.
        assert run.active_pes == [0, 0, 1, 3, 3, 1, 0]
        assert run.total_cycles == 7
        assert run.utilization == pytest.approx(8 / 28)

    def test_output_matches_oracle(self, rng):
        a = rng.standard_normal((2, 2)).astype(np.float32)
        b = rng.standard_normal((2, 2)).astype(np.float32)
        run = SystolicArray(2, 2).execute(b, a)
        assert np.array_equal(run.output, matmul_bf16_fp32(a, b))


class TestLatencyClosedForm:
    @pytest.mark.parametrize(
        "rows,cols,m", [(2, 2, 2), (4, 4, 8), (8, 4, 16), (32, 16, 16), (3, 5, 7)]
    )
    def test_execute_latency_equals_eq1(self, rng, rows, cols, m):
        a = rng.standard_normal((m, rows)).astype(np.float32)
        b = rng.standard_normal((rows, cols)).astype(np.float32)
        run = SystolicArray(rows, cols).execute(b, a)
        assert run.total_cycles == fold_latency(tk=rows, tm=m, tn=cols)

    def test_paper_configuration_is_95_cycles(self, rng):
        a = rng.standard_normal((16, 32)).astype(np.float32)
        b = rng.standard_normal((32, 16)).astype(np.float32)
        run = SystolicArray(32, 16).execute(b, a)
        assert run.total_cycles == 95

    def test_total_macs_equal_mnk(self, rng):
        m, rows, cols = 5, 4, 3
        a = rng.standard_normal((m, rows)).astype(np.float32)
        b = rng.standard_normal((rows, cols)).astype(np.float32)
        run = SystolicArray(rows, cols).execute(b, a)
        assert run.total_macs == m * rows * cols


class TestAccumulation:
    def test_c_initial_values_accumulate(self, rng):
        a = rng.standard_normal((4, 4)).astype(np.float32)
        b = rng.standard_normal((4, 4)).astype(np.float32)
        c = rng.standard_normal((4, 4)).astype(np.float32)
        run = SystolicArray(4, 4).execute(b, a, c)
        assert np.array_equal(run.output, matmul_bf16_fp32(a, b, c))

    def test_weight_reuse_stream(self, rng):
        # Functional WLBP: stream twice without reloading weights.
        array = SystolicArray(4, 4)
        b = rng.standard_normal((4, 4)).astype(np.float32)
        array.load_weights(b)
        a1 = rng.standard_normal((4, 4)).astype(np.float32)
        a2 = rng.standard_normal((4, 4)).astype(np.float32)
        out1 = array.stream(a1).output
        out2 = array.stream(a2).output
        assert np.array_equal(out1, matmul_bf16_fp32(a1, b))
        assert np.array_equal(out2, matmul_bf16_fp32(a2, b))

    def test_stream_before_load_rejected(self, rng):
        with pytest.raises(SimError):
            SystolicArray(4, 4).stream(np.zeros((4, 4), dtype=np.float32))


class TestDoubleMultiplier:
    def test_dm_covers_double_k(self, rng):
        array = SystolicArray(4, 4, pe=DM_PE)
        assert array.k_extent == 8
        a = rng.standard_normal((4, 8)).astype(np.float32)
        b = rng.standard_normal((8, 4)).astype(np.float32)
        run = array.execute(b, a)
        assert np.array_equal(run.output, matmul_bf16_fp32_chained(a, b, chains=2))

    def test_dm_close_to_plain_oracle(self, rng):
        array = SystolicArray(8, 4, pe=DM_PE)
        a = rng.standard_normal((8, 16)).astype(np.float32)
        b = rng.standard_normal((16, 4)).astype(np.float32)
        run = array.execute(b, a)
        assert np.allclose(run.output, matmul_bf16_fp32(a, b), rtol=1e-5, atol=1e-5)

    def test_dm_latency_includes_merge_cycle(self, rng):
        # 16x16 DM array: WL 16 + stream (16+16+16-1) + 1 merge = 64.
        a = rng.standard_normal((16, 32)).astype(np.float32)
        b = rng.standard_normal((32, 16)).astype(np.float32)
        run = SystolicArray(16, 16, pe=DM_PE).execute(b, a)
        assert run.total_cycles == 64
        assert run.macs_per_pe_cycle == 2

    def test_dm_with_accumulator(self, rng):
        array = SystolicArray(4, 4, pe=DM_PE)
        a = rng.standard_normal((4, 8)).astype(np.float32)
        b = rng.standard_normal((8, 4)).astype(np.float32)
        c = rng.standard_normal((4, 4)).astype(np.float32)
        run = array.execute(b, a, c)
        assert np.array_equal(run.output, matmul_bf16_fp32_chained(a, b, c, chains=2))


class TestDoubleBuffering:
    def test_db_halves_weight_load(self):
        array = SystolicArray(32, 16, pe=DB_PE)
        wl = array.load_weights(np.zeros((32, 16), dtype=np.float32))
        assert wl == 16

    def test_shadow_load_and_swap(self, rng):
        array = SystolicArray(4, 4, pe=DB_PE)
        b1 = rng.standard_normal((4, 4)).astype(np.float32)
        b2 = rng.standard_normal((4, 4)).astype(np.float32)
        a = rng.standard_normal((4, 4)).astype(np.float32)
        array.load_weights(b1)
        array.load_shadow_weights(b2)
        # Active weights still b1 until the swap.
        assert np.array_equal(array.stream(a).output, matmul_bf16_fp32(a, b1))
        array.swap_weight_buffers()
        assert np.array_equal(array.stream(a).output, matmul_bf16_fp32(a, b2))

    def test_shadow_on_single_buffer_rejected(self):
        with pytest.raises(SimError):
            SystolicArray(4, 4).load_shadow_weights(np.zeros((4, 4), dtype=np.float32))

    def test_swap_without_shadow_rejected(self):
        array = SystolicArray(4, 4, pe=DB_PE)
        with pytest.raises(SimError):
            array.swap_weight_buffers()


class TestShapeChecking:
    def test_wrong_weight_shape(self):
        with pytest.raises(SimError):
            SystolicArray(4, 4).load_weights(np.zeros((8, 4), dtype=np.float32))

    def test_wrong_a_shape(self):
        array = SystolicArray(4, 4)
        array.load_weights(np.zeros((4, 4), dtype=np.float32))
        with pytest.raises(SimError):
            array.stream(np.zeros((4, 8), dtype=np.float32))

    def test_wrong_c_shape(self):
        array = SystolicArray(4, 4)
        array.load_weights(np.zeros((4, 4), dtype=np.float32))
        with pytest.raises(SimError):
            array.stream(
                np.zeros((4, 4), dtype=np.float32), np.zeros((2, 4), dtype=np.float32)
            )


@settings(max_examples=25, deadline=None)
@given(
    rows=st.integers(1, 6),
    cols=st.integers(1, 6),
    m=st.integers(1, 6),
    pe=st.sampled_from([BASELINE_PE, DB_PE, DM_PE, DMDB_PE]),
    seed=st.integers(0, 2**31),
)
def test_array_matches_oracle_property(rows, cols, m, pe, seed):
    """Any small array, any PE variant: bit-exact vs the matching oracle and
    latency equal to the closed form."""
    rng = np.random.default_rng(seed)
    array = SystolicArray(rows, cols, pe=pe)
    k = array.k_extent
    a = rng.standard_normal((m, k)).astype(np.float32)
    b = rng.standard_normal((k, cols)).astype(np.float32)
    c = rng.standard_normal((m, cols)).astype(np.float32)
    run = array.execute(b, a, c)
    expected = matmul_bf16_fp32_chained(a, b, c, chains=pe.psum_chains)
    assert np.array_equal(run.output, expected)
    wl = -(-rows // array.wl_rows_per_cycle)
    extra = 1 if pe.is_double_multiplier else 0
    assert run.total_cycles == wl + m + rows + cols - 1 + extra
    assert run.total_macs == m * k * cols
