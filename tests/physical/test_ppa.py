"""Tests for performance-per-area."""

from __future__ import annotations

import pytest

from repro.cpu.result import SimResult
from repro.engine.designs import DESIGNS
from repro.physical.ppa import performance_per_area


def result(cycles: int) -> SimResult:
    return SimResult(
        design="d", program="p", cycles=cycles, instructions=1, mm_count=1,
        bypass_count=0, weight_loads=1, engine_busy_cycles=1, clock_mhz=2000,
    )


def test_baseline_ppa_is_one():
    base = DESIGNS["baseline"].config
    assert performance_per_area(result(100), base, result(100), base) == pytest.approx(1.0)


def test_speedup_discounted_by_area():
    base = DESIGNS["baseline"].config
    dmdb = DESIGNS["rasa-dmdb-wls"].config
    # 5x speedup on a ~5.5 %-bigger array -> PPA just under 5.
    ppa = performance_per_area(result(200), dmdb, result(1000), base)
    assert 4.6 < ppa < 4.9


def test_fig6_trend_follows_runtime():
    # "performance per area shows the similar trend with runtime" (Sec. V).
    base = DESIGNS["baseline"].config
    runtimes = {"rasa-db-wls": 219, "rasa-dm-wlbp": 445, "rasa-dmdb-wls": 208}
    ppas = {
        key: performance_per_area(result(cycles), DESIGNS[key].config, result(1000), base)
        for key, cycles in runtimes.items()
    }
    assert ppas["rasa-dmdb-wls"] > ppas["rasa-db-wls"] > ppas["rasa-dm-wlbp"]
