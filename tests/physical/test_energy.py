"""Tests for the energy model's efficiency predictions."""

from __future__ import annotations

import pytest

from repro.cpu.result import SimResult
from repro.engine.designs import DESIGNS
from repro.physical.energy import EnergyModel

BASELINE = DESIGNS["baseline"].config


def result_for(design: str, cycles: int, mm: int, bypass: int = 0) -> SimResult:
    return SimResult(
        design=design,
        program="synthetic",
        cycles=cycles,
        instructions=mm * 3,
        mm_count=mm,
        bypass_count=bypass,
        weight_loads=mm - bypass,
        engine_busy_cycles=cycles // 4,
        clock_mhz=2000,
    )


@pytest.fixture(scope="module")
def model() -> EnergyModel:
    return EnergyModel()


class TestEfficiencyRatios:
    """With the paper's normalized runtimes as input, the model must return
    efficiency gains close to the published 4.38x / 2.19x / 4.59x."""

    def test_db_efficiency(self, model):
        mm = 10_000
        base = result_for("baseline", cycles=mm * 95 * 4, mm=mm)
        db = result_for("rasa-db-wls", cycles=int(mm * 95 * 4 * 0.219), mm=mm, bypass=mm // 2)
        eff = model.efficiency_vs(db, DESIGNS["rasa-db-wls"].config, base, BASELINE)
        assert eff == pytest.approx(4.38, rel=0.05)

    def test_dm_efficiency(self, model):
        mm = 10_000
        base = result_for("baseline", cycles=mm * 95 * 4, mm=mm)
        dm = result_for("rasa-dm-wlbp", cycles=int(mm * 95 * 4 * 0.445), mm=mm, bypass=mm // 2)
        eff = model.efficiency_vs(dm, DESIGNS["rasa-dm-wlbp"].config, base, BASELINE)
        assert eff == pytest.approx(2.19, rel=0.05)

    def test_dmdb_efficiency(self, model):
        mm = 10_000
        base = result_for("baseline", cycles=mm * 95 * 4, mm=mm)
        dmdb = result_for(
            "rasa-dmdb-wls", cycles=int(mm * 95 * 4 * 0.208), mm=mm, bypass=mm // 2
        )
        eff = model.efficiency_vs(dmdb, DESIGNS["rasa-dmdb-wls"].config, base, BASELINE)
        assert eff == pytest.approx(4.59, rel=0.06)


class TestBreakdownStructure:
    def test_static_dominates(self, model):
        # The Nangate-15nm arrays are static/clock dominated (Sec. V's
        # efficiency numbers track area x runtime almost exactly).
        result = result_for("baseline", cycles=95 * 4 * 1000, mm=1000)
        breakdown = model.run_energy(result, BASELINE)
        assert breakdown.static_fraction > 0.8

    def test_bypass_saves_weight_load_energy(self, model):
        mm = 1000
        no_bypass = result_for("rasa-wlbp", cycles=400_000, mm=mm, bypass=0)
        half = result_for("rasa-wlbp", cycles=400_000, mm=mm, bypass=mm // 2)
        config = DESIGNS["rasa-wlbp"].config
        e_no = model.run_energy(no_bypass, config)
        e_half = model.run_energy(half, config)
        assert e_half.weight_load_j < e_no.weight_load_j
        assert e_half.total_j < e_no.total_j

    def test_energy_scales_with_runtime(self, model):
        short = result_for("baseline", cycles=100_000, mm=100)
        long = result_for("baseline", cycles=1_000_000, mm=100)
        assert model.run_energy(long, BASELINE).static_j == pytest.approx(
            10 * model.run_energy(short, BASELINE).static_j
        )
