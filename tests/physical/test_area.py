"""Tests for the area model against the paper's published numbers."""

from __future__ import annotations

import pytest

from repro.engine.designs import DESIGNS
from repro.physical.area import ArrayAreaModel, area_report
from repro.systolic.pe import BASELINE_PE, DB_PE, DM_PE, DMDB_PE

BASELINE = DESIGNS["baseline"].config
DB = DESIGNS["rasa-db-wls"].config
DM = DESIGNS["rasa-dm-wlbp"].config
DMDB = DESIGNS["rasa-dmdb-wls"].config


@pytest.fixture(scope="module")
def model() -> ArrayAreaModel:
    return ArrayAreaModel()


class TestPaperOverheads:
    """Sec. V: DB +3.1 %, DM +2.6 %, DMDB +5.5 % over the baseline array."""

    def test_db_overhead(self, model):
        assert model.overhead_vs(DB, BASELINE) == pytest.approx(0.031, abs=0.003)

    def test_dm_overhead(self, model):
        assert model.overhead_vs(DM, BASELINE) == pytest.approx(0.026, abs=0.003)

    def test_dmdb_overhead(self, model):
        assert model.overhead_vs(DMDB, BASELINE) == pytest.approx(0.055, abs=0.003)

    def test_dmdb_total_calibrated(self, model):
        # The calibration anchor: "consuming a total 0.847mm2 in area".
        assert model.array_area_mm2(DMDB) == pytest.approx(0.847, abs=0.005)

    def test_die_fraction_plausible(self, model):
        # Baseline = 0.7 % of the die implies a ~115 mm^2 die — in the right
        # range for a Skylake GT2 4C part.
        die = model.estimated_die_mm2(BASELINE)
        assert 90 < die < 150


class TestComposition:
    def test_pe_area_ordering(self, model):
        base = model.pe_area(BASELINE_PE)
        assert model.pe_area(DB_PE) > base
        assert model.pe_area(DM_PE) > 1.8 * base  # two datapaths
        assert model.pe_area(DMDB_PE) > model.pe_area(DM_PE)

    def test_dm_array_fewer_pes(self, model):
        bd = model.breakdown(DM)
        assert bd.pe_count == 256
        assert bd.merge_row_area > 0
        assert model.breakdown(BASELINE).merge_row_area == 0

    def test_overhead_independent_of_layout_factor(self):
        from repro.physical.components import ComponentLibrary

        small = ArrayAreaModel(ComponentLibrary(layout_factor=1.0))
        big = ArrayAreaModel(ComponentLibrary(layout_factor=2.0))
        assert small.overhead_vs(DMDB, BASELINE) == pytest.approx(
            big.overhead_vs(DMDB, BASELINE)
        )


def test_area_report_renders():
    text = area_report({k: d.config for k, d in DESIGNS.items()})
    assert "baseline" in text and "mm^2" in text
    assert "+5." in text  # DMDB overhead appears
