"""Tests for engine configuration and derived geometry."""

from __future__ import annotations

import pytest

from repro.engine.config import ControlPolicy, EngineConfig
from repro.errors import ConfigError
from repro.systolic.pe import BASELINE_PE, DB_PE, DM_PE, DMDB_PE


class TestTileGeometry:
    def test_fixed_by_isa(self):
        config = EngineConfig()
        assert (config.tile_m, config.tile_n, config.tile_k) == (16, 16, 32)


class TestArrayGeometry:
    def test_baseline_32x16(self):
        config = EngineConfig(pe=BASELINE_PE)
        assert (config.phys_rows, config.phys_cols) == (32, 16)
        assert config.num_pes == 512
        assert config.num_multipliers == 512

    def test_dm_halves_rows_same_multipliers(self):
        # Sec. V: "We use a 32x16 array of PEs (16x16 if DM is applied)" with
        # "the same number of multipliers in all systolic arrays".
        config = EngineConfig(pe=DM_PE)
        assert (config.phys_rows, config.phys_cols) == (16, 16)
        assert config.num_pes == 256
        assert config.num_multipliers == 512

    def test_wl_rate(self):
        assert EngineConfig(pe=BASELINE_PE).wl_rows_per_cycle == 1
        assert EngineConfig(pe=DB_PE).wl_rows_per_cycle == 2
        assert EngineConfig(pe=DMDB_PE).wl_rows_per_cycle == 2


class TestLatencies:
    def test_serial_latencies(self):
        assert EngineConfig(pe=BASELINE_PE).serial_mm_latency == 95
        assert EngineConfig(pe=DB_PE).serial_mm_latency == 79
        assert EngineConfig(pe=DM_PE).serial_mm_latency == 64
        assert EngineConfig(pe=DMDB_PE).serial_mm_latency == 56

    def test_min_initiation_interval_is_tm(self):
        # "If we perfectly pipeline all rasa_mm, we complete a rasa_mm every
        # 16 cycles" (Sec. V).
        assert EngineConfig().min_initiation_interval == 16


class TestValidation:
    def test_wls_requires_db(self):
        with pytest.raises(ConfigError, match="double-buffered"):
            EngineConfig(pe=BASELINE_PE, control=ControlPolicy.WLS)
        with pytest.raises(ConfigError):
            EngineConfig(pe=DM_PE, control=ControlPolicy.WLS)
        EngineConfig(pe=DB_PE, control=ControlPolicy.WLS)  # fine
        EngineConfig(pe=DMDB_PE, control=ControlPolicy.WLS)  # fine

    def test_bad_clock(self):
        with pytest.raises(ConfigError):
            EngineConfig(clock_mhz=0)

    def test_bypass_property(self):
        assert not ControlPolicy.BASE.bypasses_on_reuse
        assert not ControlPolicy.PIPE.bypasses_on_reuse
        assert ControlPolicy.WLBP.bypasses_on_reuse
        assert ControlPolicy.WLS.bypasses_on_reuse

    def test_describe(self):
        text = EngineConfig(pe=DMDB_PE, control=ControlPolicy.WLS).describe()
        assert "16x16" in text and "wls" in text and "500" in text
