"""Tests for the MatrixEngine: functional + timing integration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.config import ControlPolicy, EngineConfig
from repro.engine.designs import DESIGNS
from repro.engine.engine import MatrixEngine
from repro.errors import ConfigError
from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import TileReg
from repro.tile.memory import TileMemory
from repro.workloads.codegen import build_gemm_kernel
from repro.workloads.gemm import GemmShape
from repro.workloads.reference import gemm_reference


def make_kernel_run(design_key, shape, rng, functional="oracle"):
    """Generate, execute, and verify one kernel; returns (engine, report, ok)."""
    config = DESIGNS[design_key].config
    kernel = build_gemm_kernel(shape)
    a = rng.standard_normal((shape.m, shape.k)).astype(np.float32)
    b = rng.standard_normal((shape.k, shape.n)).astype(np.float32)
    c = rng.standard_normal((shape.m, shape.n)).astype(np.float32)
    memory = TileMemory()
    kernel.write_inputs(memory, a, b, c)
    engine = MatrixEngine(config, functional=functional, memory=memory)
    report = engine.run(kernel.program)
    out = kernel.read_result(memory)
    ref = gemm_reference(a, b, c, chains=config.pe.psum_chains)
    return engine, report, np.array_equal(out, ref)


class TestFunctionalExactness:
    @pytest.mark.parametrize("key", sorted(DESIGNS))
    def test_every_design_bit_exact_oracle(self, key, rng):
        _, report, ok = make_kernel_run(key, GemmShape(m=48, n=32, k=64), rng)
        assert ok
        assert report.stats.mm_count == 3 * 2 * 2

    @pytest.mark.parametrize("key", ["baseline", "rasa-wlbp", "rasa-dmdb-wls"])
    def test_array_mode_bit_exact(self, key, rng):
        _, report, ok = make_kernel_run(
            key, GemmShape(m=32, n=32, k=32), rng, functional="array"
        )
        assert ok

    def test_unaligned_shape_padded_correctly(self, rng):
        _, _, ok = make_kernel_run("rasa-wlbp", GemmShape(m=21, n=19, k=45), rng)
        assert ok


class TestBypassAccounting:
    def test_bypasses_counted(self, rng):
        _, report, ok = make_kernel_run("rasa-wlbp", GemmShape(m=64, n=64, k=64), rng)
        assert ok
        # 2x2 blocking: half the mm's in each K step reuse the B register.
        assert report.stats.bypass_rate == pytest.approx(0.5)

    def test_base_never_bypasses(self, rng):
        _, report, _ = make_kernel_run("baseline", GemmShape(m=64, n=64, k=64), rng)
        assert report.stats.bypass_count == 0

    def test_off_mode_matches_oracle_mode_timing(self, rng):
        shape = GemmShape(m=64, n=64, k=64)
        _, with_data, _ = make_kernel_run("rasa-wlbp", shape, rng)
        config = DESIGNS["rasa-wlbp"].config
        kernel = build_gemm_kernel(shape)
        engine = MatrixEngine(config, functional="off")
        report = engine.run(kernel.program)
        assert report.stats.bypass_count == with_data.stats.bypass_count
        assert report.total_cycles == with_data.total_cycles


class TestEngineTiming:
    def test_engine_bound_runtime_ratio(self, rng):
        """Engine-only cycles reflect the design II ratios."""
        shape = GemmShape(m=128, n=128, k=128)
        kernel = build_gemm_kernel(shape)
        cycles = {}
        for key in ("baseline", "rasa-dmdb-wls"):
            engine = MatrixEngine(DESIGNS[key].config, functional="off")
            cycles[key] = engine.run(kernel.program).total_cycles
        ratio = cycles["rasa-dmdb-wls"] / cycles["baseline"]
        assert ratio == pytest.approx(16 / 95, rel=0.08)

    def test_schedule_returned_in_order(self, rng):
        _, report, _ = make_kernel_run("rasa-db-wls", GemmShape(m=32, n=32, k=64), rng)
        indices = [t.index for t in report.schedule]
        assert indices == sorted(indices)


class TestValidation:
    def test_bad_functional_mode(self):
        with pytest.raises(ConfigError):
            MatrixEngine(EngineConfig(), functional="magic")

    def test_reset_clears_state(self, rng):
        engine = MatrixEngine(EngineConfig(control=ControlPolicy.WLBP))
        b = ProgramBuilder()
        t = [TileReg(i) for i in range(8)]
        b.tl(t[0], 0x0).tl(t[4], 0x400).tl(t[6], 0x800)
        b.mm(t[0], t[6], t[4]).mm(t[0], t[6], t[4])
        program = b.build()
        first = engine.run(program)
        assert first.stats.bypass_count == 1
        engine.reset()
        second = engine.run(program)
        assert second.stats.bypass_count == 1  # state did not leak


class TestStats:
    def test_counters(self, rng):
        _, report, _ = make_kernel_run("rasa-wlbp", GemmShape(m=32, n=32, k=64), rng)
        s = report.stats
        assert s.tile_loads > 0 and s.tile_stores > 0
        assert s.mac_count == s.mm_count * 16 * 16 * 32
        assert s.weight_load_count + s.bypass_count == s.mm_count
        assert s.mm_throughput > 0
