"""Tests for the design registry."""

from __future__ import annotations

import pytest

from repro.engine.config import ControlPolicy
from repro.engine.designs import (
    BASELINE_DESIGN,
    DESIGNS,
    FIG5_DESIGNS,
    FIG6_DESIGNS,
    get_design,
)
from repro.errors import ConfigError


def test_eight_designs_total():
    # "We evaluate the baseline design ... and seven RASA-based designs."
    assert len(DESIGNS) == 8
    assert len(FIG5_DESIGNS) == 7
    assert "baseline" not in FIG5_DESIGNS


def test_baseline_is_serial():
    assert BASELINE_DESIGN.config.control is ControlPolicy.BASE
    assert BASELINE_DESIGN.is_baseline


def test_paper_named_designs_present():
    for key in ("rasa-pipe", "rasa-wlbp", "rasa-db-wls", "rasa-dm-wlbp",
                "rasa-dmdb-wls", "rasa-dm-pipe"):
        assert key in DESIGNS


def test_fig6_designs():
    # Fig. 6 compares each data optimization under its best control scheme.
    assert FIG6_DESIGNS == ["rasa-db-wls", "rasa-dm-wlbp", "rasa-dmdb-wls"]


def test_names_encode_optimizations():
    for key, design in DESIGNS.items():
        if "wls" in key:
            assert design.config.control is ControlPolicy.WLS
        if "dm" in key:
            assert design.config.pe.is_double_multiplier
        if "db" in key or "wls" in key:
            assert design.config.pe.is_double_buffered


def test_equal_multiplier_budget():
    counts = {d.config.num_multipliers for d in DESIGNS.values()}
    assert counts == {512}


def test_get_design_error_lists_known():
    with pytest.raises(ConfigError, match="baseline"):
        get_design("rasa-quantum")
