"""Tests for the ASCII pipeline diagram renderer."""

from __future__ import annotations

from repro.engine.config import ControlPolicy, EngineConfig
from repro.engine.diagram import render_pipeline
from repro.engine.scheduler import EngineScheduler
from repro.systolic.pe import DB_PE


def schedule_for(policy, keys, pe=None):
    config = EngineConfig(control=policy) if pe is None else EngineConfig(pe=pe, control=policy)
    scheduler = EngineScheduler(config)
    return [scheduler.schedule_mm(0, 0, key) for key in keys]


def test_base_lanes_serialize():
    text = render_pipeline(schedule_for(ControlPolicy.BASE, [0, 1]), max_width=250)
    lines = [ln for ln in text.splitlines() if ln.startswith("mm")]
    assert len(lines) == 2
    # Second lane's W starts after the first lane's D ends.
    first_d_end = max(i for i, ch in enumerate(lines[0]) if ch == "D")
    second_w_start = min(i for i, ch in enumerate(lines[1]) if ch == "W")
    assert second_w_start > first_d_end


def test_pipe_overlaps_wl_with_drain():
    text = render_pipeline(schedule_for(ControlPolicy.PIPE, [0, 1]), max_width=250)
    lines = [ln for ln in text.splitlines() if ln.startswith("mm")]
    first_d = {i for i, ch in enumerate(lines[0]) if ch == "D"}
    second_w = {i for i, ch in enumerate(lines[1]) if ch == "W"}
    assert first_d & second_w  # the PIPE overlap is visible


def test_bypassed_lane_has_no_w_and_star():
    text = render_pipeline(schedule_for(ControlPolicy.WLBP, [0, 0]), max_width=250)
    lines = [ln for ln in text.splitlines() if ln.startswith("mm")]
    assert "*" in lines[1]
    assert "W" not in lines[1][8:]


def test_wls_shadow_load_overlaps_previous_ff():
    text = render_pipeline(
        schedule_for(ControlPolicy.WLS, [0, 1], pe=DB_PE), max_width=250
    )
    lines = [ln for ln in text.splitlines() if ln.startswith("mm")]
    first_f = {i for i, ch in enumerate(lines[0]) if ch == "F"}
    second_w = {i for i, ch in enumerate(lines[1]) if ch == "W"}
    assert first_f & second_w  # prefetch during the previous FF


def test_clipping_and_legend():
    text = render_pipeline(schedule_for(ControlPolicy.BASE, list(range(5))), max_width=60)
    assert "more cycles" in text
    assert "W=WeightLoad" in text


def test_empty_schedule():
    assert render_pipeline([]) == "(empty schedule)"
