"""Tests for the sub-stage scheduler: the heart of RASA-Control."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.config import ControlPolicy, EngineConfig
from repro.engine.designs import DESIGNS
from repro.engine.scheduler import EngineScheduler, check_schedule_legality
from repro.errors import ScheduleError
from repro.systolic.pe import DB_PE, DM_PE, DMDB_PE


def run_stream(config, keys, ready=0):
    """Schedule a stream of mm's with the given weight keys; return times."""
    scheduler = EngineScheduler(config)
    times = [scheduler.schedule_mm(ready, ready, key) for key in keys]
    check_schedule_legality(times, config)
    return scheduler, times


def steady_ii(times):
    return times[-1].ff_start - times[-2].ff_start


class TestSteadyStateIIs:
    """The initiation intervals every Fig. 5 ratio rests on."""

    def test_base_is_serial(self):
        _, times = run_stream(EngineConfig(control=ControlPolicy.BASE), range(8))
        assert steady_ii(times) == 95
        # BASE never overlaps: each WL starts exactly at the previous DR end.
        for prev, cur in zip(times, times[1:]):
            assert cur.wl_start == prev.dr_end

    def test_pipe_overlaps_drain(self):
        _, times = run_stream(EngineConfig(control=ControlPolicy.PIPE), range(8))
        assert steady_ii(times) == 79  # WL(32) + FF(16) + FS(31)
        for prev, cur in zip(times, times[1:]):
            assert cur.wl_start == prev.fs_end  # overlapped with DR only

    def test_wlbp_reuse_reaches_tm(self):
        _, times = run_stream(EngineConfig(control=ControlPolicy.WLBP), [0] * 8)
        assert steady_ii(times) == 16
        assert all(t.bypassed for t in times[1:])
        assert not times[0].bypassed

    def test_wlbp_no_reuse_degrades_to_pipe(self):
        _, times = run_stream(EngineConfig(control=ControlPolicy.WLBP), range(8))
        assert steady_ii(times) == 79
        assert not any(t.bypassed for t in times)

    def test_wls_reaches_tm_without_reuse(self):
        config = EngineConfig(pe=DB_PE, control=ControlPolicy.WLS)
        _, times = run_stream(config, range(8))
        assert steady_ii(times) == 16
        assert not any(t.bypassed for t in times)

    def test_dm_pipe(self):
        config = EngineConfig(pe=DM_PE, control=ControlPolicy.PIPE)
        _, times = run_stream(config, range(8))
        assert steady_ii(times) == 47  # WL(16) + FF(16) + FS(15)

    def test_dmdb_wls_reaches_tm(self):
        config = EngineConfig(pe=DMDB_PE, control=ControlPolicy.WLS)
        _, times = run_stream(config, range(8))
        assert steady_ii(times) == 16

    def test_alternating_reuse_pattern(self):
        # Algorithm 1's steady state: reuse every other mm -> (79+16)/2.
        keys = [0, 0, 1, 1, 2, 2, 3, 3]
        scheduler, times = run_stream(EngineConfig(control=ControlPolicy.WLBP), keys)
        assert scheduler.bypass_count == 4
        span = times[-1].ff_start - times[1].ff_start
        assert span == 3 * 79 + 3 * 16


class TestWlbpAblation:
    def test_restricted_ff_overlap(self):
        # E9: without the FF/FS overlap, a bypassed FF waits for the DR start.
        config = EngineConfig(control=ControlPolicy.WLBP, wlbp_ff_overlaps_fs=False)
        _, times = run_stream(config, [0] * 8)
        assert steady_ii(times) == 47  # FF(16) + FS(31)


class TestDependencies:
    def test_ready_time_delays_wl(self):
        scheduler = EngineScheduler(EngineConfig(control=ControlPolicy.PIPE))
        t = scheduler.schedule_mm(ready_b=100, ready_ac=0, weight_key=0)
        assert t.wl_start == 100

    def test_ready_ac_delays_ff_not_wl(self):
        scheduler = EngineScheduler(EngineConfig(control=ControlPolicy.PIPE))
        t = scheduler.schedule_mm(ready_b=0, ready_ac=200, weight_key=0)
        assert t.wl_start == 0
        assert t.ff_start == 200

    def test_stages_contiguous_from_ff(self):
        for key in DESIGNS:
            config = DESIGNS[key].config
            _, times = run_stream(config, [i // 2 for i in range(6)])
            d = config.stages
            for t in times:
                assert t.ff_end - t.ff_start == d.ff
                assert t.fs_end - t.ff_end == d.fs
                assert t.dr_end - t.fs_end == d.dr
                assert t.complete - t.dr_end == d.extra


class TestResidency:
    def test_invalidate_weights(self):
        scheduler = EngineScheduler(EngineConfig(control=ControlPolicy.WLBP))
        scheduler.schedule_mm(0, 0, ("b", 1))
        scheduler.invalidate_weights(("b", 1))
        t = scheduler.schedule_mm(0, 0, ("b", 1))
        assert not t.bypassed

    def test_different_key_no_bypass(self):
        scheduler = EngineScheduler(EngineConfig(control=ControlPolicy.WLBP))
        scheduler.schedule_mm(0, 0, ("b", 1))
        t = scheduler.schedule_mm(0, 0, ("b", 2))
        assert not t.bypassed

    def test_counters(self):
        scheduler, _ = run_stream(
            EngineConfig(control=ControlPolicy.WLBP), [0, 0, 1, 1]
        )
        assert scheduler.mm_count == 4
        assert scheduler.bypass_count == 2
        assert scheduler.weight_load_count == 2

    def test_reset(self):
        scheduler, _ = run_stream(EngineConfig(control=ControlPolicy.WLBP), [0, 0])
        scheduler.reset()
        assert scheduler.mm_count == 0
        assert scheduler.resident_weights is None


class TestLegalityChecker:
    def test_detects_mac_overlap(self):
        config = EngineConfig(control=ControlPolicy.WLBP)
        _, times = run_stream(config, [0, 0])
        # Forge an illegal second FF start (II < TM).
        import dataclasses

        bad = dataclasses.replace(
            times[1],
            ff_start=times[0].ff_start + 8,
            ff_end=times[0].ff_start + 24,
            fs_end=times[0].ff_start + 24 + 31,
            dr_end=times[0].ff_start + 24 + 31 + 16,
            complete=times[0].ff_start + 24 + 31 + 16,
            wl_start=times[0].ff_start + 8,
            wl_end=times[0].ff_start + 8,
        )
        with pytest.raises(ScheduleError, match="MAC-window overlap"):
            check_schedule_legality([times[0], bad], config)

    def test_detects_weight_disturbance(self):
        # A WL that starts during the previous MAC window on a single-buffered
        # design must be flagged.
        config = EngineConfig(control=ControlPolicy.PIPE)
        scheduler = EngineScheduler(config)
        t0 = scheduler.schedule_mm(0, 0, 0)
        import dataclasses

        wl_start = t0.ff_start + 5  # way too early
        bad = dataclasses.replace(
            t0,
            index=1,
            wl_start=wl_start,
            wl_end=wl_start + 32,
            ff_start=t0.ff_start + 80,
            ff_end=t0.ff_start + 96,
            fs_end=t0.ff_start + 127,
            dr_end=t0.ff_start + 143,
            complete=t0.ff_start + 143,
        )
        with pytest.raises(ScheduleError, match="disturbance"):
            check_schedule_legality([t0, bad], config)

    def test_all_policies_produce_legal_schedules(self):
        patterns = {
            "all_same": [0] * 12,
            "all_diff": list(range(12)),
            "algorithm1": [i // 2 for i in range(12)],
            "irregular": [0, 1, 1, 0, 2, 2, 2, 3, 0, 0, 4, 4],
        }
        for key in DESIGNS:
            for keys in patterns.values():
                run_stream(DESIGNS[key].config, keys)  # raises on violation


@settings(max_examples=40, deadline=None)
@given(
    design=st.sampled_from(sorted(DESIGNS)),
    keys=st.lists(st.integers(0, 3), min_size=1, max_size=20),
    readies=st.lists(st.integers(0, 50), min_size=20, max_size=20),
)
def test_scheduler_always_legal(design, keys, readies):
    """Property: any key stream with any ready times yields a legal schedule
    and monotonically non-decreasing stage times."""
    config = DESIGNS[design].config
    scheduler = EngineScheduler(config)
    times = []
    for i, key in enumerate(keys):
        times.append(scheduler.schedule_mm(readies[i], readies[i], key))
    check_schedule_legality(times, config)
    for prev, cur in zip(times, times[1:]):
        assert cur.ff_start >= prev.ff_start + config.tile_m
        assert cur.dr_start >= prev.dr_end
