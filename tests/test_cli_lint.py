"""CLI surface of the static verifier: ``repro lint`` and ``repro models --lint``."""

import json

from repro.cli import main


class TestLintCommand:
    def test_adhoc_gemm_clean(self, capsys):
        assert main(["lint", "--m", "64", "--n", "64", "--k", "64"]) == 0
        out = capsys.readouterr().out
        assert "static verification" in out
        assert "0 diagnostic(s)" in out
        assert "0 counter mismatch(es) over 8 design(s)" in out

    def test_suite_lint_clean(self, capsys):
        assert main(["lint", "--workloads", "table1", "--scale", "8"]) == 0
        out = capsys.readouterr().out
        assert "ok" in out
        assert "MISMATCH" not in out

    def test_no_oracle_skips_cross_check(self, capsys):
        assert main(
            ["lint", "--m", "64", "--n", "64", "--k", "64", "--no-oracle"]
        ) == 0
        assert "oracle skipped" in capsys.readouterr().out

    def test_json_document(self, capsys):
        assert main(
            ["lint", "--m", "50", "--n", "70", "--k", "90", "--json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["total_diagnostics"] == 0
        assert doc["total_counter_mismatches"] == 0
        assert len(doc["designs"]) == 8
        (program,) = doc["programs"]
        assert (program["m"], program["n"], program["k"]) == (50, 70, 90)
        assert program["diagnostics"] == []
        assert program["counters"]["mm_count"] > 0
        assert program["hazards"]["longest_raw_chain"] > 0

    def test_designs_subset(self, capsys):
        assert main(
            ["lint", "--m", "64", "--n", "64", "--k", "64",
             "--designs", "baseline,rasa-dmdb-wls"]
        ) == 0
        assert "2 design(s)" in capsys.readouterr().out

    def test_unknown_design_rejected(self, capsys):
        assert main(
            ["lint", "--m", "64", "--n", "64", "--k", "64",
             "--designs", "rasa-frobnicate"]
        ) == 1
        assert capsys.readouterr().err.startswith("error:")

    def test_partial_mnk_rejected(self, capsys):
        assert main(["lint", "--m", "64"]) == 1
        assert "together" in capsys.readouterr().err

    def test_mnk_and_workloads_mutually_exclusive(self, capsys):
        assert main(
            ["lint", "--m", "64", "--n", "64", "--k", "64",
             "--workloads", "table1"]
        ) == 1
        assert "mutually exclusive" in capsys.readouterr().err

    def test_shared_shapes_dedup_across_suites(self, capsys):
        assert main(
            ["lint", "--workloads", "resnet50,resnet50-train", "--scale", "16",
             "--no-oracle", "--json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        dims = [(p["m"], p["n"], p["k"]) for p in doc["programs"]]
        assert len(dims) == len(set(dims))
        shared = [p for p in doc["programs"] if len(p["suites"]) > 1]
        assert shared, "forward conv GEMMs should appear in both suites"


class TestModelsLint:
    def test_models_lint_clean(self, capsys):
        assert main(["models", "--lint", "--scale", "16"]) == 0
        out = capsys.readouterr().out
        assert "diags" in out
        assert "lint:" in out
        assert "0 diagnostic(s)" in out

    def test_models_without_lint_has_no_diags_column(self, capsys):
        assert main(["models"]) == 0
        assert "diags" not in capsys.readouterr().out
