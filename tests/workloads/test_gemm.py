"""Tests for GEMM shape arithmetic."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, WorkloadError
from repro.workloads.gemm import GemmShape, validate_padded


class TestPadding:
    def test_aligned_untouched(self):
        s = GemmShape(m=64, n=32, k=96)
        assert (s.padded_m, s.padded_n, s.padded_k) == (64, 32, 96)

    def test_rounds_up(self):
        s = GemmShape(m=17, n=1, k=33)
        assert (s.padded_m, s.padded_n, s.padded_k) == (32, 16, 64)

    def test_tile_counts(self):
        s = GemmShape(m=64, n=48, k=96)
        assert (s.m_tiles, s.n_tiles, s.k_tiles) == (4, 3, 3)
        assert s.mm_count == 36

    def test_paper_fc_example(self):
        # DLRM-1: 512x1024x1024 -> 32 * 64 * 32 = 65536 rasa_mm.
        s = GemmShape(m=512, n=1024, k=1024)
        assert s.mm_count == 65_536

    def test_padding_waste(self):
        assert GemmShape(m=16, n=16, k=32).padding_waste == 0.0
        assert GemmShape(m=8, n=16, k=32).padding_waste == pytest.approx(0.5)

    def test_macs(self):
        assert GemmShape(m=2, n=3, k=4).macs == 24


class TestScaling:
    def test_scale_one_is_identity(self):
        s = GemmShape(m=100, n=200, k=300, name="x")
        assert s.scaled(1) is s

    def test_scale_divides(self):
        s = GemmShape(m=1024, n=512, k=256, name="x").scaled(4)
        assert (s.m, s.n, s.k) == (256, 128, 64)
        assert "s4" in s.name

    def test_scale_floors_at_block(self):
        s = GemmShape(m=48, n=48, k=64).scaled(100)
        assert s.m >= 32 and s.n >= 32 and s.k >= 32

    def test_bad_factor(self):
        with pytest.raises(ConfigError):
            GemmShape(m=1, n=1, k=1).scaled(0)


class TestValidation:
    def test_validate_padded(self):
        validate_padded(GemmShape(m=32, n=32, k=32))
        with pytest.raises(WorkloadError):
            validate_padded(GemmShape(m=33, n=32, k=32))

    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigError):
            GemmShape(m=0, n=1, k=1)


class TestTilePadded:
    def test_aligned_unlabeled_shape_is_identity(self):
        s = GemmShape(m=32, n=32, k=64)
        assert s.tile_padded() is s

    def test_pads_and_strips_label(self):
        s = GemmShape(m=9, n=17, k=33, name="odd").tile_padded()
        assert (s.m, s.n, s.k) == (16, 32, 64)
        assert s.name == ""

    def test_sub_tile_batches_collapse(self):
        padded = {GemmShape(m=b, n=64, k=64).tile_padded() for b in (1, 4, 16)}
        assert len(padded) == 1
