"""Tests for the Table I layer catalog — dimensions straight from the paper."""

from __future__ import annotations

import pytest

from repro.workloads.layers import FC_LAYER_NAMES, TABLE1_LAYERS, ConvLayer


def test_table1_complete():
    assert len(TABLE1_LAYERS) == 9
    assert set(FC_LAYER_NAMES) == {
        "DLRM-1", "DLRM-2", "DLRM-3", "BERT-1", "BERT-2", "BERT-3"
    }


class TestConvGemmDims:
    def test_resnet50_1(self):
        g = TABLE1_LAYERS["ResNet50-1"].gemm()
        # M = 32*56*56, N = 64 filters, K = 64*1*1.
        assert (g.m, g.n, g.k) == (100_352, 64, 64)

    def test_resnet50_2(self):
        g = TABLE1_LAYERS["ResNet50-2"].gemm()
        assert (g.m, g.n, g.k) == (100_352, 64, 576)  # K = 64*3*3

    def test_resnet50_3(self):
        g = TABLE1_LAYERS["ResNet50-3"].gemm()
        assert (g.m, g.n, g.k) == (32 * 14 * 14, 512, 1024)


class TestFCGemmDims:
    @pytest.mark.parametrize(
        "name,m,n,k",
        [
            ("DLRM-1", 512, 1024, 1024),
            ("DLRM-2", 512, 64, 1024),
            ("DLRM-3", 512, 2048, 2048),
            ("BERT-1", 256, 768, 768),
            ("BERT-2", 256, 768, 3072),
            ("BERT-3", 256, 3072, 768),
        ],
    )
    def test_dims(self, name, m, n, k):
        g = TABLE1_LAYERS[name].gemm()
        assert (g.m, g.n, g.k) == (m, n, k)


class TestBatchOverride:
    def test_with_batch(self):
        layer = TABLE1_LAYERS["DLRM-1"].with_batch(64)
        assert layer.gemm().m == 64
        assert layer.gemm().k == 1024  # unchanged

    def test_batches_leq_16_same_mm_count(self):
        # Fig. 7's first observation: batches 1..16 use the same number of
        # rasa_mm since 16 rows is the smallest granularity of work.
        counts = {
            b: TABLE1_LAYERS["BERT-1"].with_batch(b).gemm().mm_count
            for b in (1, 2, 4, 8, 16)
        }
        assert len(set(counts.values())) == 1

    def test_str(self):
        assert "NIN=1024" in str(TABLE1_LAYERS["DLRM-1"])
        assert "R=S=3" in str(TABLE1_LAYERS["ResNet50-2"])
