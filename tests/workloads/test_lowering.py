"""Tests for im2col convolution lowering against the direct-conv oracle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.layers import ConvLayer
from repro.workloads.lowering import (
    conv_dgrad,
    conv_reference,
    conv_wgrad,
    dgrad_filters,
    filters_to_gemm_b,
    gemm_output_to_conv,
    im2col,
)
from repro.workloads.reference import (
    conv_dgrad_reference,
    conv_wgrad_reference,
)


def lower_and_multiply(inputs, weights):
    """The full lowering path in float64 (no BF16): im2col @ reshaped filters."""
    n, c, x, y = inputs.shape
    k, _, r, s = weights.shape
    a = im2col(inputs.astype(np.float64), r, s)
    b = filters_to_gemm_b(weights.astype(np.float64))
    return gemm_output_to_conv(a @ b, n, x, y)


class TestLoweringExactness:
    @pytest.mark.parametrize("r,s", [(1, 1), (3, 3), (5, 3)])
    def test_matches_direct_convolution(self, rng, r, s):
        inputs = rng.standard_normal((2, 3, 6, 7))
        weights = rng.standard_normal((4, 3, r, s))
        direct = conv_reference(inputs, weights)
        lowered = lower_and_multiply(inputs, weights)
        np.testing.assert_allclose(lowered, direct, rtol=1e-12, atol=1e-12)

    def test_pointwise_conv_is_plain_reshape(self, rng):
        # R=S=1: im2col must be a pure channel permutation (no padding taps).
        inputs = rng.standard_normal((2, 5, 4, 4))
        a = im2col(inputs, 1, 1)
        assert a.shape == (2 * 4 * 4, 5)
        np.testing.assert_array_equal(
            a, inputs.transpose(0, 2, 3, 1).reshape(-1, 5)
        )

    def test_zero_padding_at_borders(self):
        # A single bright pixel at a corner: the 3x3 im2col row for that
        # output must contain zeros for out-of-image taps.
        inputs = np.zeros((1, 1, 3, 3))
        inputs[0, 0, 0, 0] = 7.0
        a = im2col(inputs, 3, 3)
        # Output position (0,0): the pixel sits at tap (dr=1, ds=1) (center).
        row = a[0].reshape(1, 3, 3)
        assert row[0, 1, 1] == 7.0
        assert row.sum() == 7.0  # everything else is padding zeros


class TestGemmShapes:
    def test_table1_shape_consistency(self):
        layer = ConvLayer("t", batch=2, filters=8, channels=3, x=5, y=5, r=3, s=3)
        g = layer.gemm()
        assert (g.m, g.n, g.k) == (2 * 5 * 5, 8, 27)

    def test_im2col_dims_match_layer_gemm(self, rng):
        layer = ConvLayer("t", batch=2, filters=8, channels=3, x=5, y=5, r=3, s=3)
        inputs = rng.standard_normal((2, 3, 5, 5))
        a = im2col(inputs, 3, 3)
        assert a.shape == (layer.gemm().m, layer.gemm().k)


#: Two ResNet-50 layer geometries, shrunk for the numeric oracle (the
#: channel/filter/spatial ratios of conv2_1b — the 3x3 mid conv — and
#: conv2_1c — the 1x1 expansion — at reduced width).  Both stride 1, the
#: regime the functional im2col path implements.
RESNET_LIKE = (
    ("conv2_1b", dict(n=2, c=8, x=7, y=7, k=8, r=3, s=3)),
    ("conv2_1c", dict(n=2, c=8, x=7, y=7, k=32, r=1, s=1)),
)


class TestTrainingPassLowering:
    """dgrad/wgrad im2col lowerings vs the direct adjoint oracles."""

    @pytest.mark.parametrize("name,geom", RESNET_LIKE)
    def test_dgrad_matches_adjoint_oracle(self, rng, name, geom):
        weights = rng.standard_normal((geom["k"], geom["c"], geom["r"], geom["s"]))
        grad = rng.standard_normal((geom["n"], geom["k"], geom["x"], geom["y"]))
        lowered = conv_dgrad(grad, weights)
        oracle = conv_dgrad_reference(grad, weights)
        assert lowered.shape == (geom["n"], geom["c"], geom["x"], geom["y"])
        np.testing.assert_allclose(lowered, oracle, rtol=1e-12, atol=1e-12)

    @pytest.mark.parametrize("name,geom", RESNET_LIKE)
    def test_wgrad_matches_adjoint_oracle(self, rng, name, geom):
        inputs = rng.standard_normal((geom["n"], geom["c"], geom["x"], geom["y"]))
        grad = rng.standard_normal((geom["n"], geom["k"], geom["x"], geom["y"]))
        lowered = conv_wgrad(inputs, grad, geom["r"], geom["s"])
        oracle = conv_wgrad_reference(inputs, grad, geom["r"], geom["s"])
        assert lowered.shape == (geom["k"], geom["c"], geom["r"], geom["s"])
        np.testing.assert_allclose(lowered, oracle, rtol=1e-12, atol=1e-12)

    @pytest.mark.parametrize("name,geom", RESNET_LIKE)
    def test_adjoint_inner_product_identities(self, rng, name, geom):
        """<dY, conv(X, W)> == <dgrad(dY, W), X> == <wgrad(X, dY), W>.

        The defining property of the gradients (what finite differences
        would estimate; exact here because convolution is linear), checked
        against the *oracles* so both sides are im2col-free.
        """
        inputs = rng.standard_normal((geom["n"], geom["c"], geom["x"], geom["y"]))
        weights = rng.standard_normal((geom["k"], geom["c"], geom["r"], geom["s"]))
        grad = rng.standard_normal((geom["n"], geom["k"], geom["x"], geom["y"]))
        forward_ip = float((grad * conv_reference(inputs, weights)).sum())
        dgrad_ip = float((conv_dgrad_reference(grad, weights) * inputs).sum())
        wgrad_ip = float(
            (conv_wgrad_reference(inputs, grad, geom["r"], geom["s"]) * weights).sum()
        )
        assert forward_ip == pytest.approx(dgrad_ip, rel=1e-10)
        assert forward_ip == pytest.approx(wgrad_ip, rel=1e-10)

    def test_dgrad_finite_difference_spot_check(self, rng):
        """One scalar input perturbation agrees with the assembled dX.

        Convolution is linear, so the central difference is exact up to
        float64 rounding — a genuinely lowering-free autograd check.
        """
        n, c, x, y, k, r, s = 1, 2, 4, 4, 3, 3, 3
        inputs = rng.standard_normal((n, c, x, y))
        weights = rng.standard_normal((k, c, r, s))
        grad = rng.standard_normal((n, k, x, y))
        dx = conv_dgrad_reference(grad, weights)
        eps = 1e-3
        for index in [(0, 0, 0, 0), (0, 1, 2, 3), (0, 1, 3, 1)]:
            bumped = inputs.copy()
            bumped[index] += eps
            dipped = inputs.copy()
            dipped[index] -= eps
            fd = (
                (grad * conv_reference(bumped, weights)).sum()
                - (grad * conv_reference(dipped, weights)).sum()
            ) / (2 * eps)
            assert fd == pytest.approx(dx[index], rel=1e-7)

    def test_dgrad_filters_shape_and_flip(self):
        weights = np.arange(2 * 3 * 3 * 3, dtype=np.float64).reshape(2, 3, 3, 3)
        flipped = dgrad_filters(weights)
        assert flipped.shape == (3, 2, 3, 3)
        assert flipped[1, 0, 0, 0] == weights[0, 1, 2, 2]
        assert flipped[2, 1, 1, 1] == weights[1, 2, 1, 1]  # center is fixed

    def test_wgrad_rejects_mismatched_operands(self, rng):
        with pytest.raises(WorkloadError, match="mismatch"):
            conv_wgrad(
                rng.standard_normal((1, 2, 4, 4)),
                rng.standard_normal((2, 3, 4, 4)),
                3, 3,
            )

    def test_dgrad_rejects_even_filters(self, rng):
        with pytest.raises(WorkloadError):
            conv_dgrad(
                rng.standard_normal((1, 2, 4, 4)),
                rng.standard_normal((2, 2, 2, 2)),
            )


class TestValidation:
    def test_even_filter_rejected(self, rng):
        with pytest.raises(WorkloadError):
            im2col(rng.standard_normal((1, 1, 4, 4)), 2, 2)

    def test_channel_mismatch(self, rng):
        with pytest.raises(WorkloadError):
            conv_reference(
                rng.standard_normal((1, 3, 4, 4)), rng.standard_normal((2, 4, 1, 1))
            )

    def test_bad_rank(self, rng):
        with pytest.raises(WorkloadError):
            conv_reference(rng.standard_normal((3, 4, 4)), rng.standard_normal((2, 3, 1, 1)))
