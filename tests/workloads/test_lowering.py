"""Tests for im2col convolution lowering against the direct-conv oracle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.layers import ConvLayer
from repro.workloads.lowering import (
    conv_reference,
    filters_to_gemm_b,
    gemm_output_to_conv,
    im2col,
)


def lower_and_multiply(inputs, weights):
    """The full lowering path in float64 (no BF16): im2col @ reshaped filters."""
    n, c, x, y = inputs.shape
    k, _, r, s = weights.shape
    a = im2col(inputs.astype(np.float64), r, s)
    b = filters_to_gemm_b(weights.astype(np.float64))
    return gemm_output_to_conv(a @ b, n, x, y)


class TestLoweringExactness:
    @pytest.mark.parametrize("r,s", [(1, 1), (3, 3), (5, 3)])
    def test_matches_direct_convolution(self, rng, r, s):
        inputs = rng.standard_normal((2, 3, 6, 7))
        weights = rng.standard_normal((4, 3, r, s))
        direct = conv_reference(inputs, weights)
        lowered = lower_and_multiply(inputs, weights)
        np.testing.assert_allclose(lowered, direct, rtol=1e-12, atol=1e-12)

    def test_pointwise_conv_is_plain_reshape(self, rng):
        # R=S=1: im2col must be a pure channel permutation (no padding taps).
        inputs = rng.standard_normal((2, 5, 4, 4))
        a = im2col(inputs, 1, 1)
        assert a.shape == (2 * 4 * 4, 5)
        np.testing.assert_array_equal(
            a, inputs.transpose(0, 2, 3, 1).reshape(-1, 5)
        )

    def test_zero_padding_at_borders(self):
        # A single bright pixel at a corner: the 3x3 im2col row for that
        # output must contain zeros for out-of-image taps.
        inputs = np.zeros((1, 1, 3, 3))
        inputs[0, 0, 0, 0] = 7.0
        a = im2col(inputs, 3, 3)
        # Output position (0,0): the pixel sits at tap (dr=1, ds=1) (center).
        row = a[0].reshape(1, 3, 3)
        assert row[0, 1, 1] == 7.0
        assert row.sum() == 7.0  # everything else is padding zeros


class TestGemmShapes:
    def test_table1_shape_consistency(self):
        layer = ConvLayer("t", batch=2, filters=8, channels=3, x=5, y=5, r=3, s=3)
        g = layer.gemm()
        assert (g.m, g.n, g.k) == (2 * 5 * 5, 8, 27)

    def test_im2col_dims_match_layer_gemm(self, rng):
        layer = ConvLayer("t", batch=2, filters=8, channels=3, x=5, y=5, r=3, s=3)
        inputs = rng.standard_normal((2, 3, 5, 5))
        a = im2col(inputs, 3, 3)
        assert a.shape == (layer.gemm().m, layer.gemm().k)


class TestValidation:
    def test_even_filter_rejected(self, rng):
        with pytest.raises(WorkloadError):
            im2col(rng.standard_normal((1, 1, 4, 4)), 2, 2)

    def test_channel_mismatch(self, rng):
        with pytest.raises(WorkloadError):
            conv_reference(
                rng.standard_normal((1, 3, 4, 4)), rng.standard_normal((2, 4, 1, 1))
            )

    def test_bad_rank(self, rng):
        with pytest.raises(WorkloadError):
            conv_reference(rng.standard_normal((3, 4, 4)), rng.standard_normal((2, 3, 1, 1)))
