"""WorkloadSuite tests: multiset semantics, registry, batch/scale overrides.

``data/suite_golden.json`` pins the exact (label, m, n, k) multiset and
the distinct-point cache keys of every pre-IR suite, captured on main
*before* the op-level refactor: the op lowering pipeline must reproduce
each suite bit for bit, or warm result caches (and the paper numbers)
would silently shift.
"""

from __future__ import annotations

import collections
import json
from pathlib import Path

import pytest

from repro.cpu.config import CoreConfig
from repro.errors import WorkloadError
from repro.runtime.cache import cache_key
from repro.workloads.codegen import CodegenOptions
from repro.workloads.gemm import GemmShape
from repro.workloads.ops import LoweringConfig
from repro.workloads.suites import (
    SUITES,
    SuiteSpec,
    WorkloadSuite,
    get_suite,
    suite_names,
)

GOLDEN = json.loads(
    (Path(__file__).parent / "data" / "suite_golden.json").read_text()
)


class TestWorkloadSuite:
    def test_multiset_orders_and_counts(self):
        suite = WorkloadSuite.from_gemms(
            "toy",
            {
                "a": GemmShape(64, 64, 64, name="a"),
                "b": GemmShape(128, 64, 64, name="b"),
                "c": GemmShape(64, 64, 64, name="c"),  # duplicate dims of "a"
            },
        )
        assert len(suite) == 3
        distinct = suite.distinct()
        assert [(e.shape.dims, e.count) for e in distinct] == [
            ((64, 64, 64), 2),
            ((128, 64, 64), 1),
        ]
        assert distinct[0].layers == ("a", "c")
        assert distinct[0].shape.name == "a"  # first-occurrence representative
        assert suite.dedup_factor == pytest.approx(1.5)

    def test_empty_suite_rejected(self):
        with pytest.raises(WorkloadError, match="no GEMMs"):
            WorkloadSuite.from_gemms("empty", {})

    def test_empty_ops_rejected(self):
        with pytest.raises(WorkloadError, match="no ops"):
            WorkloadSuite.from_ops("empty", [])

    def test_scaled_shrinks_every_shape(self):
        suite = get_suite("dlrm").scaled(4)
        for _, shape in suite.gemms:
            assert shape.m <= 512
        assert get_suite("dlrm", scale=4).as_dict() == suite.as_dict()

    def test_total_macs_counts_duplicates(self):
        suite = WorkloadSuite.from_gemms(
            "toy",
            {
                "a": GemmShape(64, 64, 64, name="a"),
                "b": GemmShape(64, 64, 64, name="b"),
            },
        )
        assert suite.total_macs == 2 * 64 ** 3


class TestScaleMergeRegression:
    """``scaled`` may merge distinct labels onto one floored shape; the
    dedup view must re-aggregate counts exactly (regression: the factor
    was only revalidated lazily)."""

    #: 96^3 and 64^3 both floor to (32, 32, 32) at factor 4 (the 2-tile
    #: m/n floors and the 1-tile k floor); 512^3 stays distinct.
    SUITE = WorkloadSuite.from_gemms(
        "mergy",
        {
            "a": GemmShape(96, 96, 96, name="a"),
            "b": GemmShape(64, 64, 64, name="b"),
            "c": GemmShape(512, 512, 512, name="c"),
            "d": GemmShape(96, 96, 96, name="d"),
        },
    )

    def test_distinct_counts_match_unscaled_oracle_aggregation(self):
        """Scaled distinct() == independently scaling each label's shape.

        The oracle never uses WorkloadSuite: it scales every (label,
        shape) pair through ``GemmShape.scaled`` alone and aggregates
        with a Counter, so a wrong suite-side merge cannot cancel out.
        """
        factor = 4
        scaled = self.SUITE.scaled(factor)
        oracle = collections.Counter(
            shape.scaled(factor).dims for _, shape in self.SUITE.gemms
        )
        got = {e.shape.dims: e.count for e in scaled.distinct()}
        assert got == dict(oracle)
        # Labels "a", "b", "d" merged onto one floored point.
        assert got[(32, 32, 32)] == 3
        assert len(scaled.distinct()) == 2

    def test_merge_preserves_total_weight_and_labels(self):
        scaled = self.SUITE.scaled(4)
        distinct = scaled.distinct()
        assert sum(e.count for e in distinct) == len(self.SUITE)
        merged = next(e for e in distinct if e.count == 3)
        assert merged.layers == ("a", "b", "d")
        assert scaled.dedup_factor == pytest.approx(len(self.SUITE) / 2)

    def test_registered_suite_scale_merge_against_oracle(self):
        """The same invariant on a real catalog (dlrm at heavy scale)."""
        factor = 16
        scaled = get_suite("dlrm", scale=factor)
        oracle = collections.Counter(
            shape.scaled(factor).dims for _, shape in get_suite("dlrm").gemms
        )
        assert {e.shape.dims: e.count for e in scaled.distinct()} == dict(oracle)


class TestGoldenSuites:
    """Every pre-IR suite reproduces its captured multiset bit for bit."""

    @pytest.mark.parametrize("name", sorted(GOLDEN))
    def test_multiset_is_byte_identical_to_main(self, name):
        suite = get_suite(name)
        got = [[label, shape.m, shape.n, shape.k] for label, shape in suite.gemms]
        want = [[label, m, n, k] for label, m, n, k, _ in GOLDEN[name]["gemms"]]
        assert got == want

    @pytest.mark.parametrize("name", sorted(GOLDEN))
    def test_distinct_cache_keys_unchanged(self, name):
        """The dedup keys — label-free, tile-padded SHA-256 — are frozen.

        This is what keeps warm result caches valid across the IR
        refactor: the keys were captured with the pre-IR factories.
        """
        core, codegen = CoreConfig(), CodegenOptions()
        suite = get_suite(name)
        got = [
            {
                "dims": list(entry.shape.dims),
                "count": entry.count,
                "key": cache_key("baseline", entry.shape, core, codegen, "fast"),
            }
            for entry in suite.distinct()
        ]
        assert got == GOLDEN[name]["distinct"]


class TestRegistry:
    def test_registry_names(self):
        assert suite_names() == [
            "table1", "resnet50", "bert-base", "bert-full", "dlrm",
            "training", "resnet50-train",
        ]

    def test_unknown_suite(self):
        with pytest.raises(WorkloadError, match="unknown workload suite"):
            get_suite("alexnet")

    def test_bert_base_collapses_72_to_3(self):
        suite = get_suite("bert-base")
        assert len(suite) == 72
        distinct = suite.distinct()
        assert len(distinct) == 3
        # 12 layers x 4 identically-shaped projections each.
        assert distinct[0].count == 48
        assert suite.dedup_factor == pytest.approx(24.0)

    def test_resnet50_full_catalog(self):
        suite = get_suite("resnet50")
        assert len(suite) == 53
        assert len(suite.distinct()) < len(suite)  # bottleneck blocks repeat

    def test_table1_matches_layer_catalog(self):
        from repro.workloads.layers import table1_gemms

        assert get_suite("table1").as_dict() == table1_gemms()

    def test_training_covers_three_passes_per_fc(self):
        suite = get_suite("training")
        assert len(suite) == 18  # six Table I FC layers x fwd/dgrad/wgrad
        labels = [label for label, _ in suite.gemms]
        assert "DLRM-1-forward" in labels and "BERT-3-wgrad" in labels

    def test_batch_override(self):
        small = get_suite("dlrm", batch=64)
        assert all(shape.m == 64 for _, shape in small.gemms)
        tokens = get_suite("bert-base", batch=128)
        assert all(shape.m == 128 for _, shape in tokens.gemms)

    def test_batch_override_table1_rebatches_convs_and_fcs(self):
        suite = get_suite("table1", batch=8)
        gemms = suite.as_dict()
        assert gemms["DLRM-1"].m == 8
        assert gemms["ResNet50-1"].m == 8 * 56 * 56

    def test_bad_batch_rejected(self):
        with pytest.raises(Exception):
            get_suite("dlrm", batch=0)

    def test_specs_have_descriptions(self):
        for name, spec in SUITES.items():
            assert spec.name == name
            assert spec.description

    def test_op_composition_per_suite(self):
        """The ``repro models`` listing data: op kinds per registered suite."""
        comp = {name: SUITES[name].op_composition() for name in SUITES}
        assert comp["table1"] == {"conv-fwd": 3, "fc-fwd": 6}
        assert comp["resnet50"] == {"conv-fwd": 53}
        assert comp["bert-base"] == {"fc-fwd": 72}
        assert comp["bert-full"] == {"fc-fwd": 72, "batched-matmul": 24}
        assert comp["dlrm"] == {"fc-fwd": 9}
        assert comp["training"] == {"fc-fwd": 6, "fc-dgrad": 6, "fc-wgrad": 6}
        assert comp["resnet50-train"] == {
            "conv-fwd": 53, "conv-dgrad": 53, "conv-wgrad": 53,
        }


class TestBertFullSuite:
    def test_attention_rides_on_top_of_bert_base(self):
        base = get_suite("bert-base")
        full = get_suite("bert-full")
        # 72 projections/FFNs + 12 layers x 2 matmuls x (12 heads x 2 seqs).
        assert len(full) == 72 + 576
        assert set(base.as_dict()) <= set(full.as_dict())

    def test_head_batched_attention_collapses_to_two_points(self):
        full = get_suite("bert-full")
        distinct = full.distinct()
        assert len(distinct) == 5  # 3 projection/FFN + score + context
        by_dims = {e.shape.dims: e for e in distinct}
        score = by_dims[(128, 128, 64)]
        context = by_dims[(128, 64, 128)]
        assert score.count == 288 and context.count == 288
        # 24 attention op labels (12 layers x 2), each repeated per head/seq.
        assert len(set(score.layers)) == 12
        assert len(set(context.layers)) == 12

    def test_network_order_interleaves_attention(self):
        labels = [label for label, _ in get_suite("bert-full").gemms]
        v = labels.index("enc0.v")
        assert labels[v + 1] == "enc0.attn_score"
        assert labels.index("enc0.attn_ctx") < labels.index("enc0.attn_out")

    def test_rebatching_scales_sequences(self):
        full = get_suite("bert-full", batch=512)
        score = next(
            e for e in full.distinct() if e.shape.dims == (128, 128, 64)
        )
        assert score.count == 12 * 4 * 12  # heads x sequences x layers


class TestResnet50TrainSuite:
    def test_three_passes_per_conv(self):
        suite = get_suite("resnet50-train")
        assert len(suite) == 3 * 53
        labels = [label for label, _ in suite.gemms]
        assert "conv1-fwd" in labels
        assert "conv3_2b-dgrad" in labels
        assert "conv5_3c-wgrad" in labels

    def test_fwd_shapes_match_inference_catalog(self):
        train = get_suite("resnet50-train").as_dict()
        for label, shape in get_suite("resnet50").gemms:
            assert train[f"{label}-fwd"].dims == shape.dims

    def test_wgrad_streams_filter_taps(self):
        gemms = get_suite("resnet50-train").as_dict()
        # conv2_1b: 3x3 over 64 channels, 64 filters, 56x56 at batch 32.
        assert gemms["conv2_1b-wgrad"].dims == (64 * 9, 64, 32 * 56 * 56)
        assert gemms["conv2_1b-dgrad"].dims == (32 * 56 * 56, 64, 64 * 9)


class TestLoweringKnobs:
    def test_scale_spatial_keeps_channels(self):
        plain = get_suite("resnet50").as_dict()
        shrunk = get_suite(
            "resnet50", lowering=LoweringConfig(scale_spatial=16)
        ).as_dict()
        for label, shape in shrunk.items():
            assert shape.n == plain[label].n           # filters untouched
            assert shape.k == plain[label].k           # C*R*S untouched
            assert shape.m < plain[label].m            # spatial product shrank

    def test_scale_batch_composes_with_generic_scale(self):
        suite = get_suite(
            "dlrm", scale=2, lowering=LoweringConfig(scale_batch=8)
        )
        # batch 512 -> 64 at lowering, then generic /2 with the tile floors.
        assert all(shape.m == 32 for _, shape in suite.gemms)

    def test_pre_lowered_spec_rejects_role_knobs(self):
        spec = SuiteSpec(
            "adhoc", "pre-lowered", None,
            lambda batch: {"g": GemmShape(64, 64, 64, name="g")},
        )
        assert spec.build().as_dict()["g"].dims == (64, 64, 64)
        with pytest.raises(WorkloadError, match="pre-lowered"):
            spec.build(lowering=LoweringConfig(scale_batch=2))

    def test_bert_full_scale_spatial_shrinks_attention_only(self):
        full = get_suite("bert-full", lowering=LoweringConfig(scale_spatial=8))
        dims = {e.shape.dims for e in full.distinct()}
        assert (16, 16, 64) in dims      # score seq axes shrank
        assert (16, 64, 16) in dims      # context seq axes shrank
        assert (256, 768, 768) in dims   # projections untouched
