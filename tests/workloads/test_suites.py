"""WorkloadSuite tests: multiset semantics, registry, batch/scale overrides."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.workloads.gemm import GemmShape
from repro.workloads.suites import (
    SUITES,
    WorkloadSuite,
    get_suite,
    suite_names,
)


class TestWorkloadSuite:
    def test_multiset_orders_and_counts(self):
        suite = WorkloadSuite.from_gemms(
            "toy",
            {
                "a": GemmShape(64, 64, 64, name="a"),
                "b": GemmShape(128, 64, 64, name="b"),
                "c": GemmShape(64, 64, 64, name="c"),  # duplicate dims of "a"
            },
        )
        assert len(suite) == 3
        distinct = suite.distinct()
        assert [(e.shape.dims, e.count) for e in distinct] == [
            ((64, 64, 64), 2),
            ((128, 64, 64), 1),
        ]
        assert distinct[0].layers == ("a", "c")
        assert distinct[0].shape.name == "a"  # first-occurrence representative
        assert suite.dedup_factor == pytest.approx(1.5)

    def test_empty_suite_rejected(self):
        with pytest.raises(WorkloadError, match="no GEMMs"):
            WorkloadSuite.from_gemms("empty", {})

    def test_scaled_shrinks_every_shape(self):
        suite = get_suite("dlrm").scaled(4)
        for _, shape in suite.gemms:
            assert shape.m <= 512
        assert get_suite("dlrm", scale=4).as_dict() == suite.as_dict()

    def test_total_macs_counts_duplicates(self):
        suite = WorkloadSuite.from_gemms(
            "toy",
            {
                "a": GemmShape(64, 64, 64, name="a"),
                "b": GemmShape(64, 64, 64, name="b"),
            },
        )
        assert suite.total_macs == 2 * 64 ** 3


class TestRegistry:
    def test_registry_names(self):
        assert suite_names() == ["table1", "resnet50", "bert-base", "dlrm", "training"]

    def test_unknown_suite(self):
        with pytest.raises(WorkloadError, match="unknown workload suite"):
            get_suite("alexnet")

    def test_bert_base_collapses_72_to_3(self):
        suite = get_suite("bert-base")
        assert len(suite) == 72
        distinct = suite.distinct()
        assert len(distinct) == 3
        # 12 layers x 4 identically-shaped projections each.
        assert distinct[0].count == 48
        assert suite.dedup_factor == pytest.approx(24.0)

    def test_resnet50_full_catalog(self):
        suite = get_suite("resnet50")
        assert len(suite) == 53
        assert len(suite.distinct()) < len(suite)  # bottleneck blocks repeat

    def test_table1_matches_layer_catalog(self):
        from repro.workloads.layers import table1_gemms

        assert get_suite("table1").as_dict() == table1_gemms()

    def test_training_covers_three_passes_per_fc(self):
        suite = get_suite("training")
        assert len(suite) == 18  # six Table I FC layers x fwd/dgrad/wgrad
        labels = [label for label, _ in suite.gemms]
        assert "DLRM-1-forward" in labels and "BERT-3-wgrad" in labels

    def test_batch_override(self):
        small = get_suite("dlrm", batch=64)
        assert all(shape.m == 64 for _, shape in small.gemms)
        tokens = get_suite("bert-base", batch=128)
        assert all(shape.m == 128 for _, shape in tokens.gemms)

    def test_batch_override_table1_rebatches_convs_and_fcs(self):
        suite = get_suite("table1", batch=8)
        gemms = suite.as_dict()
        assert gemms["DLRM-1"].m == 8
        assert gemms["ResNet50-1"].m == 8 * 56 * 56

    def test_bad_batch_rejected(self):
        with pytest.raises(Exception):
            get_suite("dlrm", batch=0)

    def test_specs_have_descriptions(self):
        for name, spec in SUITES.items():
            assert spec.name == name
            assert spec.description
