"""Tests for the full-model GEMM catalogs."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.workloads.models import (
    bert_encoder_gemms,
    dlrm_gemms,
    mlp_gemms,
    model_gemms,
    resnet50_conv_layers,
    resnet50_gemms,
)


class TestResNet50:
    def test_conv_count(self):
        # 1 stem + Σ blocks*3 + 4 projection convs = 1 + 48 + 4 = 53.
        layers = resnet50_conv_layers()
        assert len(layers) == 53

    def test_stem_geometry(self):
        stem = resnet50_conv_layers(batch=32)[0]
        assert (stem.filters, stem.channels, stem.r, stem.stride) == (64, 3, 7, 2)
        g = stem.gemm()
        assert g.m == 32 * 112 * 112  # stride-2 output
        assert g.k == 3 * 7 * 7 == 147  # the paper's Sec. III example: K=147

    def test_table1_layers_present(self):
        """Table I's ResNet layers must appear in the full model.

        ResNet50-1/2 appear verbatim.  Table I's ResNet50-3 (C=1024 -> K=512
        1x1 at 14x14) is the conv5_1a projection, which in the real network
        has stride 2: the catalog carries the honest stride-2 GEMM
        (M = 32*7*7 = 1568); the paper's Table I quotes the stride-1
        simplification (M = 6272).
        """
        gemms = resnet50_gemms(batch=32)
        shapes = {(g.m, g.n, g.k) for g in gemms.values()}
        assert (100_352, 64, 64) in shapes        # ResNet50-1 (conv2 1x1)
        assert (100_352, 64, 576) in shapes       # ResNet50-2 (conv2 3x3)
        assert (1_568, 512, 1024) in shapes       # ResNet50-3, stride-2 form

    def test_channel_chaining(self):
        # Every block's input channels must equal the previous block's output.
        layers = resnet50_conv_layers()
        gemms = {layer.name: layer for layer in layers}
        assert gemms["conv3_1a"].channels == 256
        assert gemms["conv5_1a"].channels == 1024

    def test_total_macs_magnitude(self):
        # He et al. quote "3.8 billion FLOPs" for ResNet-50 (MAC counted
        # once); the conv portion of the catalog must land right there.
        total = sum(g.macs for g in resnet50_gemms(batch=1).values())
        assert 3.5e9 < total < 4.2e9


class TestBert:
    def test_layer_structure(self):
        gemms = bert_encoder_gemms(layers=2)
        assert len(gemms) == 12
        assert gemms["enc0.ffn_up"].n == 3072
        assert gemms["enc1.ffn_down"].k == 3072

    def test_matches_table1_shapes(self):
        gemms = bert_encoder_gemms()
        q = gemms["enc0.q"]
        assert (q.m, q.n, q.k) == (256, 768, 768)          # BERT-1
        up = gemms["enc0.ffn_up"]
        assert (up.m, up.n, up.k) == (256, 3072, 768)      # BERT-3
        down = gemms["enc0.ffn_down"]
        assert (down.m, down.n, down.k) == (256, 768, 3072)  # BERT-2

    def test_bad_layer_count(self):
        with pytest.raises(WorkloadError):
            bert_encoder_gemms(layers=0)


class TestDlrm:
    def test_mlp_chaining(self):
        gemms = mlp_gemms(512, (256, 1024, 64), "t")
        assert gemms["t0"].k == 256 and gemms["t0"].n == 1024
        assert gemms["t1"].k == 1024 and gemms["t1"].n == 64

    def test_contains_table1_like_shapes(self):
        gemms = dlrm_gemms(batch=512)
        shapes = {(g.m, g.n, g.k) for g in gemms.values()}
        assert (512, 1024, 1024) in shapes      # DLRM-1
        assert (512, 2048, 2048) in shapes      # DLRM-3

    def test_mlp_needs_two_widths(self):
        with pytest.raises(WorkloadError):
            mlp_gemms(4, (16,), "x")


class TestRegistry:
    def test_lookup(self):
        assert len(model_gemms("bert-base", layers=1)) == 6

    def test_unknown_model(self):
        with pytest.raises(WorkloadError, match="resnet50"):
            model_gemms("alexnet")
