"""Tests for the LIBXSMM-style code generator.

The heavyweight check — generated program executed on the functional engine
reproduces C += A@B bit-exactly — lives in tests/engine/test_engine.py and
tests/integration/; here we verify the *structure* of the streams.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.opcodes import Opcode
from repro.workloads.codegen import CodegenOptions, build_gemm_kernel, generate_gemm_program
from repro.workloads.gemm import GemmShape
from repro.workloads.tiling import BlockingConfig, MMOrder


class TestStreamStructure:
    def test_instruction_counts(self):
        shape = GemmShape(m=64, n=64, k=128)  # 4x4x4 tiles, 2x2 blocking
        program = generate_gemm_program(shape)
        s = program.stats
        assert s.matmuls == shape.mm_count == 64
        # Per block: 4 C loads + 4 C stores; per K step: 2 A + 2 B loads.
        blocks = 2 * 2
        assert s.tile_stores == blocks * 4
        assert s.tile_loads == blocks * 4 + blocks * 4 * 4

    def test_scalar_overhead_knobs(self):
        shape = GemmShape(m=32, n=32, k=64)
        none = generate_gemm_program(
            shape, CodegenOptions(scalar_overhead_per_kstep=0, scalar_overhead_per_block=0)
        )
        assert none.stats.scalars == 0
        some = generate_gemm_program(
            shape, CodegenOptions(scalar_overhead_per_kstep=3, scalar_overhead_per_block=5)
        )
        assert some.stats.scalars == 1 * (2 * 3 + 5)  # one block, two K steps

    def test_each_mm_preceded_by_operand_loads(self):
        # Every mm's A and B registers must have been written earlier in the
        # stream (no use-before-def), and C loaded before first use.
        shape = GemmShape(m=48, n=48, k=96)
        program = generate_gemm_program(shape)
        written = set()
        for inst in program:
            for reg in inst.tile_writes:
                written.add(reg.index)
            if inst.opcode is Opcode.RASA_MM:
                assert inst.mm_a.index in written
                assert inst.mm_b.index in written
                assert inst.mm_c.index in written

    def test_weight_reuse_order_property(self):
        shape = GemmShape(m=64, n=64, k=64)
        reuse = generate_gemm_program(
            shape, CodegenOptions(blocking=BlockingConfig(mm_order=MMOrder.WEIGHT_REUSE))
        )
        alt = generate_gemm_program(
            shape, CodegenOptions(blocking=BlockingConfig(mm_order=MMOrder.ALTERNATE))
        )
        assert reuse.weight_reuse_fraction() == pytest.approx(0.5)
        assert alt.weight_reuse_fraction() == 0.0

    def test_tags_identify_tiles(self):
        program = generate_gemm_program(GemmShape(m=32, n=32, k=32))
        mm_tags = [i.tag for i in program.matmuls()]
        assert mm_tags == [
            "mm[0,0,0]", "mm[1,0,0]", "mm[0,1,0]", "mm[1,1,0]"
        ]


class TestKernelLayout:
    def test_write_inputs_validates_shapes(self, rng):
        from repro.errors import WorkloadError
        from repro.tile.memory import TileMemory

        kernel = build_gemm_kernel(GemmShape(m=32, n=32, k=32))
        with pytest.raises(WorkloadError):
            kernel.write_inputs(
                TileMemory(),
                rng.standard_normal((16, 32)).astype(np.float32),
                rng.standard_normal((32, 32)).astype(np.float32),
            )

    def test_unaligned_kernel_pads(self):
        kernel = build_gemm_kernel(GemmShape(m=20, n=20, k=40))
        assert (kernel.padded.m, kernel.padded.n, kernel.padded.k) == (32, 32, 64)
        assert kernel.program.stats.matmuls == 2 * 2 * 2

    def test_result_roundtrip_without_mms(self, rng):
        # Writing inputs and reading the result back (no execution) must
        # return the initial C.
        from repro.tile.memory import TileMemory

        kernel = build_gemm_kernel(GemmShape(m=24, n=24, k=32))
        mem = TileMemory()
        a = rng.standard_normal((24, 32)).astype(np.float32)
        b = rng.standard_normal((32, 24)).astype(np.float32)
        c = rng.standard_normal((24, 24)).astype(np.float32)
        kernel.write_inputs(mem, a, b, c)
        assert np.array_equal(kernel.read_result(mem), c)


@settings(max_examples=20, deadline=None)
@given(
    m_tiles=st.integers(1, 4),
    n_tiles=st.integers(1, 4),
    k_tiles=st.integers(1, 3),
    order=st.sampled_from([MMOrder.WEIGHT_REUSE, MMOrder.ALTERNATE]),
)
def test_stream_covers_every_tile_once(m_tiles, n_tiles, k_tiles, order):
    """Property: the generated stream computes each (m, n, k) tile exactly once
    and stores each C tile exactly once."""
    shape = GemmShape(m=16 * m_tiles, n=16 * n_tiles, k=32 * k_tiles)
    options = CodegenOptions(blocking=BlockingConfig(bm=2, bn=2, mm_order=order))
    program = generate_gemm_program(shape, options)
    mm_tags = [i.tag for i in program.matmuls()]
    assert len(mm_tags) == len(set(mm_tags)) == shape.mm_count
    store_tags = [
        i.tag for i in program if i.opcode is Opcode.RASA_TS
    ]
    assert len(store_tags) == len(set(store_tags)) == m_tiles * n_tiles
