"""Tests for training-pass GEMM derivation."""

from __future__ import annotations

from repro.workloads.layers import TABLE1_LAYERS, FCLayer
from repro.workloads.training import TrainingStep, training_gemms


def test_pass_shapes():
    step = TrainingStep(FCLayer("fc", batch=512, nin=1024, non=2048))
    assert (step.forward.m, step.forward.n, step.forward.k) == (512, 2048, 1024)
    assert (step.dgrad.m, step.dgrad.n, step.dgrad.k) == (512, 1024, 2048)
    assert (step.wgrad.m, step.wgrad.n, step.wgrad.k) == (1024, 2048, 512)


def test_all_passes_equal_macs():
    # Forward, dgrad and wgrad perform the same number of MACs.
    step = TrainingStep(FCLayer("fc", batch=128, nin=768, non=3072))
    macs = {name: shape.macs for name, shape in step.gemms().items()}
    assert len(set(macs.values())) == 1
    assert step.total_macs == 3 * macs["forward"]


def test_training_gemms_flattened():
    layers = [TABLE1_LAYERS["DLRM-1"], TABLE1_LAYERS["BERT-1"]]
    gemms = training_gemms(layers)
    assert len(gemms) == 6
    assert gemms["DLRM-1-wgrad"].m == 1024  # NIN becomes the streamed M


def test_wgrad_streams_large_m():
    # wgrad's M is NIN: the large-TM regime where even the serialized
    # baseline amortizes fill/drain (Sec. III's accelerator escape hatch).
    step = TrainingStep(TABLE1_LAYERS["BERT-2"])
    assert step.wgrad.m == 3072
    assert step.forward.m == 256
