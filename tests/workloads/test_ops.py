"""Op IR tests: lowering shape tables, role-aware knobs, the op protocol."""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import WorkloadError
from repro.workloads.gemm import GemmShape
from repro.workloads.layers import TABLE1_LAYERS, ConvLayer, FCLayer
from repro.workloads.models import bert_full_ops
from repro.workloads.ops import (
    LOWERINGS,
    BatchedMatmulOp,
    ConvOp,
    FCOp,
    LoweringConfig,
    MatmulOp,
    lower,
    lower_ops,
    op_kind_counts,
    register_lowering,
)

CONV = ConvOp("c", batch=4, filters=32, channels=16, x=8, y=8, r=3, s=3)
FC = FCOp("f", batch=64, nin=256, non=512)


class TestShapeTables:
    """Golden lowered dims for every op kind x pass (the module shape table)."""

    def test_matmul(self):
        (label, shape, count), = lower(MatmulOp("mm", m=10, n=20, k=30))
        assert (label, shape.dims, count) == ("mm", (10, 20, 30), 1)
        assert shape.name == "mm"

    def test_batched_matmul(self):
        op = BatchedMatmulOp("bmm", count=24, m=128, n=128, k=64,
                             seq_axes=("m", "n"))
        (label, shape, count), = lower(op)
        assert (label, shape.dims, count) == ("bmm", (128, 128, 64), 24)

    @pytest.mark.parametrize("pass_,dims", [
        ("fwd", (4 * 8 * 8, 32, 16 * 9)),
        ("dgrad", (4 * 8 * 8, 16, 32 * 9)),
        ("wgrad", (16 * 9, 32, 4 * 8 * 8)),
    ])
    def test_conv_passes(self, pass_, dims):
        (_, shape, count), = lower(dataclasses.replace(CONV, pass_=pass_))
        assert shape.dims == dims
        assert count == 1

    def test_conv_strided_fwd_uses_output_spatial(self):
        op = dataclasses.replace(CONV, stride=2)
        (_, shape, _), = lower(op)
        assert shape.dims == (4 * 4 * 4, 32, 16 * 9)

    def test_conv_strided_dgrad_streams_input_spatial(self):
        op = dataclasses.replace(CONV, stride=2, pass_="dgrad")
        (_, shape, _), = lower(op)
        assert shape.m == 4 * 8 * 8  # input spatial, not output

    @pytest.mark.parametrize("pass_,dims", [
        ("fwd", (64, 512, 256)),
        ("dgrad", (64, 256, 512)),
        ("wgrad", (256, 512, 64)),
    ])
    def test_fc_passes(self, pass_, dims):
        (_, shape, _), = lower(dataclasses.replace(FC, pass_=pass_))
        assert shape.dims == dims

    def test_fwd_lowerings_match_layer_gemms(self):
        """Identity-config op lowering == the legacy ``layer.gemm()`` path."""
        for layer in TABLE1_LAYERS.values():
            op = (
                FCOp.from_layer(layer)
                if isinstance(layer, FCLayer)
                else ConvOp.from_layer(layer)
            )
            (label, shape, count), = lower(op)
            assert count == 1
            assert label == layer.name
            assert shape.dims == layer.gemm().dims


class TestLoweringConfig:
    def test_identity_default(self):
        assert LoweringConfig().is_identity
        assert not LoweringConfig(scale_batch=2).is_identity

    @pytest.mark.parametrize("kwargs", [
        {"scale_batch": 0}, {"scale_spatial": -2},
    ])
    def test_non_positive_knobs_rejected(self, kwargs):
        with pytest.raises(Exception):
            LoweringConfig(**kwargs)

    def test_scale_batch_divides_conv_batch_only(self):
        cfg = LoweringConfig(scale_batch=4)
        (_, shape, _), = lower(CONV, cfg)
        assert shape.dims == (1 * 8 * 8, 32, 16 * 9)

    def test_scale_spatial_divides_conv_spatial_product_only(self):
        cfg = LoweringConfig(scale_spatial=4)
        (_, shape, _), = lower(CONV, cfg)
        assert shape.dims == (4 * 16, 32, 16 * 9)  # 8*8 -> 16; N, C*R*S intact

    def test_conv_wgrad_batch_role_lives_in_k(self):
        cfg = LoweringConfig(scale_batch=4, scale_spatial=4)
        (_, shape, _), = lower(dataclasses.replace(CONV, pass_="wgrad"), cfg)
        assert shape.dims == (16 * 9, 32, 1 * 16)

    def test_fc_wgrad_batch_role_lives_in_k(self):
        cfg = LoweringConfig(scale_batch=8)
        (_, shape, _), = lower(dataclasses.replace(FC, pass_="wgrad"), cfg)
        assert shape.dims == (256, 512, 8)

    def test_fc_ignores_scale_spatial(self):
        cfg = LoweringConfig(scale_spatial=64)
        (_, shape, _), = lower(FC, cfg)
        assert shape.dims == (64, 512, 256)

    def test_batched_matmul_knobs(self):
        op = BatchedMatmulOp("bmm", count=24, m=128, n=64, k=128,
                             seq_axes=("m", "k"))
        (_, shape, count), = lower(op, LoweringConfig(scale_batch=6,
                                                      scale_spatial=8))
        assert count == 4
        assert shape.dims == (16, 64, 16)  # seq axes m, k shrink; n intact

    def test_matmul_is_knob_inert(self):
        op = MatmulOp("mm", m=100, n=100, k=100)
        (_, shape, count), = lower(op, LoweringConfig(scale_batch=10,
                                                      scale_spatial=10))
        assert shape.dims == (100, 100, 100)
        assert count == 1

    def test_knobs_floor_at_one(self):
        cfg = LoweringConfig(scale_batch=1000, scale_spatial=1000)
        (_, shape, count), = lower(
            BatchedMatmulOp("bmm", count=4, m=8, n=8, k=64, seq_axes=("m", "n")),
            cfg,
        )
        assert count == 1
        assert shape.dims == (1, 1, 64)


class TestOpProtocol:
    def test_with_batch_on_every_kind(self):
        assert MatmulOp("m", 8, 8, 8).with_batch(4).m == 8  # role-free
        assert BatchedMatmulOp("b", 2, 8, 8, 8).with_batch(4).count == 4
        assert CONV.with_batch(16).batch == 16
        assert FC.with_batch(16).batch == 16

    def test_layer_with_batch_protocol(self):
        """Both Table I layer kinds rebatch through one protocol method."""
        conv = ConvLayer("c", batch=32, filters=8, channels=8, x=4, y=4, r=1, s=1)
        fc = FCLayer("f", batch=32, nin=16, non=16)
        assert conv.with_batch(8).batch == 8
        assert conv.with_batch(8).gemm().m == 8 * 4 * 4
        assert fc.with_batch(8).batch == 8

    def test_kind_strings(self):
        assert MatmulOp("m", 1, 1, 1).kind == "matmul"
        assert BatchedMatmulOp("b", 1, 1, 1, 1).kind == "batched-matmul"
        assert CONV.kind == "conv-fwd"
        assert dataclasses.replace(CONV, pass_="wgrad").kind == "conv-wgrad"
        assert dataclasses.replace(FC, pass_="dgrad").kind == "fc-dgrad"

    def test_bad_pass_rejected(self):
        with pytest.raises(WorkloadError, match="unknown pass"):
            FCOp("f", 1, 1, 1, pass_="backward")
        with pytest.raises(WorkloadError, match="unknown pass"):
            ConvOp("c", 1, 1, 1, 1, 1, 1, 1, pass_="bwd")

    def test_bad_seq_axis_rejected(self):
        with pytest.raises(WorkloadError, match="seq_axes"):
            BatchedMatmulOp("b", 1, 1, 1, 1, seq_axes=("q",))

    def test_ops_are_frozen_and_hashable(self):
        assert len({CONV, FC, CONV}) == 2
        with pytest.raises(dataclasses.FrozenInstanceError):
            CONV.batch = 1


class TestRegistry:
    def test_every_op_kind_registered(self):
        assert {MatmulOp, BatchedMatmulOp, ConvOp, FCOp} <= set(LOWERINGS)

    def test_unregistered_type_raises(self):
        @dataclasses.dataclass(frozen=True)
        class AlienOp:
            name: str

        with pytest.raises(WorkloadError, match="no registered lowering"):
            lower(AlienOp("alien"))

    def test_register_lowering_is_open(self):
        @dataclasses.dataclass(frozen=True)
        class EinsumOp:
            name: str

        @register_lowering(EinsumOp)
        def _lower_einsum(op, config):
            return ((op.name, GemmShape(32, 32, 32, name=op.name), 2),)

        try:
            (label, shape, count), = lower(EinsumOp("ein"))
            assert (label, count) == ("ein", 2)
        finally:
            del LOWERINGS[EinsumOp]


class TestOpSequences:
    def test_lower_ops_expands_counts(self):
        ops = [
            MatmulOp("a", 8, 8, 8),
            BatchedMatmulOp("b", count=3, m=8, n=8, k=8),
        ]
        rows = lower_ops(ops)
        assert [label for label, _ in rows] == ["a", "b", "b", "b"]

    def test_op_kind_counts(self):
        ops = [CONV, dataclasses.replace(CONV, pass_="dgrad"), FC, FC]
        assert op_kind_counts(ops) == {"conv-fwd": 1, "conv-dgrad": 1, "fc-fwd": 2}


class TestBertFullAttention:
    """The head-batched attention lowering vs an independent per-head oracle."""

    def test_attention_op_count(self):
        ops = bert_full_ops()
        attention = [op for op in ops if isinstance(op, BatchedMatmulOp)]
        # 12 encoder layers x (score + context) = 24 attention ops.
        assert len(attention) == 24

    def test_per_head_oracle_counts(self):
        """Counts == an independent heads x sequences enumeration.

        The oracle never touches the op IR: it walks (layer, head,
        sequence) tuples directly and tallies the two attention GEMM
        shapes BERT-base prescribes at tokens=256, seq=128, 12 heads of
        64 dims.
        """
        tokens, seq, heads, head_dim, layers = 256, 128, 12, 64, 12
        oracle = {}
        for _layer in range(layers):
            for _head in range(heads):
                for _sequence in range(tokens // seq):
                    score = (seq, seq, head_dim)
                    ctx = (seq, head_dim, seq)
                    oracle[score] = oracle.get(score, 0) + 1
                    oracle[ctx] = oracle.get(ctx, 0) + 1
        lowered = {}
        for op in bert_full_ops():
            if not isinstance(op, BatchedMatmulOp):
                continue
            for _, shape, count in lower(op):
                lowered[shape.dims] = lowered.get(shape.dims, 0) + count
        assert lowered == oracle
        assert sum(oracle.values()) == 576  # 24 ops x 24 per-head GEMMs

    def test_partial_trailing_sequence_still_costs_attention(self):
        """Regression: tokens not a multiple of seq must not silently drop
        the trailing sequence's attention work (padded execution pays it)."""
        ops = bert_full_ops(tokens=192)
        attention = [op for op in ops if isinstance(op, BatchedMatmulOp)]
        assert all(op.count == 12 * 2 for op in attention)  # ceil(192/128)

    def test_short_token_counts_shrink_the_sequence(self):
        ops = bert_full_ops(tokens=32)
        attention = [op for op in ops if isinstance(op, BatchedMatmulOp)]
        assert all(op.count == 12 for op in attention)  # one sequence
        score = attention[0]
        assert (score.m, score.n, score.k) == (32, 32, 64)

    def test_indivisible_heads_rejected(self):
        with pytest.raises(WorkloadError, match="heads"):
            bert_full_ops(hidden=100, heads=12)
