"""Tests for the whole-GEMM reference oracle."""

from __future__ import annotations

import numpy as np

from repro.numerics.bf16 import quantize_bf16
from repro.workloads.reference import gemm_reference


def test_matches_float64_loosely(rng):
    a = rng.standard_normal((40, 70)).astype(np.float32)
    b = rng.standard_normal((70, 50)).astype(np.float32)
    ref64 = quantize_bf16(a).astype(np.float64) @ quantize_bf16(b).astype(np.float64)
    for chains in (1, 2):
        ours = gemm_reference(a, b, chains=chains)
        np.testing.assert_allclose(ours, ref64, rtol=1e-4, atol=1e-4)


def test_accumulator(rng):
    a = rng.standard_normal((16, 32)).astype(np.float32)
    b = rng.standard_normal((32, 16)).astype(np.float32)
    c = rng.standard_normal((16, 16)).astype(np.float32)
    with_c = gemm_reference(a, b, c)
    without = gemm_reference(a, b)
    np.testing.assert_allclose(with_c - without, c, rtol=1e-3, atol=1e-3)


def test_unaligned_dims_padded_transparently(rng):
    a = rng.standard_normal((17, 33)).astype(np.float32)
    b = rng.standard_normal((33, 18)).astype(np.float32)
    out = gemm_reference(a, b)
    assert out.shape == (17, 18)
    ref64 = quantize_bf16(a).astype(np.float64) @ quantize_bf16(b).astype(np.float64)
    np.testing.assert_allclose(out, ref64, rtol=1e-4, atol=1e-4)


def test_k_tile_composition_order(rng):
    # Composing two K tiles must equal one call on the concatenated K —
    # both accumulate ascending k with the same rounding sequence.
    from repro.numerics.mac import matmul_bf16_fp32

    a = rng.standard_normal((8, 64)).astype(np.float32)
    b = rng.standard_normal((64, 8)).astype(np.float32)
    ours = gemm_reference(a, b, chains=1)
    direct = matmul_bf16_fp32(a, b)
    assert np.array_equal(ours, direct)
