"""Tests for the tile loop nest and register blocking."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.isa.instructions import TileReg
from repro.workloads.gemm import GemmShape
from repro.workloads.tiling import Block, BlockingConfig, MMOrder, TileLoopNest


class TestBlockingConfig:
    def test_algorithm1_register_assignment(self):
        # Algorithm 1: C in treg0-3, B in treg4-5, A in treg6-7.
        b = BlockingConfig(bm=2, bn=2)
        assert b.c_reg(0, 0) == TileReg(0)
        assert b.c_reg(1, 1) == TileReg(3)
        assert b.b_reg(0) == TileReg(4)
        assert b.b_reg(1) == TileReg(5)
        assert b.a_reg(0) == TileReg(6)
        assert b.a_reg(1) == TileReg(7)

    def test_register_budget_enforced(self):
        with pytest.raises(WorkloadError):
            BlockingConfig(bm=3, bn=2)  # 6+3+2 = 11 > 8
        with pytest.raises(WorkloadError):
            BlockingConfig(bm=1, bn=4)  # 4+1+4 = 9 > 8

    def test_budget_boundary(self):
        # 2x2 uses exactly 8; 1x3 uses 3+1+3=7.
        BlockingConfig(bm=2, bn=2)
        BlockingConfig(bm=1, bn=3)
        with pytest.raises(WorkloadError):
            BlockingConfig(bm=4, bn=1)  # 4+4+1 = 9


class TestBlocks:
    def test_full_coverage_no_overlap(self):
        shape = GemmShape(m=5 * 16, n=3 * 16, k=64)
        nest = TileLoopNest(shape, BlockingConfig(bm=2, bn=2))
        seen = set()
        for block in nest.blocks():
            for i in range(block.bm):
                for j in range(block.bn):
                    tile = (block.m0 + i, block.n0 + j)
                    assert tile not in seen
                    seen.add(tile)
        assert seen == {(i, j) for i in range(5) for j in range(3)}

    def test_edge_blocks_clipped(self):
        shape = GemmShape(m=3 * 16, n=16, k=32)
        nest = TileLoopNest(shape, BlockingConfig(bm=2, bn=2))
        blocks = list(nest.blocks())
        assert blocks[-1].bm == 1  # M edge
        assert all(b.bn == 1 for b in blocks)  # N is a single tile column

    def test_block_count(self):
        shape = GemmShape(m=5 * 16, n=3 * 16, k=64)
        nest = TileLoopNest(shape, BlockingConfig(bm=2, bn=2))
        assert nest.block_count == 3 * 2
        assert len(list(nest.blocks())) == 6


class TestMMOrder:
    def test_weight_reuse_order_groups_b(self):
        block = Block(m0=0, n0=0, bm=2, bn=2)
        pairs = block.mm_pairs(MMOrder.WEIGHT_REUSE)
        assert pairs == [(0, 0), (1, 0), (0, 1), (1, 1)]  # B-consecutive

    def test_alternate_order_interleaves_b(self):
        block = Block(m0=0, n0=0, bm=2, bn=2)
        pairs = block.mm_pairs(MMOrder.ALTERNATE)
        assert pairs == [(0, 0), (0, 1), (1, 0), (1, 1)]  # B alternates


class TestBypassPrediction:
    def test_weight_reuse_gives_half(self):
        shape = GemmShape(m=64, n=64, k=128)
        nest = TileLoopNest(shape, BlockingConfig(bm=2, bn=2))
        assert nest.expected_bypass_fraction() == pytest.approx(0.5)

    def test_alternate_gives_zero(self):
        shape = GemmShape(m=64, n=64, k=128)
        nest = TileLoopNest(
            shape, BlockingConfig(bm=2, bn=2, mm_order=MMOrder.ALTERNATE)
        )
        assert nest.expected_bypass_fraction() == 0.0

    def test_edge_blocks_lower_fraction(self):
        # bm=1 edge blocks cannot reuse at all.
        shape = GemmShape(m=48, n=32, k=64)  # 3 m-tiles: one 2-block + one 1-block
        nest = TileLoopNest(shape, BlockingConfig(bm=2, bn=2))
        assert nest.expected_bypass_fraction() == pytest.approx(
            (1 * 2 * 2) / (3 * 2 * 2)
        )

    def test_prediction_matches_program(self):
        from repro.workloads.codegen import generate_gemm_program

        shape = GemmShape(m=48, n=32, k=64)
        nest = TileLoopNest(shape, BlockingConfig(bm=2, bn=2))
        program = generate_gemm_program(shape)
        assert program.weight_reuse_fraction() == pytest.approx(
            nest.expected_bypass_fraction()
        )
