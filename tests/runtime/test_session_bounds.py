"""``Session.bounds``: per-point static bound reports for a sweep plan.

The sharding contract mirrors ``Session.run``: every shard computes bounds
only for the keys it owns, and merging the shard sweeps reproduces the
unsharded sweep *bit-identically* — same keys, same frozen reports.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis import bounds as bounds_analysis
from repro.analysis.bounds import BoundsSweep
from repro.errors import ExperimentError
from repro.runtime import Session, SweepPlan
from repro.workloads.gemm import GemmShape

SMALL = GemmShape(64, 64, 64, name="small")
SUBTILE = GemmShape(60, 64, 64, name="subtile")  # pads onto SMALL's program
TALL = GemmShape(128, 32, 64, name="tall")


def plan(**overrides) -> SweepPlan:
    kwargs = dict(
        designs=("baseline", "rasa-dmdb-wls"),
        workloads=(("small", SMALL), ("subtile", SUBTILE), ("tall", TALL)),
    )
    kwargs.update(overrides)
    return SweepPlan(**kwargs)


def test_reports_cover_every_distinct_job():
    sweep = Session(workers=1).bounds(plan())
    full = plan()
    assert set(sweep.reports) == set(full.job_keys())
    for key, job in zip(full.job_keys(), full.expanded_jobs()):
        assert sweep.reports[key].design_key == job.design_key


def test_shards_merge_bit_identically_to_unsharded():
    session = Session(workers=1)
    whole = session.bounds(plan())
    merged = Session(workers=1).bounds(plan().shard(0, 2)).merge(
        Session(workers=1).bounds(plan().shard(1, 2))
    )
    assert merged == whole


def test_shards_partition_the_keys():
    session = Session(workers=1)
    a = session.bounds(plan().shard(0, 2))
    b = session.bounds(plan().shard(1, 2))
    assert not set(a.reports) & set(b.reports)
    # Overlap with *equal* reports is idempotent; disagreement is an error.
    assert a.merge(a) == a
    key = next(iter(a.reports))
    doctored = BoundsSweep(reports={
        key: dataclasses.replace(a.reports[key], lower_bound=-1)
    })
    with pytest.raises(ExperimentError):
        a.merge(doctored)


def test_bounds_memoize_per_distinct_program(monkeypatch):
    calls = []
    real = bounds_analysis.bound_program

    def counting(program, design_key, core=None):
        calls.append(design_key)
        return real(program, design_key, core=core)

    monkeypatch.setattr(bounds_analysis, "bound_program", counting)
    session = Session(workers=1)
    session.bounds(plan())
    # SMALL and SUBTILE share one padded program -> 2 programs x 2 designs.
    assert len(calls) == 4
    session.bounds(plan())
    assert len(calls) == 4  # memoized across calls of the same session


def test_bound_against_achieved_cycles():
    session = Session(workers=1)
    p = plan(fidelity="fast")
    sweep = session.bounds(p)
    report = session.run(p)
    for key, result in report.results.items():
        static = sweep.reports[key]
        assert static.lower_bound <= result.cycles <= static.upper_bound, key
