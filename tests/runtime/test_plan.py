"""SweepPlan semantics: validation, expansion, JSON round-trip, sharding."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError, ExperimentError
from repro.runtime import Session, SweepJob, SweepPlan, SweepReport
from repro.workloads.codegen import CodegenOptions
from repro.workloads.gemm import GemmShape
from repro.workloads.suites import SuiteSpec, WorkloadSuite
from repro.workloads.tiling import BlockingConfig, MMOrder

SMALL = GemmShape(64, 64, 64, name="small")
TALL = GemmShape(128, 32, 64, name="tall")

INLINE_SUITE = WorkloadSuite.from_gemms(
    "toy-model",
    {
        "a": GemmShape(64, 64, 64, name="a"),
        "b": GemmShape(64, 64, 64, name="b"),
        "c": GemmShape(128, 32, 64, name="c"),
    },
)


def grid_plan(**overrides) -> SweepPlan:
    kwargs = dict(
        designs=("baseline", "rasa-dmdb-wls"),
        workloads=(("small", SMALL), ("tall", TALL)),
    )
    kwargs.update(overrides)
    return SweepPlan(**kwargs)


def suite_plan(**overrides) -> SweepPlan:
    kwargs = dict(designs=("baseline", "rasa-wlbp"), suites=("dlrm",), scale=8)
    kwargs.update(overrides)
    return SweepPlan(**kwargs)


class TestValidation:
    def test_no_work_rejected(self):
        with pytest.raises(ExperimentError, match="declares no work"):
            SweepPlan(designs=("baseline",))

    def test_workloads_without_designs_rejected(self):
        with pytest.raises(ExperimentError, match="at least one design"):
            SweepPlan(workloads=(("small", SMALL),))

    def test_jobs_only_plan_needs_no_designs(self):
        plan = SweepPlan(jobs=(SweepJob(design_key="baseline", shape=SMALL),))
        assert plan.job_count() == 1

    def test_prebuilt_jobs_validate_their_design_keys(self):
        with pytest.raises(ConfigError, match="unknown design"):
            SweepPlan(jobs=(SweepJob(design_key="nope", shape=SMALL),))

    def test_unknown_design_rejected(self):
        with pytest.raises(ConfigError, match="unknown design"):
            grid_plan(designs=("baseline", "bogus"))

    def test_duplicate_designs_rejected(self):
        with pytest.raises(ExperimentError, match="duplicates: baseline"):
            grid_plan(designs=("baseline", "baseline"))

    def test_duplicate_workload_names_rejected(self):
        with pytest.raises(ExperimentError, match="duplicates: small"):
            grid_plan(workloads=(("small", SMALL), ("small", TALL)))

    def test_unknown_suite_rejected(self):
        with pytest.raises(ExperimentError, match="unknown workload suite"):
            suite_plan(suites=("bogus",))

    def test_duplicate_suite_names_rejected(self):
        with pytest.raises(ExperimentError, match="duplicates: toy-model"):
            SweepPlan(
                designs=("baseline",), suites=(INLINE_SUITE, INLINE_SUITE)
            )

    def test_batch_and_batches_mutually_exclusive(self):
        with pytest.raises(ExperimentError, match="mutually exclusive"):
            suite_plan(batch=64, batches=(1, 2))

    def test_batch_without_suites_rejected(self):
        with pytest.raises(ExperimentError, match="apply to suite workloads"):
            grid_plan(batch=64)

    def test_batches_reject_inline_suites(self):
        with pytest.raises(ExperimentError, match="cannot be rebatched"):
            SweepPlan(
                designs=("baseline",), suites=(INLINE_SUITE,), batches=(1, 2)
            )

    @pytest.mark.parametrize("batches,match", [
        ((), "at least one batch"),
        ((0,), "positive integers"),
        ((16, 16), "duplicates: 16"),
    ])
    def test_bad_batch_axes_rejected(self, batches, match):
        with pytest.raises(ExperimentError, match=match):
            suite_plan(batches=batches)

    @pytest.mark.parametrize("scale", [0, -1, 1.5, "4"])
    def test_bad_scale_rejected(self, scale):
        with pytest.raises(ExperimentError, match="scale"):
            suite_plan(scale=scale)

    @pytest.mark.parametrize("knob", ["scale_batch", "scale_spatial"])
    @pytest.mark.parametrize("value", [0, -1, 1.5, "4"])
    def test_bad_role_knobs_rejected(self, knob, value):
        with pytest.raises(ExperimentError, match=knob):
            suite_plan(**{knob: value})

    @pytest.mark.parametrize("knob", ["scale_batch", "scale_spatial"])
    def test_role_knobs_without_suites_rejected(self, knob):
        with pytest.raises(ExperimentError, match="suite workloads only"):
            grid_plan(**{knob: 4})

    @pytest.mark.parametrize("knob", ["scale_batch", "scale_spatial"])
    def test_role_knobs_reject_inline_suites(self, knob):
        with pytest.raises(ExperimentError, match="already lowered"):
            SweepPlan(
                designs=("baseline",), suites=(INLINE_SUITE,), **{knob: 4}
            )

    @pytest.mark.parametrize("knob", ["scale_batch", "scale_spatial"])
    def test_role_knobs_reject_pre_lowered_specs_eagerly(self, knob):
        """A shape-mapping SuiteSpec fails at construction, not mid-run."""
        adhoc = SuiteSpec(
            "adhoc", "pre-lowered", None, lambda batch: {"x": SMALL}
        )
        with pytest.raises(ExperimentError, match="already lowered"):
            SweepPlan(designs=("baseline",), suites=(adhoc,), **{knob: 4})

    def test_workloads_mapping_normalizes_to_items(self):
        assert grid_plan(workloads={"small": SMALL, "tall": TALL}) == grid_plan()


class TestRoleAwareLowering:
    """scale_batch/scale_spatial thread from the plan into suite lowering."""

    def test_scale_spatial_shrinks_conv_suite_rows_only(self):
        plain = suite_plan(suites=("resnet50",), scale=1)
        shrunk = suite_plan(suites=("resnet50",), scale=1, scale_spatial=16)
        plain_suite = plain.built_suites()[0][0]
        shrunk_suite = shrunk.built_suites()[0][0]
        for (label, a), (_, b) in zip(plain_suite.gemms, shrunk_suite.gemms):
            assert b.n == a.n and b.k == a.k
            assert b.m < a.m

    def test_scale_batch_reduces_distinct_key_count_not_identity(self):
        """Knobs change *which* shapes lower, tracked by the cache keys."""
        a = suite_plan(scale_batch=8)
        b = suite_plan()
        assert a.distinct_keys() != b.distinct_keys()

    def test_lowering_config_roundtrips_through_json(self):
        plan = suite_plan(suites=("resnet50",), scale_batch=8, scale_spatial=4)
        decoded = SweepPlan.from_json(plan.to_json())
        assert decoded == plan
        assert decoded.lowering_config().scale_batch == 8
        assert decoded.lowering_config().scale_spatial == 4
        assert decoded.distinct_keys() == plan.distinct_keys()

    def test_pre_knob_plan_json_still_decodes(self):
        """Plan documents written before the op IR lack the knob fields."""
        raw = json.loads(suite_plan().to_json())
        del raw["plan"]["scale_batch"]
        del raw["plan"]["scale_spatial"]
        decoded = SweepPlan.from_json(json.dumps(raw))
        assert decoded.scale_batch == 1 and decoded.scale_spatial == 1
        assert decoded == suite_plan()

    def test_knobbed_batch_axis_curves_execute(self):
        plan = suite_plan(
            suites=("resnet50-train",), scale=16, batches=(1, 4),
            scale_batch=8, scale_spatial=8,
        )
        report = Session(workers=1).run(plan)
        curves = report.batch_curves()["resnet50-train"]
        for curve in curves.values():
            assert curve.batches == (1, 4)
            assert all(t.gemm_count == 159 for t in curve.totals)

    def test_sharded_knobbed_plan_merges_bit_identically(self):
        plan = suite_plan(
            suites=("resnet50-train",), scale=16, scale_batch=8, scale_spatial=8
        )
        full = Session(workers=1).run(plan)
        merged = Session(workers=1).run(plan.shard(0, 2)).merge(
            Session(workers=1).run(plan.shard(1, 2))
        )
        assert merged == full
        assert merged.to_json() == full.to_json()


class TestExpansion:
    def test_grid_job_order_is_workload_major(self):
        jobs = list(grid_plan().iter_jobs())
        assert [(j.workload, j.design_key) for j in jobs] == [
            ("small", "baseline"), ("small", "rasa-dmdb-wls"),
            ("tall", "baseline"), ("tall", "rasa-dmdb-wls"),
        ]

    def test_suite_jobs_expand_distinct_entries_only(self):
        plan = SweepPlan(designs=("baseline",), suites=(INLINE_SUITE,))
        jobs = list(plan.iter_jobs())
        assert len(jobs) == 2  # 3 GEMMs, 2 distinct dims
        assert [j.shape.dims for j in jobs] == [(64, 64, 64), (128, 32, 64)]

    def test_batch_axis_labels_jobs_per_batch(self):
        plan = suite_plan(batches=(1, 64))
        labels = {j.workload for j in plan.iter_jobs()}
        assert any(label.endswith("@b1") for label in labels)
        assert any(label.endswith("@b64") for label in labels)

    def test_distinct_keys_dedup_sub_tile_batches(self):
        collapsed = suite_plan(batches=(1, 2, 4))   # all below one tile block
        spread = suite_plan(batches=(1, 512))
        assert len(collapsed.distinct_keys()) < len(spread.distinct_keys())

    def test_lazy_expansion_runs_nothing(self):
        # Construction + key expansion must not need any backend: an
        # unknown *fidelity* (resolved only at execution time) is fine.
        plan = grid_plan(fidelity="registered-later")
        assert len(plan.distinct_keys()) == 4

    def test_scale_applies_to_named_workloads(self):
        # The plan serializes the unscaled declaration; expansion shrinks
        # workload shapes with the usual GemmShape.scaled floors.
        jobs = list(grid_plan(workloads={"big": GemmShape(512, 512, 512)},
                              scale=4).iter_jobs())
        assert {j.shape.dims for j in jobs} == {(128, 128, 128)}
        unscaled = list(grid_plan(
            workloads={"big": GemmShape(512, 512, 512)}
        ).iter_jobs())
        assert {j.shape.dims for j in unscaled} == {(512, 512, 512)}

    def test_job_keys_hash_once_and_memoize(self):
        plan = grid_plan()
        assert plan.expanded_jobs() is plan.expanded_jobs()
        assert plan.job_keys() is plan.job_keys()
        assert plan.distinct_keys() is plan.distinct_keys()
        assert plan.job_count() == len(plan.job_keys())
        assert list(plan.iter_jobs()) == list(plan.expanded_jobs())

    def test_built_suites_memoize(self):
        plan = suite_plan(batches=(1, 64))
        assert plan.built_suites() is plan.built_suites()

    def test_registered_suite_spec_normalizes_to_its_name(self):
        from repro.workloads.suites import SUITES

        by_spec = SweepPlan(designs=("baseline",), suites=(SUITES["dlrm"],))
        by_name = SweepPlan(designs=("baseline",), suites=("dlrm",))
        assert by_spec == by_name
        assert SweepPlan.from_json(by_spec.to_json()) == by_spec

    def test_empty_inline_suite_rejected(self):
        # WorkloadSuite.from_gemms rejects {}, but decoded/hand-built
        # suites can bypass it; the plan must not declare zero points.
        empty = WorkloadSuite(name="hollow", gemms=())
        with pytest.raises(ExperimentError, match="'hollow' has no GEMMs"):
            SweepPlan(designs=("baseline",), suites=(empty,))

    def test_empty_inline_suite_rejected_from_json(self):
        import json as jsonlib

        text = SweepPlan(
            designs=("baseline",), suites=(INLINE_SUITE,)
        ).to_json()
        payload = jsonlib.loads(text)
        payload["plan"]["suites"][0]["inline"]["gemms"] = []
        with pytest.raises(ExperimentError, match="has no GEMMs"):
            SweepPlan.from_json(jsonlib.dumps(payload))


class TestJsonRoundTrip:
    @pytest.mark.parametrize("plan_factory", [
        grid_plan,
        suite_plan,
        lambda: suite_plan(batches=(1, 16, 256)),
        lambda: suite_plan(batch=64),
        lambda: SweepPlan(designs=("baseline",), suites=(INLINE_SUITE,)),
        lambda: SweepPlan(jobs=(
            SweepJob(design_key="baseline", shape=SMALL, workload="j0"),
            SweepJob(design_key="rasa-wlbp", shape=TALL, fidelity="engine"),
        )),
        lambda: grid_plan(
            codegen=CodegenOptions(
                blocking=BlockingConfig(bm=1, bn=2, mm_order=MMOrder.ALTERNATE),
                scalar_overhead_per_kstep=5,
            ),
            fidelity="ooo",
        ),
        lambda: grid_plan().shard(1, 3),
    ])
    def test_round_trip_equality(self, plan_factory):
        plan = plan_factory()
        assert SweepPlan.from_json(plan.to_json()) == plan

    def test_canonical_json_is_compact_and_sorted(self):
        text = grid_plan().to_json()
        assert ": " not in text and ", " not in text
        keys = list(json.loads(text)["plan"])
        assert keys == sorted(keys)

    def test_round_trip_preserves_distinct_keys(self):
        plan = suite_plan(batches=(1, 64))
        assert SweepPlan.from_json(plan.to_json()).distinct_keys() == \
            plan.distinct_keys()

    def test_ad_hoc_suite_spec_does_not_serialize(self):
        spec = SuiteSpec("adhoc", "test", None,
                         lambda batch: {"x": GemmShape(64, 64, 64)})
        plan = SweepPlan(designs=("baseline",), suites=(spec,))
        with pytest.raises(ExperimentError, match="cannot.*serialize|serialize"):
            plan.to_json()

    def test_malformed_json_rejected(self):
        with pytest.raises(ExperimentError, match="malformed plan JSON"):
            SweepPlan.from_json("{not json")
        with pytest.raises(ExperimentError, match="not a format"):
            SweepPlan.from_json('{"format": 99, "plan": {}}')


class TestSharding:
    def test_partition_is_disjoint_and_exhaustive(self):
        plan = suite_plan(batches=(1, 64, 512))
        full = set(plan.distinct_keys())
        shards = [set(plan.shard(i, 3).shard_keys()) for i in range(3)]
        assert set().union(*shards) == full
        assert sum(len(s) for s in shards) == len(full)  # pairwise disjoint

    def test_partition_is_deterministic(self):
        a = suite_plan(batches=(1, 64)).shard(0, 2).shard_keys()
        b = suite_plan(batches=(1, 64)).shard(0, 2).shard_keys()
        assert a == b

    def test_partition_is_balanced_by_construction(self):
        plan = suite_plan()
        sizes = [len(plan.shard(i, 4).shard_keys()) for i in range(4)]
        assert max(sizes) - min(sizes) <= 1

    def test_single_shard_owns_everything(self):
        plan = grid_plan()
        assert set(plan.shard(0, 1).shard_keys()) == set(plan.distinct_keys())

    def test_shard_of_shard_rejected(self):
        with pytest.raises(ExperimentError, match="already shard 0/2"):
            grid_plan().shard(0, 2).shard(0, 2)

    @pytest.mark.parametrize("index,count", [(2, 2), (-1, 2), (0, 0)])
    def test_out_of_range_shard_rejected(self, index, count):
        with pytest.raises(ExperimentError, match="shard index"):
            grid_plan().shard(index, count)

    def test_unsharded_strips_the_annotation(self):
        plan = grid_plan()
        assert plan.shard(1, 2).unsharded() == plan


class TestReportViews:
    @pytest.fixture(scope="class")
    def session(self):
        return Session(workers=1)

    def test_partial_report_refuses_views(self, session):
        report = session.run(grid_plan().shard(0, 2))
        with pytest.raises(ExperimentError, match="merge all 2 shard"):
            report.grid()
        with pytest.raises(ExperimentError, match="merge all 2 shard"):
            report.flat()

    def test_suite_totals_on_batch_plan_redirects(self, session):
        report = session.run(suite_plan(batches=(1, 64)))
        with pytest.raises(ExperimentError, match="batch_curves"):
            report.suite_totals()

    def test_batch_curves_on_plain_plan_redirects(self, session):
        report = session.run(suite_plan())
        with pytest.raises(ExperimentError, match="suite_totals"):
            report.batch_curves()

    def test_point_access(self, session):
        report = session.run(grid_plan())
        result = report.point("baseline", SMALL)
        assert result.cycles == report.grid()["small"]["baseline"].cycles
        with pytest.raises(ExperimentError, match="no result"):
            report.point("baseline", GemmShape(512, 512, 512))

    def test_point_resolves_declared_shapes_on_scaled_plans(self, session):
        big = GemmShape(512, 512, 512, name="big")
        report = session.run(grid_plan(workloads={"big": big}, scale=4))
        # The declared (unscaled) shape resolves; point() applies the
        # plan's scale exactly as expansion does.
        assert report.point("baseline", big) == \
            report.grid()["big"]["baseline"]

    def test_flat_aligns_with_iter_jobs(self, session):
        plan = grid_plan()
        flat = session.run(plan).flat()
        grid = session.run(plan).grid()
        jobs = list(plan.iter_jobs())
        for job, result in zip(jobs, flat):
            assert grid[job.workload][job.design_key] == result

    def test_report_json_round_trip(self, session):
        report = session.run(suite_plan())
        loaded = SweepReport.from_json(report.to_json())
        assert loaded == report
        assert loaded.suite_totals() == report.suite_totals()


class TestMerging:
    @pytest.fixture(scope="class")
    def session(self):
        return Session(workers=1)

    def test_merge_requires_same_plan(self, session):
        a = session.run(grid_plan().shard(0, 2))
        b = session.run(suite_plan().shard(1, 2))
        with pytest.raises(ExperimentError, match="different plans"):
            a.merge(b)

    def test_merge_requires_every_shard(self, session):
        plan = suite_plan()
        a = session.run(plan.shard(0, 3))
        b = session.run(plan.shard(1, 3))
        with pytest.raises(ExperimentError, match="missing"):
            a.merge(b)

    def test_merge_rejects_disagreeing_results(self, session):
        import dataclasses as dc

        plan = grid_plan()
        full = session.run(plan)
        key = next(iter(full.results))
        tampered = SweepReport(
            plan=plan,
            results={
                k: (dc.replace(r, cycles=r.cycles + 1) if k == key else r)
                for k, r in full.results.items()
            },
        )
        with pytest.raises(ExperimentError, match="disagree"):
            full.merge(tampered)
