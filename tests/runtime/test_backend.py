"""Backend protocol + registry resolution tests."""

from __future__ import annotations

import pytest

from repro.cpu.config import CoreConfig
from repro.cpu.fast import FastCoreModel
from repro.engine.designs import get_design
from repro.errors import ConfigError, SimError
from repro.runtime import (
    AnalyticBackend,
    EngineBackend,
    FastCoreBackend,
    OoOCoreBackend,
    ShapeBackend,
    SimBackend,
    register_backend,
    resolve_backend,
)
from repro.runtime.registry import FIDELITIES
from repro.workloads.codegen import generate_gemm_program
from repro.workloads.gemm import GemmShape

SHAPE = GemmShape(m=64, n=64, k=64, name="backend-test")


@pytest.fixture(scope="module")
def program():
    return generate_gemm_program(SHAPE)


class TestRegistry:
    def test_default_resolution_is_fast(self):
        backend = resolve_backend("rasa-dmdb-wls")
        assert isinstance(backend, FastCoreBackend)
        assert backend.fidelity == "fast"

    def test_every_fidelity_resolves(self):
        assert isinstance(resolve_backend("baseline", fidelity="fast"), FastCoreBackend)
        assert isinstance(resolve_backend("baseline", fidelity="ooo"), OoOCoreBackend)
        assert isinstance(resolve_backend("baseline", fidelity="engine"), EngineBackend)

    def test_resolved_backends_satisfy_protocol(self):
        for fidelity in FIDELITIES:
            assert isinstance(resolve_backend("baseline", fidelity=fidelity), SimBackend)

    def test_unknown_fidelity(self):
        with pytest.raises(ConfigError, match="unknown fidelity"):
            resolve_backend("baseline", fidelity="spice")

    def test_unknown_design(self):
        with pytest.raises(ConfigError, match="unknown design"):
            resolve_backend("bogus-design")

    def test_functional_rejected_on_timing_only_fidelities(self):
        for fidelity in ("fast", "ooo"):
            with pytest.raises(ConfigError, match="timing-only"):
                resolve_backend("baseline", fidelity=fidelity, functional="oracle")

    def test_bad_functional_mode(self):
        with pytest.raises(ConfigError, match="functional"):
            resolve_backend("baseline", fidelity="engine", functional="magic")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigError, match="already registered"):
            register_backend("fast")(lambda engine, core, functional: None)

    def test_engine_config_comes_from_design(self):
        backend = resolve_backend("rasa-dmdb-wls")
        assert backend.engine == get_design("rasa-dmdb-wls").config


class TestExecution:
    def test_run_before_prepare_raises(self):
        with pytest.raises(SimError, match="before prepare"):
            resolve_backend("baseline").run()

    def test_prepare_run_equals_simulate(self, program):
        backend = resolve_backend("rasa-wlbp")
        assert backend.prepare(program).run() == backend.simulate(program)

    def test_fast_backend_matches_direct_model(self, program, design_key):
        """The adapter is a pure wrapper: bit-identical to hand-wiring."""
        backend = resolve_backend(design_key)
        direct = FastCoreModel(
            core=CoreConfig(), engine=get_design(design_key).config
        ).run(program)
        assert backend.simulate(program) == direct

    def test_engine_backend_agrees_on_engine_stats(self, program):
        fast = resolve_backend("rasa-wlbp").simulate(program)
        engine = resolve_backend("rasa-wlbp", fidelity="engine").simulate(program)
        assert engine.mm_count == fast.mm_count
        assert engine.bypass_count == fast.bypass_count
        assert engine.weight_loads == fast.weight_loads
        # Engine-bound is an optimistic lower bound on end-to-end time.
        assert 0 < engine.cycles <= fast.cycles

    def test_engine_backend_repeatable(self, program):
        """prepare() resets engine state, so reruns are independent."""
        backend = resolve_backend("rasa-wlbp", fidelity="engine")
        assert backend.simulate(program) == backend.simulate(program)

    def test_ooo_backend_close_to_fast(self, program):
        fast = resolve_backend("rasa-dmdb-wls").simulate(program)
        ooo = resolve_backend("rasa-dmdb-wls", fidelity="ooo").simulate(program)
        assert ooo.mm_count == fast.mm_count
        assert ooo.cycles == pytest.approx(fast.cycles, rel=0.05)


class TestAnalyticBackend:
    """The shape-level fidelity: no program ever exists."""

    def test_resolves_and_satisfies_shape_protocol(self):
        backend = resolve_backend("rasa-dmdb-wls", fidelity="analytic")
        assert isinstance(backend, AnalyticBackend)
        assert isinstance(backend, ShapeBackend)
        assert backend.fidelity == "analytic"
        assert backend.engine == get_design("rasa-dmdb-wls").config

    def test_functional_rejected(self):
        with pytest.raises(ConfigError, match="timing-only"):
            resolve_backend("baseline", fidelity="analytic", functional="oracle")

    def test_program_phases_raise(self, program):
        backend = resolve_backend("baseline", fidelity="analytic")
        with pytest.raises(SimError, match="shape-level"):
            backend.prepare(program)
        with pytest.raises(SimError, match="shape-level"):
            backend.run()
        with pytest.raises(SimError, match="shape-level"):
            backend.simulate(program)

    def test_run_shape_matches_fast_backend(self, program, design_key):
        analytic = resolve_backend(design_key, fidelity="analytic")
        fast = resolve_backend(design_key, fidelity="fast")
        assert analytic.run_shape(SHAPE) == fast.simulate(program)
