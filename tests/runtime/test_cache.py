"""Result-cache tests: keys, hit/miss, invalidation, persistence."""

from __future__ import annotations

import dataclasses
import json
import os
import warnings

import pytest

from repro.cpu.config import CoreConfig
from repro.cpu.result import SimResult
from repro.runtime.cache import CODE_VERSION, ResultCache, cache_key
from repro.workloads.codegen import CodegenOptions
from repro.workloads.gemm import GemmShape
from repro.workloads.tiling import BlockingConfig, MMOrder

SHAPE = GemmShape(m=64, n=64, k=64, name="cache-test")
CORE = CoreConfig()
CODEGEN = CodegenOptions()

RESULT = SimResult(
    design="test design",
    program="cache-test",
    cycles=1234,
    instructions=100,
    mm_count=32,
    bypass_count=16,
    weight_loads=16,
    engine_busy_cycles=300,
    clock_mhz=2000,
)


class TestCacheKey:
    def test_deterministic(self):
        assert cache_key("baseline", SHAPE, CORE, CODEGEN) == cache_key(
            "baseline", SHAPE, CORE, CODEGEN
        )

    def test_sensitive_to_every_component(self):
        base = cache_key("baseline", SHAPE, CORE, CODEGEN)
        assert cache_key("rasa-pipe", SHAPE, CORE, CODEGEN) != base
        assert cache_key("baseline", dataclasses.replace(SHAPE, m=128), CORE, CODEGEN) != base
        assert (
            cache_key("baseline", SHAPE, dataclasses.replace(CORE, rob_size=224), CODEGEN)
            != base
        )
        assert cache_key("baseline", SHAPE, CORE, CODEGEN, fidelity="ooo") != base

    def test_label_independent(self):
        """Display names never change what simulates, so never change keys."""
        q = GemmShape(m=256, n=768, k=768, name="enc0.q")
        v = GemmShape(m=256, n=768, k=768, name="enc11.v")
        anonymous = GemmShape(m=256, n=768, k=768)
        assert (
            cache_key("baseline", q, CORE, CODEGEN)
            == cache_key("baseline", v, CORE, CODEGEN)
            == cache_key("baseline", anonymous, CORE, CODEGEN)
        )

    def test_label_independence_does_not_leak_to_dims(self):
        a = GemmShape(m=64, n=64, k=64, name="same-label")
        b = GemmShape(m=64, n=64, k=32, name="same-label")
        assert cache_key("baseline", a, CORE, CODEGEN) != cache_key(
            "baseline", b, CORE, CODEGEN
        )

    def test_padded_dims_share_a_key(self):
        """Sub-tile shapes lower to identical streams, so share one key.

        Codegen pads every GEMM up to whole rasa_mm tiles (16 x 16 x 32)
        before lowering — batches 1..16 of an FC layer are one point.
        """
        keys = {
            cache_key("baseline", GemmShape(m=m, n=64, k=64), CORE, CODEGEN)
            for m in (1, 2, 7, 15, 16)
        }
        assert len(keys) == 1
        beyond = cache_key("baseline", GemmShape(m=17, n=64, k=64), CORE, CODEGEN)
        assert beyond not in keys

    def test_padding_applies_to_every_dimension(self):
        base = cache_key("baseline", GemmShape(m=16, n=16, k=32), CORE, CODEGEN)
        assert cache_key("baseline", GemmShape(m=9, n=3, k=20), CORE, CODEGEN) == base
        assert cache_key("baseline", GemmShape(m=9, n=17, k=20), CORE, CODEGEN) != base

    def test_sensitive_to_nested_enum(self):
        alternate = CodegenOptions(
            blocking=BlockingConfig(mm_order=MMOrder.ALTERNATE)
        )
        assert cache_key("baseline", SHAPE, CORE, alternate) != cache_key(
            "baseline", SHAPE, CORE, CODEGEN
        )

    def test_version_bump_invalidates(self):
        assert cache_key(
            "baseline", SHAPE, CORE, CODEGEN, version=CODE_VERSION + 1
        ) != cache_key("baseline", SHAPE, CORE, CODEGEN)

    def test_rejects_unhashable_junk(self):
        with pytest.raises(TypeError, match="canonicalize"):
            cache_key("baseline", object(), CORE, CODEGEN)


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key("baseline", SHAPE, CORE, CODEGEN)
        assert cache.get(key) is None
        cache.put(key, RESULT)
        assert cache.get(key) == RESULT
        assert (cache.hits, cache.misses) == (1, 1)

    def test_roundtrip_through_disk(self, tmp_path):
        key = cache_key("baseline", SHAPE, CORE, CODEGEN)
        first = ResultCache(tmp_path)
        first.put(key, RESULT)
        first.flush()
        second = ResultCache(tmp_path)
        assert len(second) == 1
        assert second.get(key) == RESULT

    def test_flush_without_changes_writes_nothing(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.flush()
        assert not cache.path.exists()

    def test_corrupt_file_treated_as_empty(self, tmp_path):
        path = tmp_path / "simresults.json"
        path.write_text("{this is not json")
        with pytest.warns(RuntimeWarning):
            cache = ResultCache(tmp_path)
        assert len(cache) == 0

    def test_alien_format_treated_as_empty(self, tmp_path):
        (tmp_path / "simresults.json").write_text(json.dumps({"format": 99}))
        with pytest.warns(RuntimeWarning):
            assert len(ResultCache(tmp_path)) == 0

    def test_stale_field_set_dropped(self, tmp_path):
        key = cache_key("baseline", SHAPE, CORE, CODEGEN)
        blob = {
            "format": 1,
            "results": {key: {"cycles": 1, "unknown_field": 2}},
        }
        (tmp_path / "simresults.json").write_text(json.dumps(blob))
        cache = ResultCache(tmp_path)
        assert cache.get(key) is None
        assert key not in cache

    def test_version_bumped_key_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(cache_key("baseline", SHAPE, CORE, CODEGEN), RESULT)
        bumped = cache_key("baseline", SHAPE, CORE, CODEGEN, version=CODE_VERSION + 1)
        assert cache.get(bumped) is None

    def test_flush_merges_concurrent_writers(self, tmp_path):
        """Two caches over one store: the second flush keeps both entries."""
        key_a = cache_key("baseline", SHAPE, CORE, CODEGEN)
        key_b = cache_key("rasa-pipe", SHAPE, CORE, CODEGEN)
        first = ResultCache(tmp_path)
        second = ResultCache(tmp_path)  # loaded before first's flush
        first.put(key_a, RESULT)
        first.flush()
        second.put(key_b, RESULT)
        second.flush()
        merged = ResultCache(tmp_path)
        assert merged.get(key_a) == RESULT
        assert merged.get(key_b) == RESULT

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key("baseline", SHAPE, CORE, CODEGEN)
        cache.put(key, RESULT)
        cache.clear()
        cache.flush()
        assert len(ResultCache(tmp_path)) == 0

    def test_env_var_controls_default_location(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        cache = ResultCache()
        assert cache.directory == tmp_path / "custom"


class TestDamagedStores:
    """Corrupt/partial stores warn and load empty — they never crash.

    Sweep-service workers share one on-disk store; a worker SIGKILLed
    mid-write (or a hand-edited file) must degrade to re-simulating.
    """

    def test_corrupt_file_warns(self, tmp_path):
        (tmp_path / "simresults.json").write_text("{this is not json")
        with pytest.warns(RuntimeWarning, match="corrupt or partially written"):
            cache = ResultCache(tmp_path)
        assert len(cache) == 0

    def test_truncated_flush_warns(self, tmp_path):
        """A store cut off mid-write (the pre-atomic-rename failure mode)."""
        cache = ResultCache(tmp_path)
        cache.put(cache_key("baseline", SHAPE, CORE, CODEGEN), RESULT)
        cache.flush()
        full = cache.path.read_text()
        cache.path.write_text(full[: len(full) // 2])
        with pytest.warns(RuntimeWarning, match="corrupt or partially written"):
            assert len(ResultCache(tmp_path)) == 0

    def test_valid_json_that_is_not_an_object_warns(self, tmp_path):
        (tmp_path / "simresults.json").write_text("[1, 2, 3]")
        with pytest.warns(RuntimeWarning, match="unrecognized format"):
            assert len(ResultCache(tmp_path)) == 0

    def test_alien_format_number_warns(self, tmp_path):
        (tmp_path / "simresults.json").write_text(json.dumps({"format": 99}))
        with pytest.warns(RuntimeWarning, match="unrecognized format"):
            assert len(ResultCache(tmp_path)) == 0

    def test_missing_results_section_warns(self, tmp_path):
        blob = {"format": 1, "results": ["not", "a", "mapping"]}
        (tmp_path / "simresults.json").write_text(json.dumps(blob))
        with pytest.warns(RuntimeWarning, match="no result section"):
            assert len(ResultCache(tmp_path)) == 0

    def test_missing_file_stays_silent(self, tmp_path):
        """A cold start is normal, not damage — no warning allowed."""
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            cache = ResultCache(tmp_path / "never-flushed")
        assert len(cache) == 0

    def test_damaged_store_heals_on_the_next_flush(self, tmp_path):
        (tmp_path / "simresults.json").write_text("garbage")
        with pytest.warns(RuntimeWarning):
            cache = ResultCache(tmp_path)
        key = cache_key("baseline", SHAPE, CORE, CODEGEN)
        cache.put(key, RESULT)
        with pytest.warns(RuntimeWarning):  # flush re-reads for the merge
            cache.flush()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            healed = ResultCache(tmp_path)
        assert healed.get(key) == RESULT


class TestAtomicFlush:
    def test_failed_replace_leaves_the_store_intact(self, tmp_path, monkeypatch):
        """The write is all-or-nothing: a dying writer never truncates."""
        key = cache_key("baseline", SHAPE, CORE, CODEGEN)
        first = ResultCache(tmp_path)
        first.put(key, RESULT)
        first.flush()
        before = first.path.read_text()

        second = ResultCache(tmp_path)
        second.put(cache_key("rasa-pipe", SHAPE, CORE, CODEGEN), RESULT)

        def exploding_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr("repro.runtime.cache.os.replace", exploding_replace)
        with pytest.raises(OSError, match="disk full"):
            second.flush()
        assert second.path.read_text() == before  # untouched
        assert list(tmp_path.glob("*.tmp")) == []  # temp file cleaned up

    def test_flush_goes_through_a_rename(self, tmp_path, monkeypatch):
        """Readers can never observe a half-written store file."""
        calls = []
        real_replace = os.replace

        def recording_replace(src, dst):
            calls.append((str(src), str(dst)))
            return real_replace(src, dst)

        monkeypatch.setattr("repro.runtime.cache.os.replace", recording_replace)
        cache = ResultCache(tmp_path)
        cache.put(cache_key("baseline", SHAPE, CORE, CODEGEN), RESULT)
        cache.flush()
        ((src, dst),) = calls
        assert src.endswith(".tmp")
        assert dst == str(cache.path)
