"""SweepRunner tests: parallel == serial, memoization, dedup, suites.

Also covers the ``normalized_runtimes`` / ``geometric_mean`` edge cases the
grid consumers rely on.
"""

from __future__ import annotations

import pytest

from repro.cpu.config import CoreConfig
from repro.cpu.result import SimResult
from repro.engine.designs import DESIGNS
from repro.errors import ExperimentError
from repro.experiments.runner import geometric_mean, normalized_runtimes
from repro.runtime import ResultCache, SweepJob, SweepRunner, cached_program
from repro.runtime.registry import FIDELITIES, resolve_backend
from repro.workloads.codegen import generate_gemm_program
from repro.workloads.gemm import GemmShape
from repro.workloads.suites import WorkloadSuite

SHAPES = {
    "small": GemmShape(m=64, n=64, k=64, name="small"),
    "tall": GemmShape(m=128, n=32, k=64, name="tall"),
}
DESIGN_KEYS = ["baseline", "rasa-wlbp", "rasa-dmdb-wls"]


def _jobs():
    return [
        SweepJob(design_key=key, shape=shape, workload=name)
        for name, shape in SHAPES.items()
        for key in DESIGN_KEYS
    ]


@pytest.fixture
def counting_fidelity():
    """Register a backend that records every simulation it executes.

    Runs with ``workers=1`` keep execution in-process, so the shared list
    observes exactly how many simulations a sweep performed.
    """
    calls = []

    class CountingBackend:
        fidelity = "counting-test"

        def __init__(self):
            self._program = None

        def prepare(self, program):
            self._program = program
            return self

        def run(self):
            calls.append(self._program.name)
            return SimResult(
                design="counting",
                program=self._program.name,
                cycles=100 + len(self._program),
                instructions=len(self._program),
                mm_count=1,
                bypass_count=0,
                weight_loads=1,
                engine_busy_cycles=10,
                clock_mhz=2000,
            )

        def simulate(self, program):
            return self.prepare(program).run()

    FIDELITIES["counting-test"] = lambda engine, core, functional: CountingBackend()
    try:
        yield calls
    finally:
        del FIDELITIES["counting-test"]


class TestSweepRunner:
    def test_serial_results(self):
        results = SweepRunner(workers=1).run(_jobs())
        assert len(results) == 6
        assert all(isinstance(r, SimResult) for r in results)

    def test_parallel_matches_serial_bit_identical(self):
        serial = SweepRunner(workers=1).run(_jobs())
        parallel = SweepRunner(workers=2).run(_jobs())
        assert serial == parallel

    def test_duplicate_jobs_share_one_simulation(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = _jobs()[0]
        results = SweepRunner(cache=cache, workers=1).run([job, job, job])
        assert results[0] == results[1] == results[2]
        assert len(cache) == 1  # one key, simulated once

    def test_cache_hit_on_second_run(self, tmp_path):
        first = ResultCache(tmp_path)
        cold = SweepRunner(cache=first, workers=1).run(_jobs())
        assert (first.hits, first.misses) == (0, 6)

        warm_cache = ResultCache(tmp_path)
        warm = SweepRunner(cache=warm_cache, workers=1).run(_jobs())
        assert (warm_cache.hits, warm_cache.misses) == (6, 0)
        assert warm == cold

    def test_parallel_cold_equals_warm_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = SweepRunner(cache=cache, workers=2).run(_jobs())
        warm = SweepRunner(cache=ResultCache(tmp_path), workers=2).run(_jobs())
        assert cold == warm

    def test_empty_job_list(self):
        assert SweepRunner(workers=1).run([]) == []

    def test_run_grid_layout(self):
        grid = SweepRunner(workers=1).run_grid(DESIGN_KEYS, SHAPES)
        assert set(grid) == set(SHAPES)
        for per_design in grid.values():
            assert set(per_design) == set(DESIGN_KEYS)

    def test_grid_matches_flat_jobs(self):
        grid = SweepRunner(workers=1).run_grid(DESIGN_KEYS, SHAPES)
        flat = SweepRunner(workers=1).run(_jobs())
        by_pair = {
            (job.workload, job.design_key): result
            for job, result in zip(_jobs(), flat)
        }
        for workload, per_design in grid.items():
            for key, result in per_design.items():
                assert result == by_pair[(workload, key)]

    def test_fidelity_flows_through(self):
        job = SweepJob(
            design_key="rasa-wlbp", shape=SHAPES["small"], fidelity="engine"
        )
        engine = SweepRunner(workers=1).run([job])[0]
        fast = SweepRunner(workers=1).run(
            [SweepJob(design_key="rasa-wlbp", shape=SHAPES["small"])]
        )[0]
        assert engine.mm_count == fast.mm_count
        assert engine.cycles < fast.cycles

    def test_job_key_distinguishes_core_config(self):
        a = SweepJob(design_key="baseline", shape=SHAPES["small"])
        b = SweepJob(
            design_key="baseline",
            shape=SHAPES["small"],
            core=CoreConfig(rob_size=224),
        )
        assert a.key != b.key


class TestDedup:
    """Each distinct (design, dims, config, fidelity) point simulates once."""

    def test_duplicate_jobs_simulate_once_uncached(self, counting_fidelity):
        job = SweepJob(
            design_key="baseline", shape=SHAPES["small"], fidelity="counting-test"
        )
        results = SweepRunner(workers=1).run([job, job, job])
        assert len(counting_fidelity) == 1
        assert results[0] == results[1] == results[2]

    def test_identically_dimensioned_names_simulate_once(self, counting_fidelity):
        jobs = [
            SweepJob(
                design_key="baseline",
                shape=GemmShape(64, 64, 64, name=f"layer{i}"),
                workload=f"layer{i}",
                fidelity="counting-test",
            )
            for i in range(5)
        ]
        results = SweepRunner(workers=1).run(jobs)
        assert len(counting_fidelity) == 1
        assert len(set(map(id, results))) == 1

    def test_distinct_dims_still_simulate_separately(self, counting_fidelity):
        jobs = [
            SweepJob(design_key="baseline", shape=shape, fidelity="counting-test")
            for shape in SHAPES.values()
        ]
        SweepRunner(workers=1).run(jobs)
        assert len(counting_fidelity) == 2

    def test_repeated_keys_count_one_cache_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = _jobs()[0]
        SweepRunner(cache=cache, workers=1).run([job] * 4)
        assert (cache.hits, cache.misses) == (0, 1)

    def test_program_memo_is_name_independent(self):
        from repro.workloads.codegen import CodegenOptions

        codegen = CodegenOptions()
        a = cached_program(GemmShape(64, 64, 64, name="enc0.q"), codegen)
        b = cached_program(GemmShape(64, 64, 64, name="enc7.v"), codegen)
        assert a is b


class TestRunSuite:
    SUITE = WorkloadSuite.from_gemms(
        "toy-model",
        {
            "a": GemmShape(64, 64, 64, name="a"),
            "b": GemmShape(64, 64, 64, name="b"),   # duplicate dims of "a"
            "c": GemmShape(128, 32, 64, name="c"),
            "d": GemmShape(64, 64, 64, name="d"),   # duplicate dims of "a"
        },
    )

    def test_simulates_distinct_points_only(self, counting_fidelity):
        totals = SweepRunner(workers=1).run_suite(
            DESIGN_KEYS, self.SUITE, fidelity="counting-test"
        )
        assert len(counting_fidelity) == 2 * len(DESIGN_KEYS)
        for totals_one in totals.values():
            assert totals_one.gemm_count == 4
            assert totals_one.simulations == 2
            assert totals_one.dedup_factor == pytest.approx(2.0)

    def test_aggregation_matches_brute_force_per_layer(self):
        """Oracle independence: per-layer runs bypass the dedup layer.

        Every layer simulates directly through ``resolve_backend`` — not
        ``SweepRunner.run`` — so a cache-key conflation or a wrong dedup
        expansion cannot leak into both sides of the comparison.
        """
        totals = SweepRunner(workers=1).run_suite(DESIGN_KEYS, self.SUITE)
        for key in DESIGN_KEYS:
            per_layer = [
                resolve_backend(key).simulate(generate_gemm_program(shape))
                for _, shape in self.SUITE.gemms
            ]
            agg = totals[key]
            assert agg.cycles == sum(r.cycles for r in per_layer)
            assert agg.instructions == sum(r.instructions for r in per_layer)
            assert agg.mm_count == sum(r.mm_count for r in per_layer)
            assert agg.bypass_count == sum(r.bypass_count for r in per_layer)
            assert agg.weight_loads == sum(r.weight_loads for r in per_layer)

    def test_normalized_and_speedup(self):
        totals = SweepRunner(workers=1).run_suite(
            ["baseline", "rasa-dmdb-wls"], self.SUITE
        )
        base = totals["baseline"]
        best = totals["rasa-dmdb-wls"]
        assert base.normalized_to(base) == pytest.approx(1.0)
        assert best.normalized_to(base) < 0.25
        assert best.speedup_over(base) > 4.0

    def test_per_shape_counts_cover_the_multiset(self):
        totals = SweepRunner(workers=1).run_suite(["baseline"], self.SUITE)
        per_shape = totals["baseline"].per_shape
        assert sum(count for _, count, _ in per_shape) == len(self.SUITE)
        assert [count for _, count, _ in per_shape] == [3, 1]

    def test_run_suites_dedups_across_suites(self, counting_fidelity):
        other = WorkloadSuite.from_gemms(
            "toy-sibling",
            {
                "x": GemmShape(64, 64, 64, name="x"),    # shared with SUITE
                "y": GemmShape(32, 256, 64, name="y"),   # unique
            },
        )
        totals = SweepRunner(workers=1).run_suites(
            ["baseline"], [self.SUITE, other], fidelity="counting-test"
        )
        # 2 distinct in SUITE + 1 new in other: the shared 64^3 point
        # simulates once for the whole batch.
        assert len(counting_fidelity) == 3
        assert set(totals) == {"toy-model", "toy-sibling"}
        assert totals["toy-sibling"]["baseline"].gemm_count == 2

    def test_run_suites_rejects_duplicate_names(self):
        with pytest.raises(ExperimentError, match="duplicates: toy-model"):
            SweepRunner(workers=1).run_suites(
                ["baseline"], [self.SUITE, self.SUITE]
            )

    def test_run_suites_matches_run_suite(self):
        runner = SweepRunner(workers=1)
        combined = runner.run_suites(DESIGN_KEYS, [self.SUITE])
        assert combined["toy-model"] == runner.run_suite(DESIGN_KEYS, self.SUITE)

    def test_suite_uses_result_cache(self, tmp_path):
        cold = ResultCache(tmp_path)
        first = SweepRunner(cache=cold, workers=1).run_suite(DESIGN_KEYS, self.SUITE)
        assert (cold.hits, cold.misses) == (0, 2 * len(DESIGN_KEYS))
        warm = ResultCache(tmp_path)
        second = SweepRunner(cache=warm, workers=1).run_suite(DESIGN_KEYS, self.SUITE)
        assert (warm.hits, warm.misses) == (2 * len(DESIGN_KEYS), 0)
        assert first == second


class TestGridEdgeCases:
    def test_normalized_runtimes_empty_grid(self):
        assert normalized_runtimes({}) == {}

    def test_normalized_runtimes_missing_baseline(self):
        grid = SweepRunner(workers=1).run_grid(["rasa-wlbp"], SHAPES)
        with pytest.raises(ExperimentError, match="no baseline"):
            normalized_runtimes(grid)

    def test_normalized_runtimes_custom_baseline(self):
        grid = SweepRunner(workers=1).run_grid(["rasa-wlbp"], SHAPES)
        table = normalized_runtimes(grid, baseline_key="rasa-wlbp")
        for per_design in table.values():
            assert per_design["rasa-wlbp"] == pytest.approx(1.0)

    def test_geometric_mean_empty(self):
        assert geometric_mean([]) == 0.0

    def test_geometric_mean_values(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_full_design_registry_grid(self):
        """Every registered design runs through the runner unchanged."""
        grid = SweepRunner(workers=1).run_grid(
            DESIGNS, {"small": SHAPES["small"]}
        )
        normalized = normalized_runtimes(grid)["small"]
        assert normalized["baseline"] == pytest.approx(1.0)
        assert normalized["rasa-dmdb-wls"] < 0.25
