"""SweepRunner tests: parallel == serial, memoization, grid layout.

Also covers the ``normalized_runtimes`` / ``geometric_mean`` edge cases the
grid consumers rely on.
"""

from __future__ import annotations

import pytest

from repro.cpu.config import CoreConfig
from repro.cpu.result import SimResult
from repro.engine.designs import DESIGNS
from repro.errors import ExperimentError
from repro.experiments.runner import geometric_mean, normalized_runtimes
from repro.runtime import ResultCache, SweepJob, SweepRunner
from repro.workloads.gemm import GemmShape

SHAPES = {
    "small": GemmShape(m=64, n=64, k=64, name="small"),
    "tall": GemmShape(m=128, n=32, k=64, name="tall"),
}
DESIGN_KEYS = ["baseline", "rasa-wlbp", "rasa-dmdb-wls"]


def _jobs():
    return [
        SweepJob(design_key=key, shape=shape, workload=name)
        for name, shape in SHAPES.items()
        for key in DESIGN_KEYS
    ]


class TestSweepRunner:
    def test_serial_results(self):
        results = SweepRunner(workers=1).run(_jobs())
        assert len(results) == 6
        assert all(isinstance(r, SimResult) for r in results)

    def test_parallel_matches_serial_bit_identical(self):
        serial = SweepRunner(workers=1).run(_jobs())
        parallel = SweepRunner(workers=2).run(_jobs())
        assert serial == parallel

    def test_duplicate_jobs_share_one_simulation(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = _jobs()[0]
        results = SweepRunner(cache=cache, workers=1).run([job, job, job])
        assert results[0] == results[1] == results[2]
        assert len(cache) == 1  # one key, simulated once

    def test_cache_hit_on_second_run(self, tmp_path):
        first = ResultCache(tmp_path)
        cold = SweepRunner(cache=first, workers=1).run(_jobs())
        assert (first.hits, first.misses) == (0, 6)

        warm_cache = ResultCache(tmp_path)
        warm = SweepRunner(cache=warm_cache, workers=1).run(_jobs())
        assert (warm_cache.hits, warm_cache.misses) == (6, 0)
        assert warm == cold

    def test_parallel_cold_equals_warm_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = SweepRunner(cache=cache, workers=2).run(_jobs())
        warm = SweepRunner(cache=ResultCache(tmp_path), workers=2).run(_jobs())
        assert cold == warm

    def test_empty_job_list(self):
        assert SweepRunner(workers=1).run([]) == []

    def test_run_grid_layout(self):
        grid = SweepRunner(workers=1).run_grid(DESIGN_KEYS, SHAPES)
        assert set(grid) == set(SHAPES)
        for per_design in grid.values():
            assert set(per_design) == set(DESIGN_KEYS)

    def test_grid_matches_flat_jobs(self):
        grid = SweepRunner(workers=1).run_grid(DESIGN_KEYS, SHAPES)
        flat = SweepRunner(workers=1).run(_jobs())
        by_pair = {
            (job.workload, job.design_key): result
            for job, result in zip(_jobs(), flat)
        }
        for workload, per_design in grid.items():
            for key, result in per_design.items():
                assert result == by_pair[(workload, key)]

    def test_fidelity_flows_through(self):
        job = SweepJob(
            design_key="rasa-wlbp", shape=SHAPES["small"], fidelity="engine"
        )
        engine = SweepRunner(workers=1).run([job])[0]
        fast = SweepRunner(workers=1).run(
            [SweepJob(design_key="rasa-wlbp", shape=SHAPES["small"])]
        )[0]
        assert engine.mm_count == fast.mm_count
        assert engine.cycles < fast.cycles

    def test_job_key_distinguishes_core_config(self):
        a = SweepJob(design_key="baseline", shape=SHAPES["small"])
        b = SweepJob(
            design_key="baseline",
            shape=SHAPES["small"],
            core=CoreConfig(rob_size=224),
        )
        assert a.key != b.key


class TestGridEdgeCases:
    def test_normalized_runtimes_empty_grid(self):
        assert normalized_runtimes({}) == {}

    def test_normalized_runtimes_missing_baseline(self):
        grid = SweepRunner(workers=1).run_grid(["rasa-wlbp"], SHAPES)
        with pytest.raises(ExperimentError, match="no baseline"):
            normalized_runtimes(grid)

    def test_normalized_runtimes_custom_baseline(self):
        grid = SweepRunner(workers=1).run_grid(["rasa-wlbp"], SHAPES)
        table = normalized_runtimes(grid, baseline_key="rasa-wlbp")
        for per_design in table.values():
            assert per_design["rasa-wlbp"] == pytest.approx(1.0)

    def test_geometric_mean_empty(self):
        assert geometric_mean([]) == 0.0

    def test_geometric_mean_values(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_full_design_registry_grid(self):
        """Every registered design runs through the runner unchanged."""
        grid = SweepRunner(workers=1).run_grid(
            DESIGNS, {"small": SHAPES["small"]}
        )
        normalized = normalized_runtimes(grid)["small"]
        assert normalized["baseline"] == pytest.approx(1.0)
        assert normalized["rasa-dmdb-wls"] < 0.25
