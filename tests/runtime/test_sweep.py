"""Sweep-execution semantics: dedup, memoization, suite totals, batch curves.

The ``SweepRunner.run_*`` shim family is gone; every sweep is a
:class:`repro.runtime.SweepPlan` run by a :class:`repro.runtime.Session`.
These tests pin the execution semantics the shims used to cover — each
distinct point simulates exactly once, suite totals match brute-force
per-layer oracles that bypass the dedup layer, batch curves match
standalone per-batch runs — plus the ``normalized_runtimes`` /
``geometric_mean`` edge cases the grid consumers rely on.
"""

from __future__ import annotations

import pytest

import repro.runtime.plan as plan_module
from repro.cpu.config import CoreConfig
from repro.cpu.result import SimResult
from repro.engine.designs import DESIGNS
from repro.errors import ExperimentError
from repro.experiments.runner import geometric_mean, normalized_runtimes
from repro.runtime import ResultCache, Session, SweepJob, SweepPlan, cached_program
from repro.runtime.registry import FIDELITIES, resolve_backend
from repro.workloads.codegen import generate_gemm_program
from repro.workloads.gemm import GemmShape
from repro.workloads.suites import SuiteSpec, WorkloadSuite

SHAPES = {
    "small": GemmShape(m=64, n=64, k=64, name="small"),
    "tall": GemmShape(m=128, n=32, k=64, name="tall"),
}
DESIGN_KEYS = ("baseline", "rasa-wlbp", "rasa-dmdb-wls")


def _jobs():
    return [
        SweepJob(design_key=key, shape=shape, workload=name)
        for name, shape in SHAPES.items()
        for key in DESIGN_KEYS
    ]


def _run_flat(jobs, **session_kwargs):
    return Session(workers=1, **session_kwargs).run(SweepPlan(jobs=tuple(jobs))).flat()


def _grid(design_keys=DESIGN_KEYS, shapes=None, workers=1):
    plan = SweepPlan(
        designs=tuple(design_keys),
        workloads=tuple((shapes or SHAPES).items()),
    )
    return Session(workers=workers).run(plan).grid()


@pytest.fixture
def counting_fidelity():
    """Register a backend that records every simulation it executes.

    Runs with ``workers=1`` keep execution in-process, so the shared list
    observes exactly how many simulations a sweep performed.
    """
    calls = []

    class CountingBackend:
        fidelity = "counting-test"

        def __init__(self):
            self._program = None

        def prepare(self, program):
            self._program = program
            return self

        def run(self):
            calls.append(self._program.name)
            return SimResult(
                design="counting",
                program=self._program.name,
                cycles=100 + len(self._program),
                instructions=len(self._program),
                mm_count=1,
                bypass_count=0,
                weight_loads=1,
                engine_busy_cycles=10,
                clock_mhz=2000,
            )

        def simulate(self, program):
            return self.prepare(program).run()

    FIDELITIES["counting-test"] = lambda engine, core, functional: CountingBackend()
    try:
        yield calls
    finally:
        del FIDELITIES["counting-test"]


class TestFlatJobPlans:
    def test_serial_results(self):
        results = _run_flat(_jobs())
        assert len(results) == 6
        assert all(isinstance(r, SimResult) for r in results)

    def test_duplicate_jobs_share_one_simulation(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = _jobs()[0]
        results = _run_flat([job, job, job], cache=cache)
        assert results[0] == results[1] == results[2]
        assert len(cache) == 1  # one key, simulated once

    def test_cache_hit_on_second_run(self, tmp_path):
        first = ResultCache(tmp_path)
        cold = _run_flat(_jobs(), cache=first)
        assert (first.hits, first.misses) == (0, 6)

        warm_cache = ResultCache(tmp_path)
        warm = _run_flat(_jobs(), cache=warm_cache)
        assert (warm_cache.hits, warm_cache.misses) == (6, 0)
        assert warm == cold

    def test_fidelity_flows_through(self):
        engine = _run_flat(
            [SweepJob(design_key="rasa-wlbp", shape=SHAPES["small"],
                      fidelity="engine")]
        )[0]
        fast = _run_flat(
            [SweepJob(design_key="rasa-wlbp", shape=SHAPES["small"])]
        )[0]
        assert engine.mm_count == fast.mm_count
        assert engine.cycles < fast.cycles

    def test_job_key_distinguishes_core_config(self):
        a = SweepJob(design_key="baseline", shape=SHAPES["small"])
        b = SweepJob(
            design_key="baseline",
            shape=SHAPES["small"],
            core=CoreConfig(rob_size=224),
        )
        assert a.key != b.key

    def test_grid_matches_flat_jobs(self):
        grid = _grid()
        flat = _run_flat(_jobs())
        by_pair = {
            (job.workload, job.design_key): result
            for job, result in zip(_jobs(), flat)
        }
        for workload, per_design in grid.items():
            for key, result in per_design.items():
                assert result == by_pair[(workload, key)]


class TestDedup:
    """Each distinct (design, dims, config, fidelity) point simulates once."""

    def test_duplicate_jobs_simulate_once_uncached(self, counting_fidelity):
        job = SweepJob(
            design_key="baseline", shape=SHAPES["small"], fidelity="counting-test"
        )
        results = _run_flat([job, job, job])
        assert len(counting_fidelity) == 1
        assert results[0] == results[1] == results[2]

    def test_identically_dimensioned_names_simulate_once(self, counting_fidelity):
        jobs = [
            SweepJob(
                design_key="baseline",
                shape=GemmShape(64, 64, 64, name=f"layer{i}"),
                workload=f"layer{i}",
                fidelity="counting-test",
            )
            for i in range(5)
        ]
        results = _run_flat(jobs)
        assert len(counting_fidelity) == 1
        assert len(set(map(id, results))) == 1

    def test_distinct_dims_still_simulate_separately(self, counting_fidelity):
        jobs = [
            SweepJob(design_key="baseline", shape=shape, fidelity="counting-test")
            for shape in SHAPES.values()
        ]
        _run_flat(jobs)
        assert len(counting_fidelity) == 2

    def test_repeated_keys_count_one_cache_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = _jobs()[0]
        _run_flat([job] * 4, cache=cache)
        assert (cache.hits, cache.misses) == (0, 1)

    def test_program_memo_is_name_independent(self):
        from repro.workloads.codegen import CodegenOptions

        codegen = CodegenOptions()
        a = cached_program(GemmShape(64, 64, 64, name="enc0.q"), codegen)
        b = cached_program(GemmShape(64, 64, 64, name="enc7.v"), codegen)
        assert a is b


class TestSuiteTotals:
    SUITE = WorkloadSuite.from_gemms(
        "toy-model",
        {
            "a": GemmShape(64, 64, 64, name="a"),
            "b": GemmShape(64, 64, 64, name="b"),   # duplicate dims of "a"
            "c": GemmShape(128, 32, 64, name="c"),
            "d": GemmShape(64, 64, 64, name="d"),   # duplicate dims of "a"
        },
    )

    @staticmethod
    def _totals(suites, design_keys=DESIGN_KEYS, fidelity="fast"):
        plan = SweepPlan(
            designs=tuple(design_keys), suites=tuple(suites), fidelity=fidelity
        )
        return Session(workers=1).run(plan).suite_totals()

    def test_simulates_distinct_points_only(self, counting_fidelity):
        totals = self._totals([self.SUITE], fidelity="counting-test")["toy-model"]
        assert len(counting_fidelity) == 2 * len(DESIGN_KEYS)
        for totals_one in totals.values():
            assert totals_one.gemm_count == 4
            assert totals_one.simulations == 2
            assert totals_one.dedup_factor == pytest.approx(2.0)

    def test_aggregation_matches_brute_force_per_layer(self):
        """Oracle independence: per-layer runs bypass the dedup layer.

        Every layer simulates directly through ``resolve_backend`` — not
        a session — so a cache-key conflation or a wrong dedup expansion
        cannot leak into both sides of the comparison.
        """
        totals = self._totals([self.SUITE])["toy-model"]
        for key in DESIGN_KEYS:
            per_layer = [
                resolve_backend(key).simulate(generate_gemm_program(shape))
                for _, shape in self.SUITE.gemms
            ]
            agg = totals[key]
            assert agg.cycles == sum(r.cycles for r in per_layer)
            assert agg.instructions == sum(r.instructions for r in per_layer)
            assert agg.mm_count == sum(r.mm_count for r in per_layer)
            assert agg.bypass_count == sum(r.bypass_count for r in per_layer)
            assert agg.weight_loads == sum(r.weight_loads for r in per_layer)

    def test_normalized_and_speedup(self):
        totals = self._totals([self.SUITE], ["baseline", "rasa-dmdb-wls"])[
            "toy-model"
        ]
        base = totals["baseline"]
        best = totals["rasa-dmdb-wls"]
        assert base.normalized_to(base) == pytest.approx(1.0)
        assert best.normalized_to(base) < 0.25
        assert best.speedup_over(base) > 4.0

    def test_per_shape_counts_cover_the_multiset(self):
        totals = self._totals([self.SUITE], ["baseline"])["toy-model"]
        per_shape = totals["baseline"].per_shape
        assert sum(count for _, count, _ in per_shape) == len(self.SUITE)
        assert [count for _, count, _ in per_shape] == [3, 1]

    def test_multi_suite_plans_dedup_across_suites(self, counting_fidelity):
        other = WorkloadSuite.from_gemms(
            "toy-sibling",
            {
                "x": GemmShape(64, 64, 64, name="x"),    # shared with SUITE
                "y": GemmShape(32, 256, 64, name="y"),   # unique
            },
        )
        totals = self._totals(
            [self.SUITE, other], ["baseline"], fidelity="counting-test"
        )
        # 2 distinct in SUITE + 1 new in other: the shared 64^3 point
        # simulates once for the whole batch.
        assert len(counting_fidelity) == 3
        assert set(totals) == {"toy-model", "toy-sibling"}
        assert totals["toy-sibling"]["baseline"].gemm_count == 2

    def test_duplicate_suite_names_rejected(self):
        with pytest.raises(ExperimentError, match="duplicates: toy-model"):
            self._totals([self.SUITE, self.SUITE], ["baseline"])

    def test_suite_uses_result_cache(self, tmp_path):
        plan = SweepPlan(designs=DESIGN_KEYS, suites=(self.SUITE,))
        cold = ResultCache(tmp_path)
        first = Session(cache=cold, workers=1).run(plan).suite_totals()
        assert (cold.hits, cold.misses) == (0, 2 * len(DESIGN_KEYS))
        warm = ResultCache(tmp_path)
        second = Session(cache=warm, workers=1).run(plan).suite_totals()
        assert (warm.hits, warm.misses) == (2 * len(DESIGN_KEYS), 0)
        assert first == second


class TestKeyHashing:
    """A run hashes each job exactly once (keys are SHA-256 over JSON).

    ``SweepJob.key`` resolves ``cache_key`` through the plan module, so
    that is where the counter hooks in; the session precomputes every key
    and threads them through dedup, the cache, and the report views.
    """

    def test_one_cache_key_call_per_job(self, monkeypatch):
        calls = []
        real = plan_module.cache_key

        def counting(*args, **kwargs):
            calls.append(args)
            return real(*args, **kwargs)

        monkeypatch.setattr(plan_module, "cache_key", counting)
        jobs = _jobs() + [_jobs()[0]] * 3  # duplicates still hash once each
        _run_flat(jobs)
        assert len(calls) == len(jobs)

    def test_one_cache_key_call_per_job_with_cache(self, tmp_path, monkeypatch):
        calls = []
        real = plan_module.cache_key

        def counting(*args, **kwargs):
            calls.append(args)
            return real(*args, **kwargs)

        monkeypatch.setattr(plan_module, "cache_key", counting)
        jobs = _jobs()
        _run_flat(jobs, cache=ResultCache(tmp_path))
        assert len(calls) == len(jobs)


class TestSweepRunnerIsGone:
    """The deprecated shim family is deleted, not just hidden."""

    def test_runtime_no_longer_exports_sweeprunner(self):
        import repro.runtime as runtime

        assert not hasattr(runtime, "SweepRunner")
        assert "SweepRunner" not in runtime.__all__

    def test_top_level_package_no_longer_exports_sweeprunner(self):
        import repro

        assert not hasattr(repro, "SweepRunner")
        assert "SweepRunner" not in repro.__all__

    def test_shim_module_is_deleted(self):
        with pytest.raises(ImportError):
            import repro.runtime.sweep  # noqa: F401


def _toy_fc_factory(batch):
    batch = batch if batch is not None else 64
    return {
        "fc0": GemmShape(batch, 64, 64, name="fc0"),
        "fc1": GemmShape(batch, 128, 64, name="fc1"),
        "fc2": GemmShape(batch, 64, 64, name="fc2"),  # duplicate dims of fc0
    }


TOY_FC_SPEC = SuiteSpec("toy-fc", "toy FC stack for batch-curve tests",
                        None, _toy_fc_factory)


def _curves(design_keys, spec, batches, fidelity="fast", scale=1, workers=1):
    plan = SweepPlan(
        designs=tuple(design_keys),
        suites=(spec,),
        batches=tuple(batches),
        scale=scale,
        fidelity=fidelity,
    )
    name = spec if isinstance(spec, str) else spec.name
    return Session(workers=workers).run(plan).batch_curves()[name]


class TestSuiteBatchCurves:
    """The Fig. 7 batch axis at suite granularity, dedup across batches."""

    def test_curve_layout(self):
        curves = _curves(DESIGN_KEYS, TOY_FC_SPEC, batches=(16, 64))
        assert set(curves) == set(DESIGN_KEYS)
        for design, curve in curves.items():
            assert curve.suite == "toy-fc"
            assert curve.design_key == design
            assert curve.batches == (16, 64)
            assert all(t.gemm_count == 3 for t in curve.totals)
            assert all(t.simulations == 2 for t in curve.totals)

    def test_sub_tile_batches_simulate_once(self, counting_fidelity):
        """Batches 1..16 pad to one tile row block: identical streams."""
        _curves(["baseline"], TOY_FC_SPEC, batches=(1, 2, 4, 8, 16),
                fidelity="counting-test")
        # 2 distinct (padded) shapes, once each — not 5 batches x 2 shapes.
        assert len(counting_fidelity) == 2

    def test_sub_tile_batches_identical_normalized_runtime(self):
        """The Fig. 7 plateau at suite granularity: one lowered stream."""
        curves = _curves(
            ["baseline", "rasa-dmdb-wls"], TOY_FC_SPEC, batches=(1, 2, 4, 8, 16)
        )
        normalized = curves["rasa-dmdb-wls"].normalized_to(curves["baseline"])
        values = set(normalized.values())
        assert len(values) == 1
        assert 0.0 < values.pop() < 1.0

    def test_matches_per_batch_suite_oracle(self, counting_fidelity):
        """Curve points == standalone per-batch runs, with fewer simulations.

        The oracle rebuilds and runs each batch as its own single-batch
        plan in a fresh session, so the cross-batch dedup cannot leak
        into both sides; totals must agree on every weighted counter.
        """
        batches = (1, 4, 16, 64)
        curves = _curves(
            DESIGN_KEYS, TOY_FC_SPEC, batches=batches, fidelity="counting-test"
        )
        curve_simulations = len(counting_fidelity)
        oracle_simulations = 0
        for batch in batches:
            before = len(counting_fidelity)
            oracle_plan = SweepPlan(
                designs=DESIGN_KEYS,
                suites=(TOY_FC_SPEC.build(batch=batch),),
                fidelity="counting-test",
            )
            oracle = Session(workers=1).run(oracle_plan).suite_totals()["toy-fc"]
            oracle_simulations += len(counting_fidelity) - before
            for design in DESIGN_KEYS:
                point = curves[design].totals_by_batch()[batch]
                assert point.cycles == oracle[design].cycles
                assert point.instructions == oracle[design].instructions
                assert point.mm_count == oracle[design].mm_count
                assert point.bypass_count == oracle[design].bypass_count
                assert point.weight_loads == oracle[design].weight_loads
                assert point.gemm_count == oracle[design].gemm_count
        # Strictly fewer simulations than batches x distinct shapes: the
        # sub-tile batches (1, 4, 16) collapsed onto one padded point.
        assert oracle_simulations == len(batches) * 2 * len(DESIGN_KEYS)
        assert curve_simulations == 2 * 2 * len(DESIGN_KEYS)

    def test_accepts_registered_suite_names(self, counting_fidelity):
        curves = _curves(
            ["baseline"], "dlrm", batches=(64,), fidelity="counting-test", scale=8
        )
        assert curves["baseline"].suite == "dlrm"
        assert curves["baseline"].totals[0].gemm_count == 9

    def test_unknown_suite_name_rejected(self):
        with pytest.raises(ExperimentError, match="unknown workload suite"):
            _curves(["baseline"], "bogus", batches=(1,))

    def test_duplicate_batches_rejected(self):
        with pytest.raises(ExperimentError, match="duplicates: 16"):
            _curves(["baseline"], TOY_FC_SPEC, batches=(16, 64, 16))

    def test_empty_batches_rejected(self):
        with pytest.raises(ExperimentError, match="at least one batch"):
            _curves(["baseline"], TOY_FC_SPEC, batches=())

    @pytest.mark.parametrize("batch", [0, -4, 1.5, "16"])
    def test_non_positive_batches_rejected(self, batch):
        with pytest.raises(ExperimentError, match="positive integers"):
            _curves(["baseline"], TOY_FC_SPEC, batches=(batch,))

    def test_normalize_rejects_mismatched_batch_axes(self):
        a = _curves(["baseline"], TOY_FC_SPEC, batches=(16,))
        b = _curves(["baseline"], TOY_FC_SPEC, batches=(64,))
        with pytest.raises(ExperimentError, match="do not match"):
            a["baseline"].normalized_to(b["baseline"])


class TestZeroCycleGuards:
    """Degenerate zero-cycle/zero-energy aggregates raise, never return 0.0."""

    @staticmethod
    def _totals(cycles, suite="toy-model", design="baseline"):
        from repro.runtime.plan import SuiteTotals

        return SuiteTotals(
            suite=suite, design_key=design, gemm_count=1, simulations=1,
            cycles=cycles, instructions=0, mm_count=0, bypass_count=0,
            weight_loads=0, per_shape=(),
        )

    def test_normalized_to_zero_cycle_baseline_raises(self):
        with pytest.raises(ExperimentError, match="'baseline'.*zero cycles"):
            self._totals(100).normalized_to(self._totals(0))

    def test_speedup_of_zero_cycle_suite_raises(self):
        with pytest.raises(ExperimentError, match="'rasa-wlbp'.*zero cycles"):
            self._totals(0, design="rasa-wlbp").speedup_over(self._totals(100))

    def test_healthy_totals_unaffected(self):
        assert self._totals(50).normalized_to(self._totals(100)) == 0.5
        assert self._totals(50).speedup_over(self._totals(100)) == 2.0


class TestGridEdgeCases:
    def test_normalized_runtimes_empty_grid(self):
        assert normalized_runtimes({}) == {}

    def test_normalized_runtimes_missing_baseline(self):
        grid = _grid(["rasa-wlbp"])
        with pytest.raises(ExperimentError, match="no baseline"):
            normalized_runtimes(grid)

    def test_normalized_runtimes_custom_baseline(self):
        grid = _grid(["rasa-wlbp"])
        table = normalized_runtimes(grid, baseline_key="rasa-wlbp")
        for per_design in table.values():
            assert per_design["rasa-wlbp"] == pytest.approx(1.0)

    def test_geometric_mean_empty(self):
        assert geometric_mean([]) == 0.0

    def test_geometric_mean_values(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_full_design_registry_grid(self):
        """Every registered design runs through the session unchanged."""
        grid = _grid(DESIGNS, {"small": SHAPES["small"]})
        normalized = normalized_runtimes(grid)["small"]
        assert normalized["baseline"] == pytest.approx(1.0)
        assert normalized["rasa-dmdb-wls"] < 0.25
