"""Session(verify=True): opt-in static lint of every distinct lowered program."""

from __future__ import annotations

import pytest

from repro.analysis import verifier
from repro.errors import VerificationError
from repro.runtime import Session, SweepPlan
from repro.workloads.gemm import GemmShape

SMALL = GemmShape(64, 64, 64, name="small")
SUBTILE = GemmShape(60, 64, 64, name="subtile")  # pads onto SMALL's program
TALL = GemmShape(128, 32, 64, name="tall")


def plan(**overrides) -> SweepPlan:
    kwargs = dict(
        designs=("baseline", "rasa-dmdb-wls"),
        workloads=(("small", SMALL), ("subtile", SUBTILE), ("tall", TALL)),
        fidelity="analytic",
    )
    kwargs.update(overrides)
    return SweepPlan(**kwargs)


def test_verified_run_equals_unverified_run():
    assert Session(workers=1, verify=True).run(plan()).results == \
        Session(workers=1).run(plan()).results


def test_lints_once_per_distinct_program(monkeypatch):
    calls = []
    real = verifier.lint_shape

    def counting(shape, codegen):
        calls.append(shape.tile_padded().dims)
        return real(shape, codegen)

    monkeypatch.setattr(verifier, "lint_shape", counting)
    session = Session(workers=1, verify=True)
    session.run(plan())
    # SMALL and SUBTILE share one padded program; designs never multiply lints.
    assert sorted(calls) == sorted([SMALL.dims, TALL.dims])
    session.run(plan())
    assert len(calls) == 2  # memoized across runs of the same session


def test_verify_off_never_lints(monkeypatch):
    def boom(shape, codegen):  # pragma: no cover - fails the test if reached
        raise AssertionError("lint_shape called with verify=False")

    monkeypatch.setattr(verifier, "lint_shape", boom)
    Session(workers=1).run(plan())


def test_diagnostics_fail_the_run(monkeypatch):
    bad = verifier.Diagnostic("oob-access", 3, "rasa_tl", ("treg0",), "seeded")
    real = verifier.lint_shape

    def tainted(shape, codegen):
        report = real(shape, codegen)
        return verifier.VerifierReport(
            name=report.name,
            diagnostics=(bad,),
            counters=report.counters,
            hazards=report.hazards,
        )

    monkeypatch.setattr(verifier, "lint_shape", tainted)
    with pytest.raises(VerificationError, match="oob-access"):
        Session(workers=1, verify=True).run(plan())


def test_from_env_passes_verify_through(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert Session.from_env(verify=True).verify is True
    assert Session.from_env().verify is False
