"""Session tests: plan execution, crash-safe caching, sharded runs."""

from __future__ import annotations

import pytest

from repro.cpu.result import SimResult
from repro.engine.designs import DESIGNS
from repro.errors import ExperimentError, SimError
from repro.runtime import ResultCache, Session, SweepPlan
from repro.runtime.registry import FIDELITIES, resolve_backend
from repro.workloads.codegen import generate_gemm_program
from repro.workloads.gemm import GemmShape

SMALL = GemmShape(64, 64, 64, name="small")
TALL = GemmShape(128, 32, 64, name="tall")
WIDE = GemmShape(32, 256, 64, name="wide")
#: 6 x 2 x 2 = 24 rasa_mm tiles — a count no other test shape shares, so
#: the poison backend can single it out from the lowered program alone.
POISON = GemmShape(96, 32, 64, name="poison")


def grid_plan(designs=("baseline", "rasa-dmdb-wls"), **overrides) -> SweepPlan:
    kwargs = dict(
        designs=designs,
        workloads=(("small", SMALL), ("tall", TALL)),
    )
    kwargs.update(overrides)
    return SweepPlan(**kwargs)


@pytest.fixture
def poison_fidelity():
    """A backend that simulates normally but crashes on one program.

    The poisoned program is POISON's (identified by its mm tile count), so
    a plan can interleave healthy and fatal jobs to prove which results
    survive a mid-sweep crash.
    """
    class PoisonBackend:
        def __init__(self):
            self._program = None

        def prepare(self, program):
            self._program = program
            return self

        def run(self):
            mm = sum(1 for i in self._program if i.opcode.name == "RASA_MM")
            if mm == POISON.mm_count:
                raise SimError("poisoned job crashed mid-sweep")
            return SimResult(
                design="poison",
                program=self._program.name,
                cycles=1000 + mm,
                instructions=len(self._program),
                mm_count=mm,
                bypass_count=0,
                weight_loads=mm,
                engine_busy_cycles=10,
                clock_mhz=2000,
            )

    FIDELITIES["poison-test"] = lambda engine, core, functional: PoisonBackend()
    try:
        yield
    finally:
        del FIDELITIES["poison-test"]


class TestSessionRun:
    def test_matches_direct_backend_execution(self):
        report = Session(workers=1).run(grid_plan())
        grid = report.grid()
        for name, shape in (("small", SMALL), ("tall", TALL)):
            for design in ("baseline", "rasa-dmdb-wls"):
                # The session lowers the *unlabeled* shape (program memo
                # identity); timing must match the labeled direct run.
                direct = resolve_backend(design).simulate(
                    generate_gemm_program(shape.unlabeled())
                )
                assert grid[name][design] == direct

    def test_parallel_matches_serial_bit_identical(self):
        serial = Session(workers=1).run(grid_plan())
        parallel = Session(workers=2).run(grid_plan())
        assert serial == parallel

    def test_cache_round_trip(self, tmp_path):
        cold_cache = ResultCache(tmp_path)
        cold = Session(cache=cold_cache, workers=1).run(grid_plan())
        assert (cold.simulated, cold.cache_hits) == (4, 0)
        warm_cache = ResultCache(tmp_path)
        warm = Session(cache=warm_cache, workers=1).run(grid_plan())
        assert (warm.simulated, warm.cache_hits) == (0, 4)
        assert warm == cold

    def test_session_from_env_no_cache(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert Session.from_env().cache is None

    def test_session_from_env_cache_dir(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        session = Session.from_env()
        assert session.cache is not None
        assert session.cache.directory == tmp_path

    @pytest.mark.parametrize("workers", [0, -3, 2.5, "4"])
    def test_bad_worker_counts_rejected(self, workers):
        with pytest.raises(ExperimentError, match="workers"):
            Session(workers=workers)


class TestCrashSafeCaching:
    """Results completed before a worker crash persist (try/finally flush)."""

    def test_completed_results_survive_a_poisoned_job(
        self, tmp_path, poison_fidelity
    ):
        # Job order is plan order: small (healthy) runs before the poison.
        plan = grid_plan(
            designs=("baseline",),
            workloads=(("small", SMALL), ("poison", POISON)),
            fidelity="poison-test",
        )
        cache = ResultCache(tmp_path)
        with pytest.raises(SimError, match="poisoned job"):
            Session(cache=cache, workers=1).run(plan)
        # The healthy job's result was written back and flushed to disk
        # before the crash: a fresh cache serves it without simulating.
        survivor = ResultCache(tmp_path)
        healthy = grid_plan(
            designs=("baseline",),
            workloads=(("small", SMALL),),
            fidelity="poison-test",
        )
        report = Session(cache=survivor, workers=1).run(healthy)
        assert (report.simulated, report.cache_hits) == (0, 1)

    def test_nothing_persists_when_the_first_job_crashes(
        self, tmp_path, poison_fidelity
    ):
        plan = grid_plan(
            designs=("baseline",),
            workloads=(("poison", POISON),),  # the poisoned point only
            fidelity="poison-test",
        )
        cache = ResultCache(tmp_path)
        with pytest.raises(SimError):
            Session(cache=cache, workers=1).run(plan)
        assert len(ResultCache(tmp_path)) == 0

    def test_crash_free_runs_flush_everything(self, tmp_path, poison_fidelity):
        plan = grid_plan(
            designs=("baseline",),
            workloads=(("small", SMALL), ("wide", WIDE)),
            fidelity="poison-test",
        )
        Session(cache=ResultCache(tmp_path), workers=1).run(plan)
        assert len(ResultCache(tmp_path)) == 2


class TestShardedRuns:
    def test_shard_runs_owned_keys_only(self):
        plan = grid_plan()
        session = Session(workers=1)
        shard0 = session.run(plan.shard(0, 2))
        shard1 = session.run(plan.shard(1, 2))
        assert set(shard0.results).isdisjoint(shard1.results)
        assert set(shard0.results) | set(shard1.results) == set(
            plan.distinct_keys()
        )
        assert shard0.simulated + shard1.simulated == 4

    def test_merged_two_shard_suite_sweep_equals_unsharded_bit_for_bit(self):
        """The ROADMAP sharding item, end to end, with isolated sessions."""
        plan = SweepPlan(
            designs=("baseline", "rasa-dmdb-wls"),
            suites=("dlrm", "training"),
            batches=(1, 64),
            scale=8,
        )
        # Three *independent* sessions — no shared cache, as on three hosts.
        full = Session(workers=1).run(plan)
        merged = Session(workers=1).run(plan.shard(0, 2)).merge(
            Session(workers=1).run(plan.shard(1, 2))
        )
        assert merged == full
        assert merged.to_json() == full.to_json()
        assert merged.batch_curves() == full.batch_curves()

    def test_shard_reports_count_partial_work(self):
        plan = grid_plan()
        report = Session(workers=1).run(plan.shard(0, 2))
        assert report.is_partial
        assert 0 < report.distinct_points < len(plan.distinct_keys())
        assert report.job_count < plan.job_count()


class TestPersistentPool:
    """The worker pool outlives run(): multi-plan sessions fork once."""

    def test_pool_survives_across_runs(self):
        session = Session(workers=2)
        assert session._pool is None  # created lazily, on first fan-out
        session.run(grid_plan())
        pool = session._pool
        assert pool is not None
        session.run(grid_plan(designs=("rasa-pipe", "rasa-wlbp")))
        assert session._pool is pool
        session.close()

    def test_close_idempotent_and_pool_respawns(self):
        session = Session(workers=2)
        session.close()  # nothing to close yet: a no-op
        first = session.run(grid_plan())
        session.close()
        session.close()
        assert session._pool is None
        second = session.run(grid_plan())  # pool respawns transparently
        assert second == first
        session.close()

    def test_context_manager_closes_pool(self):
        with Session(workers=2) as session:
            session.run(grid_plan())
            assert session._pool is not None
        assert session._pool is None

    def test_serial_session_never_spawns_a_pool(self):
        session = Session(workers=1)
        session.run(grid_plan())
        assert session._pool is None


class TestLargeFanOut:
    """200 jobs through computed chunks: unordered streaming, complete results."""

    def _plan_200(self) -> SweepPlan:
        # 8 designs x 25 distinct shapes = 200 distinct analytic points;
        # the analytic fidelity keeps both the parallel and the serial
        # reference runs test-suite cheap.
        shapes = tuple(
            (f"s{i}", GemmShape(32 * (i + 1), 32, 32)) for i in range(25)
        )
        return SweepPlan(
            designs=tuple(DESIGNS), workloads=shapes, fidelity="analytic"
        )

    def test_unordered_but_complete(self):
        plan = self._plan_200()
        assert plan.job_count() == 200
        with Session(workers=4) as parallel:
            report = parallel.run(plan)
        # chunksize = max(1, 200 // (4 * 4)) = 12: results arrive unordered
        # in batches, yet every distinct key lands exactly once.
        assert report.simulated == 200
        assert set(report.results) == set(plan.distinct_keys())
        assert report == Session(workers=1).run(plan)
