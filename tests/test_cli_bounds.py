"""CLI surface of the bound analyzer: ``repro bounds`` and ``repro lint --bounds``."""

import json

from repro.analysis import bounds as bounds_analysis
from repro.cli import main


class TestBoundsCommand:
    def test_adhoc_gemm_clean(self, capsys):
        assert main(["bounds", "--m", "64", "--n", "64", "--k", "64"]) == 0
        out = capsys.readouterr().out
        assert "static cycle bounds" in out
        assert "mm-issue" in out
        assert "0 bound violation(s)" in out
        assert "VIOLATION" not in out

    def test_suite_bounds_clean(self, capsys):
        assert main(
            ["bounds", "--workloads", "dlrm", "--scale", "16",
             "--designs", "baseline,rasa-dmdb-wls"]
        ) == 0
        out = capsys.readouterr().out
        assert "2 design(s)" in out
        assert "VIOLATION" not in out

    def test_json_document(self, capsys):
        assert main(
            ["bounds", "--m", "64", "--n", "64", "--k", "64", "--json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["total_violations"] == 0
        assert len(doc["designs"]) == 8
        (program,) = doc["programs"]
        assert (program["m"], program["n"], program["k"]) == (64, 64, 64)
        for check in program["checks"]:
            assert check["violations"] == []
            assert check["lower_bound"] <= check["fast_cycles"]
            assert check["fast_cycles"] <= check["upper_bound"]
            assert check["binding"] in check["components"]

    def test_unknown_design_rejected(self, capsys):
        assert main(
            ["bounds", "--m", "64", "--n", "64", "--k", "64",
             "--designs", "rasa-frobnicate"]
        ) == 1
        assert capsys.readouterr().err.startswith("error:")

    def test_partial_mnk_rejected(self, capsys):
        assert main(["bounds", "--m", "64"]) == 1
        assert "together" in capsys.readouterr().err

    def test_seeded_violation_exits_nonzero(self, capsys, monkeypatch):
        # The CI gate in one test: break a dependence edge's latency and the
        # command must turn red.
        monkeypatch.setattr(
            bounds_analysis, "_mm_dataflow_cycles", lambda stages: 0
        )
        assert main(["bounds", "--m", "64", "--n", "64", "--k", "64"]) == 1
        assert "ub-below-fast" in capsys.readouterr().out


class TestLintBoundsFlag:
    def test_lint_with_bounds_clean(self, capsys):
        assert main(
            ["lint", "--m", "64", "--n", "64", "--k", "64", "--bounds"]
        ) == 0
        assert "0 bound violation(s)" in capsys.readouterr().out

    def test_lint_without_bounds_skips_cycle_oracle(self, capsys, monkeypatch):
        import repro.cli

        def boom(*args, **kwargs):  # pragma: no cover - fails if reached
            raise AssertionError("cross_check_bounds called without --bounds")

        monkeypatch.setattr(repro.cli, "cross_check_bounds", boom)
        assert main(["lint", "--m", "64", "--n", "64", "--k", "64"]) == 0
        assert "bound violation" not in capsys.readouterr().out

    def test_lint_json_gains_bounds_section(self, capsys):
        assert main(
            ["lint", "--m", "64", "--n", "64", "--k", "64", "--bounds",
             "--json", "--designs", "baseline"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["total_bound_violations"] == 0
        (program,) = doc["programs"]
        (check,) = program["bounds"]
        assert check["design"] == "baseline"

    def test_seeded_violation_fails_lint(self, capsys, monkeypatch):
        monkeypatch.setattr(
            bounds_analysis, "_mm_dataflow_cycles", lambda stages: 10**6
        )
        assert main(
            ["lint", "--m", "64", "--n", "64", "--k", "64", "--bounds"]
        ) == 1
        assert "lb-exceeds-fast" in capsys.readouterr().out
