"""Tests for VNNI K-pair packing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TileError
from repro.tile.vnni import pack_b_vnni, unpack_b_tile, unpack_b_vnni


def test_pack_layout():
    b = np.arange(8).reshape(4, 2)  # K=4, N=2
    packed = pack_b_vnni(b)
    # Row r interleaves logical rows 2r and 2r+1: [b[2r,0], b[2r+1,0], ...].
    assert packed.shape == (2, 4)
    assert packed.tolist() == [[0, 2, 1, 3], [4, 6, 5, 7]]


def test_unpack_inverts_pack(rng):
    b = rng.standard_normal((32, 16)).astype(np.float32)
    assert np.array_equal(unpack_b_vnni(pack_b_vnni(b)), b)


def test_unpack_b_tile_shape_checked():
    with pytest.raises(TileError):
        unpack_b_tile(np.zeros((32, 16), dtype=np.float32))


def test_unpack_b_tile_is_register_view_decode(rng):
    b = rng.standard_normal((32, 16)).astype(np.float32)
    register_view = pack_b_vnni(b)  # exactly the 16x32 the register holds
    assert np.array_equal(unpack_b_tile(register_view), b)


def test_odd_k_rejected():
    with pytest.raises(TileError):
        pack_b_vnni(np.zeros((3, 4)))


@settings(max_examples=30, deadline=None)
@given(half_k=st.integers(1, 8), n=st.integers(1, 8), seed=st.integers(0, 2**31))
def test_pack_unpack_roundtrip(half_k, n, seed):
    rng = np.random.default_rng(seed)
    b = rng.standard_normal((2 * half_k, n)).astype(np.float32)
    assert np.array_equal(unpack_b_vnni(pack_b_vnni(b)), b)
