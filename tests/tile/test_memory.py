"""Tests for the sparse byte-addressable tile memory."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TileError
from repro.tile.memory import TileMemory


class TestReadWrite:
    def test_roundtrip(self, rng):
        mem = TileMemory()
        data = rng.integers(0, 256, size=300, dtype=np.uint8)
        mem.write(0x1234, data)
        assert np.array_equal(mem.read(0x1234, 300), data)

    def test_untouched_memory_reads_zero(self):
        mem = TileMemory()
        assert (mem.read(0xDEAD000, 128) == 0).all()

    def test_page_crossing(self, rng):
        mem = TileMemory()
        addr = (1 << 16) - 100  # straddles the first page boundary
        data = rng.integers(0, 256, size=300, dtype=np.uint8)
        mem.write(addr, data)
        assert np.array_equal(mem.read(addr, 300), data)

    def test_partial_overlap_reads(self, rng):
        mem = TileMemory()
        data = rng.integers(0, 256, size=64, dtype=np.uint8)
        mem.write(1000, data)
        read = mem.read(990, 84)
        assert (read[:10] == 0).all()
        assert np.array_equal(read[10:74], data)
        assert (read[74:] == 0).all()

    def test_negative_address_rejected(self):
        with pytest.raises(TileError):
            TileMemory().write(-1, np.zeros(4, dtype=np.uint8))
        with pytest.raises(TileError):
            TileMemory().read(-1, 4)


class TestTileGranularity:
    def test_tile_roundtrip_dense(self, rng):
        mem = TileMemory()
        tile = rng.integers(0, 256, size=(16, 64), dtype=np.uint8)
        mem.store_tile(0x4000, tile)
        assert np.array_equal(mem.load_tile(0x4000), tile)

    def test_tile_roundtrip_strided(self, rng):
        mem = TileMemory()
        tile = rng.integers(0, 256, size=(16, 64), dtype=np.uint8)
        mem.store_tile(0x4000, tile, stride=256)
        assert np.array_equal(mem.load_tile(0x4000, stride=256), tile)
        # Rows really are strided: the gap bytes are untouched (zero).
        assert (mem.read(0x4000 + 64, 256 - 64) == 0).all()

    def test_strided_tiles_interleave(self, rng):
        # Two tiles side by side in a wider matrix must not clobber each other.
        mem = TileMemory()
        t0 = rng.integers(0, 256, size=(16, 64), dtype=np.uint8)
        t1 = rng.integers(0, 256, size=(16, 64), dtype=np.uint8)
        stride = 128
        mem.store_tile(0x0, t0, stride=stride)
        mem.store_tile(0x40, t1, stride=stride)
        assert np.array_equal(mem.load_tile(0x0, stride=stride), t0)
        assert np.array_equal(mem.load_tile(0x40, stride=stride), t1)

    def test_bad_tile_shape(self):
        with pytest.raises(TileError):
            TileMemory().store_tile(0, np.zeros((8, 64), dtype=np.uint8))


@settings(max_examples=50, deadline=None)
@given(
    writes=st.lists(
        st.tuples(st.integers(0, 1 << 20), st.integers(1, 200), st.integers(0, 255)),
        max_size=8,
    ),
)
def test_last_write_wins(writes):
    """Sequential writes behave like a flat byte array (reference model)."""
    mem = TileMemory()
    reference = {}
    for addr, size, value in writes:
        mem.write(addr, np.full(size, value, dtype=np.uint8))
        for offset in range(size):
            reference[addr + offset] = value
    for addr, expected in list(reference.items())[:200]:
        assert mem.read(addr, 1)[0] == expected
