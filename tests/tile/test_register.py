"""Tests for the byte-faithful tile register."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TileError
from repro.numerics.bf16 import quantize_bf16
from repro.tile.register import TileRegister


class TestRawBytes:
    def test_roundtrip(self, rng):
        reg = TileRegister(0)
        payload = rng.integers(0, 256, size=(16, 64), dtype=np.uint8)
        reg.write_bytes(payload)
        assert np.array_equal(reg.read_bytes(), payload)

    def test_wrong_shape_rejected(self):
        with pytest.raises(TileError):
            TileRegister(0).write_bytes(np.zeros((16, 32), dtype=np.uint8))

    def test_read_uninitialized_raises(self):
        with pytest.raises(TileError, match="uninitialized"):
            TileRegister(3).read_bytes()

    def test_write_copies(self, rng):
        reg = TileRegister(0)
        payload = rng.integers(0, 256, size=(16, 64), dtype=np.uint8)
        reg.write_bytes(payload)
        payload[0, 0] ^= 0xFF
        assert reg.read_bytes()[0, 0] != payload[0, 0]


class TestTypedViews:
    def test_fp32_roundtrip(self, rng):
        reg = TileRegister(0)
        matrix = rng.standard_normal((16, 16)).astype(np.float32)
        reg.write_fp32(matrix)
        assert np.array_equal(reg.read_fp32(), matrix)

    def test_bf16_roundtrip_quantizes(self, rng):
        reg = TileRegister(0)
        matrix = rng.standard_normal((16, 32)).astype(np.float32)
        reg.write_bf16(matrix)
        assert np.array_equal(reg.read_bf16(), quantize_bf16(matrix))

    def test_bf16_exact_values_unchanged(self, rng):
        reg = TileRegister(0)
        matrix = quantize_bf16(rng.standard_normal((16, 32)).astype(np.float32))
        reg.write_bf16(matrix)
        assert np.array_equal(reg.read_bf16(), matrix)

    def test_wrong_matrix_shape(self):
        with pytest.raises(TileError):
            TileRegister(0).write_fp32(np.zeros((16, 32), dtype=np.float32))
        with pytest.raises(TileError):
            TileRegister(0).write_bf16(np.zeros((16, 16), dtype=np.float32))

    def test_bytes_reinterpret_as_both_views(self, rng):
        # A register holds bytes; both typed reads must be consistent with
        # the same underlying 1 KB.
        reg = TileRegister(0)
        payload = rng.integers(0, 255, size=(16, 64), dtype=np.uint8)
        reg.write_bytes(payload)
        f32 = reg.read_fp32()
        bf16 = reg.read_bf16()
        assert f32.shape == (16, 16)
        assert bf16.shape == (16, 32)


class TestVersioning:
    def test_version_bumps_on_every_write(self, rng):
        reg = TileRegister(0)
        assert reg.version == 0
        reg.write_fp32(np.zeros((16, 16), dtype=np.float32))
        assert reg.version == 1
        reg.write_bytes(np.zeros((16, 64), dtype=np.uint8))
        assert reg.version == 2
        reg.touch()
        assert reg.version == 3

    def test_touch_marks_written(self):
        reg = TileRegister(0)
        assert not reg.is_written
        reg.touch()
        assert reg.is_written
