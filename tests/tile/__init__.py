"""Test package (unique basenames are not required across subpackages)."""
