"""Tests for the tile register file and the WLBP dirty-bit protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TileError
from repro.isa.instructions import TileReg
from repro.tile.regfile import TileRegisterFile


@pytest.fixture
def regfile() -> TileRegisterFile:
    return TileRegisterFile()


def _tile_bytes(seed: int) -> np.ndarray:
    return np.full((16, 64), seed % 256, dtype=np.uint8)


class TestDirtyBitProtocol:
    def test_initially_dirty(self, regfile):
        for i in range(8):
            assert regfile.is_dirty(TileReg(i))
            assert not regfile.can_bypass_weight_load(TileReg(i))

    def test_load_then_consume_enables_bypass(self, regfile):
        b = TileReg(4)
        regfile.write_bytes(b, _tile_bytes(1))
        assert regfile.is_dirty(b)
        regfile.mark_weights_loaded(b)
        assert not regfile.is_dirty(b)
        assert regfile.can_bypass_weight_load(b)

    def test_write_after_consume_clears_bypass(self, regfile):
        b = TileReg(4)
        regfile.write_bytes(b, _tile_bytes(1))
        regfile.mark_weights_loaded(b)
        regfile.write_bytes(b, _tile_bytes(2))
        assert regfile.is_dirty(b)
        assert not regfile.can_bypass_weight_load(b)
        assert regfile.loaded_weight_reg is None

    def test_other_register_write_keeps_bypass(self, regfile):
        b, other = TileReg(4), TileReg(7)
        regfile.write_bytes(b, _tile_bytes(1))
        regfile.mark_weights_loaded(b)
        regfile.write_bytes(other, _tile_bytes(2))
        assert regfile.can_bypass_weight_load(b)

    def test_loading_other_weights_displaces_residency(self, regfile):
        b1, b2 = TileReg(4), TileReg(5)
        regfile.write_bytes(b1, _tile_bytes(1))
        regfile.write_bytes(b2, _tile_bytes(2))
        regfile.mark_weights_loaded(b1)
        regfile.mark_weights_loaded(b2)
        assert not regfile.can_bypass_weight_load(b1)
        assert regfile.can_bypass_weight_load(b2)

    def test_touch_sets_dirty(self, regfile):
        b = TileReg(4)
        regfile.touch(b)
        regfile.mark_weights_loaded(b)
        regfile.touch(b)
        assert not regfile.can_bypass_weight_load(b)

    def test_mm_writeback_to_weight_reg_clears_residency(self, regfile):
        # If a later mm accumulates into the register whose weights are
        # resident, the array contents no longer mirror it.
        b = TileReg(4)
        regfile.write_bytes(b, _tile_bytes(1))
        regfile.mark_weights_loaded(b)
        regfile.write_fp32(b, np.zeros((16, 16), dtype=np.float32))
        assert not regfile.can_bypass_weight_load(b)


class TestAccess:
    def test_versions_tracked_per_register(self, regfile):
        regfile.write_bytes(TileReg(0), _tile_bytes(0))
        regfile.write_bytes(TileReg(0), _tile_bytes(1))
        regfile.write_bytes(TileReg(1), _tile_bytes(2))
        assert regfile.version(TileReg(0)) == 2
        assert regfile.version(TileReg(1)) == 1

    def test_out_of_range_register(self):
        small = TileRegisterFile(num_regs=2)
        with pytest.raises(TileError):
            small.read_bytes(TileReg(5))

    def test_zero_registers_rejected(self):
        with pytest.raises(TileError):
            TileRegisterFile(num_regs=0)

    def test_reset(self, regfile):
        regfile.write_bytes(TileReg(4), _tile_bytes(1))
        regfile.mark_weights_loaded(TileReg(4))
        regfile.reset()
        assert regfile.loaded_weight_reg is None
        assert regfile.is_dirty(TileReg(4))
        with pytest.raises(TileError):
            regfile.read_bytes(TileReg(4))

    def test_repr_shows_dirty_bits(self, regfile):
        regfile.write_bytes(TileReg(4), _tile_bytes(1))
        regfile.mark_weights_loaded(TileReg(4))
        assert "dirty=dddd.ddd" in repr(regfile)
