"""Tests for host-matrix layout and tile addressing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TileError
from repro.tile.hostmem import HostMatrix, layout_gemm_operands
from repro.tile.memory import TileMemory


class TestTileAddressing:
    def test_bf16_tile_geometry(self):
        a = HostMatrix(base=0, rows=32, cols=64, element_bytes=2, name="A")
        assert a.tile_cols_elems == 32
        assert a.row_tiles == 2
        assert a.col_tiles == 2
        assert a.stride == 128
        assert a.tile_address(0, 0) == 0
        assert a.tile_address(0, 1) == 64          # 32 elems * 2 B
        assert a.tile_address(1, 0) == 16 * 128    # 16 rows down

    def test_fp32_tile_geometry(self):
        c = HostMatrix(base=0x100, rows=32, cols=32, element_bytes=4, name="C")
        assert c.tile_cols_elems == 16
        assert c.tile_address(1, 1) == 0x100 + 16 * 128 + 16 * 4

    def test_out_of_range_tile(self):
        a = HostMatrix(base=0, rows=16, cols=32, element_bytes=2)
        with pytest.raises(TileError):
            a.tile_address(1, 0)
        with pytest.raises(TileError):
            a.tile_address(0, 1)

    def test_bad_element_size(self):
        with pytest.raises(TileError):
            HostMatrix(base=0, rows=16, cols=16, element_bytes=3)


class TestStoreLoad:
    def test_fp32_roundtrip(self, rng):
        mem = TileMemory()
        c = HostMatrix(base=0x1000, rows=32, cols=32, element_bytes=4, name="C")
        values = rng.standard_normal((32, 32)).astype(np.float32)
        c.store(mem, values)
        assert np.array_equal(c.load(mem), values)

    def test_bf16_roundtrip_quantizes(self, rng):
        from repro.numerics.bf16 import quantize_bf16

        mem = TileMemory()
        a = HostMatrix(base=0x1000, rows=16, cols=32, element_bytes=2, name="A")
        values = rng.standard_normal((16, 32)).astype(np.float32)
        a.store(mem, values)
        assert np.array_equal(a.load(mem), quantize_bf16(values))

    def test_wrong_shape_rejected(self):
        mem = TileMemory()
        a = HostMatrix(base=0, rows=16, cols=32, element_bytes=2)
        with pytest.raises(TileError):
            a.store(mem, np.zeros((16, 16), dtype=np.float32))

    def test_tile_load_matches_matrix_slice(self, rng):
        # Loading tile (i, j) through TileMemory must see exactly the
        # corresponding matrix rows/cols — the address arithmetic contract
        # between codegen and the functional engine.
        mem = TileMemory()
        c = HostMatrix(base=0x2000, rows=48, cols=48, element_bytes=4, name="C")
        values = rng.standard_normal((48, 48)).astype(np.float32)
        c.store(mem, values)
        tile = mem.load_tile(c.tile_address(2, 1), stride=c.stride)
        decoded = tile.view(np.float32).reshape(16, 16)
        assert np.array_equal(decoded, values[32:48, 16:32])


class TestLayoutGemm:
    def test_operands_do_not_overlap(self):
        a, b, c = layout_gemm_operands(m=64, n=48, k=96, base=0x10000)
        assert a.base == 0x10000
        assert b.base == a.end
        assert c.base == b.end
        # B is VNNI packed: K/2 rows of 2N elements.
        assert (b.rows, b.cols) == (48, 96)
        assert c.size_bytes == 64 * 48 * 4
