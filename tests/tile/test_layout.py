"""Tests for tile layout geometry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TileError
from repro.tile.layout import BF16_TILE, FP32_TILE, ROW_BYTES, ROWS, TILE_BYTES, TileLayout


def test_register_geometry_matches_amx():
    assert ROWS == 16
    assert ROW_BYTES == 64
    assert TILE_BYTES == 1024


def test_bf16_view():
    assert BF16_TILE.shape == (16, 32)
    assert BF16_TILE.element_bytes == 2


def test_fp32_view():
    assert FP32_TILE.shape == (16, 16)
    assert FP32_TILE.element_bytes == 4


def test_layout_must_fill_register():
    with pytest.raises(TileError):
        TileLayout("bad", np.dtype(np.float32), 4, 16, 15)


def test_zeros_and_check():
    z = FP32_TILE.zeros()
    assert z.shape == (16, 16) and z.dtype == np.float32
    checked = FP32_TILE.check(np.ones((16, 16)))
    assert checked.dtype == np.float32
    with pytest.raises(TileError):
        FP32_TILE.check(np.ones((4, 4)))
