"""Top-level public API tests: the README quickstart must actually work."""

from __future__ import annotations

import pytest

import repro


def test_version():
    assert repro.__version__


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_quickstart_snippet():
    """The snippet from the package docstring / README, verbatim in spirit."""
    from repro import DESIGNS, FastCoreModel, GemmShape, generate_gemm_program, get_design

    shape = GemmShape(m=256, n=256, k=256, name="demo")
    program = generate_gemm_program(shape)
    baseline = FastCoreModel(engine=get_design("baseline").config).run(program)
    rasa = FastCoreModel(engine=get_design("rasa-dmdb-wls").config).run(program)
    ratio = rasa.cycles / baseline.cycles
    assert 0.15 < ratio < 0.25  # "~0.17-0.2: the paper's headline"
    assert len(DESIGNS) == 8


def test_errors_are_catchable_under_one_base():
    from repro.errors import ConfigError, IsaError, ReproError, TileError

    for exc in (ConfigError, IsaError, TileError):
        assert issubclass(exc, ReproError)
    with pytest.raises(ReproError):
        repro.get_design("nope")
