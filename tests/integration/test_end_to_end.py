"""End-to-end integration: layers -> codegen -> functional engine -> oracle.

These are the tests that tie every substrate together: a convolution layer
is lowered to GEMM, code-generated into a RASA instruction stream, executed
functionally on the matrix engine (with real tile registers, VNNI-packed B,
simulation memory), timed on both CPU models, and checked bit-exactly
against the NumPy oracles — for multiple design points.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cpu.fast import FastCoreModel
from repro.engine.designs import DESIGNS
from repro.engine.engine import MatrixEngine
from repro.tile.memory import TileMemory
from repro.workloads.codegen import CodegenOptions, build_gemm_kernel
from repro.workloads.gemm import GemmShape
from repro.workloads.layers import ConvLayer
from repro.workloads.lowering import (
    conv_reference,
    filters_to_gemm_b,
    gemm_output_to_conv,
    im2col,
)
from repro.workloads.reference import gemm_reference
from repro.workloads.tiling import BlockingConfig, MMOrder


class TestConvThroughFullPipeline:
    """A small convolution through the complete simulated stack."""

    @pytest.mark.parametrize("design_key", ["baseline", "rasa-wlbp", "rasa-dmdb-wls"])
    def test_conv_layer_exact(self, rng, design_key):
        layer = ConvLayer("tiny", batch=2, filters=18, channels=3, x=5, y=5, r=3, s=3)
        inputs = rng.standard_normal((2, 3, 5, 5)).astype(np.float32)
        weights = rng.standard_normal((18, 3, 3, 3)).astype(np.float32)

        # Lower to GEMM.
        a = im2col(inputs, 3, 3)
        b = filters_to_gemm_b(weights)
        shape = layer.gemm()
        assert a.shape == (shape.m, shape.k)

        # Generate, place in memory, execute on the engine.
        config = DESIGNS[design_key].config
        kernel = build_gemm_kernel(shape)
        memory = TileMemory()
        kernel.write_inputs(memory, a, b)
        engine = MatrixEngine(config, functional="oracle", memory=memory)
        engine.run(kernel.program)
        out = kernel.read_result(memory)

        # Bit-exact vs the pipeline oracle...
        expected = gemm_reference(a, b, chains=config.pe.psum_chains)
        assert np.array_equal(out, expected)

        # ...and close to the true convolution (BF16 quantization tolerance).
        conv_out = gemm_output_to_conv(out, 2, 5, 5)
        direct = conv_reference(inputs.astype(np.float64), weights.astype(np.float64))
        np.testing.assert_allclose(conv_out, direct, rtol=0.02, atol=0.02)


class TestOrderingInvariance:
    def test_mm_order_changes_timing_not_results(self, rng):
        """WEIGHT_REUSE vs ALTERNATE ordering must produce identical data
        (accumulation per C tile is in the same k order) but different WLBP
        timing — the crux of why codegen ordering matters."""
        shape = GemmShape(m=64, n=64, k=128, name="order")
        a = rng.standard_normal((64, 128)).astype(np.float32)
        b = rng.standard_normal((128, 64)).astype(np.float32)
        outputs = {}
        cycles = {}
        for order in (MMOrder.WEIGHT_REUSE, MMOrder.ALTERNATE):
            options = CodegenOptions(blocking=BlockingConfig(bm=2, bn=2, mm_order=order))
            kernel = build_gemm_kernel(shape, options)
            memory = TileMemory()
            kernel.write_inputs(memory, a, b)
            engine = MatrixEngine(
                DESIGNS["rasa-wlbp"].config, functional="oracle", memory=memory
            )
            engine.run(kernel.program)
            outputs[order] = kernel.read_result(memory)
            cycles[order] = FastCoreModel(
                engine=DESIGNS["rasa-wlbp"].config
            ).run(kernel.program).cycles
        assert np.array_equal(outputs[MMOrder.WEIGHT_REUSE], outputs[MMOrder.ALTERNATE])
        assert cycles[MMOrder.WEIGHT_REUSE] < cycles[MMOrder.ALTERNATE]


class TestTimingFunctionalConsistency:
    def test_engine_and_cpu_model_agree_on_bypasses(self, rng):
        """The functional engine and the CPU timing model must count exactly
        the same WLBP bypasses on the same program."""
        shape = GemmShape(m=96, n=64, k=128, name="consistency")
        kernel = build_gemm_kernel(shape)
        config = DESIGNS["rasa-wlbp"].config
        engine = MatrixEngine(config, functional="off")
        engine_report = engine.run(kernel.program)
        cpu_result = FastCoreModel(engine=config).run(kernel.program)
        assert engine_report.stats.bypass_count == cpu_result.bypass_count
        assert engine_report.stats.mm_count == cpu_result.mm_count


class TestSerializedAssemblyPipeline:
    def test_disassemble_reassemble_execute(self, rng):
        """A kernel survives a text round-trip and still computes correctly."""
        from repro.isa.assembler import assemble, disassemble

        shape = GemmShape(m=32, n=32, k=64, name="asm")
        options = CodegenOptions(
            scalar_overhead_per_kstep=0, scalar_overhead_per_block=0
        )
        kernel = build_gemm_kernel(shape, options)
        text = disassemble(kernel.program)
        program = assemble(text, name="reassembled")
        a = rng.standard_normal((32, 64)).astype(np.float32)
        b = rng.standard_normal((64, 32)).astype(np.float32)
        memory = TileMemory()
        kernel.write_inputs(memory, a, b)
        engine = MatrixEngine(DESIGNS["baseline"].config, functional="oracle", memory=memory)
        engine.run(program)
        out = kernel.read_result(memory)
        assert np.array_equal(out, gemm_reference(a, b))
