"""Property-based cross-validation of the whole simulation stack.

Random programs and kernels exercise code paths no hand-written case hits:
odd interleavings of loads/stores/mms, repeated weight registers, scalar
noise between tile ops.  Invariants checked:

- the fast model and the cycle-accurate OoO core agree on every design;
- the architectural dirty-bit protocol never diverges from exact content
  versions (the WLBP-safety invariant, enforced inside MatrixEngine);
- every produced engine schedule passes the per-PE occupancy checker;
- functional execution stays bit-exact under random mm orderings.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cpu.fast import FastCoreModel
from repro.cpu.ooo.core import OutOfOrderCore
from repro.engine.designs import DESIGNS
from repro.engine.engine import MatrixEngine
from repro.engine.scheduler import check_schedule_legality
from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import ScalarReg, TileReg
from repro.isa.opcodes import Opcode

T = [TileReg(i) for i in range(8)]


@st.composite
def tile_programs(draw):
    """Random but *well-formed* tile programs (no use-before-def)."""
    builder = ProgramBuilder("fuzz")
    written = set()
    # Prime a few registers so mms become possible early.
    for reg in (0, 4, 6):
        builder.tl(T[reg], reg * 0x400)
        written.add(reg)
    for step in range(draw(st.integers(1, 40))):
        kind = draw(st.sampled_from(["tl", "ts", "mm", "mm", "scalar"]))
        if kind == "tl":
            reg = draw(st.integers(0, 7))
            builder.tl(T[reg], draw(st.integers(0, 1 << 20)) * 64)
            written.add(reg)
        elif kind == "ts":
            reg = draw(st.sampled_from(sorted(written)))
            builder.ts(draw(st.integers(0, 1 << 20)) * 64, T[reg])
        elif kind == "mm":
            c = draw(st.sampled_from(sorted(written)))
            a = draw(st.sampled_from(sorted(written)))
            b = draw(st.sampled_from(sorted(written)))
            builder.mm(T[c], T[a], T[b])
            written.add(c)
        else:
            builder.scalar(
                Opcode.ADD,
                dst=ScalarReg(draw(st.integers(0, 15))),
                srcs=(ScalarReg(draw(st.integers(0, 15))),),
            )
    return builder.build()


@settings(max_examples=20, deadline=None)
@given(program=tile_programs(), design=st.sampled_from(sorted(DESIGNS)))
def test_fast_and_ooo_agree_on_random_programs(program, design):
    config = DESIGNS[design].config
    fast = FastCoreModel(engine=config)
    fast_result = fast.run(program, keep_schedule=True)
    ooo_result = OutOfOrderCore(engine=config).run(program)
    assert fast_result.bypass_count == ooo_result.bypass_count
    assert fast_result.mm_count == ooo_result.mm_count
    if ooo_result.cycles:
        diff = abs(fast_result.cycles - ooo_result.cycles)
        # Tiny programs are dominated by fixed pipeline-fill/retire constants
        # the two models count slightly differently; long programs must agree
        # tightly in relative terms.
        assert diff <= 32 or diff / ooo_result.cycles < 0.05
    if fast.last_schedule:
        check_schedule_legality(fast.last_schedule, config)


@settings(max_examples=15, deadline=None)
@given(program=tile_programs(), design=st.sampled_from(sorted(DESIGNS)), seed=st.integers(0, 2**31))
def test_functional_engine_on_random_programs(program, design, seed):
    """The engine executes any well-formed program without tripping its
    internal dirty-bit/version cross-check, and mm writebacks follow the
    oracle semantics (validated per-instruction internally)."""
    rng = np.random.default_rng(seed)
    config = DESIGNS[design].config
    engine = MatrixEngine(config, functional="oracle")
    # Fill the memory behind every load with deterministic bytes.
    for inst in program:
        if inst.opcode is Opcode.RASA_TL:
            payload = rng.integers(0, 256, size=(16, 64), dtype=np.uint8)
            engine.memory.store_tile(inst.mem.address, payload, inst.mem.stride)
    report = engine.run(program)  # raises SimError on protocol divergence
    check_schedule_legality(report.schedule, config)
    assert report.stats.mm_count == program.stats.matmuls
    assert report.stats.bypass_count + report.stats.weight_load_count == (
        report.stats.mm_count
    )
