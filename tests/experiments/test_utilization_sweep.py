"""Tests for the Fig. 2 driver."""

from __future__ import annotations

import pytest

from repro.experiments.utilization_sweep import DEFAULT_DIMS, fig2_utilization


def test_series_shapes():
    sweep = fig2_utilization(tm_values=[16, 64], dims=[(32, 16), (8, 8)])
    assert set(sweep.series) == {(32, 16), (8, 8)}
    assert len(sweep.series[(32, 16)]) == 2


def test_paper_point():
    sweep = fig2_utilization(tm_values=[16], dims=[(32, 16)])
    assert sweep.series[(32, 16)][0] == pytest.approx(16 / 95)


def test_each_series_monotone_in_tm():
    sweep = fig2_utilization()
    for values in sweep.series.values():
        assert values == sorted(values)


def test_larger_arrays_lower_utilization_at_fixed_tm():
    sweep = fig2_utilization(tm_values=[64], dims=list(DEFAULT_DIMS))
    small = sweep.series[(4, 4)][0]
    large = sweep.series[(128, 128)][0]
    assert small > large


def test_render():
    text = fig2_utilization(tm_values=[16, 1024], dims=[(32, 16)]).render()
    assert "32x16" in text and "TM" in text
