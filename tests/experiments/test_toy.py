"""Tests for the Fig. 1 toy driver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.toy import fig1_toy_example


def test_paper_numbers():
    r = fig1_toy_example()
    assert r.total_cycles == 7 == r.expected_cycles
    assert r.active_pe_cycles == 8
    assert r.pe_cycles == 28
    assert r.utilization == pytest.approx(0.286, abs=0.001)
    assert r.per_cycle_active == [0, 0, 1, 3, 3, 1, 0]


def test_functional_output_correct():
    r = fig1_toy_example()
    assert np.array_equal(r.output, r.expected_output)


def test_render_mentions_paper_values():
    text = fig1_toy_example().render()
    assert "28.6%" in text
    assert "7 cycles" in text
    assert "75%" in text
