"""Tests for the E15 whole-model suite report and session env parsing."""

from __future__ import annotations

import sys

import pytest

from repro.errors import ExperimentError
from repro.experiments.model_report import model_report, suite_energy_j
from repro.experiments.runner import ExperimentSettings, default_session
from repro.runtime import Session

SETTINGS = ExperimentSettings(scale=16)


@pytest.fixture(scope="module")
def report():
    return model_report(
        SETTINGS,
        suites=("bert-base", "dlrm"),
        session=Session(workers=1),
    )


class TestModelReport:
    def test_totals_layout(self, report):
        assert set(report.totals) == {"bert-base", "dlrm"}
        for per_design in report.totals.values():
            assert set(per_design) == set(report.design_keys)

    def test_normalized_anchored_at_baseline(self, report):
        normalized = report.normalized()
        for per_design in normalized.values():
            assert per_design["baseline"] == pytest.approx(1.0)
            assert per_design["rasa-dmdb-wls"] < 0.25

    def test_dedup_carried_through(self, report):
        base = report.totals["bert-base"]["baseline"]
        assert base.gemm_count == 72
        assert base.simulations == 3

    def test_render_contains_speedup_and_geomean(self, report):
        text = report.render()
        assert "E15" in text
        assert "speedup" in text
        assert "GEOMEAN" in text
        assert "bert-base" in text

    def test_energy_positive_and_best_design_wins(self, report):
        per_design = report.totals["dlrm"]
        base = suite_energy_j(per_design["baseline"])
        best = suite_energy_j(per_design["rasa-dmdb-wls"])
        assert base > best > 0.0

    def test_missing_baseline_rejected(self):
        with pytest.raises(ExperimentError, match="baseline"):
            model_report(
                SETTINGS,
                suites=("dlrm",),
                design_keys=["rasa-wlbp"],
                session=Session(workers=1),
            )

    def test_zero_energy_denominator_raises(self, report, monkeypatch):
        # sys.modules lookup: the package re-exports a ``model_report``
        # *function*, which shadows attribute-style module resolution.
        module = sys.modules["repro.experiments.model_report"]
        monkeypatch.setattr(module, "suite_energy_j", lambda totals: 0.0)
        with pytest.raises(ExperimentError, match="zero energy"):
            report.render()


class _RecordingSession(Session):
    """Records the fidelity of every plan it runs."""

    def __init__(self):
        super().__init__(workers=1)
        self.fidelities = []

    def run(self, plan):
        self.fidelities.append(plan.fidelity)
        return super().run(plan)


class TestFidelityPlumbing:
    def test_model_report_threads_fidelity_to_the_plan(self):
        session = _RecordingSession()
        model_report(
            SETTINGS,
            suites=("dlrm",),
            design_keys=["baseline", "rasa-dmdb-wls"],
            session=session,
            fidelity="engine",
        )
        assert session.fidelities == ["engine"]

    def test_engine_fidelity_reaches_the_backend(self):
        """The ``engine`` backend times engine-bound runs: fewer cycles."""
        kwargs = dict(
            suites=("dlrm",),
            design_keys=["baseline", "rasa-dmdb-wls"],
        )
        fast = model_report(SETTINGS, session=Session(workers=1), **kwargs)
        engine = model_report(
            SETTINGS, session=Session(workers=1), fidelity="engine", **kwargs
        )
        for design in ("baseline", "rasa-dmdb-wls"):
            assert (
                engine.totals["dlrm"][design].cycles
                < fast.totals["dlrm"][design].cycles
            )

    def test_runner_argument_is_gone(self):
        """The deprecated ``runner=`` spelling was removed with the shims."""
        with pytest.raises(TypeError, match="runner"):
            model_report(SETTINGS, suites=("dlrm",), runner=object())


class TestDefaultSessionEnv:
    def test_bad_workers_env_raises_experiment_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "lots")
        with pytest.raises(ExperimentError, match="REPRO_SWEEP_WORKERS"):
            default_session()

    @pytest.mark.parametrize("value", ["0", "-3"])
    def test_non_positive_workers_env_raises(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", value)
        with pytest.raises(ExperimentError, match="REPRO_SWEEP_WORKERS"):
            default_session()

    def test_good_workers_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "3")
        assert default_session().workers == 3

    def test_deprecated_default_runner_is_gone(self):
        import repro.experiments.runner as runner_module

        assert not hasattr(runner_module, "default_runner")
