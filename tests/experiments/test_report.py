"""Tests for the one-shot reproduction report."""

from __future__ import annotations

import pytest

from repro.experiments.report import full_report
from repro.experiments.runner import ExperimentSettings


@pytest.fixture(scope="module")
def report_text():
    return full_report(ExperimentSettings(scale=16))


def test_all_sections_present(report_text):
    for heading in (
        "Table I",
        "Fig. 1",
        "Fig. 2",
        "Fig. 5",
        "Fig. 6",
        "Fig. 7",
        "Sec. V",
        "E16",
    ):
        assert f"## {heading}" in report_text


def test_key_numbers_present(report_text):
    assert "28.6%" in report_text      # Fig. 1
    assert "0.168" in report_text      # Fig. 7 asymptote
    assert "0.847" in report_text      # DMDB total area
    assert "GEOMEAN" in report_text    # Fig. 5 average row


def test_cli_report_to_file(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "report.md"
    assert main(["report", "--scale", "16", "-o", str(out)]) == 0
    assert "wrote" in capsys.readouterr().out
    assert "reproduction report" in out.read_text()
