"""Tests for the E18 training-vs-inference report."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.runner import ExperimentSettings
from repro.experiments.training_report import (
    label_pass,
    pass_cycles,
    training_report,
)
from repro.runtime import Session

SETTINGS = ExperimentSettings(scale=16)


@pytest.fixture(scope="module")
def report():
    return training_report(SETTINGS, session=Session(workers=1))


class TestPassClassification:
    def test_label_pass_suffixes(self):
        assert label_pass("conv2_1a-dgrad") == "dgrad"
        assert label_pass("BERT-1-wgrad") == "wgrad"
        assert label_pass("DLRM-1-forward") == "fwd"
        assert label_pass("conv1-fwd") == "fwd"
        assert label_pass("enc0.q") == "fwd"

    def test_pass_cycles_aggregates(self):
        cycles = pass_cycles(
            {"a-fwd": 10, "a-dgrad": 20, "a-wgrad": 30, "b-fwd": 5}
        )
        assert cycles == {"fwd": 15, "dgrad": 20, "wgrad": 30}


class TestTrainingReport:
    def test_covers_both_training_suites(self, report):
        assert set(report.totals) == {"training", "resnet50-train"}
        for per_design in report.passes.values():
            for cycles in per_design.values():
                assert set(cycles) == {"fwd", "dgrad", "wgrad"}
                assert all(v > 0 for v in cycles.values())

    def test_pass_split_sums_to_suite_totals(self, report):
        """The per-pass view is an exact re-weighting of the same run."""
        for suite, per_design in report.passes.items():
            for design, cycles in per_design.items():
                assert sum(cycles.values()) == report.totals[suite][design].cycles

    def test_training_premium_exceeds_one(self, report):
        for suite in report.totals:
            for design in ("baseline", "rasa-dmdb-wls"):
                assert report.premium(suite, design) > 1.0

    def test_resnet50_train_runs_end_to_end(self, report):
        totals = report.totals["resnet50-train"]
        base, best = totals["baseline"], totals["rasa-dmdb-wls"]
        assert base.gemm_count == 159
        assert best.normalized_to(base) < 0.3  # RASA gain holds in training

    def test_render_mentions_passes_and_premium(self, report):
        text = report.render()
        assert "E18" in text
        assert "wgrad share" in text
        assert "train/infer" in text
        assert "resnet50-train" in text

    def test_missing_baseline_rejected(self):
        with pytest.raises(ExperimentError, match="baseline"):
            training_report(
                SETTINGS,
                design_keys=("rasa-dmdb-wls",),
                session=Session(workers=1),
            )

    def test_baseline_only_rejected(self):
        with pytest.raises(ExperimentError, match="non-baseline"):
            training_report(
                SETTINGS, design_keys=("baseline",), session=Session(workers=1)
            )

    def test_best_fallback_never_selects_baseline(self):
        """Regression: design_keys ending in 'baseline' must not compare
        the baseline against itself."""
        report = training_report(
            SETTINGS,
            suites=("training",),
            design_keys=("rasa-wlbp", "baseline"),
            session=Session(workers=1),
        )
        assert report.best_design == "rasa-wlbp"
        totals = report.totals["training"]
        assert totals["rasa-wlbp"].normalized_to(totals["baseline"]) < 1.0

    def test_inference_only_suite_rejected(self):
        with pytest.raises(ExperimentError, match="no dgrad/wgrad"):
            training_report(
                SETTINGS, suites=("dlrm",), session=Session(workers=1)
            )
