"""Tests for the E16 per-model batch curves (Fig. 7 at suite granularity)."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.batch_sweep import ASYMPTOTE
from repro.experiments.runner import ExperimentSettings
from repro.experiments.suite_batch_sweep import (
    DEFAULT_CURVE_SUITES,
    suite_batch_sweep,
)
from repro.runtime import Session, SweepPlan

SETTINGS = ExperimentSettings(scale=16)
BATCHES = (1, 4, 16, 64, 256, 1024)


@pytest.fixture(scope="module")
def sweep():
    return suite_batch_sweep(
        SETTINGS,
        suites=("bert-base", "dlrm"),
        batches=BATCHES,
        session=Session(workers=1),
    )


class TestSuiteBatchSweep:
    def test_series_layout(self, sweep):
        series = sweep.series()
        assert set(series) == {"bert-base", "dlrm"}
        for per_batch in series.values():
            assert set(per_batch) == set(BATCHES)

    def test_runtime_non_increasing_with_batch(self, sweep):
        for name, per_batch in sweep.series().items():
            values = [per_batch[b] for b in BATCHES]
            assert values == sorted(values, reverse=True), name
            assert values[-1] < values[0], name

    def test_scaled_plateau_is_flat(self, sweep):
        """Batches below the scaled one-block floor share one stream."""
        for name, per_batch in sweep.series().items():
            floor = [per_batch[b] for b in (1, 4, 16)]  # all m = 32 at /16
            assert max(floor) - min(floor) < 1e-12, name

    def test_approaches_paper_asymptote(self, sweep):
        for name, per_batch in sweep.series().items():
            assert per_batch[1024] == pytest.approx(ASYMPTOTE, abs=0.05), name
            assert per_batch[1024] > ASYMPTOTE - 0.01, name

    def test_cross_batch_dedup_counted(self, sweep):
        assert 0 < sweep.simulated_points < sweep.expanded_points

    def test_matches_per_batch_suite_plan_oracle(self, sweep):
        """Every curve point equals a standalone single-batch suite plan."""
        session = Session(workers=1)
        for batch in (1, 64, 1024):
            totals = session.run(
                SweepPlan(
                    designs=("baseline", sweep.design_key),
                    suites=("bert-base", "dlrm"),
                    batch=batch,
                    scale=SETTINGS.scale,
                    core=SETTINGS.core,
                    codegen=SETTINGS.codegen,
                )
            ).suite_totals()
            for name in ("bert-base", "dlrm"):
                oracle = totals[name][sweep.design_key].normalized_to(
                    totals[name]["baseline"]
                )
                assert sweep.series()[name][batch] == oracle, (name, batch)

    def test_render(self, sweep):
        text = sweep.render()
        assert "E16" in text
        assert "0.168" in text
        assert "bert-base" in text and "dlrm" in text
        assert "cross-batch dedup" in text

    def test_baseline_design_key_rejected(self):
        with pytest.raises(ExperimentError, match="baseline"):
            suite_batch_sweep(
                SETTINGS, design_key="baseline", session=Session(workers=1)
            )

    def test_default_suites_are_fc_shaped(self):
        assert "resnet50" not in DEFAULT_CURVE_SUITES
        assert "bert-base" in DEFAULT_CURVE_SUITES
