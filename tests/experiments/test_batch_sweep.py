"""Tests for the Fig. 7 batch-size sensitivity driver."""

from __future__ import annotations

import pytest

from repro.experiments.batch_sweep import ASYMPTOTE, fig7_batch_sensitivity
from repro.experiments.runner import ExperimentSettings

# Scale 8 keeps every scaled layer wide enough that the 2x2 register blocks
# hide the C-accumulation latency (at scale 16 some layers drop to single-
# tile-column blocks, a real stall the asymptote test must not trip over).
FAST = ExperimentSettings(scale=8)


@pytest.fixture(scope="module")
def sweep():
    return fig7_batch_sensitivity(FAST, batches=(1, 2, 4, 8, 16, 64, 256, 1024))


def test_all_fc_layers_swept(sweep):
    assert len(sweep.series) == 6
    for series in sweep.series.values():
        assert set(series) == {1, 2, 4, 8, 16, 64, 256, 1024}


def test_small_batches_identical(sweep):
    # Fig. 7: batches 1..16 have "very similar normalized runtimes" because
    # 16 is the smallest granularity of work (identical mm streams).
    for name, series in sweep.series.items():
        values = [series[b] for b in (1, 2, 4, 8, 16)]
        assert max(values) - min(values) < 1e-9, name


def test_runtime_decreases_with_batch(sweep):
    for name, series in sweep.series.items():
        assert series[1024] < series[64] < series[16], name


def test_approaches_paper_asymptote(sweep):
    # "RASA-DMDB-WLS can at best bring the normalized runtime down to
    # 16/95 = 0.168" — large batches must approach but not beat it much.
    for name, series in sweep.series.items():
        assert series[1024] == pytest.approx(ASYMPTOTE, abs=0.03), name
        assert series[1024] > ASYMPTOTE - 0.01, name


def test_render(sweep):
    text = sweep.render()
    assert "0.168" in text and "DLRM-1" in text
