"""Tests for the register-scaling counterfactual (E17)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.engine.config import EngineConfig
from repro.engine.engine import MatrixEngine
from repro.errors import ConfigError
from repro.experiments.register_scaling import (
    register_scaling_sweep,
    render_register_scaling,
)


@pytest.fixture(scope="module")
def points():
    return register_scaling_sweep()


def test_baseline_ii_follows_eq1(points):
    for p in points[:-1]:
        assert p.steady_ii == 2 * 32 + p.tile_m + 16 - 1


def test_rasa_point_dominates(points):
    rasa = points[-1]
    assert rasa.steady_ii == 16
    for p in points[:-1]:
        assert rasa.throughput_per_area > p.throughput_per_area


def test_big_registers_show_diminishing_returns(points):
    # Throughput/area improves with TM but sub-linearly: each doubling of
    # register bytes buys less.
    tpa = [p.throughput_per_area for p in points[:-1]]
    gains = [b / a for a, b in zip(tpa, tpa[1:])]
    assert all(g > 1 for g in gains)
    assert gains == sorted(gains, reverse=True)


def test_render(points):
    text = render_register_scaling(points)
    assert "RASA-DMDB-WLS" in text and "treg KiB" in text


class TestHypotheticalConfigs:
    def test_tile_overrides_change_stage_durations(self):
        config = dataclasses.replace(EngineConfig(), tile_m=64)
        assert config.stages.ff == 64
        assert config.serial_mm_latency == 2 * 32 + 64 + 16 - 1
        assert not config.is_architectural

    def test_functional_engine_rejects_hypothetical_geometry(self):
        config = dataclasses.replace(EngineConfig(), tile_m=64)
        with pytest.raises(ConfigError, match="architectural"):
            MatrixEngine(config, functional="oracle")
        MatrixEngine(config, functional="off")  # timing-only is fine

    def test_tile_k_must_match_pe_packing(self):
        from repro.systolic.pe import DM_PE

        with pytest.raises(ConfigError, match="divisible"):
            EngineConfig(pe=DM_PE, tile_k=33)

    def test_nonpositive_tiles_rejected(self):
        with pytest.raises(ConfigError):
            EngineConfig(tile_m=0)
