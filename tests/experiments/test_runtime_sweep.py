"""Tests for the Fig. 5 sweep — the paper's headline experiment."""

from __future__ import annotations

import pytest

from repro.experiments.runner import ExperimentSettings, run_design, workload_shapes
from repro.experiments.runtime_sweep import fig5_normalized_runtime
from repro.workloads.gemm import GemmShape

#: Heavily scaled settings so the full grid runs in seconds.
FAST = ExperimentSettings(scale=16)


@pytest.fixture(scope="module")
def sweep():
    return fig5_normalized_runtime(FAST)


class TestSweepStructure:
    def test_all_workloads_and_designs_present(self, sweep):
        assert len(sweep.normalized) == 9
        for per_design in sweep.normalized.values():
            assert len(per_design) == 8
            assert per_design["baseline"] == pytest.approx(1.0)

    def test_render(self, sweep):
        text = sweep.render()
        assert "ResNet50-1" in text and "GEOMEAN" in text and "paper avg" in text


class TestPaperOrdering:
    """Fig. 5's qualitative claims, which must hold at any scale."""

    def test_design_ordering_per_workload(self, sweep):
        for workload, nd in sweep.normalized.items():
            assert nd["rasa-pipe"] < 1.0, workload
            assert nd["rasa-wlbp"] < nd["rasa-pipe"], workload
            assert nd["rasa-dm-wlbp"] < nd["rasa-wlbp"], workload
            assert nd["rasa-db-wls"] < nd["rasa-dm-wlbp"], workload
            assert nd["rasa-dmdb-wls"] <= nd["rasa-db-wls"] + 0.01, workload

    def test_configuration_ranking_workload_independent(self, sweep):
        # "The relative performances of various configurations are
        # independent of workloads": the per-workload design ranking is the
        # same for all nine layers.
        rankings = set()
        for nd in sweep.normalized.values():
            ranking = tuple(sorted(nd, key=nd.get))
            rankings.add(ranking)
        assert len(rankings) == 1

    def test_average_magnitudes(self, sweep):
        # Loose envelopes around the paper's averages (our streams have the
        # ideal 50 % reuse, so WLBP designs land somewhat lower; see
        # EXPERIMENTS.md).
        avg = sweep.averages
        assert avg["rasa-pipe"] == pytest.approx(0.84, abs=0.05)
        assert 0.40 <= avg["rasa-wlbp"] <= 0.70
        assert 0.25 <= avg["rasa-dm-wlbp"] <= 0.50
        assert 0.17 <= avg["rasa-db-wls"] <= 0.25
        assert 0.16 <= avg["rasa-dmdb-wls"] <= 0.22


class TestScaleConvergence:
    def test_normalized_runtime_converges_with_scale(self):
        """The justification for running scaled-down sweeps: the normalized
        runtime of a design barely moves between scale 8 and scale 4 (both
        large enough that the steady-state initiation interval dominates)."""
        shape = GemmShape(m=4096, n=1024, k=1024, name="conv-test")
        settings = ExperimentSettings()
        ratios = []
        for scale in (8, 4):
            scaled = shape.scaled(scale)
            base = run_design("baseline", scaled, settings)
            best = run_design("rasa-dmdb-wls", scaled, settings)
            ratios.append(best.cycles / base.cycles)
        assert ratios[0] == pytest.approx(ratios[1], abs=0.02)


def test_workload_shapes_scaled():
    shapes = workload_shapes(ExperimentSettings(scale=4))
    assert shapes["DLRM-1"].m == 128
    assert shapes["ResNet50-3"].n == 128
