"""Tests for the Sec. V area/energy experiment driver."""

from __future__ import annotations

import pytest

from repro.experiments.area_energy import area_energy_report
from repro.experiments.runner import ExperimentSettings

FAST = ExperimentSettings(scale=16)


@pytest.fixture(scope="module")
def report():
    return area_energy_report(FAST)


def test_area_overheads_match_paper(report):
    assert report.area_overhead["RASA-DB"] == pytest.approx(0.031, abs=0.003)
    assert report.area_overhead["RASA-DM"] == pytest.approx(0.026, abs=0.003)
    assert report.area_overhead["RASA-DMDB"] == pytest.approx(0.055, abs=0.003)


def test_dmdb_total_area(report):
    assert report.area_mm2["RASA-DMDB"] == pytest.approx(0.847, abs=0.005)


def test_efficiency_ordering_matches_paper(report):
    # Paper: DMDB (4.59) > DB (4.38) > DM (2.19).
    eff = report.efficiency
    assert eff["RASA-DMDB"] >= eff["RASA-DB"] > eff["RASA-DM"]
    assert eff["RASA-DM"] > 1.5
    assert eff["RASA-DB"] > 3.5


def test_render(report):
    text = report.render()
    assert "RASA-DMDB" in text and "0.847" in text and "energy eff." in text
