"""Tests for the Fig. 6 PPA driver and the Table I printer."""

from __future__ import annotations

import pytest

from repro.experiments.layer_table import table1_report
from repro.experiments.ppa_sweep import fig6_performance_per_area
from repro.experiments.runner import ExperimentSettings

FAST = ExperimentSettings(scale=16)


@pytest.fixture(scope="module")
def ppa():
    return fig6_performance_per_area(FAST)


class TestFig6:
    def test_three_designs(self, ppa):
        for per_design in ppa.per_workload.values():
            assert set(per_design) == {"rasa-db-wls", "rasa-dm-wlbp", "rasa-dmdb-wls"}

    def test_ppa_tracks_runtime_trend(self, ppa):
        # Sec. V: PPA shows the same trend as runtime since area deltas are
        # small: DMDB-WLS ~ DB-WLS > DM-WLBP.
        avg = ppa.averages
        assert avg["rasa-dmdb-wls"] > avg["rasa-dm-wlbp"]
        assert avg["rasa-db-wls"] > avg["rasa-dm-wlbp"]

    def test_ppa_values_in_plausible_range(self, ppa):
        avg = ppa.averages
        assert 1.5 < avg["rasa-dm-wlbp"] < 4.0
        assert 3.5 < avg["rasa-dmdb-wls"] < 6.5

    def test_render(self, ppa):
        assert "GEOMEAN" in ppa.render()


class TestTable1:
    def test_report_contains_all_layers_and_paper_dims(self):
        text = table1_report()
        for name in ("ResNet50-1", "DLRM-2", "BERT-3"):
            assert name in text
        assert "N=32 K=C=64" in text.replace("  ", " ") or "K=64" in text
        assert "N=512 NIN=1024 NON=1024" in text
        # Derived GEMM for ResNet50-3.
        assert "6272x512x1024" in text
