#!/usr/bin/env python3
"""Analytic design-space grid: 10^4+ points in seconds, top-5 per suite.

The analytic fidelity costs O(1) per (shape, design) point — no program,
no instruction walk — so a batch x scale grid that would take the fast
model hours collapses to seconds.  This example sweeps three model suites
over 10 batch sizes and 6 scale factors on all 8 designs, ranks designs by
their occurrence-weighted end-to-end speedup over the baseline (geometric
mean across the grid), and prints the top 5 per suite.

Run:  python examples/analytic_grid.py
"""

from __future__ import annotations

import time
from typing import Dict

from repro.cpu.analytic import AnalyticCoreModel
from repro.engine.designs import DESIGNS
from repro.workloads.codegen import CodegenOptions
from repro.workloads.suites import get_suite

SUITES = ("bert-full", "dlrm", "resnet50")
BATCHES = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)
SCALES = (1, 2, 3, 4, 6, 8)
TOP_K = 5


def main() -> None:
    codegen = CodegenOptions()
    # One model per design: probe memoization amortizes across every grid
    # point that lands on the same register-block geometry.
    models = {key: AnalyticCoreModel(engine=d.config) for key, d in DESIGNS.items()}

    start = time.perf_counter()
    points = 0
    # speedups[suite][design] -> list of per-grid-point normalized runtimes
    speedups: Dict[str, Dict[str, list]] = {s: {k: [] for k in DESIGNS} for s in SUITES}
    for suite_name in SUITES:
        for batch in BATCHES:
            for scale in SCALES:
                suite = get_suite(suite_name, batch=batch, scale=scale)
                distinct = suite.distinct()
                totals = {}
                for key, model in models.items():
                    cycles = 0
                    for entry in distinct:
                        cycles += (
                            entry.count
                            * model.run_shape(entry.shape, codegen).cycles
                        )
                        points += 1
                    totals[key] = cycles
                for key, cycles in totals.items():
                    speedups[suite_name][key].append(totals["baseline"] / cycles)
    elapsed = time.perf_counter() - start

    print(
        f"swept {points} (shape, design) points analytically in "
        f"{elapsed:.1f}s ({points / elapsed:.0f} points/s)\n"
    )
    for suite_name in SUITES:
        ranked = sorted(
            speedups[suite_name].items(),
            key=lambda item: _geomean(item[1]),
            reverse=True,
        )
        print(f"{suite_name}: top {TOP_K} designs by end-to-end speedup "
              f"(geomean over {len(BATCHES) * len(SCALES)} batch x scale points)")
        for rank, (key, values) in enumerate(ranked[:TOP_K], start=1):
            label = DESIGNS[key].label
            print(f"  {rank}. {label:16s} {_geomean(values):5.2f}x vs baseline")
        print()


def _geomean(values) -> float:
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values)) if values else 0.0


if __name__ == "__main__":
    main()
