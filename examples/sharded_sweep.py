"""Sharded sweeps: build a plan, split it across "hosts", merge the results.

The declarative sweep API makes a whole sweep a *value*: a
:class:`repro.runtime.SweepPlan` declares the full cross-product, shards
deterministically by distinct cache key, and serializes to canonical JSON
— so the same plan can run on several machines and the shard reports
reassemble bit-identically to a single-shot run.

This script walks the full flow on one machine, using one isolated
:class:`repro.runtime.Session` per shard (sharing nothing, as separate
hosts would):

1. declare a suite batch sweep (DLRM + training, three batches);
2. split it into two shards and run each in its own session;
3. ship the shard reports as JSON (what you would scp between hosts);
4. merge them and verify the result equals an unsharded run bit for bit.

Run with: ``PYTHONPATH=src python examples/sharded_sweep.py``
"""

from __future__ import annotations

from repro.runtime import Session, SweepPlan, SweepReport

# 1. One declarative plan for the whole sweep.  Registered suite names
#    keep the plan serializable; `shard`/`to_json` need no execution.
plan = SweepPlan(
    designs=("baseline", "rasa-dmdb-wls"),
    suites=("dlrm", "training"),
    batches=(1, 64, 512),
    scale=8,
)
print(f"plan: {plan.job_count()} jobs, "
      f"{len(plan.distinct_keys())} distinct simulation points")

# 2. Deterministic split: shard i of n owns sorted(distinct_keys)[i::n].
#    Each shard runs in its own session — no shared cache, no shared pool.
shards = [plan.shard(i, 2) for i in range(2)]
for shard in shards:
    owned = shard.shard_keys()
    print(f"  shard {shard.shard_spec[0]}/{shard.shard_spec[1]} owns "
          f"{len(owned)} points")

reports = [Session(workers=1).run(shard) for shard in shards]

# 3. Reports serialize to canonical JSON — this is the artifact you would
#    copy between hosts (or produce with `repro plan run --shard I/N -o`).
wire = [report.to_json() for report in reports]
received = [SweepReport.from_json(text) for text in wire]

# 4. Merge and verify against an independent single-shot run.
merged = received[0].merge(*received[1:])
single_shot = Session(workers=1).run(plan)
assert merged == single_shot
assert merged.to_json() == single_shot.to_json()
print("merged report is bit-identical to the single-shot run")

# The merged report exposes the same typed views as any complete run.
curves = merged.batch_curves()
for suite in ("dlrm", "training"):
    normalized = curves[suite]["rasa-dmdb-wls"].normalized_to(
        curves[suite]["baseline"]
    )
    series = ", ".join(f"b{b}={v:.3f}" for b, v in normalized.items())
    print(f"  {suite}: normalized runtime vs batch — {series}")
