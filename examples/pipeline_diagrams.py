#!/usr/bin/env python3
"""Fig. 4(b) recreated: pipeline diagrams of every RASA-Control scheme.

Schedules three back-to-back ``rasa_mm`` (with the middle pair sharing a
B register, like Algorithm 1) under BASE, PIPE, WLBP and WLS and renders
the sub-stage lanes — the exact picture the paper uses to explain the
control optimizations.

Run:  python examples/pipeline_diagrams.py
"""

from __future__ import annotations

from repro.engine import ControlPolicy, EngineConfig, EngineScheduler, render_pipeline
from repro.systolic.pe import DB_PE, DMDB_PE

#: Three instructions; #1 reuses #0's weights (Algorithm-1 style).
WEIGHT_KEYS = ["b0", "b0", "b1"]

SCHEMES = [
    ("BASE — fully serialized", EngineConfig(control=ControlPolicy.BASE)),
    ("PIPE — WL overlaps previous DR", EngineConfig(control=ControlPolicy.PIPE)),
    ("WLBP — dirty-bit weight-load bypass", EngineConfig(control=ControlPolicy.WLBP)),
    ("DB-WLS — shadow-buffer weight prefetch", EngineConfig(pe=DB_PE, control=ControlPolicy.WLS)),
    ("DMDB-WLS — the paper's best design", EngineConfig(pe=DMDB_PE, control=ControlPolicy.WLS)),
]


def main() -> None:
    for title, config in SCHEMES:
        scheduler = EngineScheduler(config)
        schedule = [scheduler.schedule_mm(0, 0, key) for key in WEIGHT_KEYS]
        ii = schedule[-1].ff_start - schedule[-2].ff_start
        print(f"\n{title}")
        print(f"(array {config.phys_rows}x{config.phys_cols}, steady II -> {ii} cycles)")
        print(render_pipeline(schedule, max_width=150))
    print(
        "\nThe paper's throughput story in one picture: BASE repeats every 95"
        "\ncycles, PIPE every 79, WLBP hits 16 on reuse, WLS sustains 16 always."
    )


if __name__ == "__main__":
    main()
