#!/usr/bin/env python3
"""ResNet50 convolution through the full RASA stack (Table I workloads).

Demonstrates the convolution path end to end:

1. a small ResNet-style convolution is lowered with im2col, executed
   functionally on the RASA engine, and checked against direct convolution;
2. the three ResNet50 layers from Table I are timed (scaled down 4x per
   dimension for a quick run) on the baseline vs RASA-DMDB-WLS.

Run:  python examples/resnet50_conv.py
"""

from __future__ import annotations

import numpy as np

from repro import FastCoreModel, MatrixEngine, TileMemory, build_gemm_kernel, get_design
from repro.workloads.layers import TABLE1_LAYERS, ConvLayer
from repro.workloads.lowering import (
    conv_reference,
    filters_to_gemm_b,
    gemm_output_to_conv,
    im2col,
)


def functional_demo() -> None:
    rng = np.random.default_rng(1)
    layer = ConvLayer("demo-conv", batch=2, filters=20, channels=6, x=7, y=7, r=3, s=3)
    inputs = rng.standard_normal((2, 6, 7, 7)).astype(np.float32)
    weights = rng.standard_normal((20, 6, 3, 3)).astype(np.float32) * 0.2

    a = im2col(inputs, 3, 3)                 # (N*X*Y, C*R*S)
    b = filters_to_gemm_b(weights)           # (C*R*S, K)
    shape = layer.gemm()
    kernel = build_gemm_kernel(shape)
    memory = TileMemory()
    kernel.write_inputs(memory, a, b)
    engine = MatrixEngine(get_design("rasa-dmdb-wls").config, memory=memory)
    report = engine.run(kernel.program)
    out = gemm_output_to_conv(kernel.read_result(memory), 2, 7, 7)

    direct = conv_reference(inputs.astype(np.float64), weights.astype(np.float64))
    err = np.max(np.abs(out - direct)) / np.max(np.abs(direct))
    print(f"{layer}")
    print(f"  lowered GEMM: {shape}, {report.stats.mm_count} rasa_mm, "
          f"bypass rate {report.stats.bypass_rate:.0%}")
    print(f"  max relative error vs direct conv (BF16 inputs): {err:.2e}")


def timing_sweep(scale: int = 4) -> None:
    print(f"\nTable I ResNet50 layers, scaled 1/{scale} per dimension:")
    print(f"{'layer':12s} {'GEMM (MxNxK)':>22s} {'baseline cyc':>13s} "
          f"{'DMDB-WLS cyc':>13s} {'norm':>6s}")
    for name in ("ResNet50-1", "ResNet50-2", "ResNet50-3"):
        shape = TABLE1_LAYERS[name].gemm().scaled(scale)
        program = build_gemm_kernel(shape).program
        base = FastCoreModel(engine=get_design("baseline").config).run(program)
        best = FastCoreModel(engine=get_design("rasa-dmdb-wls").config).run(program)
        print(
            f"{name:12s} {f'{shape.m}x{shape.n}x{shape.k}':>22s} "
            f"{base.cycles:13d} {best.cycles:13d} "
            f"{best.cycles / base.cycles:6.3f}"
        )
    print("paper Fig. 5: RASA-DMDB-WLS averages 0.208 normalized runtime.")


if __name__ == "__main__":
    functional_demo()
    timing_sweep()
