#!/usr/bin/env python3
"""Quickstart: simulate one GEMM on the baseline and every RASA design.

Builds a LIBXSMM-style RASA instruction stream for a 512x512x512 GEMM,
checks it computes the right answer on the functional engine, then times it
on the Skylake-like CPU model for all eight design points of the paper.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    DESIGNS,
    FastCoreModel,
    GemmShape,
    MatrixEngine,
    TileMemory,
    build_gemm_kernel,
    gemm_reference,
    get_design,
)


def main() -> None:
    # --- 1. Functional sanity on a small kernel ---------------------------------
    rng = np.random.default_rng(0)
    small = GemmShape(m=64, n=64, k=128, name="sanity")
    kernel = build_gemm_kernel(small)
    a = rng.standard_normal((small.m, small.k)).astype(np.float32)
    b = rng.standard_normal((small.k, small.n)).astype(np.float32)
    memory = TileMemory()
    kernel.write_inputs(memory, a, b)
    engine = MatrixEngine(get_design("rasa-dmdb-wls").config, memory=memory)
    engine.run(kernel.program)
    out = kernel.read_result(memory)
    expected = gemm_reference(a, b, chains=2)
    assert np.array_equal(out, expected), "functional mismatch!"
    print(f"functional check: C = A@B bit-exact on {small} "
          f"({kernel.program.stats.matmuls} rasa_mm)")

    # --- 2. Timing sweep over every design ----------------------------------------
    shape = GemmShape(m=512, n=512, k=512, name="quickstart")
    program = build_gemm_kernel(shape).program
    print(f"\nsimulating {program!r}")
    print(f"\n{'design':18s} {'cycles':>10s} {'norm':>7s} {'bypass':>7s} {'ms @2GHz':>9s}")
    baseline_cycles = None
    for key, design in DESIGNS.items():
        result = FastCoreModel(engine=design.config).run(program)
        if baseline_cycles is None:
            baseline_cycles = result.cycles
        print(
            f"{design.label:18s} {result.cycles:10d} "
            f"{result.cycles / baseline_cycles:7.3f} "
            f"{result.bypass_rate:7.2f} {result.seconds * 1e3:9.3f}"
        )
    print(
        "\npaper headline: RASA-DMDB-WLS reduces runtime ~79% vs the serialized"
        "\nbaseline; perfect pipelining bound = 16/95 = 0.168 (Sec. V)."
    )


if __name__ == "__main__":
    main()
