#!/usr/bin/env python3
"""Algorithm 1 from the paper, written in .rasa assembly and executed.

Shows the ISA surface directly: the paper's example kernel (4 C tiles,
2 B tiles, 2 A tiles for a 32x32 `C += A @ B`) is assembled from text,
executed functionally, verified, and its WLBP weight-reuse behaviour
inspected — lines 9/11 share treg4 and lines 13/14 share treg5, so two of
the four rasa_mm bypass their Weight Load.

Run:  python examples/custom_kernel_assembly.py
"""

from __future__ import annotations

import numpy as np

from repro import MatrixEngine, TileMemory, assemble, gemm_reference, get_design
from repro.tile.hostmem import layout_gemm_operands
from repro.tile.vnni import pack_b_vnni

# Algorithm 1, with concrete addresses: A at 0x10000 (32x32 bf16, 64 B rows),
# B (VNNI-packed) at 0x10800, C at 0x11000 (32x32 fp32, 128 B rows).
ALGORITHM_1 = """
// Step 1. Load C tiles (C0 = A0B0, C1 = A1B0, C2 = A0B1, C3 = A1B1:
// C1 is row tile 1 / column tile 0 -> address 0x11800)
rasa_tl treg0, ptr[0x11000, stride=128]
rasa_tl treg1, ptr[0x11800, stride=128]
rasa_tl treg2, ptr[0x11040, stride=128]
rasa_tl treg3, ptr[0x11840, stride=128]
// Step 2. Compute partial sums
rasa_tl treg4, ptr[0x10800, stride=128]   // BTile0
rasa_tl treg6, ptr[0x10000, stride=64]    // ATile0
rasa_mm treg0, treg6, treg4
rasa_tl treg7, ptr[0x10400, stride=64]    // ATile1
rasa_mm treg1, treg7, treg4               // reuses treg4 -> WLBP bypass
rasa_tl treg5, ptr[0x10840, stride=128]   // BTile1
rasa_mm treg2, treg6, treg5
rasa_mm treg3, treg7, treg5               // reuses treg5 -> WLBP bypass
// Step 3. Store C tiles
rasa_ts ptr[0x11000, stride=128], treg0
rasa_ts ptr[0x11800, stride=128], treg1
rasa_ts ptr[0x11040, stride=128], treg2
rasa_ts ptr[0x11840, stride=128], treg3
"""


def main() -> None:
    program = assemble(ALGORITHM_1, name="algorithm1")
    print(f"assembled: {program!r}")
    print(f"B-register reuse fraction: {program.weight_reuse_fraction():.0%}\n")

    # Place the operands exactly where the assembly expects them.
    rng = np.random.default_rng(42)
    a_host, b_host, c_host = layout_gemm_operands(m=32, n=32, k=32, base=0x10000)
    assert (a_host.base, b_host.base, c_host.base) == (0x10000, 0x10800, 0x11000)
    a = rng.standard_normal((32, 32)).astype(np.float32)
    b = rng.standard_normal((32, 32)).astype(np.float32)
    c = rng.standard_normal((32, 32)).astype(np.float32)
    memory = TileMemory()
    a_host.store(memory, a)
    b_host.store(memory, pack_b_vnni(b))
    c_host.store(memory, c)

    # Execute on a WLBP design and inspect the dirty-bit behaviour.
    engine = MatrixEngine(get_design("rasa-wlbp").config, memory=memory)
    report = engine.run(program)
    out = c_host.load(memory)
    expected = gemm_reference(a, b, c)
    assert np.array_equal(out, expected), "functional mismatch!"

    print("execution on RASA-WLBP:")
    print(f"  rasa_mm executed : {report.stats.mm_count}")
    print(f"  weight loads     : {report.stats.weight_load_count}")
    print(f"  WLBP bypasses    : {report.stats.bypass_count} "
          f"(lines 9->11 and 13->14 of Algorithm 1)")
    print(f"  engine cycles    : {report.total_cycles}")
    print("  result           : bit-exact vs the NumPy oracle")
    for times in report.schedule:
        tag = "bypassed WL" if times.bypassed else f"WL {times.wl_start}-{times.wl_end}"
        print(f"    mm#{times.index}: {tag}, FF {times.ff_start}-{times.ff_end}, "
              f"done @{times.complete}")


if __name__ == "__main__":
    main()
