#!/usr/bin/env python3
"""Design-space exploration: runtime, area, energy, and PPA per design.

Combines the CPU-timing model with the Nangate-15nm area/energy models to
reproduce the paper's Sec. V trade-off discussion on one workload: which
optimizations pay for their silicon?

Run:  python examples/design_space_exploration.py
"""

from __future__ import annotations

from repro import DESIGNS, FastCoreModel, GemmShape, build_gemm_kernel
from repro.physical.area import ArrayAreaModel
from repro.physical.energy import EnergyModel
from repro.physical.ppa import performance_per_area


def main() -> None:
    shape = GemmShape(m=512, n=512, k=1024, name="dse")
    program = build_gemm_kernel(shape).program
    area_model = ArrayAreaModel()
    energy_model = EnergyModel()
    baseline = DESIGNS["baseline"]
    base_result = FastCoreModel(engine=baseline.config).run(program)

    print(f"workload: {shape}  ({program.stats.matmuls} rasa_mm)\n")
    header = (
        f"{'design':16s} {'norm rt':>8s} {'area mm^2':>10s} {'overhead':>9s} "
        f"{'PPA':>6s} {'energy eff':>11s}"
    )
    print(header)
    print("-" * len(header))
    for key, design in DESIGNS.items():
        result = FastCoreModel(engine=design.config).run(program)
        area = area_model.array_area_mm2(design.config)
        overhead = area_model.overhead_vs(design.config, baseline.config)
        ppa = performance_per_area(
            result, design.config, base_result, baseline.config, area_model
        )
        eff = energy_model.efficiency_vs(
            result, design.config, base_result, baseline.config
        )
        print(
            f"{design.label:16s} {result.normalized_to(base_result):8.3f} "
            f"{area:10.3f} {overhead:+8.1%} {ppa:6.2f} {eff:10.2f}x"
        )

    print(
        "\npaper (Sec. V): overheads DB +3.1% / DM +2.6% / DMDB +5.5%;"
        "\nenergy efficiency DB 4.38x / DM 2.19x / DMDB 4.59x; PPA tracks runtime."
    )


if __name__ == "__main__":
    main()
