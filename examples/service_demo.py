"""The sweep service end to end, in one process: coordinator + two workers.

``repro.service`` turns the declarative sweep runtime into a long-running,
crash-tolerant service: a coordinator owns a durable SQLite job store and
leases shards to pull-model workers, and the shard reports merge back
bit-identically to a single-shot run.  In production the three pieces are
three commands on (possibly) three machines::

    repro serve --db jobs.db                 # the coordinator
    repro submit --workloads table1 --shards 2 --wait   # a client
    repro worker                             # any number of hosts

This script runs the same flow in-process — an ephemeral-port server, two
worker threads — submits the Table I layer grid, waits for the merged
report, prints the cycles grid, and verifies byte-identity against a
plain ``Session.run``.

Run with: ``PYTHONPATH=src python examples/service_demo.py``
"""

from __future__ import annotations

import tempfile
import threading
from pathlib import Path

from repro.runtime import Session, SweepPlan, SweepReport
from repro.service import (
    Coordinator,
    JobStore,
    ServiceClient,
    ServiceConfig,
    ShardWorker,
    create_server,
)
from repro.utils.tables import format_table
from repro.workloads.layers import table1_gemms

# 1. Stand up the service: a durable job store, the coordinator policy
#    (30s leases, 3 attempts per shard, reaper every 0.2s), and the HTTP
#    API on an OS-assigned port.  `repro serve` does exactly this.
state_dir = Path(tempfile.mkdtemp(prefix="repro-service-demo-"))
store = JobStore(state_dir / "service.db")
coordinator = Coordinator(store, ServiceConfig(reap_interval=0.2))
server = create_server(coordinator, port=0)
coordinator.start_reaper()
threading.Thread(target=server.serve_forever, daemon=True).start()
print(f"coordinator at {server.url} (job store: {store.path})")

# 2. Declare and submit a plan: the Table I layer grid on two designs.
#    Submission is idempotent — the plan id is a hash of the canonical
#    plan JSON and the effective shard fan-out.
plan = SweepPlan(
    designs=("baseline", "rasa-dmdb-wls"),
    workloads=tuple(table1_gemms().items()),
    scale=16,
)
client = ServiceClient(server.url)
submitted = client.submit(plan, shards=2)
print(
    f"plan {submitted['plan_id']}: {submitted['shard_count']} shards over "
    f"{submitted['distinct_points']} distinct points"
)

# 3. Two pull-model workers (threads here; processes or hosts in real
#    deployments — `repro worker` is this loop).  Each claims a leased
#    shard, simulates it, heartbeats, and streams the report back.
workers = [
    ShardWorker(
        ServiceClient(server.url),
        session_factory=lambda: Session(cache=None, workers=1),
        worker_id=f"demo-worker-{i}",
        poll_interval=0.1,
        idle_exit=1.0,
    )
    for i in range(2)
]
threads = [threading.Thread(target=worker.run) for worker in workers]
for thread in threads:
    thread.start()

# 4. Wait for the merged report and print the Table I cycles grid.
client.wait_for_plan(submitted["plan_id"], timeout=600)
served = client.plan_report(submitted["plan_id"])
report = SweepReport.from_json(served)

grid = report.grid()  # grid[workload][design] -> SimResult
designs = list(plan.designs)
rows = [
    [name] + [grid[name][design].cycles for design in designs]
    for name, _ in plan.workloads
]
print(format_table(["layer"] + designs, rows, title="Table I grid (cycles)"))

# 5. The service's contract: the served bytes equal a single-shot run.
with Session(cache=None, workers=1) as session:
    single_shot = session.run(plan).to_json()
assert served == single_shot
print("served merged report is byte-identical to a single-shot Session.run")

for thread in threads:
    thread.join()
coordinator.stop()
server.shutdown()
store.close()
