#!/usr/bin/env python3
"""Fig. 7 in miniature: batch-size sensitivity of the best RASA design.

Sweeps a BERT and a DLRM FC layer over batch sizes and shows the two
effects the paper reports: the flat region below batch 16 (one tile row is
the smallest unit of work) and convergence to the 16/95 = 0.168 asymptote.

Run:  python examples/batch_sensitivity.py
"""

from __future__ import annotations

import dataclasses

from repro import FastCoreModel, build_gemm_kernel, get_design
from repro.workloads.layers import TABLE1_LAYERS

BATCHES = (1, 4, 16, 64, 256, 1024)
SCALE = 4  # shrink NIN/NON for a quick run; the asymptote is unaffected


def normalized_runtime(layer_name: str, batch: int) -> float:
    gemm = TABLE1_LAYERS[layer_name].with_batch(batch).gemm()
    shape = dataclasses.replace(
        gemm, m=batch, n=max(32, gemm.n // SCALE), k=max(32, gemm.k // SCALE)
    )
    program = build_gemm_kernel(shape).program
    base = FastCoreModel(engine=get_design("baseline").config).run(program)
    best = FastCoreModel(engine=get_design("rasa-dmdb-wls").config).run(program)
    return best.cycles / base.cycles


def main() -> None:
    layers = ("BERT-1", "DLRM-1")
    print(f"{'batch':>6s}" + "".join(f" {name:>10s}" for name in layers))
    for batch in BATCHES:
        row = [normalized_runtime(name, batch) for name in layers]
        print(f"{batch:6d}" + "".join(f" {v:10.3f}" for v in row))
    print(
        "\nbatches 1..16 issue the same rasa_mm stream (16 rows = minimum"
        "\nwork granularity); large batches approach the perfect-pipelining"
        f"\nasymptote 16/95 = {16 / 95:.3f} (paper Fig. 7)."
    )


if __name__ == "__main__":
    main()
