#!/usr/bin/env python
"""AST lint for repository invariants the type checker cannot express.

Two rules, both load-bearing for result-cache correctness:

1. **Frozen cache-key dataclasses.**  Every dataclass defined in a module on
   the cache-key path (workload shapes, codegen options, sweep plans, design
   configs) must be declared ``@dataclasses.dataclass(frozen=True)``.  These
   objects are hashed into result-cache keys and program memos; a mutable
   one could be altered after keying, silently detaching cached results from
   what they describe.  ``ALLOW_MUTABLE`` lists the reviewed exceptions
   (e.g. ``GemmKernel``, which is constructed then handed out whole and
   never used as a key).

2. **No wall-clock or randomness on deterministic paths.**  Modules that
   compute cache keys or lower workloads must not import ``time``,
   ``random``, ``secrets``, or ``uuid``: two runs over the same plan must
   produce byte-identical programs and keys.  (The CLI's progress output
   legitimately uses ``time`` — it is outside the scoped set.)

Two more rules apply to the *whole* ``src/repro/`` tree:

3. **No mutable default arguments.**  A ``def f(x, acc=[])`` default is
   created once and shared across calls; on memoizing paths (session memos,
   program caches) that aliasing corrupts results silently.  Defaults may
   not be list/dict/set literals anywhere under ``src/repro/``.

4. **No bare ``except:`` on runtime/analysis paths.**  ``repro.runtime``
   swallows per-job failures into reports and ``repro.analysis`` turns
   defects into diagnostics — a bare ``except:`` there also catches
   ``KeyboardInterrupt``/``SystemExit`` and buries oracle failures.  Catch
   a named exception (``except Exception`` at minimum) instead.

Run from the repository root::

    python tools/lint_invariants.py

Exit code 0 when clean; 1 with one ``file:line: message`` per violation.
"""

from __future__ import annotations

import ast
import pathlib
import sys
from typing import List, Tuple

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO / "src"

#: Modules whose dataclasses feed result-cache keys / program memos, and
#: which therefore must also stay deterministic.
SCOPED_MODULES: Tuple[str, ...] = (
    "repro/workloads/gemm.py",
    "repro/workloads/tiling.py",
    "repro/workloads/codegen.py",
    "repro/workloads/ops.py",
    "repro/workloads/lowering.py",
    "repro/workloads/suites.py",
    "repro/workloads/layers.py",
    "repro/workloads/training.py",
    "repro/cpu/config.py",
    "repro/cpu/decode.py",
    "repro/cpu/fastvec.py",
    "repro/engine/config.py",
    "repro/engine/designs.py",
    "repro/runtime/plan.py",
    "repro/runtime/cache.py",
)

#: (module, class) pairs reviewed as legitimately mutable: not cache keys.
ALLOW_MUTABLE: frozenset = frozenset({
    ("repro/workloads/codegen.py", "GemmKernel"),
})

FORBIDDEN_IMPORTS: frozenset = frozenset({"time", "random", "secrets", "uuid"})

#: Module prefixes where a bare ``except:`` would bury oracle failures.
BARE_EXCEPT_PREFIXES: Tuple[str, ...] = ("repro/runtime/", "repro/analysis/")


def _dataclass_frozen(decorator: ast.expr) -> bool:
    """Whether a decorator node is ``dataclass(..., frozen=True)``."""
    if not isinstance(decorator, ast.Call):
        return False  # bare @dataclass / @dataclasses.dataclass: not frozen
    for kw in decorator.keywords:
        if kw.arg == "frozen":
            return isinstance(kw.value, ast.Constant) and kw.value.value is True
    return False


def _is_dataclass_decorator(decorator: ast.expr) -> bool:
    node = decorator.func if isinstance(decorator, ast.Call) else decorator
    if isinstance(node, ast.Attribute):
        return node.attr == "dataclass"
    return isinstance(node, ast.Name) and node.id == "dataclass"


def check_file(path: pathlib.Path, module: str) -> List[str]:
    """Return ``file:line: message`` strings for every violation in one file."""
    problems: List[str] = []
    try:
        shown = path.relative_to(REPO)
    except ValueError:
        shown = path
    tree = ast.parse(path.read_text(), filename=str(path))
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            decorators = [d for d in node.decorator_list if _is_dataclass_decorator(d)]
            if decorators and (module, node.name) not in ALLOW_MUTABLE:
                if not any(_dataclass_frozen(d) for d in decorators):
                    problems.append(
                        f"{shown}:{node.lineno}: dataclass "
                        f"{node.name!r} on the cache-key path must be "
                        "declared frozen=True (or allow-listed in "
                        "tools/lint_invariants.py)"
                    )
        elif isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in FORBIDDEN_IMPORTS:
                    problems.append(
                        f"{shown}:{node.lineno}: import of "
                        f"{alias.name!r} in a deterministic cache-key/lowering "
                        "module"
                    )
        elif isinstance(node, ast.ImportFrom):
            root = (node.module or "").split(".")[0]
            if node.level == 0 and root in FORBIDDEN_IMPORTS:
                problems.append(
                    f"{shown}:{node.lineno}: import from "
                    f"{node.module!r} in a deterministic cache-key/lowering "
                    "module"
                )
    return problems


def _mutable_default(node: ast.expr) -> bool:
    """Whether a default-value node is a shared-across-calls mutable literal."""
    return isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp))


def check_tree_rules(path: pathlib.Path, module: str) -> List[str]:
    """The repo-wide rules: mutable defaults (everywhere under ``src/repro``)
    and bare ``except:`` (on the :data:`BARE_EXCEPT_PREFIXES` paths)."""
    problems: List[str] = []
    try:
        shown = path.relative_to(REPO)
    except ValueError:
        shown = path
    check_excepts = module.startswith(BARE_EXCEPT_PREFIXES)
    tree = ast.parse(path.read_text(), filename=str(path))
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _mutable_default(default):
                    name = getattr(node, "name", "<lambda>")
                    problems.append(
                        f"{shown}:{default.lineno}: mutable default argument "
                        f"in {name!r} is shared across calls; default to "
                        "None (or a frozen value) and build inside the body"
                    )
        elif check_excepts and isinstance(node, ast.ExceptHandler):
            if node.type is None:
                problems.append(
                    f"{shown}:{node.lineno}: bare 'except:' on a "
                    "runtime/analysis path also catches KeyboardInterrupt "
                    "and buries oracle failures; name the exception "
                    "(at minimum 'except Exception')"
                )
    return problems


def main(argv: List[str]) -> int:
    problems: List[str] = []
    missing: List[str] = []
    for module in SCOPED_MODULES:
        path = SRC / module
        if not path.exists():
            missing.append(module)
            continue
        problems.extend(check_file(path, module))
    tree_files = sorted(SRC.glob("repro/**/*.py"))
    for path in tree_files:
        problems.extend(check_tree_rules(path, path.relative_to(SRC).as_posix()))
    for module in missing:
        problems.append(f"{module}: scoped module missing (update the list?)")
    for line in problems:
        print(line)
    if not problems:
        print(
            f"lint_invariants: {len(SCOPED_MODULES)} scoped modules and "
            f"{len(tree_files)} tree files clean"
        )
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
