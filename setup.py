"""Thin setup.py shim.

The environment's setuptools lacks the ``wheel`` package, so PEP-517
editable installs (which build a wheel) fail; this shim enables the legacy
``pip install -e . --no-use-pep517`` path.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
