"""E1 — Fig. 1: the 2x2 weight-stationary toy walkthrough (28.6 %)."""

from __future__ import annotations

import numpy as np

from repro.experiments.toy import fig1_toy_example


def test_fig1_toy(benchmark, emit):
    result = benchmark(fig1_toy_example)
    assert result.utilization == 8 / 28
    assert result.total_cycles == 7
    assert np.array_equal(result.output, result.expected_output)
    emit("Fig. 1 — toy 2x2 WS walkthrough", result.render())
