"""E3 — Table I: evaluated layer dimensions and their lowered GEMMs."""

from __future__ import annotations

from repro.experiments.layer_table import table1_report
from repro.workloads.layers import TABLE1_LAYERS


def test_table1(benchmark, emit):
    text = benchmark(table1_report)
    assert len(TABLE1_LAYERS) == 9
    for name in TABLE1_LAYERS:
        assert name in text
    emit("Table I — layer dimensions", text)
