"""E11 — ablation: the register-size wall the paper's Sec. III motivates.

The whole point of RASA is that a CPU cannot raise TM: the tile registers
fix TM = 16, so a serialized fold runs at 16/95 utilization.  This ablation
asks the counterfactual the paper argues against hardware-wise: *what if
the ISA had bigger tile registers?*  It sweeps hypothetical TM values and
reports (a) the serialized utilization Eq. 1 gives a bigger-register
baseline, and (b) the register-file bytes that TM would cost — showing
RASA-DMDB-WLS at TM = 16 already matches the utilization of a ~8x-larger
register file on the unpipelined baseline.
"""

from __future__ import annotations

from repro.systolic.timing import fold_latency
from repro.systolic.utilization import utilization_single_fold
from repro.utils.tables import format_table

TK, TN = 32, 16
TM_SWEEP = (16, 32, 64, 128, 256, 512)
#: RASA-DMDB-WLS steady state: one mm per TM=16 cycles.
RASA_STEADY_UTILIZATION = 16 / 16


def tile_register_bytes(tm: int) -> int:
    """A/C register capacity needed for a TM-row tile (bytes per register)."""
    return tm * 64


def test_tile_size_counterfactual(benchmark, emit):
    benchmark(utilization_single_fold, 16, TK, TN)
    rows = []
    for tm in TM_SWEEP:
        util = utilization_single_fold(tm=tm, tk=TK, tn=TN)
        rows.append(
            (
                tm,
                tile_register_bytes(tm),
                fold_latency(tk=TK, tm=tm, tn=TN),
                f"{util:.3f}",
            )
        )
    # The serialized baseline needs TM ~ 128 (an 8 KB tile register) to pass
    # ~60 % utilization; RASA reaches the TM-bound steady state at 1 KB.
    assert utilization_single_fold(128, TK, TN) > 0.6
    assert utilization_single_fold(16, TK, TN) < 0.2
    emit(
        "Ablation E11 — serialized utilization vs hypothetical tile size",
        format_table(
            ["TM", "tile reg bytes", "fold latency (Eq. 1)", "utilization"], rows
        )
        + "\nRASA-DMDB-WLS reaches one mm per 16 cycles at TM = 16 (1 KB registers).",
    )
