"""E17 — extension: bigger tile registers vs RASA pipelining, per area.

Quantifies Sec. III's argument: matching RASA's engine throughput with a
*serialized* baseline would take TM in the hundreds — tens of KiB of
architected tile registers — while RASA gets there with 1 KiB registers and
~5.5 % array-area overhead.
"""

from __future__ import annotations

from repro.experiments.register_scaling import (
    register_scaling_sweep,
    render_register_scaling,
)


def test_register_scaling(benchmark, emit):
    points = benchmark(register_scaling_sweep)
    rasa = points[-1]
    tm16 = points[0]

    # RASA's throughput-per-area must beat every big-register baseline.
    assert all(rasa.throughput_per_area > p.throughput_per_area for p in points[:-1])
    # The TM=16 serialized baseline runs at 16/95 of RASA's throughput.
    assert abs(tm16.macs_per_cycle / rasa.macs_per_cycle - 16 / 95) < 0.01
    # Even TM=256 (128 KiB of registers) does not reach RASA's throughput.
    tm256 = next(p for p in points if p.tile_m == 256)
    assert tm256.macs_per_cycle < rasa.macs_per_cycle
    emit("Ablation E17 — register scaling counterfactual", render_register_scaling(points))
