"""Suite dedup: distinct-shape execution vs brute-force per-layer sweeps.

BERT-base is the stress case: 72 encoder GEMMs but only 3 distinct
(m, n, k) points — 48 identical q/k/v/attn-out projections alone.  This
bench measures the dedup-aware plan path (a suite
:class:`repro.runtime.SweepPlan` through :class:`repro.runtime.Session`)
against a brute-force per-layer sweep over the same multiset, and asserts
the weighted end-to-end totals are bit-identical, so the 24x simulation
saving is pure profit.
"""

from __future__ import annotations

from repro.runtime import Session, SweepPlan, resolve_backend
from repro.utils.tables import format_table
from repro.workloads.codegen import generate_gemm_program
from repro.workloads.suites import get_suite

DESIGN_KEYS = ("baseline", "rasa-dmdb-wls")


def test_suite_dedup(benchmark, emit, settings):
    session = Session(workers=1)  # cache-free: honest simulation counts
    suite = get_suite("bert-base", scale=settings.scale * 2)
    distinct = suite.distinct()
    plan = SweepPlan(
        designs=DESIGN_KEYS,
        suites=(suite,),  # the built multiset inlines into the plan
        core=settings.core,
        codegen=settings.codegen,
    )

    def run_deduped():
        return session.run(plan).suite_totals()["bert-base"]

    totals = run_deduped()

    # Brute force, as an *independent* oracle: every layer lowers and
    # simulates directly, bypassing both the dedup layer and the program
    # memo, so a key conflation in either could not corrupt both sides.
    rows = []
    for key in DESIGN_KEYS:
        backend = resolve_backend(key, core=settings.core)
        brute_cycles = sum(
            backend.simulate(generate_gemm_program(shape, settings.codegen)).cycles
            for _, shape in suite.gemms
        )
        assert totals[key].cycles == brute_cycles, key  # bit-identical totals
        rows.append(
            (
                key,
                totals[key].gemm_count,
                totals[key].simulations,
                f"{totals[key].dedup_factor:.0f}x",
                totals[key].cycles,
            )
        )
    assert all(t.simulations == len(distinct) for t in totals.values())

    benchmark(run_deduped)
    emit(
        "Suite dedup — BERT-base: distinct-shape execution vs per-layer",
        format_table(
            ["design", "GEMMs", "simulated", "dedup", "end-to-end cycles"], rows
        ),
    )
