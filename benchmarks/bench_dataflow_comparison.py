"""E12 — background (Sec. II-C): WS vs IS vs OS dataflow latency.

The paper picks weight-stationary following SCALE-Sim's characterization
[12].  This bench regenerates that background comparison on the Table I
GEMMs: whole-GEMM latency per dataflow on the 32x16 array, unconstrained by
tile registers (the standalone-accelerator setting).
"""

from __future__ import annotations

from repro.systolic.dataflow import Dataflow, gemm_dataflow_latency
from repro.utils.tables import format_table
from repro.workloads.layers import table1_gemms


def test_dataflow_comparison(benchmark, emit):
    shapes = table1_gemms()
    benchmark(
        gemm_dataflow_latency, Dataflow.WS, 512, 1024, 1024, 32, 16
    )
    rows = []
    for name, g in shapes.items():
        latencies = {
            df: gemm_dataflow_latency(df, g.m, g.n, g.k, rows=32, cols=16)
            for df in Dataflow
        }
        best = min(latencies.values(), key=lambda r: r.total_cycles)
        rows.append(
            (
                name,
                latencies[Dataflow.WS].total_cycles,
                latencies[Dataflow.IS].total_cycles,
                latencies[Dataflow.OS].total_cycles,
                best.dataflow.name,
            )
        )
    # WS wins every convolution (huge streamed M), which is the premise of
    # the paper's baseline choice; on the small-batch FC layers other
    # dataflows can edge it out, but never by much (the "best option depends
    # on the dimensions of the operands" caveat of Sec. II-C).
    by_name = {r[0]: r for r in rows}
    for conv in ("ResNet50-1", "ResNet50-2", "ResNet50-3"):
        assert by_name[conv][4] == "WS"
    for name, ws, is_, os_, _best in rows:
        assert ws <= 1.35 * min(ws, is_, os_), name
    emit(
        "Sec. II-C — dataflow latency comparison (cycles, 32x16 array)",
        format_table(["layer", "WS", "IS", "OS", "best"], rows),
    )
