"""E2 — Fig. 2: PE utilization vs TM for several array dimensions."""

from __future__ import annotations

from repro.experiments.utilization_sweep import fig2_utilization
from repro.utils.plot import ascii_plot


def test_fig2_utilization(benchmark, emit):
    sweep = benchmark(fig2_utilization)
    # The CPU's pinned TM = 16 on the paper's 32x16 array: 16/95.
    series = sweep.series[(32, 16)]
    tm16 = sweep.tm_values.index(16)
    assert abs(series[tm16] - 16 / 95) < 1e-12
    plot = ascii_plot(
        {f"{tk}x{tn}": values for (tk, tn), values in sweep.series.items()},
        x_labels=list(sweep.tm_values),
        height=14,
        y_min=0.0,
        y_max=1.0,
        title="utilization vs TM (one serialized fold)",
    )
    emit("Fig. 2 — PE utilization vs TM", sweep.render() + "\n\n" + plot)
