"""Shared benchmark-harness configuration.

Every benchmark regenerates one paper artifact and *prints* the same
rows/series the paper reports (forced past pytest's capture so the output
lands in bench logs).  The Table I layers run scaled down by
``REPRO_BENCH_SCALE`` (default 4 — see DESIGN.md: normalized runtimes
converge quickly with size); set ``REPRO_BENCH_SCALE=1`` for full-size runs.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.runner import ExperimentSettings

BENCH_SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "4"))


@pytest.fixture(scope="session", autouse=True)
def _isolated_result_cache(tmp_path_factory):
    """Benchmarks simulate fresh: no reads from the user's persistent cache."""
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro-cache"))
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    return ExperimentSettings(scale=BENCH_SCALE)


@pytest.fixture
def emit(capsys):
    """Print a rendered artifact so it survives pytest's output capture."""

    def _emit(title: str, text: str) -> None:
        with capsys.disabled():
            print(f"\n{'=' * 72}\n{title} (scale={BENCH_SCALE})\n{'=' * 72}")
            print(text)

    return _emit
