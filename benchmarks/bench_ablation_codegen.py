"""E10 — ablation: codegen register blocking and mm ordering vs WLBP.

WLBP's benefit is entirely a property of the instruction stream: the
fraction of consecutive rasa_mm sharing a clean B register.  This ablation
sweeps the register-blocking factor and the mm ordering and shows the
measured bypass rate and runtime respond exactly as the reuse analysis
predicts — and that WLS designs are insensitive to ordering.
"""

from __future__ import annotations

from repro.cpu.fast import FastCoreModel
from repro.engine.designs import DESIGNS
from repro.experiments.runner import workload_shapes
from repro.utils.tables import format_table
from repro.workloads.codegen import CodegenOptions, generate_gemm_program
from repro.workloads.tiling import BlockingConfig, MMOrder, TileLoopNest

BLOCKINGS = [
    ("1x1", BlockingConfig(bm=1, bn=1)),
    ("1x2", BlockingConfig(bm=1, bn=2)),
    ("2x1", BlockingConfig(bm=2, bn=1)),
    ("2x2 reuse-ordered", BlockingConfig(bm=2, bn=2, mm_order=MMOrder.WEIGHT_REUSE)),
    ("2x2 alternate", BlockingConfig(bm=2, bn=2, mm_order=MMOrder.ALTERNATE)),
    ("1x3", BlockingConfig(bm=1, bn=3)),
    ("3x1 reuse-ordered", BlockingConfig(bm=3, bn=1)),
]


def test_blocking_vs_wlbp(benchmark, emit, settings):
    shape = workload_shapes(settings)["DLRM-1"]
    wlbp = DESIGNS["rasa-wlbp"].config
    base = DESIGNS["baseline"].config

    def simulate(blocking):
        program = generate_gemm_program(shape, CodegenOptions(blocking=blocking))
        return FastCoreModel(engine=wlbp).run(program)

    benchmark(simulate, BLOCKINGS[3][1])

    rows = []
    results = {}
    for label, blocking in BLOCKINGS:
        program = generate_gemm_program(shape, CodegenOptions(blocking=blocking))
        predicted = TileLoopNest(
            type(shape)(shape.padded_m, shape.padded_n, shape.padded_k), blocking
        ).expected_bypass_fraction()
        result = FastCoreModel(engine=wlbp).run(program)
        baseline = FastCoreModel(engine=base).run(program)
        results[label] = result
        rows.append(
            (
                label,
                f"{predicted:.2f}",
                f"{result.bypass_rate:.2f}",
                f"{result.cycles / baseline.cycles:.3f}",
            )
        )
        assert abs(result.bypass_rate - predicted) < 1e-9, label

    # More consecutive B reuse -> faster under WLBP.
    assert results["3x1 reuse-ordered"].cycles < results["2x2 reuse-ordered"].cycles
    assert results["2x2 reuse-ordered"].cycles < results["2x2 alternate"].cycles
    emit(
        "Ablation E10 — register blocking / mm order vs WLBP (DLRM-1)",
        format_table(
            ["blocking", "predicted bypass", "measured bypass", "normalized runtime"],
            rows,
        ),
    )


def test_wls_insensitive_to_ordering(benchmark, emit, settings):
    """WLS prefetches weights regardless of reuse: ordering must not matter."""
    shape = workload_shapes(settings)["BERT-1"]
    wls = DESIGNS["rasa-db-wls"].config
    cycles = {}
    for order in (MMOrder.WEIGHT_REUSE, MMOrder.ALTERNATE):
        options = CodegenOptions(blocking=BlockingConfig(bm=2, bn=2, mm_order=order))
        program = generate_gemm_program(shape, options)
        cycles[order.value] = FastCoreModel(engine=wls).run(program).cycles
    benchmark(
        lambda: FastCoreModel(engine=wls).run(
            generate_gemm_program(shape, CodegenOptions())
        )
    )
    spread = abs(cycles["weight_reuse"] - cycles["alternate"]) / max(cycles.values())
    assert spread < 0.01
    emit(
        "Ablation E10b — RASA-DB-WLS is ordering-insensitive (BERT-1)",
        format_table(
            ["mm order", "cycles"], [(k, v) for k, v in cycles.items()]
        ),
    )
