"""E5 — Sec. V in-text table: area overheads and energy-efficiency gains."""

from __future__ import annotations

from repro.engine.designs import DESIGNS
from repro.experiments.area_energy import area_energy_report


def test_area_energy(benchmark, emit, settings):
    report = area_energy_report(settings)

    def recompute_areas():
        from repro.physical.area import ArrayAreaModel

        model = ArrayAreaModel()
        return [model.array_area_mm2(d.config) for d in DESIGNS.values()]

    benchmark(recompute_areas)

    assert abs(report.area_overhead["RASA-DB"] - 0.031) < 0.003
    assert abs(report.area_overhead["RASA-DM"] - 0.026) < 0.003
    assert abs(report.area_overhead["RASA-DMDB"] - 0.055) < 0.003
    assert abs(report.area_mm2["RASA-DMDB"] - 0.847) < 0.005
    assert report.efficiency["RASA-DMDB"] > report.efficiency["RASA-DM"]
    emit("Sec. V — area overhead and energy efficiency", report.render())
