"""E4 — Eq. 1: analytic fold latency vs the cycle-accurate array.

``L_baseline = 95`` for the evaluation configuration, and the closed form
``2·TK + TM + TN − 1`` must match the measured latency of the functional
array for every geometry.
"""

from __future__ import annotations

import numpy as np

from repro.systolic.array import SystolicArray
from repro.systolic.timing import fold_latency
from repro.utils.tables import format_table

CONFIGS = [(2, 2, 2), (8, 8, 8), (16, 16, 16), (32, 16, 16), (32, 32, 32)]


def measure(tk: int, tn: int, tm: int) -> int:
    rng = np.random.default_rng(7)
    a = rng.standard_normal((tm, tk)).astype(np.float32)
    b = rng.standard_normal((tk, tn)).astype(np.float32)
    return SystolicArray(tk, tn).execute(b, a).total_cycles


def test_eq1_latency(benchmark, emit):
    benchmark(measure, 32, 16, 16)
    rows = []
    for tk, tn, tm in CONFIGS:
        analytic = fold_latency(tk=tk, tm=tm, tn=tn)
        measured = measure(tk, tn, tm)
        assert measured == analytic
        rows.append((f"{tk}x{tn}", tm, analytic, measured))
    assert fold_latency(tk=32, tm=16, tn=16) == 95  # Sec. V's L_baseline
    emit(
        "Eq. 1 — fold latency, analytic vs cycle-accurate",
        format_table(["array", "TM", "analytic (Eq. 1)", "measured"], rows),
    )
