"""E13 — ablation: when does the paper's no-memory-stall assumption break?

The paper idealizes memory ("the core is not stalled by memory").  RASA
makes that assumption *load-bearing*: a perfectly pipelined engine consumes
tile operands ~6x faster than the serialized baseline.  This ablation runs
one workload across memory systems from ideal to pathological and reports
how the RASA-DMDB-WLS gain erodes — quantifying the assumption's domain of
validity (with Skylake-ish caches the gain is essentially intact).
"""

from __future__ import annotations

from repro.cpu.fast import FastCoreModel
from repro.cpu.memory import (
    CacheHierarchy,
    CacheLevelConfig,
    HierarchyConfig,
    IdealMemory,
)
from repro.engine.designs import DESIGNS
from repro.experiments.runner import workload_shapes
from repro.runtime.session import cached_program
from repro.utils.tables import format_table

MEMORIES = [
    ("ideal (paper)", lambda: IdealMemory()),
    ("L1 32K / L2 1M (Skylake-ish)", lambda: CacheHierarchy()),
    (
        "L1 32K / L2 1M, slow DRAM",
        lambda: CacheHierarchy(HierarchyConfig(dram_latency=400)),
    ),
    (
        "tiny caches, slow DRAM, MLP 1",
        lambda: CacheHierarchy(
            HierarchyConfig(
                l1=CacheLevelConfig("L1", size_kib=2, ways=2, hit_latency=4),
                l2=CacheLevelConfig("L2", size_kib=8, ways=2, hit_latency=14),
                dram_latency=400,
                mlp=1,
            )
        ),
    ),
]


def test_memory_sensitivity(benchmark, emit, settings):
    shape = workload_shapes(settings)["BERT-1"]
    program = cached_program(shape, settings.codegen)

    def run(design_key, memory):
        return FastCoreModel(engine=DESIGNS[design_key].config, memory=memory).run(
            program
        )

    benchmark(run, "rasa-dmdb-wls", IdealMemory())

    rows = []
    normalized = {}
    for label, factory in MEMORIES:
        base = run("baseline", factory())
        best = run("rasa-dmdb-wls", factory())
        norm = best.cycles / base.cycles
        normalized[label] = norm
        rows.append((label, base.cycles, best.cycles, f"{norm:.3f}"))

    # Realistic caches keep the paper's conclusion intact...
    assert normalized["L1 32K / L2 1M (Skylake-ish)"] < 0.25
    # ...while a pathological memory system erodes the gain.
    assert normalized["tiny caches, slow DRAM, MLP 1"] > normalized["ideal (paper)"]
    emit(
        "Ablation E13 — memory-system sensitivity (BERT-1, RASA-DMDB-WLS)",
        format_table(
            ["memory system", "baseline cycles", "DMDB-WLS cycles", "normalized"],
            rows,
        ),
    )
