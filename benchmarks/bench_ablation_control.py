"""E9 — ablation: RASA-Control scheduling-rule variants.

Two design decisions DESIGN.md calls out get quantified here:

1. WLBP's "we also allow these stages to be overlapped" clause — letting a
   bypassed FF overlap the previous FS (II 16) instead of waiting for the
   previous DR (II 47 on the 32-row array).
2. The incremental value of each control scheme at a fixed data path.
"""

from __future__ import annotations

import dataclasses

from repro.cpu.fast import FastCoreModel
from repro.engine.config import ControlPolicy, EngineConfig
from repro.experiments.runner import workload_shapes
from repro.runtime.session import cached_program
from repro.utils.tables import format_table


def run(config: EngineConfig, program) -> int:
    return FastCoreModel(engine=config).run(program).cycles


def test_wlbp_ff_overlap_ablation(benchmark, emit, settings):
    shape = workload_shapes(settings)["DLRM-1"]
    program = cached_program(shape, settings.codegen)
    full = EngineConfig(control=ControlPolicy.WLBP, wlbp_ff_overlaps_fs=True)
    restricted = dataclasses.replace(full, wlbp_ff_overlaps_fs=False)
    base = EngineConfig(control=ControlPolicy.BASE)

    benchmark(run, full, program)

    cycles = {
        "BASE": run(base, program),
        "WLBP (FF waits for DR)": run(restricted, program),
        "WLBP (FF overlaps FS, paper)": run(full, program),
    }
    rows = [
        (name, c, f"{c / cycles['BASE']:.3f}") for name, c in cycles.items()
    ]
    assert cycles["WLBP (FF overlaps FS, paper)"] < cycles["WLBP (FF waits for DR)"]
    assert cycles["WLBP (FF waits for DR)"] < cycles["BASE"]
    emit(
        "Ablation E9a — WLBP bypassed-FF overlap rule (DLRM-1)",
        format_table(["scheduler rule", "cycles", "normalized"], rows),
    )


def test_control_ladder(benchmark, emit, settings):
    """BASE -> PIPE -> WLBP on the baseline PE: each rule must help."""
    shape = workload_shapes(settings)["BERT-1"]
    program = cached_program(shape, settings.codegen)
    rows = []
    cycles = {}
    for policy in (ControlPolicy.BASE, ControlPolicy.PIPE, ControlPolicy.WLBP):
        config = EngineConfig(control=policy)
        cycles[policy] = run(config, program)
        rows.append(
            (policy.value, cycles[policy], f"{cycles[policy] / cycles[ControlPolicy.BASE]:.3f}")
        )
    benchmark(run, EngineConfig(control=ControlPolicy.PIPE), program)
    assert cycles[ControlPolicy.PIPE] < cycles[ControlPolicy.BASE]
    assert cycles[ControlPolicy.WLBP] < cycles[ControlPolicy.PIPE]
    emit(
        "Ablation E9b — control ladder on baseline PEs (BERT-1)",
        format_table(["control", "cycles", "normalized"], rows),
    )
