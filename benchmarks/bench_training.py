"""E14 — extension: RASA on training-pass GEMMs.

Sec. V notes the concept "is not limited to inference since GEMM is also a
key building block for training".  This bench runs the forward, dgrad and
wgrad GEMMs of two Table I FC layers across designs.  The expected shape:
forward/dgrad (M = batch, small) gain the full RASA factor; wgrad
(M = NIN, large) already amortizes fill/drain on the baseline, so the gain
there is closer to the pure II ratio with less to recover.
"""

from __future__ import annotations

from repro.cpu.fast import FastCoreModel
from repro.engine.designs import DESIGNS
from repro.runtime.sweep import cached_program
from repro.utils.tables import format_table
from repro.workloads.layers import TABLE1_LAYERS
from repro.workloads.training import TrainingStep

LAYERS = ("DLRM-1", "BERT-1")


def test_training_passes(benchmark, emit, settings):
    rows = []
    sample = None
    for layer_name in LAYERS:
        step = TrainingStep(TABLE1_LAYERS[layer_name])
        for pass_name, shape in step.gemms().items():
            scaled = shape.scaled(settings.scale)
            program = cached_program(scaled, settings.codegen)
            if sample is None:
                sample = program
            base = FastCoreModel(engine=DESIGNS["baseline"].config).run(program)
            best = FastCoreModel(engine=DESIGNS["rasa-dmdb-wls"].config).run(program)
            rows.append(
                (
                    f"{layer_name} {pass_name}",
                    f"{scaled.m}x{scaled.n}x{scaled.k}",
                    base.cycles,
                    best.cycles,
                    f"{best.cycles / base.cycles:.3f}",
                )
            )
    benchmark(FastCoreModel(engine=DESIGNS["rasa-dmdb-wls"].config).run, sample)
    # Every training pass must still gain substantially.
    assert all(float(r[4]) < 0.25 for r in rows)
    emit(
        "Extension E14 — training-pass GEMMs (RASA-DMDB-WLS vs baseline)",
        format_table(
            ["layer / pass", "GEMM", "baseline cyc", "DMDB-WLS cyc", "normalized"],
            rows,
        ),
    )
