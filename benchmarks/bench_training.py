"""E14 — extension: RASA on training-pass GEMMs (FC and conv).

Sec. V notes the concept "is not limited to inference since GEMM is also a
key building block for training".  This bench runs the forward, dgrad and
wgrad GEMMs of two Table I FC layers *and* two ResNet-50 convolutions
(transposed-filter im2col backward lowerings from the op IR) across
designs.  The expected shape: passes whose streamed M is small (FC
fwd/dgrad at M = batch) gain the full RASA factor; passes that stream a
large M (FC wgrad at M = NIN, conv fwd/dgrad at M = batch x spatial)
already amortize fill/drain on the baseline, so the gain there is closer
to the pure II ratio with less to recover.
"""

from __future__ import annotations

import dataclasses

from repro.cpu.fast import FastCoreModel
from repro.engine.designs import DESIGNS
from repro.runtime.session import cached_program
from repro.utils.tables import format_table
from repro.workloads.layers import TABLE1_LAYERS
from repro.workloads.ops import ConvOp, lower
from repro.workloads.training import TrainingStep

FC_LAYERS = ("DLRM-1", "BERT-1")

#: Two ResNet-50 convolutions (a 3x3 mid conv and a 1x1 pointwise),
#: shrunk to bench size but keeping the catalog's channel geometry.
CONV_OPS = tuple(
    ConvOp(name, batch=4, filters=filters, channels=channels,
           x=14, y=14, r=r, s=r)
    for name, filters, channels, r in (
        ("conv4b", 256, 256, 3),
        ("conv4c", 1024, 256, 1),
    )
)


def _training_shapes(settings):
    """(label, scaled GemmShape) for every FC and conv training pass."""
    rows = []
    for layer_name in FC_LAYERS:
        step = TrainingStep(TABLE1_LAYERS[layer_name])
        for pass_name, shape in step.gemms().items():
            rows.append((f"{layer_name} {pass_name}", shape.scaled(settings.scale)))
    for op in CONV_OPS:
        for pass_ in ("fwd", "dgrad", "wgrad"):
            (_, shape, _), = lower(dataclasses.replace(op, pass_=pass_))
            rows.append((f"{op.name} {pass_}", shape.scaled(settings.scale)))
    return rows


def test_training_passes(benchmark, emit, settings):
    rows = []
    sample = None
    for label, scaled in _training_shapes(settings):
        program = cached_program(scaled, settings.codegen)
        if sample is None:
            sample = program
        base = FastCoreModel(engine=DESIGNS["baseline"].config).run(program)
        best = FastCoreModel(engine=DESIGNS["rasa-dmdb-wls"].config).run(program)
        rows.append(
            (
                label,
                f"{scaled.m}x{scaled.n}x{scaled.k}",
                base.cycles,
                best.cycles,
                f"{best.cycles / base.cycles:.3f}",
            )
        )
    benchmark(FastCoreModel(engine=DESIGNS["rasa-dmdb-wls"].config).run, sample)
    # Every training pass must still gain substantially.
    assert all(float(r[4]) < 0.25 for r in rows)
    emit(
        "Extension E14 — training-pass GEMMs (RASA-DMDB-WLS vs baseline)",
        format_table(
            ["layer / pass", "GEMM", "baseline cyc", "DMDB-WLS cyc", "normalized"],
            rows,
        ),
    )
