"""E17 — extension: array-level PE utilization per control scheme.

Fig. 2 gives the *single-fold* utilization; this bench reports the
steady-state utilization of whole scheduled streams per control policy —
the direct quantitative form of the paper's claim that RASA "provides
higher utilization despite limitations in register size".  The analytical
occupancy model used here is validated cycle-by-cycle against the
functional array in the test suite.
"""

from __future__ import annotations

from repro.analysis.occupancy import schedule_utilization
from repro.engine.designs import DESIGNS
from repro.engine.scheduler import EngineScheduler
from repro.utils.tables import format_table


def measure(design_key: str, mm_count: int = 64, reuse: bool = True):
    config = DESIGNS[design_key].config
    scheduler = EngineScheduler(config)
    # Algorithm-1-like weight keys: pairs of mm's share a B register.
    keys = [i // 2 if reuse else i for i in range(mm_count)]
    schedule = [scheduler.schedule_mm(0, 0, key) for key in keys]
    return schedule_utilization(schedule, config)


def test_occupancy_per_design(benchmark, emit):
    benchmark(measure, "rasa-dmdb-wls")
    rows = []
    utils = {}
    for key, design in DESIGNS.items():
        report = measure(key)
        utils[key] = report.utilization
        rows.append(
            (
                design.label,
                f"{report.utilization:.3f}",
                report.peak_active,
                report.num_pes,
            )
        )
    # The paper's utilization story: baseline 16/95, RASA-WLS designs ~1.
    assert abs(utils["baseline"] - 16 / 95) < 0.02
    assert utils["rasa-dmdb-wls"] > 0.9
    assert utils["baseline"] < utils["rasa-pipe"] < utils["rasa-wlbp"]
    emit(
        "Extension E17 — steady-state PE utilization per design "
        "(64 mm, Algorithm-1 reuse)",
        format_table(["design", "avg utilization", "peak active PEs", "PEs"], rows),
    )
