"""E8 — Fig. 7: batch-size sensitivity of RASA-DMDB-WLS.

Sweeps the six FC layers over batch 1..1024 and checks the two published
observations: a flat region for batch <= 16 and convergence toward the
perfect-pipelining asymptote 16/95 = 0.168.
"""

from __future__ import annotations

from repro.experiments.batch_sweep import ASYMPTOTE, fig7_batch_sensitivity
from repro.experiments.runner import run_design, workload_shapes
from repro.utils.plot import ascii_plot


def test_fig7_batch(benchmark, emit, settings):
    shapes = workload_shapes(settings)
    benchmark(run_design, "rasa-dmdb-wls", shapes["BERT-1"], settings)

    sweep = fig7_batch_sensitivity(settings)
    for name, series in sweep.series.items():
        flat = [series[b] for b in (1, 2, 4, 8, 16)]
        assert max(flat) - min(flat) < 1e-9, name      # observation 1
        assert abs(series[1024] - ASYMPTOTE) < 0.05, name  # observation 2
    plot = ascii_plot(
        {name: [series[b] for b in sweep.batches] for name, series in sweep.series.items()},
        x_labels=list(sweep.batches),
        height=12,
        y_min=0.0,
        title="normalized runtime vs batch (asymptote 16/95 = 0.168)",
    )
    emit(
        "Fig. 7 — batch-size sensitivity (RASA-DMDB-WLS)",
        sweep.render() + "\n\n" + plot,
    )
