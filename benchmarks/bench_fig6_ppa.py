"""E7 — Fig. 6: performance per area of the RASA-Data optimizations."""

from __future__ import annotations

from repro.engine.designs import DESIGNS
from repro.experiments.ppa_sweep import fig6_performance_per_area
from repro.physical.area import ArrayAreaModel


def test_fig6_ppa(benchmark, emit, settings):
    model = ArrayAreaModel()
    benchmark(model.array_area_mm2, DESIGNS["rasa-dmdb-wls"].config)

    sweep = fig6_performance_per_area(settings)
    avg = sweep.averages
    # Fig. 6's trend: DMDB-WLS ~ DB-WLS >> DM-WLBP (area deltas are small,
    # so PPA tracks the runtime ordering).
    assert avg["rasa-dmdb-wls"] > avg["rasa-dm-wlbp"]
    assert avg["rasa-db-wls"] > avg["rasa-dm-wlbp"]
    emit("Fig. 6 — performance per area (normalized)", sweep.render())
