"""Sweep-scaling perf trajectory: cold/warm sweep times per fidelity.

This bench is the recorded perf baseline the ROADMAP asked for: it times
cold (empty result cache) and warm (fully cached) sweeps of the table1 and
bert-full suites at the ``fast`` (vectorized), ``fast-ref`` (scalar
reference) and ``analytic`` fidelities and writes ``BENCH_sweep.json`` at
the repo root — one entry in the PR-over-PR perf trajectory (fields
documented in the README's "Perf trajectory" section).

Three assertions pin the PR's perf claims:

- the vectorized fast model runs the cold table1 grid >= 3x faster than
  the scalar ``fast-ref`` model (the shared program-generation memo is
  pre-warmed so neither side is charged for the common lowering work;
  decode cost stays inside the fast timing);
- the analytic tier runs the table1 grid >= 50x faster than the fast
  model on the same plan (measured in-process, cold caches both sides);
- the FastCoreModel port-selection micro-opt (1-port store special case,
  inlined 2-load-port min) changed *no* timing: both the scalar and the
  vectorized model still equal the pre-optimization reference values
  pinned below.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.cpu.fast import FastCoreModel
from repro.cpu.fastvec import FastVecCoreModel
from repro.engine.designs import DESIGNS, get_design
from repro.runtime import ResultCache, Session, SweepPlan
from repro.runtime.session import cached_program
from repro.utils.tables import format_table
from repro.workloads.codegen import generate_gemm_program
from repro.workloads.gemm import GemmShape

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_JSON = REPO_ROOT / "BENCH_sweep.json"

#: Fidelities the trajectory tracks (program memo pre-warmed; see above).
TIMED_FIDELITIES = ("fast", "fast-ref", "analytic")

#: Suites timed per fidelity: the Table I layers and the structurally
#: richest inference suite (head-batched attention shapes).
TIMED_SUITES = ("table1", "bert-full")

#: The in-sweep speedup floor the analytic tier must clear on table1.
#: Was 50x against the scalar fast model; the vectorized ``fast`` tier
#: legitimately narrowed the gap (~19x measured), so the floor tracks the
#: new denominator with headroom.
ANALYTIC_SPEEDUP_FLOOR = 8.0

#: The cold-sweep speedup floor the vectorized fast model must clear over
#: the scalar reference on table1 (measured ~5x; 3x leaves CI headroom).
VECTORIZED_SPEEDUP_FLOOR = 3.0

#: FastCoreModel reference results captured immediately *before* the
#: port-selection micro-opt (commit history: generic min-over-range scan
#: per instruction).  The optimization is legal only if timing is
#: bit-identical, so these pins are the before/after assertion.
MICRO_OPT_SHAPE = GemmShape(256, 256, 256, name="microopt-pin")
MICRO_OPT_PINS = {
    "baseline": {"cycles": 778339, "instructions": 6016, "engine_busy_cycles": 194560},
    "rasa-dmdb-wls": {"cycles": 131331, "instructions": 6016, "engine_busy_cycles": 32808},
}


def _suite_plan(suite: str, fidelity: str, settings) -> SweepPlan:
    return SweepPlan(
        designs=tuple(DESIGNS),
        suites=(suite,),
        scale=settings.scale,
        core=settings.core,
        codegen=settings.codegen,
        fidelity=fidelity,
    )


def _timed_run(session: Session, plan: SweepPlan):
    start = time.perf_counter()
    report = session.run(plan)
    return time.perf_counter() - start, report


def test_port_selection_micro_opt_timing_identical(emit):
    """Neither fast-model rewrite may move a single cycle off the pins."""
    rows = []
    for design_key, pins in MICRO_OPT_PINS.items():
        program = generate_gemm_program(MICRO_OPT_SHAPE)
        config = get_design(design_key).config
        scalar = FastCoreModel(engine=config).run(program)
        vector = FastVecCoreModel(engine=config).run(program)
        for field, pinned in pins.items():
            assert getattr(scalar, field) == pinned, (design_key, field)
            assert getattr(vector, field) == pinned, (design_key, field)
        rows.append((design_key, pins["cycles"], scalar.cycles, "identical"))
    emit(
        "FastCoreModel port-selection micro-opt (before/after pins, 256^3)",
        format_table(["design", "pre-opt cycles", "post-opt cycles", "timing"], rows),
    )


def test_sweep_scaling(emit, settings, tmp_path):
    """Time cold/warm suite sweeps per fidelity; write BENCH_sweep.json."""
    sweeps = {}
    rows = []
    for suite in TIMED_SUITES:
        per_fidelity = {}
        # Pre-warm the shared program memo: lowering GEMMs to instruction
        # streams is identical work for fast and fast-ref, so charging it
        # to whichever fidelity happens to run first would skew the
        # model-vs-model speedup row.  Decode stays inside the fast timing
        # (it is part of the vectorized backend).
        for job in _suite_plan(suite, "fast", settings).iter_jobs():
            cached_program(job.shape, job.codegen)
        for fidelity in TIMED_FIDELITIES:
            plan = _suite_plan(suite, fidelity, settings)
            cache = ResultCache(tmp_path / f"{suite}-{fidelity}")
            with Session(cache=cache, workers=1) as session:
                cold_s, cold = _timed_run(session, plan)
                warm_s, warm = _timed_run(session, plan)
            assert warm.simulated == 0  # warm run is pure cache hits
            assert warm.results == cold.results
            per_fidelity[fidelity] = {
                "cold_s": round(cold_s, 6),
                "warm_s": round(warm_s, 6),
                "jobs": plan.job_count(),
                "distinct_points": cold.distinct_points,
                "simulated_cold": cold.simulated,
                "cache_hits_warm": warm.cache_hits,
            }
            rows.append(
                (
                    suite,
                    fidelity,
                    plan.job_count(),
                    cold.distinct_points,
                    f"{cold_s:.3f}s",
                    f"{warm_s:.3f}s",
                )
            )
        analytic_speedup = (
            per_fidelity["fast"]["cold_s"] / per_fidelity["analytic"]["cold_s"]
        )
        vectorized_speedup = (
            per_fidelity["fast-ref"]["cold_s"] / per_fidelity["fast"]["cold_s"]
        )
        sweeps[suite] = {
            "fidelities": per_fidelity,
            "analytic_speedup_cold": round(analytic_speedup, 2),
            "vectorized_speedup_cold": round(vectorized_speedup, 2),
        }

    assert sweeps["table1"]["analytic_speedup_cold"] >= ANALYTIC_SPEEDUP_FLOOR, (
        "analytic tier lost its table1 speedup floor: "
        f"{sweeps['table1']['analytic_speedup_cold']:.1f}x < "
        f"{ANALYTIC_SPEEDUP_FLOOR:.0f}x"
    )
    assert (
        sweeps["table1"]["vectorized_speedup_cold"] >= VECTORIZED_SPEEDUP_FLOOR
    ), (
        "vectorized fast model lost its table1 speedup floor over fast-ref: "
        f"{sweeps['table1']['vectorized_speedup_cold']:.1f}x < "
        f"{VECTORIZED_SPEEDUP_FLOOR:.0f}x"
    )

    record = {
        "schema": 1,
        "generated_by": "benchmarks/bench_sweep_scaling.py",
        "scale": settings.scale,
        "workers": 1,
        "designs": len(DESIGNS),
        "sweeps": sweeps,
        "micro_opt_pins": {
            "shape": list(MICRO_OPT_SHAPE.dims),
            "results": MICRO_OPT_PINS,
            "note": "fast-model port-selection micro-opt is timing-identical",
        },
    }
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")

    emit(
        "Sweep scaling (cold = empty cache, warm = fully cached; workers=1)",
        format_table(
            ["suite", "fidelity", "jobs", "distinct", "cold", "warm"], rows
        )
        + "\n"
        + "\n".join(
            f"{suite}: vectorized fast "
            f"{data['vectorized_speedup_cold']:.1f}x faster than fast-ref, "
            f"analytic {data['analytic_speedup_cold']:.1f}x faster than fast "
            "(cold)"
            for suite, data in sweeps.items()
        )
        + f"\nwrote {BENCH_JSON}",
    )
