"""E15 — extension: whole-model GEMM suites, not just three layers apiece.

Simulates the complete GEMM portion of every registered workload suite
(:mod:`repro.workloads.suites`) and reports the end-to-end normalized
runtime per model.  Because the paper's per-layer result is
workload-independent, the whole-model numbers should land at the same
~0.17-0.21 the Fig. 5 geomean shows — this bench verifies that the
three-layer sample was representative.

The bench is a thin client of the declarative API: one
:class:`repro.runtime.SweepPlan` per suite, run through a
:class:`repro.runtime.Session`.  Each suite simulates its *distinct*
shapes once per design and expands the results by occurrence count, so the
full 12-layer BERT-base stack costs 3 simulations per design instead
of 72.
"""

from __future__ import annotations

from repro.runtime import Session, SweepPlan, cached_program, resolve_backend
from repro.utils.tables import format_table
from repro.workloads.suites import get_suite

MODEL_SUITES = (
    "resnet50", "bert-base", "bert-full", "dlrm", "training", "resnet50-train"
)

DESIGN_KEYS = ("baseline", "rasa-dmdb-wls")


def test_full_models(benchmark, emit, settings):
    session = Session(workers=1)  # small grids; cache-free for honest timing
    rows = []
    sample = None
    for name in MODEL_SUITES:
        # Doubled scale keeps the bench quick; per-layer normalized results
        # are batch-insensitive past one tile row block.
        suite = get_suite(name, scale=settings.scale * 2)
        if sample is None:
            sample = cached_program(suite.gemms[0][1], settings.codegen)
        plan = SweepPlan(
            designs=DESIGN_KEYS,
            suites=(name,),
            scale=settings.scale * 2,
            core=settings.core,
            codegen=settings.codegen,
        )
        totals = session.run(plan).suite_totals()[name]
        base, best = totals["baseline"], totals["rasa-dmdb-wls"]
        norm = best.normalized_to(base)
        rows.append(
            (
                name,
                base.gemm_count,
                base.simulations,
                base.cycles,
                best.cycles,
                f"{norm:.3f}",
            )
        )
        assert norm < 0.25, name

    backend = resolve_backend("rasa-dmdb-wls", core=settings.core)
    benchmark(backend.simulate, sample)
    emit(
        "Extension E15 — whole-model GEMM suites (RASA-DMDB-WLS vs baseline)",
        format_table(
            ["model", "GEMMs", "distinct", "baseline cyc", "DMDB-WLS cyc", "normalized"],
            rows,
        ),
    )
