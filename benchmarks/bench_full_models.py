"""E15 — extension: whole-model GEMM suites, not just three layers apiece.

Simulates the complete GEMM portion of ResNet-50, BERT-base (one encoder
layer — all layers are identical) and the DLRM MLPs, and reports the
end-to-end normalized runtime per model.  Because the paper's per-layer
result is workload-independent, the whole-model numbers should land at the
same ~0.17-0.21 the Fig. 5 geomean shows — this bench verifies that the
three-layer sample was representative.

Each model's layer suite is one :class:`repro.runtime.SweepRunner` grid
(two designs x all layers) fanned out through the backend registry.
"""

from __future__ import annotations

from repro.runtime import SweepRunner, resolve_backend
from repro.runtime.sweep import cached_program
from repro.utils.tables import format_table
from repro.workloads.models import bert_encoder_gemms, dlrm_gemms, resnet50_gemms

MODELS = {
    # Reduced batch and one encoder layer keep the bench quick; per-layer
    # normalized results are batch-insensitive past one tile row block.
    "resnet50 (convs)": lambda scale: resnet50_gemms(batch=1),
    "bert-base (1 encoder)": lambda scale: bert_encoder_gemms(layers=1),
    "dlrm (MLPs)": lambda scale: dlrm_gemms(batch=128),
}

DESIGN_KEYS = ("baseline", "rasa-dmdb-wls")


def test_full_models(benchmark, emit, settings):
    runner = SweepRunner(workers=1)  # small grids; cache-free for honest timing
    rows = []
    sample = None
    for model_name, factory in MODELS.items():
        shapes = {
            name: shape.scaled(settings.scale * 2)
            for name, shape in factory(settings.scale).items()
        }
        if sample is None:
            sample = cached_program(next(iter(shapes.values())), settings.codegen)
        grid = runner.run_grid(
            DESIGN_KEYS, shapes, core=settings.core, codegen=settings.codegen
        )
        totals = {
            key: sum(grid[name][key].cycles for name in shapes)
            for key in DESIGN_KEYS
        }
        norm = totals["rasa-dmdb-wls"] / totals["baseline"]
        rows.append(
            (
                model_name,
                len(shapes),
                totals["baseline"],
                totals["rasa-dmdb-wls"],
                f"{norm:.3f}",
            )
        )
        assert norm < 0.25, model_name

    backend = resolve_backend("rasa-dmdb-wls", core=settings.core)
    benchmark(backend.simulate, sample)
    emit(
        "Extension E15 — whole-model GEMM suites (RASA-DMDB-WLS vs baseline)",
        format_table(
            ["model", "GEMM layers", "baseline cyc", "DMDB-WLS cyc", "normalized"],
            rows,
        ),
    )
