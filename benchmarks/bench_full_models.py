"""E15 — extension: whole-model GEMM suites, not just three layers apiece.

Simulates the complete GEMM portion of ResNet-50, BERT-base (one encoder
layer — all layers are identical) and the DLRM MLPs, and reports the
end-to-end normalized runtime per model.  Because the paper's per-layer
result is workload-independent, the whole-model numbers should land at the
same ~0.17-0.21 the Fig. 5 geomean shows — this bench verifies that the
three-layer sample was representative.
"""

from __future__ import annotations

from repro.cpu.fast import FastCoreModel
from repro.engine.designs import DESIGNS
from repro.experiments.runner import _cached_program
from repro.utils.tables import format_table
from repro.workloads.models import bert_encoder_gemms, dlrm_gemms, resnet50_gemms

MODELS = {
    # Reduced batch and one encoder layer keep the bench quick; per-layer
    # normalized results are batch-insensitive past one tile row block.
    "resnet50 (convs)": lambda scale: resnet50_gemms(batch=1),
    "bert-base (1 encoder)": lambda scale: bert_encoder_gemms(layers=1),
    "dlrm (MLPs)": lambda scale: dlrm_gemms(batch=128),
}


def test_full_models(benchmark, emit, settings):
    rows = []
    sample = None
    for model_name, factory in MODELS.items():
        totals = {"baseline": 0, "rasa-dmdb-wls": 0}
        layer_count = 0
        for shape in factory(settings.scale).values():
            scaled = shape.scaled(settings.scale * 2)
            program = _cached_program(scaled, settings.codegen)
            if sample is None:
                sample = program
            for key in totals:
                totals[key] += FastCoreModel(engine=DESIGNS[key].config).run(program).cycles
            layer_count += 1
        norm = totals["rasa-dmdb-wls"] / totals["baseline"]
        rows.append(
            (model_name, layer_count, totals["baseline"], totals["rasa-dmdb-wls"], f"{norm:.3f}")
        )
        assert norm < 0.25, model_name

    benchmark(FastCoreModel(engine=DESIGNS["rasa-dmdb-wls"].config).run, sample)
    emit(
        "Extension E15 — whole-model GEMM suites (RASA-DMDB-WLS vs baseline)",
        format_table(
            ["model", "GEMM layers", "baseline cyc", "DMDB-WLS cyc", "normalized"],
            rows,
        ),
    )
