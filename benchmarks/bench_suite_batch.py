"""E16 — per-model batch curves: cross-batch dedup vs per-batch suite runs.

A batch-axis :class:`repro.runtime.SweepPlan` submits every
(suite, batch, design) point through one flat job list, so tile-padded key
dedup collapses batches that lower to identical streams.  This bench runs
the DLRM MLPs over a batch axis whose low end sits below the scaled
one-register-block floor (those batches are one point), measures the
plan-execution path, and asserts every curve point is bit-identical to a
standalone single-batch suite plan oracle.
"""

from __future__ import annotations

from repro.runtime import Session, SweepPlan
from repro.utils.tables import format_table

DESIGN_KEYS = ("baseline", "rasa-dmdb-wls")
BATCHES = (1, 16, 256, 1024)
SUITE = "dlrm"


def test_suite_batch_curves(benchmark, emit, settings):
    session = Session(workers=1)  # cache-free: honest simulation counts
    plan = SweepPlan(
        designs=DESIGN_KEYS,
        suites=(SUITE,),
        batches=BATCHES,
        scale=settings.scale,
        core=settings.core,
        codegen=settings.codegen,
    )

    def run_curves():
        return session.run(plan).batch_curves()[SUITE]

    curves = run_curves()

    # Independent oracle: each batch rebuilt and run as its own single-batch
    # plan, without the cross-batch job list, so a dedup bug cannot corrupt
    # both sides.
    for batch in BATCHES:
        oracle = Session(workers=1).run(
            SweepPlan(
                designs=DESIGN_KEYS,
                suites=(SUITE,),
                batch=batch,
                scale=settings.scale,
                core=settings.core,
                codegen=settings.codegen,
            )
        ).suite_totals()[SUITE]
        for key in DESIGN_KEYS:
            point = curves[key].totals_by_batch()[batch]
            assert point.cycles == oracle[key].cycles, (key, batch)
            assert point.instructions == oracle[key].instructions, (key, batch)

    normalized = curves["rasa-dmdb-wls"].normalized_to(curves["baseline"])
    assert all(0.0 < v < 1.0 for v in normalized.values())

    benchmark(run_curves)
    rows = [
        (
            batch,
            curves["baseline"].totals_by_batch()[batch].cycles,
            curves["rasa-dmdb-wls"].totals_by_batch()[batch].cycles,
            f"{normalized[batch]:.3f}",
        )
        for batch in BATCHES
    ]
    emit(
        "E16 — DLRM batch curve (RASA-DMDB-WLS vs baseline)",
        format_table(
            ["batch", "baseline cycles", "rasa-dmdb-wls cycles", "normalized"],
            rows,
        ),
    )
