"""E6 — Fig. 5: runtime of every RASA design normalized to the baseline.

Regenerates the paper's headline figure: 8 designs x 9 Table I layers.
The benchmark timer measures one representative design-on-workload
simulation; the printed table is the full grid.
"""

from __future__ import annotations

from repro.experiments.runner import run_design, workload_shapes
from repro.experiments.runtime_sweep import fig5_normalized_runtime


def test_fig5_runtime(benchmark, emit, settings):
    shapes = workload_shapes(settings)
    benchmark(run_design, "rasa-dmdb-wls", shapes["DLRM-2"], settings)

    sweep = fig5_normalized_runtime(settings)
    # The paper's qualitative claims must hold in the regenerated figure.
    avg = sweep.averages
    assert avg["rasa-pipe"] < 1.0
    assert avg["rasa-wlbp"] < avg["rasa-pipe"]
    assert avg["rasa-dm-wlbp"] < avg["rasa-wlbp"]
    assert avg["rasa-db-wls"] < avg["rasa-dm-wlbp"]
    assert abs(avg["rasa-dmdb-wls"] - avg["rasa-db-wls"]) < 0.05  # "similar"
    emit("Fig. 5 — normalized runtime (8 designs x 9 layers)", sweep.render())
