"""E6 — Fig. 5: runtime of every RASA design normalized to the baseline.

Regenerates the paper's headline figure: 8 designs x 9 Table I layers.
The grid goes through the :mod:`repro.runtime` layer — the benchmark timer
measures one representative backend simulation (registry-resolved, no
caching) while the printed table is the full cache-backed sweep.
"""

from __future__ import annotations

from repro.experiments.runner import workload_shapes
from repro.experiments.runtime_sweep import fig5_normalized_runtime
from repro.runtime import resolve_backend
from repro.runtime.session import cached_program


def test_fig5_runtime(benchmark, emit, settings):
    shapes = workload_shapes(settings)
    program = cached_program(shapes["DLRM-2"], settings.codegen)
    backend = resolve_backend("rasa-dmdb-wls", core=settings.core)
    benchmark(backend.simulate, program)

    sweep = fig5_normalized_runtime(settings)
    # The paper's qualitative claims must hold in the regenerated figure.
    avg = sweep.averages
    assert avg["rasa-pipe"] < 1.0
    assert avg["rasa-wlbp"] < avg["rasa-pipe"]
    assert avg["rasa-dm-wlbp"] < avg["rasa-wlbp"]
    assert avg["rasa-db-wls"] < avg["rasa-dm-wlbp"]
    assert abs(avg["rasa-dmdb-wls"] - avg["rasa-db-wls"]) < 0.05  # "similar"
    emit("Fig. 5 — normalized runtime (8 designs x 9 layers)", sweep.render())
