"""Textual assembler/disassembler for RASA programs (``.rasa`` syntax).

The syntax matches the paper's Algorithm 1 listing::

    rasa_tl treg0, ptr[0x1000]
    rasa_tl treg4, ptr[0x2000, stride=128]
    rasa_mm treg0, treg6, treg4
    rasa_ts ptr[0x1000], treg0
    add r0, r0
    branch

Comments start with ``//`` or ``#``; blank lines are ignored.  Round-tripping
``assemble(disassemble(p))`` reproduces the program exactly (minus tags).
"""

from __future__ import annotations

import re
from typing import List, Tuple

from repro.errors import AssemblerError
from repro.isa.instructions import (
    Instruction,
    ScalarReg,
    TileReg,
    rasa_mm,
    rasa_tl,
    rasa_ts,
    scalar_op,
)
from repro.isa.opcodes import Opcode
from repro.isa.program import Program

_PTR_RE = re.compile(
    r"ptr\[\s*(?P<addr>0x[0-9a-fA-F]+|\d+)\s*(?:,\s*stride\s*=\s*(?P<stride>\d+)\s*)?\]"
)
_TREG_RE = re.compile(r"^treg(\d+)$")
_SREG_RE = re.compile(r"^r(\d+)$")

_SCALAR_OPCODES = {
    op.value: op
    for op in (Opcode.ADD, Opcode.MUL, Opcode.MOV, Opcode.CMP, Opcode.BRANCH, Opcode.NOP)
}


def _parse_treg(token: str, line_no: int) -> TileReg:
    match = _TREG_RE.match(token)
    if not match:
        raise AssemblerError(f"line {line_no}: expected tile register, got {token!r}")
    return TileReg(int(match.group(1)))


def _parse_sreg(token: str, line_no: int) -> ScalarReg:
    match = _SREG_RE.match(token)
    if not match:
        raise AssemblerError(f"line {line_no}: expected scalar register, got {token!r}")
    return ScalarReg(int(match.group(1)))


def _parse_ptr(token: str, line_no: int) -> Tuple[int, int]:
    match = _PTR_RE.fullmatch(token.strip())
    if not match:
        raise AssemblerError(f"line {line_no}: expected ptr[...] operand, got {token!r}")
    address = int(match.group("addr"), 0)
    stride = int(match.group("stride") or 64)
    return address, stride


def _split_operands(rest: str) -> List[str]:
    # Split on commas that are not inside ptr[...] brackets.
    parts: List[str] = []
    depth = 0
    current = []
    for ch in rest:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def assemble(text: str, name: str = "assembled") -> Program:
    """Parse ``.rasa`` assembly text into a :class:`Program`."""
    instructions: List[Instruction] = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("//", 1)[0].split("#", 1)[0].strip()
        if not line:
            continue
        mnemonic, _, rest = line.partition(" ")
        operands = _split_operands(rest) if rest.strip() else []
        if mnemonic == Opcode.RASA_TL.value:
            if len(operands) != 2:
                raise AssemblerError(f"line {line_no}: rasa_tl needs 2 operands")
            dst = _parse_treg(operands[0], line_no)
            address, stride = _parse_ptr(operands[1], line_no)
            instructions.append(rasa_tl(dst, address, stride))
        elif mnemonic == Opcode.RASA_TS.value:
            if len(operands) != 2:
                raise AssemblerError(f"line {line_no}: rasa_ts needs 2 operands")
            address, stride = _parse_ptr(operands[0], line_no)
            src = _parse_treg(operands[1], line_no)
            instructions.append(rasa_ts(address, src, stride))
        elif mnemonic == Opcode.RASA_MM.value:
            if len(operands) != 3:
                raise AssemblerError(f"line {line_no}: rasa_mm needs 3 operands")
            c, a, b = (_parse_treg(tok, line_no) for tok in operands)
            instructions.append(rasa_mm(c, a, b))
        elif mnemonic in _SCALAR_OPCODES:
            opcode = _SCALAR_OPCODES[mnemonic]
            if opcode in (Opcode.BRANCH, Opcode.NOP):
                instructions.append(scalar_op(opcode))
            else:
                if not operands:
                    raise AssemblerError(f"line {line_no}: {mnemonic} needs operands")
                dst = _parse_sreg(operands[0], line_no)
                srcs = tuple(_parse_sreg(tok, line_no) for tok in operands[1:])
                instructions.append(scalar_op(opcode, dst=dst, srcs=srcs))
        else:
            raise AssemblerError(f"line {line_no}: unknown mnemonic {mnemonic!r}")
    return Program(instructions, name=name)


def disassemble(program: Program) -> str:
    """Render a program back to ``.rasa`` text."""
    lines = []
    for inst in program:
        if inst.opcode is Opcode.RASA_TL:
            assert inst.mem is not None  # _validate invariant
            lines.append(f"rasa_tl {inst.dst}, ptr[0x{inst.mem.address:x}"
                         + (f", stride={inst.mem.stride}]" if inst.mem.stride != 64 else "]"))
        elif inst.opcode is Opcode.RASA_TS:
            assert inst.mem is not None  # _validate invariant
            lines.append(f"rasa_ts ptr[0x{inst.mem.address:x}"
                         + (f", stride={inst.mem.stride}]" if inst.mem.stride != 64 else "]")
                         + f", {inst.srcs[0]}")
        else:
            lines.append(str(inst))
    return "\n".join(lines) + "\n"
