"""The RASA instruction set (AMX-like tile ISA plus minimal scalar ops).

The matrix engine is driven by three tile instructions (Sec. IV-A):

- ``rasa_tl treg, [addr]``   — load a 1 KB tile from memory into a tile register
- ``rasa_ts [addr], treg``   — store a tile register back to memory
- ``rasa_mm tc, ta, tb``     — ``C(16x16 f32) += A(16x32 bf16) @ B(32x16 bf16)``

Scalar ALU/branch opcodes model the loop overhead LIBXSMM-generated kernels
carry around the tile instructions, so the CPU model sees realistic streams.
"""

from repro.isa.opcodes import Opcode
from repro.isa.instructions import (
    Instruction,
    MemOperand,
    ScalarReg,
    TileReg,
    scalar_op,
    rasa_mm,
    rasa_tl,
    rasa_ts,
)
from repro.isa.program import Program, ProgramStats
from repro.isa.builder import ProgramBuilder
from repro.isa.assembler import assemble, disassemble
from repro.isa.trace import load_trace, save_trace

__all__ = [
    "Opcode",
    "Instruction",
    "TileReg",
    "ScalarReg",
    "MemOperand",
    "rasa_tl",
    "rasa_ts",
    "rasa_mm",
    "scalar_op",
    "Program",
    "ProgramStats",
    "ProgramBuilder",
    "assemble",
    "disassemble",
    "load_trace",
    "save_trace",
]
