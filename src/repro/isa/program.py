"""Program container: an ordered instruction stream plus summary statistics."""

from __future__ import annotations

import dataclasses
from typing import Iterable, Iterator, List, Union, overload

from repro.isa.instructions import Instruction
from repro.isa.opcodes import Opcode


@dataclasses.dataclass(frozen=True)
class ProgramStats:
    """Instruction-mix statistics of a program."""

    total: int
    tile_loads: int
    tile_stores: int
    matmuls: int
    scalars: int

    @property
    def tile_fraction(self) -> float:
        """Fraction of instructions that are tile instructions."""
        if not self.total:
            return 0.0
        return (self.tile_loads + self.tile_stores + self.matmuls) / self.total


class Program:
    """An ordered sequence of :class:`Instruction` — one dynamic trace.

    Programs are what the code generator emits and what both CPU models
    consume.  They behave like immutable sequences; use
    :class:`repro.isa.builder.ProgramBuilder` to construct them.
    """

    def __init__(self, instructions: Iterable[Instruction], name: str = "program") -> None:
        self._instructions: List[Instruction] = list(instructions)
        self.name = name

    def __len__(self) -> int:
        return len(self._instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    @overload
    def __getitem__(self, index: int) -> Instruction: ...

    @overload
    def __getitem__(self, index: slice) -> "Program": ...

    def __getitem__(self, index: Union[int, slice]) -> Union[Instruction, "Program"]:
        if isinstance(index, slice):
            return Program(
                self._instructions[index],
                name=f"{self.name}[{index.start}:{index.stop}]",
            )
        return self._instructions[index]

    def __add__(self, other: "Program") -> "Program":
        return Program(
            list(self._instructions) + list(other._instructions),
            name=f"{self.name}+{other.name}",
        )

    @property
    def stats(self) -> ProgramStats:
        """Compute the instruction-mix statistics."""
        loads = stores = matmuls = scalars = 0
        for inst in self._instructions:
            if inst.opcode is Opcode.RASA_TL:
                loads += 1
            elif inst.opcode is Opcode.RASA_TS:
                stores += 1
            elif inst.opcode is Opcode.RASA_MM:
                matmuls += 1
            else:
                scalars += 1
        return ProgramStats(
            total=len(self._instructions),
            tile_loads=loads,
            tile_stores=stores,
            matmuls=matmuls,
            scalars=scalars,
        )

    def matmuls(self) -> List[Instruction]:
        """Return just the ``rasa_mm`` instructions, in program order."""
        return [i for i in self._instructions if i.opcode is Opcode.RASA_MM]

    def weight_reuse_fraction(self) -> float:
        """Fraction of ``rasa_mm`` whose B register repeats the previous mm's B
        with no intervening write to it — the upper bound on WLBP bypasses.
        """
        mms_seen = 0
        reuses = 0
        last_b = None
        dirty = True
        for inst in self._instructions:
            if inst.opcode is Opcode.RASA_MM:
                if mms_seen and inst.mm_b == last_b and not dirty:
                    reuses += 1
                mms_seen += 1
                last_b = inst.mm_b
                dirty = False
            elif last_b is not None and last_b in inst.tile_writes:
                dirty = True
        if not mms_seen:
            return 0.0
        return reuses / mms_seen

    def __repr__(self) -> str:
        s = self.stats
        return (
            f"Program({self.name!r}, {s.total} insts: {s.matmuls} mm, "
            f"{s.tile_loads} tl, {s.tile_stores} ts, {s.scalars} scalar)"
        )
