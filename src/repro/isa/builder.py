"""ProgramBuilder: a fluent emission API for RASA instruction streams.

The builder mirrors how Algorithm 1 in the paper is written — load C tiles,
load A/B tiles, issue ``rasa_mm``s, store C tiles — and optionally interleaves
scalar loop-overhead instructions the way LIBXSMM-generated kernels do.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import IsaError
from repro.isa.instructions import (
    Instruction,
    ScalarReg,
    TileReg,
    rasa_mm,
    rasa_tl,
    rasa_ts,
    scalar_op,
)
from repro.isa.opcodes import Opcode
from repro.isa.program import Program


class ProgramBuilder:
    """Incrementally build a :class:`Program`.

    Example (Algorithm 1 from the paper)::

        b = ProgramBuilder("algorithm1")
        tregs = [TileReg(i) for i in range(8)]
        for i, addr in enumerate(c_addrs):            # Step 1: load C tiles
            b.tl(tregs[i], addr)
        b.tl(tregs[4], b0).tl(tregs[6], a0)           # Step 2: compute
        b.mm(tregs[0], tregs[6], tregs[4])
        ...
        for i, addr in enumerate(c_addrs):            # Step 3: store C tiles
            b.ts(addr, tregs[i])
        program = b.build()
    """

    def __init__(self, name: str = "program") -> None:
        self.name = name
        self._instructions: List[Instruction] = []

    # -- tile instructions ----------------------------------------------------

    def tl(self, dst: TileReg, address: int, stride: int = 64, tag: str = "") -> "ProgramBuilder":
        """Emit a tile load."""
        self._instructions.append(rasa_tl(dst, address, stride, tag=tag))
        return self

    def ts(self, address: int, src: TileReg, stride: int = 64, tag: str = "") -> "ProgramBuilder":
        """Emit a tile store."""
        self._instructions.append(rasa_ts(address, src, stride, tag=tag))
        return self

    def mm(self, c: TileReg, a: TileReg, b: TileReg, tag: str = "") -> "ProgramBuilder":
        """Emit a matmul-accumulate."""
        self._instructions.append(rasa_mm(c, a, b, tag=tag))
        return self

    # -- scalar loop overhead ---------------------------------------------------

    def scalar(
        self,
        opcode: Opcode,
        dst: Optional[ScalarReg] = None,
        srcs: tuple = (),
        tag: str = "",
    ) -> "ProgramBuilder":
        """Emit one scalar instruction."""
        self._instructions.append(scalar_op(opcode, dst=dst, srcs=srcs, tag=tag))
        return self

    def loop_overhead(self, count: int, tag: str = "loop") -> "ProgramBuilder":
        """Emit ``count`` scalar instructions modelling address/loop arithmetic.

        The mix (add, add, cmp, branch, ...) approximates the pointer-bump and
        loop-test code LIBXSMM emits between tile instructions.
        """
        if count < 0:
            raise IsaError(f"loop_overhead count must be >= 0, got {count}")
        pattern = (Opcode.ADD, Opcode.ADD, Opcode.CMP, Opcode.BRANCH)
        counter = ScalarReg(0)
        for i in range(count):
            op = pattern[i % len(pattern)]
            if op is Opcode.BRANCH:
                self.scalar(op, dst=None, srcs=(), tag=tag)
            elif op is Opcode.CMP:
                self.scalar(op, dst=ScalarReg(1), srcs=(counter,), tag=tag)
            else:
                self.scalar(op, dst=counter, srcs=(counter,), tag=tag)
        return self

    # -- finalization ----------------------------------------------------------

    def extend(self, program: Program) -> "ProgramBuilder":
        """Append all instructions of an existing program."""
        self._instructions.extend(program)
        return self

    def __len__(self) -> int:
        return len(self._instructions)

    def build(self) -> Program:
        """Finalize into an immutable :class:`Program`."""
        return Program(self._instructions, name=self.name)
