"""Opcode definitions for the RASA ISA."""

from __future__ import annotations

import enum


class Opcode(enum.Enum):
    """Every instruction kind the simulators understand.

    The three RASA tile opcodes mirror Intel AMX's tileload/tilestore/tdp*
    family; the scalar opcodes are the minimal set needed to model kernel
    loop overhead (address arithmetic, loop counters, branches).
    """

    RASA_TL = "rasa_tl"  # tile load: treg <- memory
    RASA_TS = "rasa_ts"  # tile store: memory <- treg
    RASA_MM = "rasa_mm"  # tile matmul-accumulate on the systolic engine
    ADD = "add"          # scalar ALU
    MUL = "mul"          # scalar multiply (address scaling)
    MOV = "mov"          # scalar move / immediate load
    CMP = "cmp"          # compare, writes a flag register
    BRANCH = "branch"    # conditional branch (modelled as always-predicted)
    NOP = "nop"

    @property
    def is_tile(self) -> bool:
        """True for the three tile-register instructions."""
        return self in (Opcode.RASA_TL, Opcode.RASA_TS, Opcode.RASA_MM)

    @property
    def is_memory(self) -> bool:
        """True for instructions that touch memory."""
        return self in (Opcode.RASA_TL, Opcode.RASA_TS)

    @property
    def is_matmul(self) -> bool:
        return self is Opcode.RASA_MM

    @property
    def is_scalar(self) -> bool:
        return not self.is_tile
