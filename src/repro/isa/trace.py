"""Trace persistence: save/load dynamic instruction streams as JSONL.

The paper collected dynamic traces with Intel SDE and replayed them in
MacSim.  We substitute a JSONL trace format: one instruction per line, enough
to round-trip any :class:`repro.isa.program.Program`.  This lets long
code-generation runs be cached and shared between benchmark invocations.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.errors import IsaError
from repro.isa.instructions import (
    Instruction,
    ScalarReg,
    TileReg,
    rasa_mm,
    rasa_tl,
    rasa_ts,
    scalar_op,
)
from repro.isa.opcodes import Opcode
from repro.isa.program import Program


def _inst_to_record(inst: Instruction) -> dict:
    record: dict = {"op": inst.opcode.value}
    if inst.tag:
        record["tag"] = inst.tag
    if inst.opcode is Opcode.RASA_TL:
        assert inst.dst is not None and inst.mem is not None  # _validate invariant
        record.update(dst=inst.dst.index, addr=inst.mem.address, stride=inst.mem.stride)
    elif inst.opcode is Opcode.RASA_TS:
        assert inst.mem is not None  # _validate invariant
        record.update(src=inst.srcs[0].index, addr=inst.mem.address, stride=inst.mem.stride)
    elif inst.opcode is Opcode.RASA_MM:
        c, a, b = inst.srcs
        record.update(c=c.index, a=a.index, b=b.index)
    else:
        if inst.dst is not None:
            record["dst"] = inst.dst.index
        if inst.srcs:
            record["srcs"] = [s.index for s in inst.srcs]
    return record


def _record_to_inst(record: dict, line_no: int) -> Instruction:
    try:
        opcode = Opcode(record["op"])
    except (KeyError, ValueError) as exc:
        raise IsaError(f"trace line {line_no}: bad opcode: {exc}") from exc
    tag = record.get("tag", "")
    if opcode is Opcode.RASA_TL:
        return rasa_tl(TileReg(record["dst"]), record["addr"], record.get("stride", 64), tag=tag)
    if opcode is Opcode.RASA_TS:
        return rasa_ts(record["addr"], TileReg(record["src"]), record.get("stride", 64), tag=tag)
    if opcode is Opcode.RASA_MM:
        return rasa_mm(TileReg(record["c"]), TileReg(record["a"]), TileReg(record["b"]), tag=tag)
    dst = ScalarReg(record["dst"]) if "dst" in record else None
    srcs = tuple(ScalarReg(i) for i in record.get("srcs", ()))
    return scalar_op(opcode, dst=dst, srcs=srcs, tag=tag)


def save_trace(program: Program, path: Union[str, Path]) -> None:
    """Write a program to ``path`` as JSONL (one instruction per line)."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps({"meta": {"name": program.name, "count": len(program)}}) + "\n")
        for inst in program:
            handle.write(json.dumps(_inst_to_record(inst)) + "\n")


def load_trace(path: Union[str, Path]) -> Program:
    """Read a JSONL trace back into a :class:`Program`."""
    path = Path(path)
    instructions = []
    name = path.stem
    with path.open("r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if "meta" in record:
                name = record["meta"].get("name", name)
                continue
            instructions.append(_record_to_inst(record, line_no))
    return Program(instructions, name=name)
