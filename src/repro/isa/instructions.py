"""Instruction and operand model for the RASA ISA.

Instructions are small immutable dataclasses.  Register operands are typed
(:class:`TileReg` vs :class:`ScalarReg`) so the renamer and the engine can
tell tile dataflow from scalar dataflow without string parsing.

Dependency convention (used by both CPU models):

- ``rasa_tl  t, [m]``  writes ``t``          (reads nothing tile-wise)
- ``rasa_ts  [m], t``  reads ``t``
- ``rasa_mm  c, a, b`` reads ``c, a, b`` and writes ``c`` (accumulation)
- scalar ops read ``srcs`` and write ``dst``
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple, Union, cast

from repro.errors import IsaError
from repro.isa.opcodes import Opcode

#: Number of architectural tile registers (Intel-AMX-like, Sec. IV-A).
NUM_TILE_REGS = 8
#: Number of architectural scalar registers modelled for loop overhead.
NUM_SCALAR_REGS = 16


@dataclasses.dataclass(frozen=True, order=True)
class TileReg:
    """An architectural tile register ``treg0..treg7``."""

    index: int

    def __post_init__(self) -> None:
        if not 0 <= self.index < NUM_TILE_REGS:
            raise IsaError(f"tile register index {self.index} out of range")

    def __str__(self) -> str:
        return f"treg{self.index}"


@dataclasses.dataclass(frozen=True, order=True)
class ScalarReg:
    """An architectural scalar register ``r0..r15``."""

    index: int

    def __post_init__(self) -> None:
        if not 0 <= self.index < NUM_SCALAR_REGS:
            raise IsaError(f"scalar register index {self.index} out of range")

    def __str__(self) -> str:
        return f"r{self.index}"


#: Either register kind — the static type of ``Instruction.dst``/``srcs``
#: (both expose ``.index``; :meth:`Instruction._validate` pins the concrete
#: kind per opcode).
Reg = Union[TileReg, ScalarReg]


@dataclasses.dataclass(frozen=True)
class MemOperand:
    """A tile memory operand: base address plus row stride (Sec. II-B).

    A tile in memory is up to 16 chunks of up to 64 B separated by a fixed
    stride; ``address`` is the byte address of row 0 and ``stride`` the byte
    distance between consecutive rows.
    """

    address: int
    stride: int = 64

    def __post_init__(self) -> None:
        if self.address < 0:
            raise IsaError(f"negative tile address {self.address}")
        if self.stride <= 0:
            raise IsaError(f"tile stride must be positive, got {self.stride}")

    def __str__(self) -> str:
        if self.stride == 64:
            return f"[0x{self.address:x}]"
        return f"[0x{self.address:x}, stride={self.stride}]"


@dataclasses.dataclass(frozen=True)
class Instruction:
    """One decoded instruction.

    Attributes:
        opcode: the instruction kind.
        dst: tile or scalar destination register (None for stores/branches).
        srcs: source registers in ISA order.  For ``rasa_mm`` this is
            ``(C, A, B)`` — note C is both source and destination.
        mem: memory operand for ``rasa_tl``/``rasa_ts``.
        tag: free-form annotation from the code generator (e.g. which tile of
            which fold this instruction handles); used for debugging and for
            reuse-distance analysis, never by the simulators' semantics.
    """

    opcode: Opcode
    dst: Optional[Reg] = None
    srcs: Tuple[Reg, ...] = ()
    mem: Optional[MemOperand] = None
    tag: str = ""

    def __post_init__(self) -> None:
        self._validate()

    def _validate(self) -> None:
        op = self.opcode
        if op is Opcode.RASA_TL:
            if not isinstance(self.dst, TileReg) or self.mem is None or self.srcs:
                raise IsaError(f"rasa_tl requires a tile dst and a mem operand: {self}")
        elif op is Opcode.RASA_TS:
            if self.dst is not None or self.mem is None:
                raise IsaError(f"rasa_ts requires a mem operand and no dst: {self}")
            if len(self.srcs) != 1 or not isinstance(self.srcs[0], TileReg):
                raise IsaError(f"rasa_ts requires exactly one tile source: {self}")
        elif op is Opcode.RASA_MM:
            if len(self.srcs) != 3 or not all(isinstance(s, TileReg) for s in self.srcs):
                raise IsaError(f"rasa_mm requires three tile sources (C, A, B): {self}")
            if self.dst != self.srcs[0]:
                raise IsaError(f"rasa_mm destination must equal the C source: {self}")
        elif op in (Opcode.ADD, Opcode.MUL, Opcode.MOV, Opcode.CMP):
            if self.dst is not None and not isinstance(self.dst, ScalarReg):
                raise IsaError(f"scalar op requires a scalar dst: {self}")
            if any(not isinstance(s, ScalarReg) for s in self.srcs):
                raise IsaError(f"scalar op sources must be scalar registers: {self}")
        elif op is Opcode.BRANCH:
            if self.dst is not None:
                raise IsaError(f"branch cannot have a destination: {self}")

    # -- dataflow views -----------------------------------------------------

    @property
    def tile_reads(self) -> Tuple[TileReg, ...]:
        """Tile registers this instruction reads."""
        if self.opcode is Opcode.RASA_TS or self.opcode is Opcode.RASA_MM:
            return tuple(s for s in self.srcs if isinstance(s, TileReg))
        return ()

    @property
    def tile_writes(self) -> Tuple[TileReg, ...]:
        """Tile registers this instruction writes."""
        if isinstance(self.dst, TileReg):
            return (self.dst,)
        return ()

    @property
    def scalar_reads(self) -> Tuple[ScalarReg, ...]:
        return tuple(s for s in self.srcs if isinstance(s, ScalarReg))

    @property
    def scalar_writes(self) -> Tuple[ScalarReg, ...]:
        if isinstance(self.dst, ScalarReg):
            return (self.dst,)
        return ()

    # -- rasa_mm operand accessors -------------------------------------------

    @property
    def mm_c(self) -> TileReg:
        """The C (accumulator) operand of a ``rasa_mm``."""
        self._require_mm()
        return cast(TileReg, self.srcs[0])

    @property
    def mm_a(self) -> TileReg:
        """The A (input) operand of a ``rasa_mm``."""
        self._require_mm()
        return cast(TileReg, self.srcs[1])

    @property
    def mm_b(self) -> TileReg:
        """The B (weight) operand of a ``rasa_mm`` — the WLBP reuse target."""
        self._require_mm()
        return cast(TileReg, self.srcs[2])

    def _require_mm(self) -> None:
        if self.opcode is not Opcode.RASA_MM:
            raise IsaError(f"not a rasa_mm instruction: {self}")

    def __str__(self) -> str:
        # Robust against malformed operand lists: validation errors stringify
        # the instruction they reject.
        op = self.opcode.value
        if self.opcode is Opcode.RASA_TL:
            return f"{op} {self.dst}, {self.mem}"
        if self.opcode is Opcode.RASA_TS:
            src = self.srcs[0] if self.srcs else "?"
            return f"{op} {self.mem}, {src}"
        if self.opcode is Opcode.RASA_MM:
            operands = ", ".join(str(s) for s in self.srcs) or "?"
            return f"{op} {operands}"
        parts = [str(s) for s in self.srcs]
        if self.dst is not None:
            parts.insert(0, str(self.dst))
        return f"{op} {', '.join(parts)}" if parts else op


# -- constructors ------------------------------------------------------------


def rasa_tl(dst: TileReg, address: int, stride: int = 64, tag: str = "") -> Instruction:
    """Build a tile load: ``dst <- memory[address]``."""
    return Instruction(Opcode.RASA_TL, dst=dst, mem=MemOperand(address, stride), tag=tag)


def rasa_ts(address: int, src: TileReg, stride: int = 64, tag: str = "") -> Instruction:
    """Build a tile store: ``memory[address] <- src``."""
    return Instruction(
        Opcode.RASA_TS, srcs=(src,), mem=MemOperand(address, stride), tag=tag
    )


def rasa_mm(c: TileReg, a: TileReg, b: TileReg, tag: str = "") -> Instruction:
    """Build a matmul-accumulate: ``c += a @ b`` on the matrix engine."""
    return Instruction(Opcode.RASA_MM, dst=c, srcs=(c, a, b), tag=tag)


def scalar_op(
    opcode: Opcode,
    dst: Optional[ScalarReg] = None,
    srcs: Tuple[ScalarReg, ...] = (),
    tag: str = "",
) -> Instruction:
    """Build a scalar ALU/branch instruction for loop-overhead modelling."""
    if opcode.is_tile:
        raise IsaError(f"{opcode} is not a scalar opcode")
    return Instruction(opcode, dst=dst, srcs=srcs, tag=tag)
