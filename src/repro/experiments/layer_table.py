"""Table I — the evaluated layer dimensions, plus their lowered GEMMs."""

from __future__ import annotations

from repro.utils.tables import format_table
from repro.workloads.layers import TABLE1_LAYERS, ConvLayer


def table1_report() -> str:
    """Render Table I with the derived GEMM shape and rasa_mm count."""
    rows = []
    for name, layer in TABLE1_LAYERS.items():
        if isinstance(layer, ConvLayer):
            dims = (
                f"N={layer.batch} K={layer.filters} C={layer.channels} "
                f"X=Y={layer.x} R=S={layer.r}"
            )
        else:
            dims = f"N={layer.batch} NIN={layer.nin} NON={layer.non}"
        gemm = layer.gemm()
        rows.append(
            (name, dims, f"{gemm.m}x{gemm.n}x{gemm.k}", gemm.mm_count)
        )
    return format_table(
        ["layer", "dimensions", "GEMM MxNxK", "rasa_mm count"],
        rows,
        title="Table I — layer dimensions used in evaluation",
    )
