"""Common experiment plumbing: generate streams, run designs, cache sweeps.

The paper's absolute cycle counts come from full-size layers on MacSim; our
default sweeps run the same layers *scaled down* (every GEMM dimension
divided by ``scale``) because normalized runtimes converge quickly with
size — the steady-state initiation interval dominates — which a dedicated
convergence test verifies.  Pass ``scale=1`` for full-size runs.
"""

from __future__ import annotations

import dataclasses
import functools
from typing import Dict, Tuple

from repro.cpu.config import CoreConfig
from repro.cpu.fast import FastCoreModel
from repro.cpu.result import SimResult
from repro.engine.designs import DESIGNS, get_design
from repro.isa.program import Program
from repro.workloads.codegen import CodegenOptions, generate_gemm_program
from repro.workloads.gemm import GemmShape
from repro.workloads.layers import table1_gemms


@dataclasses.dataclass(frozen=True)
class ExperimentSettings:
    """Shared knobs for every sweep."""

    scale: int = 4
    core: CoreConfig = CoreConfig()
    codegen: CodegenOptions = CodegenOptions()


DEFAULT_SETTINGS = ExperimentSettings()


@functools.lru_cache(maxsize=64)
def _cached_program(shape: GemmShape, codegen: CodegenOptions) -> Program:
    return generate_gemm_program(shape, codegen)


def workload_shapes(settings: ExperimentSettings = DEFAULT_SETTINGS) -> Dict[str, GemmShape]:
    """The nine Table I GEMMs at the settings' scale."""
    return {
        name: shape.scaled(settings.scale) for name, shape in table1_gemms().items()
    }


def run_design(
    design_key: str,
    shape: GemmShape,
    settings: ExperimentSettings = DEFAULT_SETTINGS,
) -> SimResult:
    """Generate the stream for ``shape`` and simulate it on one design."""
    program = _cached_program(shape, settings.codegen)
    design = get_design(design_key)
    model = FastCoreModel(core=settings.core, engine=design.config)
    return model.run(program)


@functools.lru_cache(maxsize=8)
def runtime_sweep(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
) -> Dict[str, Dict[str, SimResult]]:
    """Run every design on every Table I workload (the Fig. 5 grid).

    Returns ``results[workload_name][design_key]``.  Cached: Fig. 6 and the
    energy table reuse the same grid.
    """
    results: Dict[str, Dict[str, SimResult]] = {}
    for name, shape in workload_shapes(settings).items():
        results[name] = {
            key: run_design(key, shape, settings) for key in DESIGNS
        }
    return results


def normalized_runtimes(
    results: Dict[str, Dict[str, SimResult]],
    baseline_key: str = "baseline",
) -> Dict[str, Dict[str, float]]:
    """Normalize each design's cycles to the baseline, per workload."""
    table: Dict[str, Dict[str, float]] = {}
    for workload, per_design in results.items():
        base = per_design[baseline_key]
        table[workload] = {
            key: result.normalized_to(base) for key, result in per_design.items()
        }
    return table


def geometric_mean(values) -> float:
    """Geometric mean (the conventional normalized-runtime average)."""
    values = list(values)
    if not values:
        return 0.0
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))
