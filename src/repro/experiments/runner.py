"""Common experiment plumbing, now a thin client of :mod:`repro.runtime`.

Every simulation below goes through the backend registry
(:func:`repro.runtime.resolve_backend`) and every grid is declared as a
:class:`repro.runtime.SweepPlan` and executed by the shared
:class:`repro.runtime.Session` (:func:`default_session`) — parallel across
worker processes and memoized in the on-disk result cache.  Environment
knobs:

- ``REPRO_SWEEP_WORKERS`` — worker process count (default: CPU count);
- ``REPRO_NO_CACHE``      — any non-empty value disables the disk cache;
- ``REPRO_CACHE_DIR``     — cache location (default ``~/.cache/repro``).

The paper's absolute cycle counts come from full-size layers on MacSim; our
default sweeps run the same layers *scaled down* (every GEMM dimension
divided by ``scale``) because normalized runtimes converge quickly with
size — the steady-state initiation interval dominates — which a dedicated
convergence test verifies.  Pass ``scale=1`` for full-size runs.
"""

from __future__ import annotations

import dataclasses
import functools
from pathlib import Path
from typing import Dict, Optional

from repro.cpu.config import CoreConfig
from repro.cpu.result import SimResult
from repro.engine.designs import DESIGNS
from repro.errors import ExperimentError
from repro.runtime.plan import SweepPlan
from repro.runtime.registry import resolve_backend
from repro.runtime.session import Session, cached_program
from repro.workloads.codegen import CodegenOptions
from repro.workloads.gemm import GemmShape
from repro.workloads.layers import table1_gemms


@dataclasses.dataclass(frozen=True)
class ExperimentSettings:
    """Shared knobs for every sweep.

    ``core`` and ``codegen`` use ``default_factory`` so no single shared
    instance leaks across settings objects; all three fields are frozen
    dataclasses, keeping settings hashable — they feed both the in-process
    memoization below and the runtime layer's persistent cache keys.
    """

    scale: int = 4
    core: CoreConfig = dataclasses.field(default_factory=CoreConfig)
    codegen: CodegenOptions = dataclasses.field(default_factory=CodegenOptions)


DEFAULT_SETTINGS = ExperimentSettings()


def default_session(
    workers: Optional[int] = None,
    cache_dir: Optional[Path] = None,
    use_cache: bool = True,
) -> Session:
    """The :class:`Session` the experiment drivers share.

    Honors the ``REPRO_SWEEP_WORKERS`` / ``REPRO_NO_CACHE`` /
    ``REPRO_CACHE_DIR`` environment knobs documented in the module doc.
    """
    return Session.from_env(
        workers=workers, cache_dir=cache_dir, use_cache=use_cache
    )


def _resolve_session(session: Optional[Session]) -> Session:
    """An explicit driver session, or the shared environment-driven one."""
    if session is not None:
        return session
    return default_session()


def workload_shapes(settings: ExperimentSettings = DEFAULT_SETTINGS) -> Dict[str, GemmShape]:
    """The nine Table I GEMMs at the settings' scale."""
    return {
        name: shape.scaled(settings.scale) for name, shape in table1_gemms().items()
    }


def run_design(
    design_key: str,
    shape: GemmShape,
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    fidelity: str = "fast",
) -> SimResult:
    """Generate the stream for ``shape`` and simulate it on one design.

    Shape-level fidelities (``analytic``) skip generation entirely.
    """
    backend = resolve_backend(design_key, fidelity=fidelity, core=settings.core)
    run_shape = getattr(backend, "run_shape", None)
    if run_shape is not None:
        return run_shape(shape, settings.codegen)
    program = cached_program(shape, settings.codegen)
    return backend.prepare(program).run()


@functools.lru_cache(maxsize=8)
def runtime_sweep(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
) -> Dict[str, Dict[str, SimResult]]:
    """Run every design on every Table I workload (the Fig. 5 grid).

    Declares the grid as a :class:`SweepPlan` and runs it through the
    shared :func:`default_session` — parallel workers plus the persistent
    result cache — and memoizes in-process on top: Fig. 6 and the energy
    table reuse the same grid without a second lookup pass.

    Returns ``results[workload_name][design_key]``.
    """
    plan = SweepPlan(
        designs=tuple(DESIGNS),
        workloads=tuple(workload_shapes(settings).items()),
        core=settings.core,
        codegen=settings.codegen,
    )
    return default_session().run(plan).grid()


def normalized_runtimes(
    results: Dict[str, Dict[str, SimResult]],
    baseline_key: str = "baseline",
) -> Dict[str, Dict[str, float]]:
    """Normalize each design's cycles to the baseline, per workload.

    An empty grid yields an empty table; a workload row lacking
    ``baseline_key`` raises :class:`ExperimentError` (not ``KeyError``) so
    callers see which row was malformed.
    """
    table: Dict[str, Dict[str, float]] = {}
    for workload, per_design in results.items():
        try:
            base = per_design[baseline_key]
        except KeyError:
            raise ExperimentError(
                f"workload {workload!r} has no baseline design "
                f"{baseline_key!r}; present: {', '.join(per_design) or 'none'}"
            ) from None
        table[workload] = {
            key: result.normalized_to(base) for key, result in per_design.items()
        }
    return table


def geometric_mean(values) -> float:
    """Geometric mean (the conventional normalized-runtime average).

    Empty input returns 0.0 — the "no data" sentinel the tables render.
    """
    values = list(values)
    if not values:
        return 0.0
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))
