"""Validation harness bounding the analytic tier's cycle error vs ``fast``.

The analytic fidelity (:mod:`repro.cpu.analytic`) promises two things:

- **exact counts** — ``mm_count``, ``weight_loads``, ``bypass_count`` and
  ``instructions`` match the fast model bit-for-bit (they are closed forms
  over the same blocking the code generator uses);
- **bounded cycle error** — relative cycle disagreement with the fast
  model stays within :data:`repro.cpu.analytic.ANALYTIC_CYCLE_ERROR_BOUND`
  on every validated point (empirically the model is exact on every point
  we have ever sampled; the bound is the conservative contract).

:func:`validate_analytic` samples (suite x design x distinct shape) points,
runs both fidelities through :func:`repro.experiments.runner.run_design`,
and returns a structured report.  The test suite asserts ``report.ok``;
``python -m repro.experiments.analytic_validation`` prints the table.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cpu.analytic import ANALYTIC_CYCLE_ERROR_BOUND
from repro.cpu.result import SimResult
from repro.engine.designs import DESIGNS
from repro.errors import ExperimentError
from repro.experiments.runner import DEFAULT_SETTINGS, ExperimentSettings, run_design
from repro.workloads.gemm import GemmShape
from repro.workloads.suites import get_suite

#: Suites the default validation pass samples: the paper's Table I layers
#: plus the two structurally richest full-model suites (head-batched
#: attention shapes and transposed-filter training lowerings).
DEFAULT_VALIDATION_SUITES: Tuple[str, ...] = ("table1", "bert-full", "resnet50-train")

#: SimResult count fields the analytic tier must reproduce exactly.
EXACT_FIELDS: Tuple[str, ...] = (
    "instructions",
    "mm_count",
    "weight_loads",
    "bypass_count",
)


@dataclasses.dataclass(frozen=True)
class ValidationPoint:
    """One (suite, design, shape) comparison between the two fidelities."""

    suite: str
    design_key: str
    shape: GemmShape
    fast: SimResult
    analytic: SimResult

    @property
    def cycle_error(self) -> float:
        """Relative cycle disagreement, ``|analytic - fast| / fast``."""
        if self.fast.cycles == 0:
            return 0.0 if self.analytic.cycles == 0 else float("inf")
        return abs(self.analytic.cycles - self.fast.cycles) / self.fast.cycles

    @property
    def count_mismatches(self) -> Tuple[str, ...]:
        """Names of :data:`EXACT_FIELDS` where the models disagree."""
        return tuple(
            field
            for field in EXACT_FIELDS
            if getattr(self.analytic, field) != getattr(self.fast, field)
        )

    @property
    def counts_exact(self) -> bool:
        return not self.count_mismatches


@dataclasses.dataclass(frozen=True)
class ValidationReport:
    """Every sampled point plus the pass/fail verdict against ``bound``."""

    points: Tuple[ValidationPoint, ...]
    bound: float

    @property
    def max_cycle_error(self) -> float:
        return max((p.cycle_error for p in self.points), default=0.0)

    @property
    def worst(self) -> Optional[ValidationPoint]:
        if not self.points:
            return None
        return max(self.points, key=lambda p: p.cycle_error)

    @property
    def count_violations(self) -> Tuple[ValidationPoint, ...]:
        return tuple(p for p in self.points if not p.counts_exact)

    @property
    def ok(self) -> bool:
        """All counts exact and every cycle error within the bound."""
        return not self.count_violations and self.max_cycle_error <= self.bound

    def render(self) -> str:
        """Per-suite summary table plus the worst point, as text."""
        per_suite: Dict[str, List[ValidationPoint]] = {}
        for p in self.points:
            per_suite.setdefault(p.suite, []).append(p)
        lines = [
            "Analytic-vs-fast validation "
            f"({len(self.points)} points, bound {self.bound:.1%})",
            f"{'suite':<16} {'points':>7} {'max cycle err':>14} {'counts':>8}",
        ]
        for suite, pts in per_suite.items():
            worst = max((p.cycle_error for p in pts), default=0.0)
            exact = all(p.counts_exact for p in pts)
            lines.append(
                f"{suite:<16} {len(pts):>7} {worst:>13.4%} "
                f"{'exact' if exact else 'MISMATCH':>8}"
            )
        worst_point = self.worst
        if worst_point is not None:
            lines.append(
                f"worst: {worst_point.suite} / {worst_point.design_key} / "
                f"{worst_point.shape.dims} -> {worst_point.cycle_error:.4%} "
                f"(fast {worst_point.fast.cycles}, "
                f"analytic {worst_point.analytic.cycles})"
            )
        lines.append(f"verdict: {'PASS' if self.ok else 'FAIL'}")
        return "\n".join(lines)


def validate_analytic(
    suites: Sequence[str] = DEFAULT_VALIDATION_SUITES,
    designs: Optional[Sequence[str]] = None,
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    bound: float = ANALYTIC_CYCLE_ERROR_BOUND,
) -> ValidationReport:
    """Compare analytic vs fast on every (suite, design, distinct shape).

    ``designs=None`` samples all eight catalog designs; suites are built at
    ``settings.scale`` and collapsed to their distinct shapes (the same
    dedup every sweep runs on).  Raises :class:`ExperimentError` when the
    sample set is empty — an empty validation pass proves nothing.
    """
    design_keys = tuple(designs) if designs is not None else tuple(DESIGNS)
    points: List[ValidationPoint] = []
    for suite_name in suites:
        suite = get_suite(suite_name, scale=settings.scale)
        for entry in suite.distinct():
            for design_key in design_keys:
                fast = run_design(design_key, entry.shape, settings, fidelity="fast")
                analytic = run_design(
                    design_key, entry.shape, settings, fidelity="analytic"
                )
                points.append(
                    ValidationPoint(
                        suite=suite_name,
                        design_key=design_key,
                        shape=entry.shape,
                        fast=fast,
                        analytic=analytic,
                    )
                )
    if not points:
        raise ExperimentError(
            "validate_analytic sampled zero points; pass at least one suite "
            "and one design"
        )
    return ValidationReport(points=tuple(points), bound=bound)


def main() -> None:
    report = validate_analytic()
    print(report.render())
    if not report.ok:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
