"""Fig. 2 — PE utilization vs input size (TM) for several array dimensions.

The figure shows utilization of a serialized fold rising toward 1 as TM
grows, for arrays from small to large; growing TK/TN depresses utilization
at fixed TM — the structural reason CPUs (TM pinned to 16 by the tile
registers) cannot use the standalone accelerators' big-TM escape hatch.

This sweep is purely analytic (closed-form utilization arithmetic, no
instruction streams), so it does not go through the :mod:`repro.runtime`
simulation backends — there is nothing to cache or parallelize.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Tuple

from repro.systolic.utilization import utilization_sweep
from repro.utils.tables import format_table

#: The figure's series: square arrays plus the paper's 32x16 CPU array.
DEFAULT_DIMS: Tuple[Tuple[int, int], ...] = (
    (4, 4),
    (8, 8),
    (16, 16),
    (32, 16),
    (32, 32),
    (64, 64),
    (128, 128),
)
DEFAULT_TMS: Tuple[int, ...] = (4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096)


@dataclasses.dataclass(frozen=True)
class UtilizationSweep:
    tm_values: Sequence[int]
    series: Dict[Tuple[int, int], List[float]]

    def render(self) -> str:
        headers = ["TM"] + [f"{tk}x{tn}" for tk, tn in self.series]
        rows = []
        for idx, tm in enumerate(self.tm_values):
            rows.append(
                [tm] + [f"{values[idx]:.3f}" for values in self.series.values()]
            )
        return format_table(
            headers, rows, title="Fig. 2 — PE utilization vs TM (one serialized fold)"
        )


def fig2_utilization(
    tm_values: Sequence[int] = DEFAULT_TMS,
    dims: Sequence[Tuple[int, int]] = DEFAULT_DIMS,
) -> UtilizationSweep:
    """Compute the Fig. 2 series."""
    return UtilizationSweep(
        tm_values=tuple(tm_values),
        series=utilization_sweep(tm_values, dims),
    )
