"""E16 — Fig. 7 at model granularity: per-suite batch curves.

The paper's Fig. 7 sweeps the six FC layers in isolation and argues
RASA-DMDB-WLS approaches the perfect-pipelining asymptote 16/95 as batch
grows.  This driver stress-tests that claim end to end: whole workload
suites (the 12-layer BERT-base stack, the DLRM MLPs, the training passes)
are rebuilt at every batch along a :class:`repro.runtime.plan.SweepPlan`
batch axis and reduced to one occurrence-weighted normalized-runtime curve
per model (:meth:`repro.runtime.plan.SweepReport.batch_curves`).

All (suite, batch, design) points run through **one** flat plan, so the
runtime layer's key dedup collapses duplicate points across batches:
sub-tile batches lower to identical streams and simulate once, as do
scaled batches that saturate at the one-register-block floor.  Each curve
point still matches a standalone single-batch suite plan bit for bit.

The default suites are the FC/attention-shaped models: a conv suite's
streamed rows are batch x output spatial, so ``resnet50`` (or ``table1``,
which embeds its convs) at large batches lowers to millions of tile rows —
sweep those explicitly via ``repro sweep --workloads resnet50 --batches
... --scale-spatial N``, whose dimension-role-aware knob shrinks the
spatial product without touching filters or channels.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Optional, Sequence, Set, Tuple

from repro.engine.designs import DESIGNS
from repro.errors import ExperimentError
from repro.experiments.batch_sweep import ASYMPTOTE
from repro.experiments.model_report import BEST_DESIGN
from repro.experiments.runner import (
    DEFAULT_SETTINGS,
    ExperimentSettings,
    _resolve_session,
)
from repro.runtime.plan import SuiteBatchCurve, SweepPlan
from repro.runtime.session import Session
from repro.utils.tables import format_table
from repro.workloads.ops import DEFAULT_LOWERING, LoweringConfig
from repro.workloads.suites import SUITES

#: The batch axis the per-model curves sweep by default.
DEFAULT_SUITE_BATCHES: Sequence[int] = (1, 4, 16, 64, 256, 1024)

#: Suites swept by default: the FC/attention-shaped models, whose
#: streamed-rows dimension *is* the batch (conv suites multiply it by
#: output spatial — sweep those with ``scale_spatial`` to keep large
#: batches tractable).
DEFAULT_CURVE_SUITES: Tuple[str, ...] = ("bert-base", "bert-full", "dlrm", "training")


@dataclasses.dataclass(frozen=True)
class SuiteBatchSweep:
    """Per-model batch curves: normalized runtime of one design per suite.

    ``curves[suite][design_key]`` keeps the full per-design
    :class:`SuiteBatchCurve` data (occurrence-weighted totals per batch);
    ``series()`` reduces it to the Fig. 7 view — ``design_key``'s runtime
    normalized to the baseline design at the same batch.
    """

    design_key: str
    batches: Tuple[int, ...]
    scale: int
    curves: Dict[str, Dict[str, SuiteBatchCurve]]
    simulated_points: int   # distinct padded points actually submitted
    expanded_points: int    # sum over batches of per-batch distinct points

    def series(self) -> Dict[str, Dict[int, float]]:
        """``series[suite][batch]`` — normalized runtime vs the baseline."""
        return {
            suite: per_design[self.design_key].normalized_to(
                per_design["baseline"]
            )
            for suite, per_design in self.curves.items()
        }

    def render(self) -> str:
        series = self.series()
        rows = [
            [batch] + [f"{series[suite][batch]:.3f}" for suite in series]
            for batch in self.batches
        ]
        table = format_table(
            ["batch"] + list(series),
            rows,
            title=(
                f"E16 — per-model batch curves: {DESIGNS[self.design_key].label}"
                " runtime normalized to baseline"
            ),
        )
        dedup = (
            self.expanded_points / self.simulated_points
            if self.simulated_points
            else 1.0
        )
        return table + (
            f"\nPerfect-pipelining asymptote: 16/95 = {ASYMPTOTE:.3f}"
            f"\n{self.simulated_points} distinct points stood in for "
            f"{self.expanded_points} per-batch suite points "
            f"({dedup:.1f}x cross-batch dedup at scale {self.scale})"
        )


def curve_point_counts(
    names: Sequence[str],
    batches: Sequence[int],
    scale: int,
    design_count: int,
    lowering: LoweringConfig = DEFAULT_LOWERING,
) -> Tuple[int, int]:
    """(distinct padded points submitted, naive per-batch point count).

    Mirrors the runtime layer's dedup identity — tile-padded dims — so
    the report's dedup factor matches what actually simulated on a cold
    cache.
    """
    padded: Set[Tuple[int, int, int]] = set()
    expanded = 0
    for name in names:
        for batch in batches:
            suite = SUITES[name].build(batch=batch, scale=scale, lowering=lowering)
            entries = suite.distinct()
            expanded += len(entries)
            padded.update(entry.shape.tile_padded().dims for entry in entries)
    return len(padded) * design_count, expanded * design_count


def suite_batch_sweep(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    suites: Optional[Iterable[str]] = None,
    batches: Sequence[int] = DEFAULT_SUITE_BATCHES,
    design_key: str = BEST_DESIGN,
    fidelity: str = "fast",
    session: Optional[Session] = None,
    lowering: LoweringConfig = DEFAULT_LOWERING,
) -> SuiteBatchSweep:
    """Sweep whole-model suites over the batch axis vs the baseline.

    Every suite is rebuilt at every batch (``settings.scale`` shrinks the
    rebuilt shapes with the usual floors) and the full
    (suite x batch x {design, baseline}) cross-product is one dedup-aware
    :class:`SweepPlan` executed through ``session`` (default: the shared
    environment-driven session).  ``lowering`` carries the role-aware
    ``scale_batch``/``scale_spatial`` knobs — the way to keep conv-suite
    curves (batch x output-spatial streamed rows) tractable at large
    batches.
    """
    if design_key == "baseline":
        raise ExperimentError(
            "suite_batch_sweep normalizes against 'baseline'; pick a "
            "non-baseline design_key to plot"
        )
    names = list(suites if suites is not None else DEFAULT_CURVE_SUITES)
    plan = SweepPlan(
        designs=("baseline", design_key),
        suites=tuple(names),
        batches=tuple(batches),
        scale=settings.scale,
        scale_batch=lowering.scale_batch,
        scale_spatial=lowering.scale_spatial,
        core=settings.core,
        codegen=settings.codegen,
        fidelity=fidelity,
    )
    curves = _resolve_session(session).run(plan).batch_curves()
    simulated, expanded = curve_point_counts(
        names, tuple(batches), settings.scale, design_count=2, lowering=lowering
    )
    return SuiteBatchSweep(
        design_key=design_key,
        batches=tuple(batches),
        scale=settings.scale,
        curves=curves,
        simulated_points=simulated,
        expanded_points=expanded,
    )
