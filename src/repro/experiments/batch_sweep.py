"""Fig. 7 — batch-size sensitivity of RASA-DMDB-WLS.

The paper sweeps the six FC layers over batch sizes and observes:

1. batches 1..16 share one normalized runtime — 16 is the smallest work
   granularity (one tile row block), so those runs issue the same rasa_mm
   stream;
2. as batch grows, normalized runtime approaches the perfect-pipelining
   asymptote ``TM / L_baseline = 16 / 95 = 0.168``.

The default sweep shrinks the layers' NIN/NON by ``settings.scale`` (the
batch axis is swept at full range); the asymptote depends only on the
initiation-interval ratio, not the layer size.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence

from repro.experiments.runner import (
    DEFAULT_SETTINGS,
    ExperimentSettings,
    default_session,
)
from repro.runtime.plan import SweepPlan
from repro.utils.tables import format_table
from repro.workloads.layers import FC_LAYER_NAMES, TABLE1_LAYERS

DEFAULT_BATCHES: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)

#: The perfect-pipelining bound the paper derives: 16 / 95.
ASYMPTOTE = 16.0 / 95.0


@dataclasses.dataclass(frozen=True)
class BatchSweep:
    """Normalized runtime of RASA-DMDB-WLS per (layer, batch)."""

    batches: Sequence[int]
    series: Dict[str, Dict[int, float]]

    def render(self) -> str:
        headers = ["batch"] + list(self.series)
        rows = []
        for batch in self.batches:
            rows.append(
                [batch] + [f"{self.series[label][batch]:.3f}" for label in self.series]
            )
        table = format_table(
            headers,
            rows,
            title="Fig. 7 — RASA-DMDB-WLS runtime normalized to baseline vs batch",
        )
        return table + f"\nPerfect-pipelining asymptote: 16/95 = {ASYMPTOTE:.3f}"


def fig7_batch_sensitivity(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    batches: Sequence[int] = DEFAULT_BATCHES,
    design_key: str = "rasa-dmdb-wls",
) -> BatchSweep:
    """Sweep batch size for every FC layer on ``design_key`` vs the baseline.

    The (layer x batch x {design, baseline}) grid is declared as one
    :class:`SweepPlan` — each (layer, batch) point is a named workload —
    and fanned out through the shared :func:`default_session`: parallel
    workers plus the persistent cache.
    """
    workloads: List = []
    for name in FC_LAYER_NAMES:
        layer = TABLE1_LAYERS[name]
        for batch in batches:
            gemm = layer.with_batch(batch).gemm()
            # Shrink the fixed layer dimensions, sweep the batch at full range.
            shape = dataclasses.replace(
                gemm,
                m=batch,
                n=max(32, gemm.n // settings.scale),
                k=max(32, gemm.k // settings.scale),
            )
            workloads.append((f"{name}@b{batch}", shape))
    plan = SweepPlan(
        designs=tuple(dict.fromkeys((design_key, "baseline"))),
        workloads=tuple(workloads),
        core=settings.core,
        codegen=settings.codegen,
    )
    grid = default_session().run(plan).grid()
    series: Dict[str, Dict[int, float]] = {name: {} for name in FC_LAYER_NAMES}
    for name in FC_LAYER_NAMES:
        for batch in batches:
            per_design = grid[f"{name}@b{batch}"]
            series[name][batch] = per_design[design_key].normalized_to(
                per_design["baseline"]
            )
    return BatchSweep(batches=tuple(batches), series=series)
