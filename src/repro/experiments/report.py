"""One-shot reproduction report: every paper artifact in a single document.

``python -m repro report`` (or :func:`full_report`) regenerates Fig. 1, 2,
5, 6, 7, Table I, the Sec. V area/energy table, the E15 whole-model suite
table, the E16 per-model batch curves, the E17 register-scaling
counterfactual and the E18 training-vs-inference table, and stitches them
into a markdown document — the quickest way to eyeball the whole
reproduction at once.
"""

from __future__ import annotations

from repro.experiments.area_energy import area_energy_report
from repro.experiments.batch_sweep import fig7_batch_sensitivity
from repro.experiments.layer_table import table1_report
from repro.experiments.model_report import model_report
from repro.experiments.ppa_sweep import fig6_performance_per_area
from repro.experiments.register_scaling import (
    register_scaling_sweep,
    render_register_scaling,
)
from repro.experiments.runner import DEFAULT_SETTINGS, ExperimentSettings
from repro.experiments.runtime_sweep import fig5_normalized_runtime
from repro.experiments.suite_batch_sweep import suite_batch_sweep
from repro.experiments.toy import fig1_toy_example
from repro.experiments.training_report import training_report
from repro.experiments.utilization_sweep import fig2_utilization


def _section(title: str, body: str) -> str:
    return f"## {title}\n\n```\n{body}\n```\n"


def full_report(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    fidelity: str = "fast",
) -> str:
    """Render the complete reproduction report as markdown.

    ``fidelity`` selects the simulation backend for the suite-level
    sections (E15, E16 and E18) — pass ``"ooo"`` for cycle-accurate
    validation runs; the figure sections always use the fast model.
    """
    parts = [
        "# RASA (DAC 2021) — reproduction report",
        "",
        f"Workload scale: 1/{settings.scale} per GEMM dimension "
        "(normalized results converge; see DESIGN.md).",
        "",
        _section("Table I — evaluated layers", table1_report()),
        _section("Fig. 1 — toy 2x2 walkthrough", fig1_toy_example().render()),
        _section("Fig. 2 — PE utilization vs TM", fig2_utilization().render()),
        _section(
            "Fig. 5 — normalized runtime",
            fig5_normalized_runtime(settings).render(),
        ),
        _section(
            "Fig. 6 — performance per area",
            fig6_performance_per_area(settings).render(),
        ),
        _section(
            "Fig. 7 — batch-size sensitivity",
            fig7_batch_sensitivity(settings).render(),
        ),
        _section(
            "Sec. V — area and energy",
            area_energy_report(settings).render(),
        ),
        _section(
            "E15 — whole-model workload suites",
            model_report(settings, fidelity=fidelity).render(),
        ),
        _section(
            "E16 — per-model batch curves",
            suite_batch_sweep(settings, fidelity=fidelity).render(),
        ),
        _section(
            "E17 — register-scaling counterfactual",
            render_register_scaling(register_scaling_sweep()),
        ),
        _section(
            "E18 — training vs inference",
            training_report(settings, fidelity=fidelity).render(),
        ),
    ]
    return "\n".join(parts)
