"""E18 — training vs inference: per-pass shares and the training premium.

Sec. V argues the engine "is not limited to inference since GEMM is also a
key building block for training".  With the op IR the training suites are
first class — ``training`` (fwd/dgrad/wgrad over the Table I FC layers)
and ``resnet50-train`` (fwd/dgrad/wgrad over every ResNet-50 convolution,
transposed-filter im2col backward lowerings) — so this driver quantifies
the claim end to end:

- **pass shares** — each pass's fraction of the end-to-end training
  cycles on the best design, recovered from the suite's per-label cycle
  view (:meth:`repro.runtime.plan.SweepReport.suite_layer_cycles`);
- **training premium** — total training cycles over the forward-only
  cycles *of the same run* (inference is the fwd slice of a training
  step, so the ratio is exact: same scale, same lowering, same cache
  keys);
- **normalized runtime** — the whole training suite on the best design
  vs the baseline, the Fig. 5 claim extended to backward passes.

wgrad dilutes the RASA gain (its streamed M is the large input-channel
extent, which already amortizes fill/drain on the baseline), so training
suites normalize slightly above their inference-only counterparts —
exactly the effect the table makes visible.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.engine.designs import DESIGNS
from repro.errors import ExperimentError
from repro.experiments.model_report import BEST_DESIGN
from repro.experiments.runner import (
    DEFAULT_SETTINGS,
    ExperimentSettings,
    _resolve_session,
)
from repro.runtime.plan import SuiteTotals, SweepPlan
from repro.runtime.session import Session
from repro.utils.tables import format_table

#: The registered training suites E18 reports by default.
TRAINING_SUITES: Tuple[str, ...] = ("training", "resnet50-train")

#: The three passes of one training step, in execution order.
TRAINING_PASSES: Tuple[str, ...] = ("fwd", "dgrad", "wgrad")


def label_pass(label: str) -> str:
    """The training pass a suite layer label belongs to.

    Training suites suffix their backward labels ``-dgrad`` / ``-wgrad``
    (``conv2_1a-dgrad``, ``BERT-1-wgrad``); everything else is forward
    work.
    """
    for pass_ in ("dgrad", "wgrad"):
        if label.endswith(f"-{pass_}"):
            return pass_
    return "fwd"


def pass_cycles(label_cycles: Dict[str, int]) -> Dict[str, int]:
    """Aggregate one design's per-label cycles into per-pass totals."""
    cycles = {pass_: 0 for pass_ in TRAINING_PASSES}
    for label, value in label_cycles.items():
        cycles[label_pass(label)] += value
    return cycles


@dataclasses.dataclass(frozen=True)
class TrainingReport:
    """Per-training-suite pass shares, training premium, normalized runtime."""

    design_keys: Sequence[str]
    best_design: str
    totals: Dict[str, Dict[str, SuiteTotals]]       # suite -> design -> totals
    passes: Dict[str, Dict[str, Dict[str, int]]]    # suite -> design -> pass -> cycles

    def premium(self, suite: str, design: str) -> float:
        """Training cycles over forward-only cycles (>= 1.0) on one design."""
        cycles = self.passes[suite][design]
        forward = cycles["fwd"]
        if forward == 0:
            raise ExperimentError(
                f"suite {suite!r} on design {design!r} reports zero forward "
                "cycles; cannot compute the training premium"
            )
        return sum(cycles.values()) / forward

    def render(self) -> str:
        headers = (
            ["model", "GEMMs", "distinct"]
            + [f"{p} share" for p in TRAINING_PASSES]
            + ["train/infer (base)", f"train/infer ({DESIGNS[self.best_design].label})",
               "normalized"]
        )
        rows = []
        for suite, per_design in self.totals.items():
            base = per_design["baseline"]
            best = per_design[self.best_design]
            best_passes = self.passes[suite][self.best_design]
            total = sum(best_passes.values())
            rows.append(
                [suite, base.gemm_count, base.simulations]
                + [f"{best_passes[p] / total:.0%}" for p in TRAINING_PASSES]
                + [
                    f"{self.premium(suite, 'baseline'):.2f}x",
                    f"{self.premium(suite, self.best_design):.2f}x",
                    f"{best.normalized_to(base):.3f}",
                ]
            )
        return format_table(
            headers,
            rows,
            title=(
                "E18 — training vs inference: pass shares on "
                f"{DESIGNS[self.best_design].label}, training premium, "
                "end-to-end normalized runtime"
            ),
        )


def training_report(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    suites: Optional[Iterable[str]] = None,
    design_keys: Sequence[str] = ("baseline", BEST_DESIGN),
    fidelity: str = "fast",
    session: Optional[Session] = None,
) -> TrainingReport:
    """Run the training suites and split their cycles by pass.

    One :class:`SweepPlan` covers every (suite x design) point; the pass
    split comes from the report's per-label cycle view, so the premium
    and the shares are exact re-weightings of the same simulations the
    totals use.  ``design_keys`` must include ``"baseline"`` and the best
    design (defaults: exactly those two).
    """
    design_keys = list(design_keys)
    if "baseline" not in design_keys:
        raise ExperimentError(
            "training_report needs the 'baseline' design for normalization; "
            f"got: {', '.join(design_keys)}"
        )
    non_baseline = [key for key in design_keys if key != "baseline"]
    if not non_baseline:
        raise ExperimentError(
            "training_report compares a design against 'baseline'; give it "
            "at least one non-baseline design key"
        )
    best = BEST_DESIGN if BEST_DESIGN in design_keys else non_baseline[-1]
    names = list(suites if suites is not None else TRAINING_SUITES)
    plan = SweepPlan(
        designs=tuple(design_keys),
        suites=tuple(names),
        scale=settings.scale,
        core=settings.core,
        codegen=settings.codegen,
        fidelity=fidelity,
    )
    report = _resolve_session(session).run(plan)
    totals = report.suite_totals()
    label_cycles = report.suite_layer_cycles()
    passes = {
        suite: {
            design: pass_cycles(label_cycles[suite][design])
            for design in design_keys
        }
        for suite in totals
    }
    for suite, per_design in passes.items():
        grads = sum(
            per_design[design_keys[0]][p] for p in ("dgrad", "wgrad")
        )
        if grads == 0:
            raise ExperimentError(
                f"suite {suite!r} has no dgrad/wgrad work; E18 reports "
                f"training suites (e.g. {', '.join(TRAINING_SUITES)})"
            )
    return TrainingReport(
        design_keys=design_keys, best_design=best, totals=totals, passes=passes
    )
