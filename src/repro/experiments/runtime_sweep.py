"""Fig. 5 — runtime of every RASA design normalized to the baseline.

The paper's headline numbers (average runtime *reductions*): PIPE 15.7 %,
WLBP 30.9 %, DM-WLBP 55.5 %, DB-WLS 78.1 %, DMDB-WLS 79.2 %.  The paper
also observes "the relative performances of various configurations are
independent of workloads" — visible here as near-identical rows.

The 8-design x 9-workload grid itself comes from
:func:`repro.experiments.runner.runtime_sweep`, which fans it out through
the :mod:`repro.runtime` layer (parallel workers + persistent cache).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.engine.designs import DESIGNS
from repro.experiments.runner import (
    DEFAULT_SETTINGS,
    ExperimentSettings,
    geometric_mean,
    normalized_runtimes,
    runtime_sweep,
)
from repro.utils.tables import format_table

#: Average normalized runtimes reported by the paper (1 − reduction).
PAPER_AVERAGES: Dict[str, float] = {
    "rasa-pipe": 1.0 - 0.157,
    "rasa-wlbp": 1.0 - 0.309,
    "rasa-dm-wlbp": 1.0 - 0.555,
    "rasa-db-wls": 1.0 - 0.781,
    "rasa-dmdb-wls": 1.0 - 0.792,
}


@dataclasses.dataclass(frozen=True)
class RuntimeSweep:
    """The Fig. 5 grid: normalized runtime per (workload, design)."""

    normalized: Dict[str, Dict[str, float]]
    averages: Dict[str, float]

    def render(self) -> str:
        design_keys: List[str] = [k for k in DESIGNS]
        headers = ["workload"] + [DESIGNS[k].label for k in design_keys]
        rows = []
        for workload, per_design in self.normalized.items():
            rows.append([workload] + [f"{per_design[k]:.3f}" for k in design_keys])
        rows.append(["GEOMEAN"] + [f"{self.averages[k]:.3f}" for k in design_keys])
        paper_row = ["paper avg"]
        for k in design_keys:
            paper_row.append(f"{PAPER_AVERAGES[k]:.3f}" if k in PAPER_AVERAGES else "-")
        rows.append(paper_row)
        return format_table(
            headers, rows, title="Fig. 5 — runtime normalized to baseline"
        )


def fig5_normalized_runtime(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
) -> RuntimeSweep:
    """Run the full design x workload grid and normalize to the baseline."""
    results = runtime_sweep(settings)
    normalized = normalized_runtimes(results)
    averages = {
        key: geometric_mean(
            normalized[workload][key] for workload in normalized
        )
        for key in DESIGNS
    }
    return RuntimeSweep(normalized=normalized, averages=averages)
