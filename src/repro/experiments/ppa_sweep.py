"""Fig. 6 — performance per area of the RASA-Data optimizations.

The figure compares RASA-DB-WLS, RASA-DM-WLBP and RASA-DMDB-WLS (each data
optimization under its best control optimization), normalized to the
baseline.  Because the data optimizations cost only a few percent of area,
PPA tracks the runtime trend of Fig. 5.

Timing comes from the cached Fig. 5 grid — one
:func:`repro.experiments.runner.runtime_sweep` call through the
:mod:`repro.runtime` layer — combined with the analytic area model; no
extra simulation runs here.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from repro.engine.designs import DESIGNS, FIG6_DESIGNS
from repro.experiments.runner import (
    DEFAULT_SETTINGS,
    ExperimentSettings,
    geometric_mean,
    runtime_sweep,
)
from repro.physical.area import ArrayAreaModel
from repro.physical.ppa import performance_per_area
from repro.utils.tables import format_table


@dataclasses.dataclass(frozen=True)
class PpaSweep:
    """Per-workload and average normalized PPA for the Fig. 6 designs."""

    per_workload: Dict[str, Dict[str, float]]
    averages: Dict[str, float]

    def render(self) -> str:
        headers = ["workload"] + [DESIGNS[k].label for k in FIG6_DESIGNS]
        rows = []
        for workload, per_design in self.per_workload.items():
            rows.append([workload] + [f"{per_design[k]:.2f}" for k in FIG6_DESIGNS])
        rows.append(["GEOMEAN"] + [f"{self.averages[k]:.2f}" for k in FIG6_DESIGNS])
        return format_table(
            headers, rows, title="Fig. 6 — performance per area (normalized to baseline)"
        )


def fig6_performance_per_area(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
) -> PpaSweep:
    """Compute normalized PPA from the cached Fig. 5 grid + the area model."""
    results = runtime_sweep(settings)
    model = ArrayAreaModel()
    baseline_config = DESIGNS["baseline"].config
    per_workload: Dict[str, Dict[str, float]] = {}
    for workload, per_design in results.items():
        base = per_design["baseline"]
        per_workload[workload] = {
            key: performance_per_area(
                per_design[key], DESIGNS[key].config, base, baseline_config, model
            )
            for key in FIG6_DESIGNS
        }
    averages = {
        key: geometric_mean(per_workload[w][key] for w in per_workload)
        for key in FIG6_DESIGNS
    }
    return PpaSweep(per_workload=per_workload, averages=averages)
