"""E15 — extension: whole-model normalized runtime and speedup per suite.

The paper's Fig. 5 evaluates three layers per MLPerf model and argues the
relative performance of the designs is workload-independent.  This driver
stress-tests that claim end to end: every registered workload suite
(:mod:`repro.workloads.suites` — full ResNet-50, the 12-layer BERT-base
stack, the DLRM MLPs, the Table I trio, and the training passes) goes
into one :class:`repro.runtime.SweepPlan`, simulates at its *distinct*
shapes only (:meth:`repro.runtime.SweepReport.suite_totals`), and expands
into occurrence-weighted end-to-end cycles, normalized runtime, speedup
and energy-efficiency per design.

If the paper's sampling was representative, every model row lands near the
Fig. 5 geomean (~0.21 for RASA-DMDB-WLS); the training row shows the
wgrad dilution discussed in :mod:`repro.workloads.training`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Sequence

from repro.engine.designs import DESIGNS
from repro.errors import ExperimentError
from repro.experiments.runner import (
    DEFAULT_SETTINGS,
    ExperimentSettings,
    _resolve_session,
    geometric_mean,
)
from repro.physical.energy import EnergyModel
from repro.runtime.plan import SuiteTotals, SweepPlan
from repro.runtime.session import Session
from repro.utils.tables import format_table
from repro.workloads.suites import suite_names

#: The design whose speedup/energy columns headline the table.
BEST_DESIGN = "rasa-dmdb-wls"


def suite_energy_j(totals: SuiteTotals) -> float:
    """Occurrence-weighted end-to-end energy of one suite run (joules).

    The engine config comes from ``totals.design_key``, so the energy model
    always matches the design that produced the results.
    """
    config = DESIGNS[totals.design_key].config
    model = EnergyModel()
    return sum(
        count * model.run_energy(result, config).total_j
        for _, count, result in totals.per_shape
    )


@dataclasses.dataclass(frozen=True)
class ModelReport:
    """Per-model end-to-end totals across designs, plus rendered table."""

    totals: Dict[str, Dict[str, SuiteTotals]]  # suite -> design -> totals
    design_keys: Sequence[str]

    def normalized(self) -> Dict[str, Dict[str, float]]:
        """``normalized[suite][design]`` — end-to-end runtime vs baseline."""
        return {
            suite: {
                key: per_design[key].normalized_to(per_design["baseline"])
                for key in self.design_keys
            }
            for suite, per_design in self.totals.items()
        }

    def render(self) -> str:
        normalized = self.normalized()
        best = BEST_DESIGN if BEST_DESIGN in self.design_keys else self.design_keys[-1]
        headers = (
            ["model", "GEMMs", "distinct"]
            + [DESIGNS[key].label for key in self.design_keys]
            + [f"speedup ({DESIGNS[best].label})", "energy eff"]
        )
        rows: List[List[object]] = []
        for suite, per_design in self.totals.items():
            base = per_design["baseline"]
            best_energy = suite_energy_j(per_design[best])
            if best_energy == 0.0:
                raise ExperimentError(
                    f"cannot compute energy efficiency: suite {suite!r} on "
                    f"design {best!r} reports zero energy"
                )
            rows.append(
                [suite, base.gemm_count, base.simulations]
                + [f"{normalized[suite][key]:.3f}" for key in self.design_keys]
                + [
                    f"{per_design[best].speedup_over(base):.2f}x",
                    f"{suite_energy_j(base) / best_energy:.2f}x",
                ]
            )
        if len(self.totals) > 1:
            rows.append(
                ["GEOMEAN", "", ""]
                + [
                    f"{geometric_mean(normalized[s][key] for s in self.totals):.3f}"
                    for key in self.design_keys
                ]
                + ["", ""]
            )
        return format_table(
            headers,
            rows,
            title="E15 — whole-model suites: end-to-end runtime vs baseline",
        )


def model_report(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    suites: Optional[Iterable[str]] = None,
    design_keys: Optional[Iterable[str]] = None,
    batch: Optional[int] = None,
    fidelity: str = "fast",
    session: Optional[Session] = None,
) -> ModelReport:
    """Run every suite on every design and aggregate end-to-end totals.

    The whole (suite x design) cross-product is one :class:`SweepPlan`
    executed through ``session`` (default: the shared environment-driven
    session).  Suites are scaled by ``settings.scale`` like every other
    sweep; ``batch`` overrides each suite's streamed-rows dimension, and
    ``fidelity`` selects the simulation backend (``"fast"`` default;
    ``"ooo"`` for cycle-accurate validation runs).  The design list must
    include ``"baseline"`` (normalization anchor).
    """
    design_keys = list(design_keys if design_keys is not None else DESIGNS)
    if "baseline" not in design_keys:
        raise ExperimentError(
            "model_report needs the 'baseline' design for normalization; "
            f"got: {', '.join(design_keys)}"
        )
    plan = SweepPlan(
        designs=tuple(design_keys),
        suites=tuple(suites if suites is not None else suite_names()),
        batch=batch,
        scale=settings.scale,
        core=settings.core,
        codegen=settings.codegen,
        fidelity=fidelity,
    )
    totals = _resolve_session(session).run(plan).suite_totals()
    return ModelReport(totals=totals, design_keys=design_keys)
