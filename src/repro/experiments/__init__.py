"""Experiment drivers: one module per paper table/figure.

Every driver returns plain data structures *and* a formatted text rendering
(the same rows/series the paper's figure plots), so the benchmark harness
under ``benchmarks/`` just invokes these and prints.  All simulation flows
through :mod:`repro.runtime` (declarative :class:`SweepPlan`\\ s run by a
parallel, cache-backed :class:`Session`); the drivers only build plans and
render tables.

| Driver                  | Paper artifact                          |
|-------------------------|------------------------------------------|
| ``toy``                 | Fig. 1 — 2x2 WS walkthrough (28.6 %)     |
| ``utilization_sweep``   | Fig. 2 — PE utilization vs TM            |
| ``layer_table``         | Table I — layer dimensions               |
| ``runtime_sweep``       | Fig. 5 — normalized runtime, 8 designs   |
| ``ppa_sweep``           | Fig. 6 — performance per area            |
| ``batch_sweep``         | Fig. 7 — batch-size sensitivity          |
| ``area_energy``         | Sec. V text — area + energy efficiency   |
| ``model_report``        | E15 — whole-model suite runtime/speedup  |
| ``suite_batch_sweep``   | E16 — per-model batch curves (Fig. 7)    |
| ``register_scaling``    | E17 — register-scaling counterfactual    |
| ``training_report``     | E18 — training vs inference per pass     |
"""

from repro.experiments.runner import ExperimentSettings, run_design, runtime_sweep
from repro.experiments.analytic_validation import (
    ValidationPoint,
    ValidationReport,
    validate_analytic,
)
from repro.experiments.toy import fig1_toy_example
from repro.experiments.utilization_sweep import fig2_utilization
from repro.experiments.layer_table import table1_report
from repro.experiments.runtime_sweep import fig5_normalized_runtime
from repro.experiments.ppa_sweep import fig6_performance_per_area
from repro.experiments.batch_sweep import fig7_batch_sensitivity
from repro.experiments.area_energy import area_energy_report
from repro.experiments.model_report import ModelReport, model_report
from repro.experiments.register_scaling import (
    register_scaling_sweep,
    render_register_scaling,
)
from repro.experiments.suite_batch_sweep import SuiteBatchSweep, suite_batch_sweep
from repro.experiments.training_report import TrainingReport, training_report
from repro.experiments.report import full_report

__all__ = [
    "ExperimentSettings",
    "run_design",
    "runtime_sweep",
    "fig1_toy_example",
    "fig2_utilization",
    "table1_report",
    "fig5_normalized_runtime",
    "fig6_performance_per_area",
    "fig7_batch_sensitivity",
    "area_energy_report",
    "ModelReport",
    "model_report",
    "SuiteBatchSweep",
    "suite_batch_sweep",
    "register_scaling_sweep",
    "render_register_scaling",
    "TrainingReport",
    "training_report",
    "full_report",
]
