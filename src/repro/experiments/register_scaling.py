"""E17 — the register-scaling counterfactual (extension).

Sec. III argues a CPU cannot take the accelerators' escape hatch of a large
TM because "increasing the size of the tile registers comes with overhead
in area and power".  This experiment makes that argument quantitative:

- a *hypothetical* serialized baseline with TM-row tile registers (the ISA
  change RASA avoids) — throughput from Eq. 1, register-file area growing
  linearly with TM;
- RASA-DMDB-WLS with the architectural 1 KB registers — TM-bound steady
  state (one rasa_mm per 16 cycles).

The metric is engine throughput (MACs/cycle) per mm² of array + tile
register file.  The RASA point dominates every big-register baseline: the
pipelining recovers what bigger registers would buy, at ~5.5 % array
overhead instead of kilobytes of architected register state.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

from repro.engine.config import ControlPolicy, EngineConfig
from repro.engine.designs import DESIGNS
from repro.engine.scheduler import EngineScheduler
from repro.physical.area import ArrayAreaModel
from repro.utils.tables import format_table

#: Area of architected tile-register storage (µm² per byte, SRAM-ish).
TREG_AREA_PER_BYTE = 2.0
#: Architected tile registers (Sec. IV-A).
NUM_TREGS = 8


@dataclasses.dataclass(frozen=True)
class RegisterScalingPoint:
    """One design point of the counterfactual sweep."""

    label: str
    tile_m: int
    steady_ii: int
    treg_kib: float
    area_mm2: float

    @property
    def macs_per_cycle(self) -> float:
        """Engine throughput: one mm = tile_m x 16 x 32 MACs per II."""
        return self.tile_m * 16 * 32 / self.steady_ii

    @property
    def throughput_per_area(self) -> float:
        return self.macs_per_cycle / self.area_mm2


def _steady_ii(config: EngineConfig) -> int:
    """Measured steady-state initiation interval (distinct weights)."""
    scheduler = EngineScheduler(config)
    times = [scheduler.schedule_mm(0, 0, key) for key in range(8)]
    return times[-1].ff_start - times[-2].ff_start


def _treg_bytes(tile_m: int) -> int:
    """Bytes of one A/C tile register holding tile_m 64 B rows."""
    return tile_m * 64


def register_scaling_sweep(
    tm_values: Sequence[int] = (16, 32, 64, 128, 256),
) -> List[RegisterScalingPoint]:
    """Build the counterfactual sweep: big-register baselines + RASA."""
    area_model = ArrayAreaModel()
    baseline_cfg = DESIGNS["baseline"].config
    array_area = area_model.array_area_mm2(baseline_cfg)
    points: List[RegisterScalingPoint] = []
    for tm in tm_values:
        config = dataclasses.replace(
            baseline_cfg, control=ControlPolicy.BASE, tile_m=tm
        )
        regfile_um2 = NUM_TREGS * _treg_bytes(tm) * TREG_AREA_PER_BYTE
        points.append(
            RegisterScalingPoint(
                label=f"baseline, TM={tm} ({_treg_bytes(tm) // 1024} KiB tregs)",
                tile_m=tm,
                steady_ii=_steady_ii(config),
                treg_kib=NUM_TREGS * _treg_bytes(tm) / 1024,
                area_mm2=array_area + regfile_um2 / 1e6,
            )
        )
    rasa_cfg = DESIGNS["rasa-dmdb-wls"].config
    rasa_area = area_model.array_area_mm2(rasa_cfg)
    regfile_um2 = NUM_TREGS * _treg_bytes(16) * TREG_AREA_PER_BYTE
    points.append(
        RegisterScalingPoint(
            label="RASA-DMDB-WLS, TM=16 (1 KiB tregs)",
            tile_m=16,
            steady_ii=_steady_ii(rasa_cfg),
            treg_kib=NUM_TREGS * _treg_bytes(16) / 1024,
            area_mm2=rasa_area + regfile_um2 / 1e6,
        )
    )
    return points


def render_register_scaling(points: List[RegisterScalingPoint]) -> str:
    rows = [
        (
            p.label,
            p.steady_ii,
            f"{p.treg_kib:.0f}",
            f"{p.area_mm2:.3f}",
            f"{p.macs_per_cycle:.0f}",
            f"{p.throughput_per_area:.0f}",
        )
        for p in points
    ]
    return format_table(
        ["design point", "steady II", "treg KiB", "area mm^2", "MACs/cycle", "MACs/cyc/mm^2"],
        rows,
        title="E17 — bigger registers vs RASA pipelining",
    )
