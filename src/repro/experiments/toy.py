"""Fig. 1 — the 2x2 weight-stationary toy example.

A 2x2 WS array processing a 2x2 GEMM: the paper walks it cycle by cycle and
finds 8 active PE-cycles out of 28 (28.6 % utilization) over the
``2·TK + TM + TN − 1 = 7``-cycle latency.  This driver reproduces the
walkthrough on the cycle-accurate functional array and checks the result
numerically against the direct product.
"""

from __future__ import annotations

import dataclasses
from typing import List

import numpy as np

from repro.numerics.mac import matmul_bf16_fp32
from repro.systolic.array import SystolicArray
from repro.systolic.timing import fold_latency
from repro.utils.tables import format_table


@dataclasses.dataclass(frozen=True)
class ToyResult:
    """Everything Fig. 1 states about the toy example."""

    per_cycle_active: List[int]
    num_pes: int
    total_cycles: int
    expected_cycles: int
    utilization: float
    output: np.ndarray
    expected_output: np.ndarray

    @property
    def active_pe_cycles(self) -> int:
        return sum(self.per_cycle_active)

    @property
    def pe_cycles(self) -> int:
        return self.num_pes * self.total_cycles

    def render(self) -> str:
        rows = [
            (f"cycle {t}", active, f"{active / self.num_pes:.0%}")
            for t, active in enumerate(self.per_cycle_active)
        ]
        table = format_table(
            ["cycle", "active PEs", "utilization"],
            rows,
            title="Fig. 1 — 2x2 WS systolic array, 2x2 GEMM",
        )
        summary = (
            f"\nTotal latency: {self.total_cycles} cycles "
            f"(Eq. 1: 2*TK+TM+TN-1 = {self.expected_cycles})\n"
            f"Overall utilization: {self.active_pe_cycles}/{self.pe_cycles} "
            f"= {self.utilization:.1%} (paper: 8/28 = 28.6%)"
        )
        return table + summary


def fig1_toy_example() -> ToyResult:
    """Run the paper's 2x2 toy GEMM through the cycle-accurate array."""
    a = np.array([[1.0, 2.0], [3.0, 4.0]], dtype=np.float32)
    b = np.array([[5.0, 6.0], [7.0, 8.0]], dtype=np.float32)
    array = SystolicArray(phys_rows=2, phys_cols=2)
    run = array.execute(b, a)
    expected = matmul_bf16_fp32(a, b)
    return ToyResult(
        per_cycle_active=run.active_pes,
        num_pes=run.num_pes,
        total_cycles=run.total_cycles,
        expected_cycles=fold_latency(tk=2, tm=2, tn=2),
        utilization=run.utilization,
        output=run.output,
        expected_output=expected,
    )
