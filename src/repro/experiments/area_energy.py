"""Sec. V in-text table — area overheads and energy-efficiency gains.

Paper numbers: baseline array = 0.7 % of a Skylake GT2 4C die; DB/DM/DMDB
area overheads 3.1 %/2.6 %/5.5 %; RASA-DMDB total 0.847 mm²; average
energy-efficiency gains (best control per data optimization) 4.38x (DB),
2.19x (DM), 4.59x (DMDB).

Runtime numbers reuse the cached Fig. 5 grid from
:func:`repro.experiments.runner.runtime_sweep` (the :mod:`repro.runtime`
layer underneath); only the area/energy models run here.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from repro.engine.designs import DESIGNS
from repro.experiments.runner import (
    DEFAULT_SETTINGS,
    ExperimentSettings,
    geometric_mean,
    runtime_sweep,
)
from repro.physical.area import ArrayAreaModel
from repro.physical.energy import EnergyModel
from repro.utils.tables import format_table

#: Best-control design per data optimization, as Sec. V evaluates them.
DATA_OPT_DESIGNS: Dict[str, str] = {
    "RASA-DB": "rasa-db-wls",
    "RASA-DM": "rasa-dm-wlbp",
    "RASA-DMDB": "rasa-dmdb-wls",
}

PAPER_AREA_OVERHEAD = {"RASA-DB": 0.031, "RASA-DM": 0.026, "RASA-DMDB": 0.055}
PAPER_EFFICIENCY = {"RASA-DB": 4.38, "RASA-DM": 2.19, "RASA-DMDB": 4.59}
PAPER_DMDB_TOTAL_MM2 = 0.847


@dataclasses.dataclass(frozen=True)
class AreaEnergyReport:
    baseline_area_mm2: float
    estimated_die_mm2: float
    area_mm2: Dict[str, float]
    area_overhead: Dict[str, float]
    efficiency: Dict[str, float]

    def render(self) -> str:
        rows = []
        for label in DATA_OPT_DESIGNS:
            rows.append(
                (
                    label,
                    f"{self.area_mm2[label]:.3f}",
                    f"{self.area_overhead[label] * 100:.1f}%",
                    f"{PAPER_AREA_OVERHEAD[label] * 100:.1f}%",
                    f"{self.efficiency[label]:.2f}x",
                    f"{PAPER_EFFICIENCY[label]:.2f}x",
                )
            )
        table = format_table(
            [
                "design",
                "area (mm^2)",
                "overhead",
                "paper overhead",
                "energy eff.",
                "paper eff.",
            ],
            rows,
            title="Sec. V — area overhead and energy efficiency vs baseline",
        )
        return table + (
            f"\nBaseline array: {self.baseline_area_mm2:.3f} mm^2 "
            f"(0.7% of an estimated {self.estimated_die_mm2:.0f} mm^2 die); "
            f"paper RASA-DMDB total: {PAPER_DMDB_TOTAL_MM2} mm^2"
        )


def area_energy_report(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
) -> AreaEnergyReport:
    """Compute the Sec. V table from the area/energy models + Fig. 5 grid."""
    area_model = ArrayAreaModel()
    energy_model = EnergyModel()
    baseline_config = DESIGNS["baseline"].config
    results = runtime_sweep(settings)

    area_mm2: Dict[str, float] = {}
    overhead: Dict[str, float] = {}
    efficiency: Dict[str, float] = {}
    for label, key in DATA_OPT_DESIGNS.items():
        config = DESIGNS[key].config
        area_mm2[label] = area_model.array_area_mm2(config)
        overhead[label] = area_model.overhead_vs(config, baseline_config)
        gains = []
        for per_design in results.values():
            gains.append(
                energy_model.efficiency_vs(
                    per_design[key], config, per_design["baseline"], baseline_config
                )
            )
        efficiency[label] = geometric_mean(gains)

    return AreaEnergyReport(
        baseline_area_mm2=area_model.array_area_mm2(baseline_config),
        estimated_die_mm2=area_model.estimated_die_mm2(baseline_config),
        area_mm2=area_mm2,
        area_overhead=overhead,
        efficiency=efficiency,
    )
