"""Performance per area (Fig. 6).

PPA of a design, normalized to the baseline, is

    (baseline_runtime / design_runtime) / (design_area / baseline_area)

"Since the area overhead of RASA-Data optimizations are small, performance
per area shows the similar trend with runtime" (Sec. V) — the model makes
that statement checkable.
"""

from __future__ import annotations

from repro.cpu.result import SimResult
from repro.engine.config import EngineConfig
from repro.physical.area import ArrayAreaModel


def performance_per_area(
    result: SimResult,
    config: EngineConfig,
    baseline_result: SimResult,
    baseline_config: EngineConfig,
    area_model: ArrayAreaModel = None,
) -> float:
    """Normalized PPA of ``result`` vs the baseline run (Fig. 6's y-axis)."""
    model = area_model if area_model is not None else ArrayAreaModel()
    speedup = baseline_result.cycles / result.cycles if result.cycles else 0.0
    area_ratio = model.array_area_mm2(config) / model.array_area_mm2(baseline_config)
    return speedup / area_ratio
