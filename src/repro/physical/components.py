"""Per-component area/energy constants (Nangate 15 nm class).

These are analytical stand-ins for the paper's synthesis flow.  Absolute
values are calibrated at one point — the RASA-DMDB total of 0.847 mm² —
through a single global ``layout_factor`` (wiring, clock tree, cell fill);
the *relative* costs between components are chosen from typical 15 nm-class
datapath figures so the paper's DB/DM/DMDB overhead ratios emerge from
composition rather than being hard-coded.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class ComponentLibrary:
    """Area (µm²) and energy (pJ/op) of the PE building blocks.

    Attributes:
        mult_bf16_area: one BF16 multiplier.
        adder_fp32_area: one FP32 adder.
        reg_area_per_byte: pipeline/buffer register area per byte.
        pe_control_area: control/select logic of a single-multiplier PE.
        pe_control_area_dm: control of a double-multiplier PE (wider
            operand select, two psum chains).
        db_link_area_per_pe: extra weight-load links per PE for DB.
        dm_link_area_per_pe: doubled west input links per DM PE.
        layout_factor: global multiplier for wiring/clock/fill, calibrated
            so RASA-DMDB totals the published 0.847 mm².
        mac_energy_pj: one BF16 multiply + FP32 accumulate.
        reg_energy_per_byte_pj: one register byte write.
        treg_row_access_energy_pj: one 64 B tile-register row read/write.
        static_power_w_per_mm2: leakage + clock power density at 500 MHz.
    """

    mult_bf16_area: float = 600.0
    adder_fp32_area: float = 400.0
    reg_area_per_byte: float = 15.0
    pe_control_area: float = 110.0
    pe_control_area_dm: float = 240.0
    db_link_area_per_pe: float = 8.0
    dm_link_area_per_pe: float = 18.0
    merge_adder_area: float = 400.0
    merge_reg_area_per_byte: float = 15.0
    layout_factor: float = 1.2751

    mac_energy_pj: float = 0.03
    weight_load_energy_per_pe_pj: float = 0.02
    reg_energy_per_byte_pj: float = 0.01
    treg_row_access_energy_pj: float = 3.0
    static_power_w_per_mm2: float = 0.30


#: The default library used throughout the evaluation.
NANGATE15 = ComponentLibrary()
