"""Array area model: compose PE components into per-design silicon area.

Per-PE composition (matching Fig. 4c's structures):

- baseline: 1 multiplier + 1 adder + 2 B weight buffer + 2 B input register
  + 4 B psum register + control.
- DB: + one extra 2 B (or 4 B with DM) shadow weight buffer + load links.
- DM: 2 multipliers + 2 adders + 4 B weight buffer + 2x input registers +
  2x psum registers + wider control and west links; array halves to 16x16
  and adds a 16-adder merge row (with its pipeline registers) at the bottom.

The paper's measured overheads over the baseline array — DB +3.1 %,
DM +2.6 %, DMDB +5.5 % — emerge from this composition (validated in tests
to ±0.3 points), and the absolute scale is set by one calibration constant
(``layout_factor``) anchored at RASA-DMDB's published 0.847 mm².
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from repro.engine.config import EngineConfig
from repro.physical.components import NANGATE15, ComponentLibrary
from repro.systolic.pe import PESpec
from repro.utils.tables import format_table

#: Published Skylake GT2 4C die fraction of the baseline array (Sec. V).
BASELINE_DIE_FRACTION = 0.007


@dataclasses.dataclass(frozen=True)
class AreaBreakdown:
    """Per-design area decomposition (µm² before layout factor)."""

    pe_area: float
    pe_count: int
    merge_row_area: float
    layout_factor: float

    @property
    def array_area_um2(self) -> float:
        return (self.pe_area * self.pe_count + self.merge_row_area) * self.layout_factor

    @property
    def array_area_mm2(self) -> float:
        return self.array_area_um2 / 1e6


class ArrayAreaModel:
    """Compute the silicon area of any engine design point."""

    def __init__(self, library: ComponentLibrary = NANGATE15):
        self.library = library

    def pe_area(self, pe: PESpec) -> float:
        """Area of one PE (µm², pre-layout)."""
        lib = self.library
        area = pe.multipliers * lib.mult_bf16_area
        area += pe.adders * lib.adder_fp32_area
        # Weight buffers: weights_per_buffer BF16 values (2 B each) per copy.
        area += pe.weight_buffers * pe.weights_per_buffer * 2 * lib.reg_area_per_byte
        # Input registers: one 2 B BF16 value per chain, forwarded east.
        area += pe.psum_chains * 2 * lib.reg_area_per_byte
        # Psum registers: one 4 B FP32 value per chain, forwarded south.
        area += pe.psum_chains * 4 * lib.reg_area_per_byte
        area += lib.pe_control_area_dm if pe.is_double_multiplier else lib.pe_control_area
        if pe.is_double_buffered:
            area += lib.db_link_area_per_pe
        if pe.is_double_multiplier:
            area += lib.dm_link_area_per_pe
        return area

    def breakdown(self, config: EngineConfig) -> AreaBreakdown:
        """Full array decomposition for a design point."""
        lib = self.library
        merge = 0.0
        if config.pe.is_double_multiplier:
            # One pipelined FP32 adder (+ its 4 B output register) per column.
            merge = config.phys_cols * (
                lib.merge_adder_area + 4 * lib.merge_reg_area_per_byte
            )
        return AreaBreakdown(
            pe_area=self.pe_area(config.pe),
            pe_count=config.num_pes,
            merge_row_area=merge,
            layout_factor=lib.layout_factor,
        )

    def array_area_mm2(self, config: EngineConfig) -> float:
        return self.breakdown(config).array_area_mm2

    def overhead_vs(self, config: EngineConfig, baseline: EngineConfig) -> float:
        """Fractional area overhead of ``config`` over ``baseline`` (Sec. V)."""
        base = self.array_area_mm2(baseline)
        return self.array_area_mm2(config) / base - 1.0

    def estimated_die_mm2(self, baseline: EngineConfig) -> float:
        """Die size implied by "baseline = 0.7 % of the die" (Sec. V)."""
        return self.array_area_mm2(baseline) / BASELINE_DIE_FRACTION


def area_report(designs: Dict[str, EngineConfig], baseline_key: str = "baseline") -> str:
    """Render the Sec. V area table for a set of designs."""
    model = ArrayAreaModel()
    baseline = designs[baseline_key]
    rows = []
    for key, config in designs.items():
        area = model.array_area_mm2(config)
        overhead = model.overhead_vs(config, baseline)
        rows.append((key, config.pe.name, f"{area:.3f}", f"{overhead * 100:+.1f}%"))
    return format_table(
        ["design", "pe", "area (mm^2)", "overhead vs baseline"],
        rows,
        title="Array area (Nangate 15 nm analytical model)",
    )
