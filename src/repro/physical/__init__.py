"""Physical models: area, energy, and performance-per-area.

The paper synthesized the PE variants on Nangate 15 nm (Synopsys DC +
Cadence Innovus) and reports: baseline array = 0.7 % of a Skylake GT2 4C
die; DB/DM/DMDB overheads of 3.1 %/2.6 %/5.5 % over the baseline array;
0.847 mm² total for RASA-DMDB; and energy-efficiency gains of
4.38x/2.19x/4.59x.  We substitute an analytical component model —
per-component area/energy constants composed per PE variant — calibrated so
the *baseline* matches the published absolutes, and validate that the
published overhead and efficiency ratios then emerge (Sec. V, E5/E7).
"""

from repro.physical.components import ComponentLibrary, NANGATE15
from repro.physical.area import ArrayAreaModel, area_report
from repro.physical.energy import EnergyModel, EnergyBreakdown
from repro.physical.ppa import performance_per_area

__all__ = [
    "ComponentLibrary",
    "NANGATE15",
    "ArrayAreaModel",
    "area_report",
    "EnergyModel",
    "EnergyBreakdown",
    "performance_per_area",
]
