"""Energy model: static (area- and time-proportional) plus dynamic energy.

The paper's published efficiency gains (DB 4.38x, DM 2.19x, DMDB 4.59x)
track ``1 / (normalized_runtime x relative_area)`` almost exactly, i.e. the
synthesized arrays are static/clock-power dominated at 500 MHz on Nangate
15 nm.  The model therefore charges:

- static energy = ``static_power_w_per_mm2 x area x runtime``;
- dynamic energy per useful MAC (identical across designs for a workload);
- dynamic energy per weight-load (WL) PE write — *saved* by WLBP bypasses;
- tile-register row accesses for operand feeds and drains.

Efficiency = baseline energy / design energy for the same workload.
"""

from __future__ import annotations

import dataclasses

from repro.cpu.result import SimResult
from repro.engine.config import EngineConfig
from repro.physical.area import ArrayAreaModel
from repro.physical.components import NANGATE15, ComponentLibrary
from repro.tile.layout import ROWS


@dataclasses.dataclass(frozen=True)
class EnergyBreakdown:
    """Energy decomposition of one run (joules)."""

    static_j: float
    mac_j: float
    weight_load_j: float
    treg_j: float

    @property
    def total_j(self) -> float:
        return self.static_j + self.mac_j + self.weight_load_j + self.treg_j

    @property
    def static_fraction(self) -> float:
        total = self.total_j
        return self.static_j / total if total else 0.0


class EnergyModel:
    """Compute per-run energy for any design point."""

    def __init__(self, library: ComponentLibrary = NANGATE15):
        self.library = library
        self.area_model = ArrayAreaModel(library)

    def run_energy(self, result: SimResult, config: EngineConfig) -> EnergyBreakdown:
        """Energy of one simulated run (``result``) on design ``config``."""
        lib = self.library
        area_mm2 = self.area_model.array_area_mm2(config)
        runtime_s = result.seconds
        static = lib.static_power_w_per_mm2 * area_mm2 * runtime_s

        macs = result.mm_count * 16 * 16 * 32  # TM x TN x TK per rasa_mm
        mac = macs * lib.mac_energy_pj * 1e-12

        # Each performed WL writes every PE's weight buffer once (and shifts
        # values through the column on the way down — folded into the per-PE
        # constant).  Bypassed mm's skip this entirely: WLBP's energy win.
        wl_writes = result.weight_loads * config.num_pes
        weight = wl_writes * lib.weight_load_energy_per_pe_pj * 1e-12

        # Tile-register traffic per mm: read 16 A rows + 16 C rows + drain 16
        # result rows; plus 16 B rows per performed WL.
        rows = result.mm_count * 3 * ROWS + result.weight_loads * ROWS
        treg = rows * lib.treg_row_access_energy_pj * 1e-12

        return EnergyBreakdown(static_j=static, mac_j=mac, weight_load_j=weight, treg_j=treg)

    def efficiency_vs(
        self,
        result: SimResult,
        config: EngineConfig,
        baseline_result: SimResult,
        baseline_config: EngineConfig,
    ) -> float:
        """Energy-efficiency gain over the baseline (>1 means better)."""
        design = self.run_energy(result, config).total_j
        base = self.run_energy(baseline_result, baseline_config).total_j
        return base / design if design else 0.0
