"""Exception hierarchy for the RASA reproduction library.

All exceptions raised by :mod:`repro` derive from :class:`ReproError`, so
callers can catch library errors without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid configuration value or combination was supplied."""


class IsaError(ReproError):
    """An ISA-level violation: bad opcode, operand, or encoding."""


class AssemblerError(IsaError):
    """The textual assembler rejected the input program."""


class VerificationError(IsaError):
    """The static verifier found diagnostics in a program that must be clean."""


class TileError(ReproError):
    """A tile-register access violated the tile layout or typing rules."""


class SimError(ReproError):
    """A simulator reached an inconsistent state (internal invariant broke)."""


class ScheduleError(SimError):
    """The engine sub-stage scheduler produced or detected an illegal overlap."""


class WorkloadError(ReproError):
    """A workload/layer definition is malformed or cannot be lowered."""


class ExperimentError(ReproError):
    """An experiment driver was given an inconsistent sweep or grid."""


class ServiceError(ReproError):
    """The sweep service rejected a request or could not be reached."""


class ServiceLookupError(ServiceError):
    """A service request named a plan or shard the job store does not hold."""


class TransitionError(ServiceError):
    """A shard lifecycle transition outside the legal-transition matrix."""
