"""Shared utilities: argument validation and table formatting."""

from repro.utils.validation import check_positive, check_power_of_two, check_in_range
from repro.utils.tables import format_table, format_series

__all__ = [
    "check_positive",
    "check_power_of_two",
    "check_in_range",
    "format_table",
    "format_series",
]
