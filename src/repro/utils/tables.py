"""ASCII table and series formatting for the benchmark harness.

The paper reports results as figures and tables; our benches print the same
rows/series as plain text.  These helpers keep the printing consistent across
every experiment driver.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render ``rows`` under ``headers`` as a fixed-width ASCII table.

    Floats are shown with four significant digits; everything else uses
    ``str``.  Returns the rendered table as a single string (no trailing
    newline) so callers can ``print`` or log it.
    """
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in str_rows)
    return "\n".join(lines)


def format_series(
    name: str,
    xs: Sequence[object],
    ys: Sequence[float],
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render an (x, y) series the way a figure axis would enumerate it."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    rows = [(x, y) for x, y in zip(xs, ys)]
    return format_table([x_label, y_label], rows, title=name)
