"""Small argument-checking helpers used across the library.

These raise :class:`repro.errors.ConfigError` with a message naming the
offending parameter, so configuration mistakes fail fast and readably.
"""

from __future__ import annotations

from repro.errors import ConfigError


def check_positive(name: str, value: int) -> int:
    """Return ``value`` if it is a positive integer, else raise ConfigError."""
    if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
        raise ConfigError(f"{name} must be a positive integer, got {value!r}")
    return value


def check_non_negative(name: str, value: int) -> int:
    """Return ``value`` if it is a non-negative integer, else raise ConfigError."""
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise ConfigError(f"{name} must be a non-negative integer, got {value!r}")
    return value


def check_power_of_two(name: str, value: int) -> int:
    """Return ``value`` if it is a positive power of two, else raise ConfigError."""
    check_positive(name, value)
    if value & (value - 1):
        raise ConfigError(f"{name} must be a power of two, got {value!r}")
    return value


def check_in_range(name: str, value: int, low: int, high: int) -> int:
    """Return ``value`` if ``low <= value <= high``, else raise ConfigError."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise ConfigError(f"{name} must be an integer, got {value!r}")
    if not low <= value <= high:
        raise ConfigError(f"{name} must be in [{low}, {high}], got {value!r}")
    return value


def check_multiple_of(name: str, value: int, factor: int) -> int:
    """Return ``value`` if it is a positive multiple of ``factor``."""
    check_positive(name, value)
    if value % factor:
        raise ConfigError(f"{name} must be a multiple of {factor}, got {value!r}")
    return value
