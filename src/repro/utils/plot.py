"""Minimal ASCII line plots for figure-shaped benchmark output.

The paper's figures are line/bar charts; the bench harness prints tables by
default, and these helpers add a quick visual for the line figures (Fig. 2's
utilization curves, Fig. 7's batch series) without any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

_MARKS = "ox+*#@%&"


def ascii_plot(
    series: Dict[str, Sequence[float]],
    x_labels: Sequence[object],
    height: int = 12,
    y_min: float = None,
    y_max: float = None,
    title: str = "",
) -> str:
    """Plot one or more y-series over a shared categorical x axis.

    Args:
        series: {label: y values}; all series must match ``x_labels`` length.
        x_labels: x-axis tick labels (one column per point).
        height: plot rows.
        y_min, y_max: axis range (defaults to the data range).
        title: optional heading.

    Returns:
        The rendered plot with a legend mapping marks to series labels.
    """
    if not series:
        raise ValueError("ascii_plot needs at least one series")
    for label, ys in series.items():
        if len(ys) != len(x_labels):
            raise ValueError(f"series {label!r} length != x_labels length")
    values: List[float] = [y for ys in series.values() for y in ys]
    lo = min(values) if y_min is None else y_min
    hi = max(values) if y_max is None else y_max
    if hi == lo:
        hi = lo + 1.0
    cols = len(x_labels)
    grid = [[" "] * cols for _ in range(height)]
    for index, (label, ys) in enumerate(series.items()):
        mark = _MARKS[index % len(_MARKS)]
        for col, y in enumerate(ys):
            frac = (y - lo) / (hi - lo)
            row = height - 1 - round(frac * (height - 1))
            row = min(max(row, 0), height - 1)
            grid[row][col] = mark

    axis_width = 9
    lines = []
    if title:
        lines.append(title)
    for row in range(height):
        frac = 1.0 - row / (height - 1)
        tick = lo + frac * (hi - lo)
        lines.append(f"{tick:>{axis_width - 2}.3f} |" + " ".join(grid[row]))
    lines.append(" " * (axis_width - 1) + "+" + "-" * (2 * cols - 1))
    tick_row = " " * axis_width + " ".join(
        str(x)[0] for x in x_labels
    )
    lines.append(tick_row)
    legend = "  ".join(
        f"{_MARKS[i % len(_MARKS)]}={label}" for i, label in enumerate(series)
    )
    lines.append(f"x: {', '.join(str(x) for x in x_labels)}")
    lines.append(f"legend: {legend}")
    return "\n".join(lines)
