"""Persistent memoization of :class:`SimResult`s.

Simulations here are deterministic: the same (design, workload shape, core
config, codegen options, simulator version) always produces the same
:class:`SimResult`.  :class:`ResultCache` exploits that with an on-disk JSON
store keyed by :func:`cache_key` — a SHA-256 over a canonical JSON rendering
of the full simulation input plus :data:`CODE_VERSION`.

Bump :data:`CODE_VERSION` whenever a change alters *timing semantics*
(scheduler, core models, codegen ordering) or the key schema itself: every
existing key is thereby invalidated without touching the store.

Keys are **label-independent**: dataclass fields declared with
``metadata={"cache_key": False}`` (display labels such as
:attr:`repro.workloads.gemm.GemmShape.name`) are skipped by the canonical
rendering, so two simulations that differ only in how a layer is *named*
share one key.  Full-model suites rely on this — BERT-base's 48
identically-shaped q/k/v/attn-out projections collapse to a single cached
entry.

The store location defaults to ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``;
writes are atomic (tempfile + ``os.replace``, so concurrent readers only
ever see a complete file) and corrupt/partial/alien files load as an empty
cache with a :class:`RuntimeWarning` rather than an error — sweep-service
workers sharing one store must degrade to re-simulating, never crash.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import tempfile
import warnings
from pathlib import Path
from typing import Any, Dict, Optional

from repro.cpu.result import SimResult

#: Bump on any change to timing semantics or the key schema; invalidates
#: every cached result.  History: 1 = initial schema; 2 = display labels
#: (``cache_key: False`` fields) excluded from keys; 3 = shapes keyed by
#: their tile-padded dimensions (sub-tile shapes lower to identical
#: streams, so e.g. batches 1..16 of an FC layer share one entry).
CODE_VERSION = 3

_CACHE_FILENAME = "simresults.json"


def _canonical(value: Any) -> Any:
    """Render configs/shapes as JSON-stable primitives (order-independent).

    Dataclass fields marked ``metadata={"cache_key": False}`` are display
    labels, not simulation inputs, and are excluded from the rendering.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: _canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
            if f.metadata.get("cache_key", True)
        }
        return {"__type__": type(value).__name__, **fields}
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(f"cannot canonicalize {type(value).__name__!r} for cache keys")


def cache_key(
    design_key: str,
    shape: Any,
    core: Any,
    codegen: Any,
    fidelity: str = "fast",
    version: int = CODE_VERSION,
) -> str:
    """Stable hash of one simulation's full input.

    ``shape``/``core``/``codegen`` are the (frozen) dataclasses the runner
    uses; any *semantic* field change — including nested enums like the mm
    ordering — produces a different key, as does a :data:`CODE_VERSION`
    bump.  Display labels (``cache_key: False`` fields, e.g. the shape's
    ``name``) do not participate: identically-dimensioned GEMMs hit the
    same entry regardless of what their layers are called.

    Shapes that expose ``tile_padded()`` (:class:`~repro.workloads.gemm.
    GemmShape`) are keyed by their tile-*padded* dimensions: codegen pads
    up to whole rasa_mm tiles before lowering, so sub-tile variants issue
    the same stream and share one entry — batch-axis sweeps lean on this
    to collapse batches 1..16 of an FC layer onto a single simulation.
    """
    tile_padded = getattr(shape, "tile_padded", None)
    if tile_padded is not None:
        shape = tile_padded()
    payload = {
        "design": design_key,
        "shape": _canonical(shape),
        "core": _canonical(core),
        "codegen": _canonical(codegen),
        "fidelity": fidelity,
        "version": version,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


class ResultCache:
    """A dict-like JSON-backed store of :class:`SimResult` by cache key.

    Usage::

        cache = ResultCache()               # default location
        result = cache.get(key)             # None on miss
        cache.put(key, result)
        cache.flush()                       # atomic write-back

    ``hits``/``misses`` count ``get`` outcomes since construction.
    """

    def __init__(self, directory: Optional[Path] = None) -> None:
        self.directory = Path(directory) if directory is not None else default_cache_dir()
        self.path = self.directory / _CACHE_FILENAME
        self._entries: Dict[str, Dict[str, Any]] = self._load()
        self._dirty = False
        self._cleared = False
        self.hits = 0
        self.misses = 0

    def _load(self) -> Dict[str, Dict[str, Any]]:
        """Read the store, treating damage as an empty cache — with a warning.

        A missing file is the normal cold start and stays silent.  A file
        that exists but does not parse (a writer was killed mid-write
        before the atomic rename existed, or the file was truncated or
        hand-edited) or parses to something other than the store schema
        warns and yields an empty cache: concurrent service workers must
        degrade to re-simulating, never crash.  The next flush rewrites
        the file atomically and the store heals.
        """
        try:
            text = self.path.read_text()
        except OSError:
            return {}  # no store yet: the normal cold start
        try:
            raw = json.loads(text)
        except ValueError:
            self._warn_damaged("is corrupt or partially written")
            return {}
        if not isinstance(raw, dict) or raw.get("format") != 1:
            self._warn_damaged("has an unrecognized format")
            return {}
        entries = raw.get("results")
        if not isinstance(entries, dict):
            self._warn_damaged("has no result section")
            return {}
        return entries

    def _warn_damaged(self, what: str) -> None:
        warnings.warn(
            f"result cache {self.path} {what}; treating it as empty "
            "(it will be rewritten on the next flush)",
            RuntimeWarning,
            stacklevel=3,
        )

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Optional[SimResult]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        try:
            result = SimResult(**entry)
        except TypeError:
            # Field set drifted without a version bump: drop the stale entry.
            del self._entries[key]
            self._dirty = True
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: SimResult) -> None:
        self._entries[key] = dataclasses.asdict(result)
        self._dirty = True

    def clear(self) -> None:
        """Drop every entry; the next flush truncates the store (no merge)."""
        self._entries = {}
        self._dirty = True
        self._cleared = True

    def flush(self) -> None:
        """Atomically persist pending entries (no-op when nothing changed).

        Entries written to the file by other processes since this cache
        loaded are re-read and merged first (our entries win ties), so
        concurrent sweeps sharing one store don't drop each other's work.
        """
        if not self._dirty:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        if not self._cleared:
            merged = self._load()
            merged.update(self._entries)
            self._entries = merged
        payload = json.dumps({"format": 1, "results": self._entries})
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._dirty = False
        self._cleared = False
