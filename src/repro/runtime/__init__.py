"""``repro.runtime`` — the unified execution layer.

Every simulation in the repository — engine-bound, in-order fast-model, or
cycle-accurate OoO — runs through this subsystem:

- :mod:`repro.runtime.backend` defines the :class:`SimBackend` protocol
  (``prepare(program)`` then ``run()`` -> :class:`repro.cpu.result.SimResult`)
  and the three adapters wrapping :class:`repro.engine.engine.MatrixEngine`,
  :class:`repro.cpu.fast.FastCoreModel` and
  :class:`repro.cpu.ooo.core.OutOfOrderCore`;
- :mod:`repro.runtime.registry` maps (design key x fidelity) to a ready
  backend in one lookup (:func:`resolve_backend`);
- :mod:`repro.runtime.cache` persists :class:`SimResult`s in an on-disk
  JSON store keyed by a stable, *label-independent* hash of the full
  simulation input (bump :data:`CODE_VERSION` on timing or key-schema
  changes — version 2 dropped display labels from keys, version 3 keys
  shapes by their tile-padded dimensions);
- :mod:`repro.runtime.sweep` fans (design x workload x settings) grids out
  over ``multiprocessing`` workers with cache-aware memoization
  (:class:`SweepRunner`), deduplicates jobs so each distinct point
  simulates once per sweep, and aggregates whole-model
  :class:`repro.workloads.suites.WorkloadSuite` multisets into
  occurrence-weighted end-to-end totals (:meth:`SweepRunner.run_suite` ->
  :class:`SuiteTotals`).

The experiment drivers (:mod:`repro.experiments`), the CLI (``repro sweep``)
and the benchmark suite are all thin clients of this layer; future scaling
work (sharding, async serving, new backends) plugs in here.
"""

from repro.runtime.backend import (
    EngineBackend,
    FastCoreBackend,
    OoOCoreBackend,
    SimBackend,
)
from repro.runtime.cache import CODE_VERSION, ResultCache, cache_key
from repro.runtime.registry import (
    FIDELITIES,
    register_backend,
    resolve_backend,
)
from repro.runtime.sweep import (
    PROGRAM_CACHE_SIZE,
    SuiteBatchCurve,
    SuiteTotals,
    SweepJob,
    SweepRunner,
    cached_program,
)

__all__ = [
    "SimBackend",
    "EngineBackend",
    "FastCoreBackend",
    "OoOCoreBackend",
    "FIDELITIES",
    "register_backend",
    "resolve_backend",
    "ResultCache",
    "cache_key",
    "CODE_VERSION",
    "SweepJob",
    "SweepRunner",
    "SuiteTotals",
    "SuiteBatchCurve",
    "PROGRAM_CACHE_SIZE",
    "cached_program",
]
