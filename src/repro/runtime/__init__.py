"""``repro.runtime`` — the unified execution layer.

Every simulation in the repository — engine-bound, in-order fast-model, or
cycle-accurate OoO — runs through this subsystem:

- :mod:`repro.runtime.backend` defines the :class:`SimBackend` protocol
  (``prepare(program)`` then ``run()`` -> :class:`repro.cpu.result.SimResult`)
  and the three adapters wrapping :class:`repro.engine.engine.MatrixEngine`,
  :class:`repro.cpu.fast.FastCoreModel` and
  :class:`repro.cpu.ooo.core.OutOfOrderCore`;
- :mod:`repro.runtime.registry` maps (design key x fidelity) to a ready
  backend in one lookup (:func:`resolve_backend`);
- :mod:`repro.runtime.cache` persists :class:`SimResult`s in an on-disk
  JSON store keyed by a stable, *label-independent* hash of the full
  simulation input (bump :data:`CODE_VERSION` on timing or key-schema
  changes — version 2 dropped display labels from keys, version 3 keys
  shapes by their tile-padded dimensions);
- :mod:`repro.runtime.plan` declares sweeps: a frozen, serializable
  :class:`SweepPlan` (designs x workloads/suites x batches x knobs x
  fidelity) that expands lazily to dedup-keyed :class:`SweepJob`\\ s,
  shards deterministically (:meth:`SweepPlan.shard`), and round-trips
  through canonical JSON; results come back as a :class:`SweepReport`
  with typed views (``grid()``, ``suite_totals()``, ``batch_curves()``)
  and bit-identical shard merging;
- :mod:`repro.runtime.session` executes plans: a :class:`Session` owns
  the result cache, backend resolution and the ``multiprocessing`` pool,
  and exposes the single entry point ``session.run(plan)`` with
  crash-safe streaming write-back.

(The deprecated ``SweepRunner.run_*`` shim family is gone: every driver,
bench and test declares a :class:`SweepPlan` and runs it through a
:class:`Session` — see the README migration table.)

The experiment drivers (:mod:`repro.experiments`), the CLI (``repro
sweep`` / ``repro plan``) and the benchmark suite are all thin clients of
this layer; future scaling work (multi-host sharding, async serving, new
backends) plugs in here.
"""

from repro.runtime.backend import (
    AnalyticBackend,
    EngineBackend,
    FastCoreBackend,
    OoOCoreBackend,
    ShapeBackend,
    SimBackend,
)
from repro.runtime.cache import CODE_VERSION, ResultCache, cache_key
from repro.runtime.plan import (
    PLAN_FORMAT,
    SuiteBatchCurve,
    SuiteTotals,
    SweepJob,
    SweepPlan,
    SweepReport,
)
from repro.runtime.registry import (
    FIDELITIES,
    register_backend,
    resolve_backend,
)
from repro.runtime.session import PROGRAM_CACHE_SIZE, Session, cached_program

__all__ = [
    "SimBackend",
    "ShapeBackend",
    "AnalyticBackend",
    "EngineBackend",
    "FastCoreBackend",
    "OoOCoreBackend",
    "FIDELITIES",
    "register_backend",
    "resolve_backend",
    "ResultCache",
    "cache_key",
    "CODE_VERSION",
    "PLAN_FORMAT",
    "SweepJob",
    "SweepPlan",
    "SweepReport",
    "Session",
    "SuiteTotals",
    "SuiteBatchCurve",
    "PROGRAM_CACHE_SIZE",
    "cached_program",
]
