"""Sessions: the one execution facade behind every sweep.

A :class:`Session` owns the three resources a sweep needs — the persistent
:class:`repro.runtime.cache.ResultCache`, backend resolution through the
fidelity registry, and the ``multiprocessing`` worker pool — and exposes a
single entry point: :meth:`Session.run` takes a declarative
:class:`repro.runtime.plan.SweepPlan` and returns a
:class:`repro.runtime.plan.SweepReport`.

Execution layers three accelerations on top of the backend registry:

1. **memoization** — each distinct point's cache key is looked up in the
   result cache first; only misses simulate, and every fresh result is
   written back;
2. **deduplication** — points are identified by their cache key, which is
   *label-independent* and keyed on tile-*padded* dims (see
   :mod:`repro.runtime.cache`): within one run, every distinct
   (design, padded dims, core, codegen, fidelity) point simulates
   **exactly once**, no matter how many plan jobs map onto it.  Full-model
   suites lean on this hard — BERT-base's 72 per-layer GEMMs are 3
   distinct points — and batch axes lean on the padding: batches 1..16 of
   an FC layer are one point;
3. **parallelism** — misses fan out over a ``multiprocessing`` pool
   (``fork`` start method where available, so workers inherit the warm
   per-process program cache).  The pool is created lazily and *persists
   across* ``run()`` calls — multi-plan sessions pay the fork cost once —
   and tasks submit in computed chunks rather than one IPC round trip per
   job.  ``workers=1`` — or a single-CPU host — degrades to plain serial
   execution in-process, with bit-identical results: jobs are independent
   deterministic simulations.

Write-back is **crash-safe**: results stream back from the pool
*unordered*, each is written to the cache the moment it completes, and
the cache flushes in a ``finally`` block — a job that raises loses only
the genuinely unfinished work, never a point that already completed,
regardless of submission order.  (A worker *process* that dies outright —
OOM kill, segfault — is a ``multiprocessing.Pool`` limitation: that one
task's result never arrives, so the run eventually blocks until
interrupted; every completed point still flushes on that interrupt via
the same ``finally``.)

Sharded plans (:meth:`repro.runtime.plan.SweepPlan.shard`) run only the
distinct keys the shard owns; the partial reports merge bit-identically
into the unsharded result (:meth:`repro.runtime.plan.SweepReport.merge`),
which is what lets one plan fan out across hosts.

Program generation is itself memoized per process keyed on the *unlabeled*
``(shape, codegen)`` (bounded by :data:`PROGRAM_CACHE_SIZE`): the usual
grid runs every design on the same programs, so each worker lowers each
distinct GEMM only once.
"""

from __future__ import annotations

import functools
import multiprocessing
import multiprocessing.pool
import os
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Dict, Iterator, Optional, Sequence

if TYPE_CHECKING:
    from repro.analysis.bounds import BoundsReport, BoundsSweep

from repro.cpu.result import SimResult
from repro.errors import ExperimentError, VerificationError
from repro.isa.program import Program
from repro.runtime.cache import ResultCache
from repro.runtime.plan import SweepJob, SweepPlan, SweepReport
from repro.runtime.registry import resolve_backend
from repro.workloads.codegen import CodegenOptions, generate_gemm_program
from repro.workloads.gemm import GemmShape

#: Bound of the per-process program memo.  32 thrashed on full-model suites
#: (ResNet-50 alone lowers 53 shapes); 256 holds every catalog in the
#: repository simultaneously with room for ad-hoc shapes.
PROGRAM_CACHE_SIZE = 256


@functools.lru_cache(maxsize=PROGRAM_CACHE_SIZE)
def _unlabeled_program(shape: GemmShape, codegen: CodegenOptions) -> Program:
    return generate_gemm_program(shape, codegen)


def cached_program(shape: GemmShape, codegen: CodegenOptions) -> Program:
    """Per-process program cache: every design reuses one lowered stream.

    Memoized on the *unlabeled* shape — a GEMM's display name never changes
    the generated stream, so BERT's 48 identically-shaped projections share
    one lowering.  Introspect/reset via ``cached_program.cache_info()`` /
    ``cached_program.cache_clear()``.
    """
    return _unlabeled_program(shape.unlabeled(), codegen)


cached_program.cache_info = _unlabeled_program.cache_info
cached_program.cache_clear = _unlabeled_program.cache_clear


def _execute_job(job: SweepJob) -> SimResult:
    """Simulate one job (top-level so worker processes can unpickle it).

    Shape-level backends (``run_shape``, e.g. the analytic fidelity) skip
    program generation entirely — no lowering, no instruction walk; the
    program-based fidelities go through the per-process program memo.
    """
    backend = resolve_backend(job.design_key, fidelity=job.fidelity, core=job.core)
    run_shape = getattr(backend, "run_shape", None)
    if run_shape is not None:
        return run_shape(job.shape, job.codegen)
    program = cached_program(job.shape, job.codegen)
    return backend.prepare(program).run()


def _execute_indexed(item: "tuple[int, SweepJob]") -> "tuple[int, SimResult]":
    """Pool task keeping the submission index with its result.

    Results stream back *unordered* (see :meth:`Session._simulate`) so a
    slow or dying job cannot withhold completed later results from the
    cache; the index maps each arrival back to its key.
    """
    index, job = item
    return index, _execute_job(job)


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer ``fork`` (cheap, inherits warm caches); fall back otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def _env_workers() -> Optional[int]:
    """Parse ``REPRO_SWEEP_WORKERS`` (``None`` when unset)."""
    env = os.environ.get("REPRO_SWEEP_WORKERS")
    if not env:
        return None
    try:
        workers = int(env)
    except ValueError:
        raise ExperimentError(
            f"REPRO_SWEEP_WORKERS must be an integer worker count, got {env!r}"
        ) from None
    if workers < 1:
        raise ExperimentError(
            "REPRO_SWEEP_WORKERS must be a positive worker count, got "
            f"{env!r}; use 1 for serial execution or unset it for the "
            "CPU-count default"
        )
    return workers


class Session:
    """Run :class:`SweepPlan`\\ s: cache, backend registry, worker pool.

    Args:
        cache: a :class:`ResultCache` for persistent memoization, or
            ``None`` to always simulate.
        workers: worker process count for cache misses; defaults to the
            CPU count.  ``1`` forces serial in-process execution; zero or
            negative counts are rejected with :class:`ExperimentError`
            rather than silently degrading to serial.
        verify: statically lint each distinct program through
            :func:`repro.analysis.verifier.lint_shape` before anything
            simulates, raising :class:`repro.errors.VerificationError` on
            any diagnostic.  Each program identity (tile-padded unlabeled
            shape + codegen options — at most one lint per cache key) is
            verified once per session, so repeated ``run()`` calls and
            multi-design grids pay the pass once per distinct stream.
    """

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        workers: Optional[int] = None,
        verify: bool = False,
    ) -> None:
        self.cache = cache
        if workers is None:
            workers = os.cpu_count() or 1
        if not isinstance(workers, int) or isinstance(workers, bool) or workers < 1:
            raise ExperimentError(
                f"workers must be a positive integer, got {workers!r}; "
                "use workers=1 for serial execution"
            )
        self.workers = workers
        self.verify = verify
        # Lazily created, persists across run() calls.
        self._pool: Optional[multiprocessing.pool.Pool] = None
        self._verified: "set[tuple[GemmShape, CodegenOptions]]" = set()
        self._bounds_memo: "Dict[Tuple[object, ...], BoundsReport]" = {}

    @classmethod
    def from_env(
        cls,
        workers: Optional[int] = None,
        cache_dir: Optional[Path] = None,
        use_cache: bool = True,
        verify: bool = False,
    ) -> "Session":
        """The session the experiment drivers and the CLI share.

        Environment knobs:

        - ``REPRO_SWEEP_WORKERS`` — worker count (default: CPU count);
        - ``REPRO_NO_CACHE``      — any non-empty value disables the cache;
        - ``REPRO_CACHE_DIR``     — cache location (default ``~/.cache/repro``).
        """
        if use_cache and not os.environ.get("REPRO_NO_CACHE"):
            cache: Optional[ResultCache] = ResultCache(cache_dir)
        else:
            cache = None
        if workers is None:
            workers = _env_workers()
        return cls(cache=cache, workers=workers, verify=verify)

    # -- execution -----------------------------------------------------------------

    def run(
        self,
        plan: SweepPlan,
        progress: Optional[Callable[[int, int], None]] = None,
    ) -> SweepReport:
        """Execute a plan (or the shard of it the plan owns).

        Each job's key (a canonical-JSON SHA-256) is computed exactly once
        per run; dedup, the cache lookup, the shard filter, the miss
        write-back and the report's positional views all reuse the
        precomputed keys.  Results completed before a mid-run crash are
        already in the cache — write-back streams per result and flushes
        in a ``finally``.

        Args:
            plan: the declarative sweep description.
            progress: optional ``(completed, total)`` callback over the
                run's *distinct* points — called once after the cache scan
                and once per simulated result, from this thread.  The
                service worker forwards it into heartbeat payloads so a
                nearly-done shard is visible before a reaper requeue.
        """
        jobs = plan.expanded_jobs()  # one expansion + one hash per job, ever
        keys = plan.job_keys()
        distinct: Dict[str, SweepJob] = {}
        for key, job in zip(keys, jobs):
            if key not in distinct:
                distinct[key] = job
        if plan.shard_spec is not None:
            owned = set(plan.shard_keys())  # the partition's single source
            distinct = {k: j for k, j in distinct.items() if k in owned}
        if self.verify:
            self._verify_jobs(distinct.values())
        results: Dict[str, SimResult] = {}
        misses: Dict[str, SweepJob] = {}
        for key, job in distinct.items():
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None:
                results[key] = cached
            else:
                misses[key] = job
        miss_keys = list(misses)
        total = len(distinct)
        completed = len(results)
        if progress is not None:
            progress(completed, total)
        try:
            for index, result in self._simulate(list(misses.values())):
                results[miss_keys[index]] = result
                if self.cache is not None:
                    self.cache.put(miss_keys[index], result)
                completed += 1
                if progress is not None:
                    progress(completed, total)
        finally:
            if self.cache is not None:
                self.cache.flush()
        return SweepReport(
            plan=plan,
            results=results,
            simulated=len(misses),
            cache_hits=len(distinct) - len(misses),
        )

    def bounds(self, plan: SweepPlan) -> "BoundsSweep":
        """Static cycle bounds for every distinct point the plan (shard) owns.

        Returns a :class:`repro.analysis.bounds.BoundsSweep` mapping each
        owned distinct cache key to its
        :class:`~repro.analysis.bounds.BoundsReport` — no simulation, no
        cache: the bounds are pure functions of (program, design, core).
        Dedup and sharding follow :meth:`run` exactly, so shard sweeps
        :meth:`~repro.analysis.bounds.BoundsSweep.merge` bit-identically
        into the unsharded result.  Reports memoize per session on the
        point's bound identity (design, tile-padded unlabeled shape,
        codegen, core), mirroring the verify memo.
        """
        from repro.analysis import bounds as bounds_analysis  # deferred, like verify

        jobs = plan.expanded_jobs()
        keys = plan.job_keys()
        distinct: Dict[str, SweepJob] = {}
        for key, job in zip(keys, jobs):
            if key not in distinct:
                distinct[key] = job
        if plan.shard_spec is not None:
            owned = set(plan.shard_keys())
            distinct = {k: j for k, j in distinct.items() if k in owned}
        reports: "Dict[str, BoundsReport]" = {}
        for key, job in distinct.items():
            identity = (
                job.design_key,
                job.shape.tile_padded().unlabeled(),
                job.codegen,
                job.core,
            )
            if identity not in self._bounds_memo:
                program = cached_program(job.shape, job.codegen)
                self._bounds_memo[identity] = bounds_analysis.bound_program(
                    program, job.design_key, core=job.core
                )
            reports[key] = self._bounds_memo[identity]
        return bounds_analysis.BoundsSweep(reports=reports)

    def _verify_jobs(self, jobs: "Iterable[SweepJob]") -> None:
        """Lint every distinct program before simulation (``verify=True``).

        Diagnostics are design-independent — the stream is a function of
        (shape, codegen) only — so the lint memoizes on the tile-padded
        unlabeled program identity: a grid of 8 designs over one GEMM
        verifies once, and sessions running many plans never re-lint a
        stream they already proved clean.  Shape-level (analytic) jobs are
        linted too: the whole point is checking the program the closed
        forms claim to summarize.
        """
        from repro.analysis import verifier  # deferred: pulls in codegen + engine

        for job in jobs:
            identity = (job.shape.tile_padded(), job.codegen)
            if identity in self._verified:
                continue
            report = verifier.lint_shape(job.shape, job.codegen)
            if report.diagnostics:
                shown = "; ".join(str(d) for d in report.diagnostics[:3])
                more = len(report.diagnostics) - 3
                raise VerificationError(
                    f"program for {job.shape} failed static verification "
                    f"with {len(report.diagnostics)} diagnostic(s): {shown}"
                    + (f"; +{more} more" if more > 0 else "")
                )
            self._verified.add(identity)

    def _simulate(
        self, jobs: Sequence[SweepJob]
    ) -> Iterator["tuple[int, SimResult]"]:
        """Yield ``(submission index, result)`` pairs as jobs complete.

        Parallel runs stream **unordered** (``imap_unordered``, one task
        per job): every finished result reaches the caller — and the
        cache — immediately, so a slow, failed, or killed job never
        withholds the points that already completed.
        """
        if not jobs:
            return
        if self.workers <= 1 or len(jobs) == 1:
            for index, job in enumerate(jobs):
                yield index, _execute_job(job)
            return
        # Batch IPC: one task per job was one pickled round trip per point,
        # which dominated wall time once the analytic tier made the points
        # themselves cheap.  Chunks of jobs/(workers*4) keep every worker
        # busy (4 chunks each smooths uneven chunk durations) while cutting
        # round trips by the chunk size.
        chunksize = max(1, len(jobs) // (self.workers * 4))
        yield from self._get_pool().imap_unordered(
            _execute_indexed, enumerate(jobs), chunksize=chunksize
        )

    # -- worker-pool lifecycle -------------------------------------------------------

    def _get_pool(self) -> multiprocessing.pool.Pool:
        """The persistent worker pool, created on first parallel fan-out.

        Spawning a ``multiprocessing.Pool`` costs tens of milliseconds plus
        a fork per worker; sessions that run many plans (sweep suites, the
        benchmark harness, notebook loops) previously paid it per ``run()``
        call.  The pool now lives until :meth:`close`.  Workers inherit the
        process state (fidelity registry, program memo) from pool-creation
        time — register custom fidelities before the first parallel run.
        """
        if self._pool is None:
            self._pool = _pool_context().Pool(processes=self.workers)
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool (idempotent; the pool respawns on use)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass  # interpreter teardown; the pool's own finalizer handles it
