"""Parallel, cache-backed sweep execution.

A sweep is a flat list of :class:`SweepJob`s — one (design, workload shape,
core config, codegen options, fidelity) tuple each.  :class:`SweepRunner`
executes them with two accelerations layered on top of the backend
registry:

1. **memoization** — each job's :func:`repro.runtime.cache.cache_key` is
   looked up in a :class:`repro.runtime.cache.ResultCache` first; only
   misses simulate, and fresh results are written back once at the end;
2. **deduplication** — jobs are identified by their cache key, which is
   *label-independent* and keyed on tile-*padded* dims (see
   :mod:`repro.runtime.cache`): within one sweep, every distinct
   (design, padded dims, core, codegen, fidelity) point simulates
   **exactly once**, no matter how many jobs map to it or what their shapes
   are named.  Full-model suites lean on this hard — BERT-base's 72
   per-layer GEMMs are only 3 distinct points — and batch sweeps lean on
   the padding: batches 1..16 of an FC layer are one point;
3. **parallelism** — misses fan out over a ``multiprocessing`` pool
   (``fork`` start method where available, so workers inherit the warm
   per-process program cache).  ``workers=1`` — or a single-CPU host —
   degrades to plain serial execution in-process, with bit-identical
   results: jobs are independent deterministic simulations.

Program generation is itself memoized per process keyed on the *unlabeled*
``(shape, codegen)`` (bounded by :data:`PROGRAM_CACHE_SIZE`): the usual
grid runs every design on the same programs, so each worker lowers each
distinct GEMM only once.

:meth:`SweepRunner.run_suite` layers model-level aggregation on top: a
:class:`repro.workloads.suites.WorkloadSuite` multiset is simulated at its
distinct shapes only, then expanded back into occurrence-weighted
end-to-end totals (:class:`SuiteTotals`) per design.

:meth:`SweepRunner.run_suite_batches` adds the batch axis (the paper's
Fig. 7, at model granularity): every registered suite is rebuilt at each
requested batch via :meth:`repro.workloads.suites.SuiteSpec.build` and all
(suite, batch, design) points go through **one** flat job list, so the key
dedup above also collapses duplicates *across batches* — cache keys use
tile-padded dimensions, so sub-tile batches that lower to identical
streams simulate once.  The result is a :class:`SuiteBatchCurve` per
(suite, design): occurrence-weighted end-to-end totals along the batch
axis, normalizable against the baseline design's curve.
"""

from __future__ import annotations

import dataclasses
import functools
import multiprocessing
import os
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.cpu.config import CoreConfig
from repro.cpu.result import SimResult
from repro.errors import ExperimentError
from repro.isa.program import Program
from repro.runtime.cache import ResultCache, cache_key
from repro.runtime.registry import resolve_backend
from repro.workloads.codegen import CodegenOptions, generate_gemm_program
from repro.workloads.gemm import GemmShape
from repro.workloads.suites import SUITES, SuiteSpec, WorkloadSuite


@dataclasses.dataclass(frozen=True)
class SweepJob:
    """One simulation of the grid: design x shape under shared settings."""

    design_key: str
    shape: GemmShape
    workload: str = ""
    core: CoreConfig = dataclasses.field(default_factory=CoreConfig)
    codegen: CodegenOptions = dataclasses.field(default_factory=CodegenOptions)
    fidelity: str = "fast"

    @property
    def key(self) -> str:
        """The job's stable cache key."""
        return cache_key(
            self.design_key, self.shape, self.core, self.codegen, self.fidelity
        )


#: Bound of the per-process program memo.  32 thrashed on full-model suites
#: (ResNet-50 alone lowers 53 shapes); 256 holds every catalog in the
#: repository simultaneously with room for ad-hoc shapes.
PROGRAM_CACHE_SIZE = 256


@functools.lru_cache(maxsize=PROGRAM_CACHE_SIZE)
def _unlabeled_program(shape: GemmShape, codegen: CodegenOptions) -> Program:
    return generate_gemm_program(shape, codegen)


def cached_program(shape: GemmShape, codegen: CodegenOptions) -> Program:
    """Per-process program cache: every design reuses one lowered stream.

    Memoized on the *unlabeled* shape — a GEMM's display name never changes
    the generated stream, so BERT's 48 identically-shaped projections share
    one lowering.  Introspect/reset via ``cached_program.cache_info()`` /
    ``cached_program.cache_clear()``.
    """
    return _unlabeled_program(shape.unlabeled(), codegen)


cached_program.cache_info = _unlabeled_program.cache_info
cached_program.cache_clear = _unlabeled_program.cache_clear


def _execute_job(job: SweepJob) -> SimResult:
    """Simulate one job (top-level so worker processes can unpickle it)."""
    program = cached_program(job.shape, job.codegen)
    backend = resolve_backend(job.design_key, fidelity=job.fidelity, core=job.core)
    return backend.prepare(program).run()


@dataclasses.dataclass(frozen=True)
class SuiteTotals:
    """Occurrence-weighted end-to-end totals of one suite on one design.

    ``per_shape`` keeps the distinct points behind the aggregate as
    ``(representative shape, occurrence count, result)`` triples, so
    downstream consumers (energy models, reports) can re-weight without
    re-simulating.  ``cycles``/``instructions``/``mm_count``/
    ``bypass_count``/``weight_loads`` are the multiset-weighted sums —
    i.e. what a back-to-back run of every suite GEMM would accumulate.
    """

    suite: str
    design_key: str
    gemm_count: int      # suite GEMMs, duplicates included
    simulations: int     # distinct points actually simulated
    cycles: int
    instructions: int
    mm_count: int
    bypass_count: int
    weight_loads: int
    per_shape: Tuple[Tuple[GemmShape, int, SimResult], ...]

    @property
    def dedup_factor(self) -> float:
        """How many per-layer simulations each distinct point stood in for."""
        return self.gemm_count / self.simulations if self.simulations else 0.0

    def normalized_to(self, baseline: "SuiteTotals") -> float:
        """End-to-end runtime normalized to a baseline suite run.

        Raises :class:`ExperimentError` when the baseline ran in zero
        cycles — a silent 0.0 here would read as "infinitely fast".
        """
        if baseline.cycles == 0:
            raise ExperimentError(
                f"cannot normalize suite {self.suite!r}: baseline suite "
                f"{baseline.suite!r} on design {baseline.design_key!r} "
                "ran in zero cycles"
            )
        return self.cycles / baseline.cycles

    def speedup_over(self, baseline: "SuiteTotals") -> float:
        """End-to-end speedup over a baseline suite run (>1 is faster).

        Raises :class:`ExperimentError` when this suite ran in zero
        cycles — a silent 0.0 here would read as "no speedup at all".
        """
        if self.cycles == 0:
            raise ExperimentError(
                f"cannot compute speedup: suite {self.suite!r} on design "
                f"{self.design_key!r} ran in zero cycles"
            )
        return baseline.cycles / self.cycles


@dataclasses.dataclass(frozen=True)
class SuiteBatchCurve:
    """One suite's end-to-end totals along the batch axis, on one design.

    ``totals[i]`` are the occurrence-weighted :class:`SuiteTotals` of the
    suite rebuilt at ``batches[i]``.  Batches whose rebuilt shapes lower
    to streams already simulated at another batch (sub-tile batches, or
    batches the suite's geometry maps onto the same padded dims) share
    results — the curve stores the expanded per-batch view regardless, so
    every point is directly comparable to a standalone
    :meth:`SweepRunner.run_suite` at that batch.
    """

    suite: str
    design_key: str
    batches: Tuple[int, ...]
    totals: Tuple[SuiteTotals, ...]

    def __post_init__(self) -> None:
        if len(self.batches) != len(self.totals):
            raise ExperimentError(
                f"suite {self.suite!r} curve has {len(self.batches)} batches "
                f"but {len(self.totals)} totals"
            )

    def totals_by_batch(self) -> Dict[int, SuiteTotals]:
        """``{batch: totals}`` — the mapping view of the curve."""
        return dict(zip(self.batches, self.totals))

    def cycles_by_batch(self) -> Dict[int, int]:
        """``{batch: end-to-end cycles}`` along the curve."""
        return {b: t.cycles for b, t in zip(self.batches, self.totals)}

    def normalized_to(self, baseline: "SuiteBatchCurve") -> Dict[int, float]:
        """Per-batch normalized runtime against a baseline design's curve.

        This is the Fig. 7 y-axis at suite granularity: each batch's
        end-to-end cycles divided by the baseline design's cycles *at the
        same batch*.
        """
        if baseline.batches != self.batches:
            raise ExperimentError(
                f"cannot normalize suite {self.suite!r}: curve batches "
                f"{self.batches} do not match baseline batches "
                f"{baseline.batches}"
            )
        return {
            batch: mine.normalized_to(theirs)
            for batch, mine, theirs in zip(
                self.batches, self.totals, baseline.totals
            )
        }


def _validated_batches(batches: Sequence[int]) -> Tuple[int, ...]:
    """Check a batch axis: non-empty, positive integers, no duplicates."""
    batches = tuple(batches)
    if not batches:
        raise ExperimentError("a suite batch sweep needs at least one batch size")
    for batch in batches:
        if not isinstance(batch, int) or isinstance(batch, bool) or batch < 1:
            raise ExperimentError(
                f"batch sizes must be positive integers, got {batch!r}"
            )
    duplicates = sorted({b for b in batches if batches.count(b) > 1})
    if duplicates:
        raise ExperimentError(
            "suite batch curves are keyed by batch size; got duplicates: "
            f"{', '.join(str(b) for b in duplicates)}"
        )
    return batches


def _resolve_spec(spec: Union[str, SuiteSpec]) -> SuiteSpec:
    """Accept a registered suite name or a :class:`SuiteSpec` directly."""
    if isinstance(spec, SuiteSpec):
        return spec
    try:
        return SUITES[spec]
    except KeyError:
        raise ExperimentError(
            f"unknown workload suite {spec!r}; known: {', '.join(SUITES)}"
        ) from None


def _expand_totals(
    suite: WorkloadSuite,
    design: str,
    entries: Sequence,
    results: Iterator[SimResult],
) -> SuiteTotals:
    """Re-weight one design's distinct-point results into suite totals.

    Consumes exactly ``len(entries)`` results from ``results`` — callers
    iterate a flat result stream in job-submission order.
    """
    per_shape = tuple(
        (entry.shape, entry.count, next(results)) for entry in entries
    )
    return SuiteTotals(
        suite=suite.name,
        design_key=design,
        gemm_count=len(suite),
        simulations=len(entries),
        cycles=sum(c * r.cycles for _, c, r in per_shape),
        instructions=sum(c * r.instructions for _, c, r in per_shape),
        mm_count=sum(c * r.mm_count for _, c, r in per_shape),
        bypass_count=sum(c * r.bypass_count for _, c, r in per_shape),
        weight_loads=sum(c * r.weight_loads for _, c, r in per_shape),
        per_shape=per_shape,
    )


def _pool_context():
    """Prefer ``fork`` (cheap, inherits warm caches); fall back otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


class SweepRunner:
    """Run sweep grids through the backend layer, in parallel, memoized.

    Args:
        cache: a :class:`ResultCache` for persistent memoization, or
            ``None`` to always simulate.
        workers: worker process count for cache misses; defaults to the
            CPU count.  ``1`` forces serial in-process execution; zero or
            negative counts are rejected with :class:`ExperimentError`
            rather than silently degrading to serial.
    """

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        workers: Optional[int] = None,
    ):
        self.cache = cache
        if workers is None:
            workers = os.cpu_count() or 1
        if not isinstance(workers, int) or isinstance(workers, bool) or workers < 1:
            raise ExperimentError(
                f"workers must be a positive integer, got {workers!r}; "
                "use workers=1 for serial execution"
            )
        self.workers = workers

    # -- flat job lists ----------------------------------------------------------

    def run(self, jobs: Sequence[SweepJob]) -> List[SimResult]:
        """Execute ``jobs``; returns results aligned with the input order.

        Jobs are deduplicated by cache key *before* anything simulates:
        each distinct (design, padded dims, core, codegen, fidelity) point
        runs — and counts one cache miss — exactly once per sweep, however
        many input jobs collapse onto it.  Each job's key (a canonical-JSON
        SHA-256) is computed exactly once per run; the miss write-back and
        the final result gather reuse the precomputed keys.
        """
        jobs = list(jobs)
        keys = [job.key for job in jobs]
        by_key: Dict[str, SimResult] = {}
        misses: Dict[str, SweepJob] = {}  # insertion-ordered, key-distinct
        for key, job in zip(keys, jobs):
            if key in by_key or key in misses:
                continue
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None:
                by_key[key] = cached
            else:
                misses[key] = job
        for key, result in zip(misses, self._simulate(list(misses.values()))):
            by_key[key] = result
            if self.cache is not None:
                self.cache.put(key, result)
        if self.cache is not None:
            self.cache.flush()
        return [by_key[key] for key in keys]

    def _simulate(self, jobs: Sequence[SweepJob]) -> List[SimResult]:
        if not jobs:
            return []
        workers = min(self.workers, len(jobs))
        if workers <= 1:
            return [_execute_job(job) for job in jobs]
        ctx = _pool_context()
        chunksize = max(1, len(jobs) // (workers * 4))
        with ctx.Pool(processes=workers) as pool:
            return pool.map(_execute_job, jobs, chunksize=chunksize)

    # -- (design x workload) grids ----------------------------------------------

    def run_grid(
        self,
        design_keys: Iterable[str],
        shapes: Mapping[str, GemmShape],
        core: Optional[CoreConfig] = None,
        codegen: Optional[CodegenOptions] = None,
        fidelity: str = "fast",
    ) -> Dict[str, Dict[str, SimResult]]:
        """Run every design on every workload.

        Returns ``results[workload_name][design_key]`` — the layout the
        experiment drivers consume.
        """
        core = core if core is not None else CoreConfig()
        codegen = codegen if codegen is not None else CodegenOptions()
        design_keys = list(design_keys)
        jobs = [
            SweepJob(
                design_key=design,
                shape=shape,
                workload=name,
                core=core,
                codegen=codegen,
                fidelity=fidelity,
            )
            for name, shape in shapes.items()
            for design in design_keys
        ]
        results = self.run(jobs)
        grid: Dict[str, Dict[str, SimResult]] = {name: {} for name in shapes}
        for job, result in zip(jobs, results):
            grid[job.workload][job.design_key] = result
        return grid

    # -- (design x suite) multisets ----------------------------------------------

    def run_suite(
        self,
        design_keys: Iterable[str],
        suite: WorkloadSuite,
        core: Optional[CoreConfig] = None,
        codegen: Optional[CodegenOptions] = None,
        fidelity: str = "fast",
    ) -> Dict[str, SuiteTotals]:
        """Run a whole-model suite on every design, dedup-aware.

        Only the suite's *distinct* shapes are submitted — one job per
        (design, dims) — and each result is expanded back by its occurrence
        count into end-to-end totals, so a full BERT-base stack costs 3
        simulations per design instead of 72 while the aggregate matches a
        brute-force per-layer run bit for bit.

        Returns ``totals[design_key]`` in design order.
        """
        return self.run_suites(design_keys, [suite], core, codegen, fidelity)[
            suite.name
        ]

    def run_suites(
        self,
        design_keys: Iterable[str],
        suites: Sequence[WorkloadSuite],
        core: Optional[CoreConfig] = None,
        codegen: Optional[CodegenOptions] = None,
        fidelity: str = "fast",
    ) -> Dict[str, Dict[str, SuiteTotals]]:
        """Run several suites through **one** sweep, dedup-aware across them.

        All suites' distinct shapes are submitted as a single job list, so
        :meth:`run`'s key dedup also collapses *cross-suite* duplicates
        (e.g. training's forward GEMMs are dimensionally identical to the
        Table I FC layers): each distinct point simulates once for the
        whole batch, then every suite's totals are expanded from the shared
        results.

        Returns ``totals[suite_name][design_key]``.
        """
        core = core if core is not None else CoreConfig()
        codegen = codegen if codegen is not None else CodegenOptions()
        design_keys = list(design_keys)
        names = [suite.name for suite in suites]
        if len(set(names)) != len(names):
            raise ExperimentError(
                "run_suites totals are keyed by suite name; got duplicates: "
                f"{', '.join(sorted({n for n in names if names.count(n) > 1}))}"
            )
        distinct = {suite.name: suite.distinct() for suite in suites}
        jobs = [
            SweepJob(
                design_key=design,
                shape=entry.shape,
                workload=entry.shape.name,
                core=core,
                codegen=codegen,
                fidelity=fidelity,
            )
            for suite in suites
            for design in design_keys
            for entry in distinct[suite.name]
        ]
        results = iter(self.run(jobs))
        totals: Dict[str, Dict[str, SuiteTotals]] = {}
        for suite in suites:
            entries = distinct[suite.name]
            totals[suite.name] = {
                design: _expand_totals(suite, design, entries, results)
                for design in design_keys
            }
        return totals

    # -- (design x suite x batch) curves ------------------------------------------

    def run_suite_batches(
        self,
        design_keys: Iterable[str],
        spec: Union[str, SuiteSpec],
        batches: Sequence[int],
        core: Optional[CoreConfig] = None,
        codegen: Optional[CodegenOptions] = None,
        fidelity: str = "fast",
        scale: int = 1,
    ) -> Dict[str, SuiteBatchCurve]:
        """Sweep one registered suite over the batch axis, on every design.

        The suite is rebuilt at every requested batch via
        :meth:`~repro.workloads.suites.SuiteSpec.build` (``spec`` may be a
        :class:`SuiteSpec` or a registered suite name) and all
        (batch, design) points are submitted as **one** flat job list, so
        the key dedup in :meth:`run` collapses duplicate points across
        batches — sub-tile batches that lower to identical streams
        simulate once, and every point still matches a standalone
        per-batch :meth:`run_suite` bit for bit.

        Returns ``curves[design_key]`` in design order.
        """
        spec = _resolve_spec(spec)
        return self.run_suites_batches(
            design_keys, [spec], batches, core, codegen, fidelity, scale
        )[spec.name]

    def run_suites_batches(
        self,
        design_keys: Iterable[str],
        specs: Sequence[Union[str, SuiteSpec]],
        batches: Sequence[int],
        core: Optional[CoreConfig] = None,
        codegen: Optional[CodegenOptions] = None,
        fidelity: str = "fast",
        scale: int = 1,
    ) -> Dict[str, Dict[str, SuiteBatchCurve]]:
        """Sweep several suites over the batch axis through **one** sweep.

        The multi-suite variant of :meth:`run_suite_batches`: every
        (suite, batch, design) point goes into a single job list, so the
        key dedup collapses duplicates across suites *and* batches.
        ``scale`` shrinks each rebuilt suite like
        :meth:`~repro.workloads.suites.SuiteSpec.build` does everywhere
        else (same floors, so very small scaled batches saturate at one
        register block and dedup onto one point).

        Returns ``curves[suite_name][design_key]``.
        """
        core = core if core is not None else CoreConfig()
        codegen = codegen if codegen is not None else CodegenOptions()
        design_keys = list(design_keys)
        batches = _validated_batches(batches)
        specs = [_resolve_spec(spec) for spec in specs]
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ExperimentError(
                "run_suites_batches curves are keyed by suite name; got "
                "duplicates: "
                f"{', '.join(sorted({n for n in names if names.count(n) > 1}))}"
            )
        built = {
            spec.name: {
                batch: spec.build(batch=batch, scale=scale) for batch in batches
            }
            for spec in specs
        }
        distinct = {
            name: {batch: suite.distinct() for batch, suite in per_batch.items()}
            for name, per_batch in built.items()
        }
        jobs = [
            SweepJob(
                design_key=design,
                shape=entry.shape,
                workload=f"{entry.shape.name}@b{batch}",
                core=core,
                codegen=codegen,
                fidelity=fidelity,
            )
            for name in names
            for batch in batches
            for design in design_keys
            for entry in distinct[name][batch]
        ]
        results = iter(self.run(jobs))
        per_point: Dict[Tuple[str, int, str], SuiteTotals] = {}
        for name in names:
            for batch in batches:
                suite = built[name][batch]
                entries = distinct[name][batch]
                for design in design_keys:
                    per_point[(name, batch, design)] = _expand_totals(
                        suite, design, entries, results
                    )
        return {
            name: {
                design: SuiteBatchCurve(
                    suite=name,
                    design_key=design,
                    batches=batches,
                    totals=tuple(
                        per_point[(name, batch, design)] for batch in batches
                    ),
                )
                for design in design_keys
            }
            for name in names
        }
