"""Parallel, cache-backed sweep execution.

A sweep is a flat list of :class:`SweepJob`s — one (design, workload shape,
core config, codegen options, fidelity) tuple each.  :class:`SweepRunner`
executes them with two accelerations layered on top of the backend
registry:

1. **memoization** — each job's :func:`repro.runtime.cache.cache_key` is
   looked up in a :class:`repro.runtime.cache.ResultCache` first; only
   misses simulate, and fresh results are written back once at the end;
2. **parallelism** — misses fan out over a ``multiprocessing`` pool
   (``fork`` start method where available, so workers inherit the warm
   per-process program cache).  ``workers=1`` — or a single-CPU host —
   degrades to plain serial execution in-process, with bit-identical
   results: jobs are independent deterministic simulations.

Program generation is itself memoized per process keyed on
``(shape, codegen)``: the usual grid runs every design on the same nine
programs, so each worker lowers each GEMM only once.
"""

from __future__ import annotations

import dataclasses
import functools
import multiprocessing
import os
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.cpu.config import CoreConfig
from repro.cpu.result import SimResult
from repro.isa.program import Program
from repro.runtime.cache import ResultCache, cache_key
from repro.runtime.registry import resolve_backend
from repro.workloads.codegen import CodegenOptions, generate_gemm_program
from repro.workloads.gemm import GemmShape


@dataclasses.dataclass(frozen=True)
class SweepJob:
    """One simulation of the grid: design x shape under shared settings."""

    design_key: str
    shape: GemmShape
    workload: str = ""
    core: CoreConfig = dataclasses.field(default_factory=CoreConfig)
    codegen: CodegenOptions = dataclasses.field(default_factory=CodegenOptions)
    fidelity: str = "fast"

    @property
    def key(self) -> str:
        """The job's stable cache key."""
        return cache_key(
            self.design_key, self.shape, self.core, self.codegen, self.fidelity
        )


@functools.lru_cache(maxsize=32)
def cached_program(shape: GemmShape, codegen: CodegenOptions) -> Program:
    """Per-process program cache: every design reuses one lowered stream."""
    return generate_gemm_program(shape, codegen)


def _execute_job(job: SweepJob) -> SimResult:
    """Simulate one job (top-level so worker processes can unpickle it)."""
    program = cached_program(job.shape, job.codegen)
    backend = resolve_backend(job.design_key, fidelity=job.fidelity, core=job.core)
    return backend.prepare(program).run()


def _pool_context():
    """Prefer ``fork`` (cheap, inherits warm caches); fall back otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


class SweepRunner:
    """Run sweep grids through the backend layer, in parallel, memoized.

    Args:
        cache: a :class:`ResultCache` for persistent memoization, or
            ``None`` to always simulate.
        workers: worker process count for cache misses; defaults to the
            CPU count.  ``1`` forces serial in-process execution.
    """

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        workers: Optional[int] = None,
    ):
        self.cache = cache
        self.workers = workers if workers is not None else (os.cpu_count() or 1)

    # -- flat job lists ----------------------------------------------------------

    def run(self, jobs: Sequence[SweepJob]) -> List[SimResult]:
        """Execute ``jobs``; returns results aligned with the input order."""
        jobs = list(jobs)
        by_key: Dict[str, SimResult] = {}
        misses: List[SweepJob] = []
        for job in jobs:
            key = job.key
            if key in by_key:
                continue
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None:
                by_key[key] = cached
            else:
                misses.append(job)
        for job, result in zip(misses, self._simulate(misses)):
            by_key[job.key] = result
            if self.cache is not None:
                self.cache.put(job.key, result)
        if self.cache is not None:
            self.cache.flush()
        return [by_key[job.key] for job in jobs]

    def _simulate(self, jobs: Sequence[SweepJob]) -> List[SimResult]:
        if not jobs:
            return []
        workers = min(self.workers, len(jobs))
        if workers <= 1:
            return [_execute_job(job) for job in jobs]
        ctx = _pool_context()
        chunksize = max(1, len(jobs) // (workers * 4))
        with ctx.Pool(processes=workers) as pool:
            return pool.map(_execute_job, jobs, chunksize=chunksize)

    # -- (design x workload) grids ----------------------------------------------

    def run_grid(
        self,
        design_keys: Iterable[str],
        shapes: Mapping[str, GemmShape],
        core: Optional[CoreConfig] = None,
        codegen: Optional[CodegenOptions] = None,
        fidelity: str = "fast",
    ) -> Dict[str, Dict[str, SimResult]]:
        """Run every design on every workload.

        Returns ``results[workload_name][design_key]`` — the layout the
        experiment drivers consume.
        """
        core = core if core is not None else CoreConfig()
        codegen = codegen if codegen is not None else CodegenOptions()
        design_keys = list(design_keys)
        jobs = [
            SweepJob(
                design_key=design,
                shape=shape,
                workload=name,
                core=core,
                codegen=codegen,
                fidelity=fidelity,
            )
            for name, shape in shapes.items()
            for design in design_keys
        ]
        results = self.run(jobs)
        grid: Dict[str, Dict[str, SimResult]] = {name: {} for name in shapes}
        for job, result in zip(jobs, results):
            grid[job.workload][job.design_key] = result
        return grid
