"""Parallel, cache-backed sweep execution.

A sweep is a flat list of :class:`SweepJob`s — one (design, workload shape,
core config, codegen options, fidelity) tuple each.  :class:`SweepRunner`
executes them with two accelerations layered on top of the backend
registry:

1. **memoization** — each job's :func:`repro.runtime.cache.cache_key` is
   looked up in a :class:`repro.runtime.cache.ResultCache` first; only
   misses simulate, and fresh results are written back once at the end;
2. **deduplication** — jobs are identified by their cache key, which is
   *label-independent* (see :mod:`repro.runtime.cache`): within one sweep,
   every distinct (design, dims, core, codegen, fidelity) point simulates
   **exactly once**, no matter how many jobs map to it or what their shapes
   are named.  Full-model suites lean on this hard — BERT-base's 72
   per-layer GEMMs are only 3 distinct points;
3. **parallelism** — misses fan out over a ``multiprocessing`` pool
   (``fork`` start method where available, so workers inherit the warm
   per-process program cache).  ``workers=1`` — or a single-CPU host —
   degrades to plain serial execution in-process, with bit-identical
   results: jobs are independent deterministic simulations.

Program generation is itself memoized per process keyed on the *unlabeled*
``(shape, codegen)`` (bounded by :data:`PROGRAM_CACHE_SIZE`): the usual
grid runs every design on the same programs, so each worker lowers each
distinct GEMM only once.

:meth:`SweepRunner.run_suite` layers model-level aggregation on top: a
:class:`repro.workloads.suites.WorkloadSuite` multiset is simulated at its
distinct shapes only, then expanded back into occurrence-weighted
end-to-end totals (:class:`SuiteTotals`) per design.
"""

from __future__ import annotations

import dataclasses
import functools
import multiprocessing
import os
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.cpu.config import CoreConfig
from repro.cpu.result import SimResult
from repro.errors import ExperimentError
from repro.isa.program import Program
from repro.runtime.cache import ResultCache, cache_key
from repro.runtime.registry import resolve_backend
from repro.workloads.codegen import CodegenOptions, generate_gemm_program
from repro.workloads.gemm import GemmShape
from repro.workloads.suites import WorkloadSuite


@dataclasses.dataclass(frozen=True)
class SweepJob:
    """One simulation of the grid: design x shape under shared settings."""

    design_key: str
    shape: GemmShape
    workload: str = ""
    core: CoreConfig = dataclasses.field(default_factory=CoreConfig)
    codegen: CodegenOptions = dataclasses.field(default_factory=CodegenOptions)
    fidelity: str = "fast"

    @property
    def key(self) -> str:
        """The job's stable cache key."""
        return cache_key(
            self.design_key, self.shape, self.core, self.codegen, self.fidelity
        )


#: Bound of the per-process program memo.  32 thrashed on full-model suites
#: (ResNet-50 alone lowers 53 shapes); 256 holds every catalog in the
#: repository simultaneously with room for ad-hoc shapes.
PROGRAM_CACHE_SIZE = 256


@functools.lru_cache(maxsize=PROGRAM_CACHE_SIZE)
def _unlabeled_program(shape: GemmShape, codegen: CodegenOptions) -> Program:
    return generate_gemm_program(shape, codegen)


def cached_program(shape: GemmShape, codegen: CodegenOptions) -> Program:
    """Per-process program cache: every design reuses one lowered stream.

    Memoized on the *unlabeled* shape — a GEMM's display name never changes
    the generated stream, so BERT's 48 identically-shaped projections share
    one lowering.  Introspect/reset via ``cached_program.cache_info()`` /
    ``cached_program.cache_clear()``.
    """
    return _unlabeled_program(shape.unlabeled(), codegen)


cached_program.cache_info = _unlabeled_program.cache_info
cached_program.cache_clear = _unlabeled_program.cache_clear


def _execute_job(job: SweepJob) -> SimResult:
    """Simulate one job (top-level so worker processes can unpickle it)."""
    program = cached_program(job.shape, job.codegen)
    backend = resolve_backend(job.design_key, fidelity=job.fidelity, core=job.core)
    return backend.prepare(program).run()


@dataclasses.dataclass(frozen=True)
class SuiteTotals:
    """Occurrence-weighted end-to-end totals of one suite on one design.

    ``per_shape`` keeps the distinct points behind the aggregate as
    ``(representative shape, occurrence count, result)`` triples, so
    downstream consumers (energy models, reports) can re-weight without
    re-simulating.  ``cycles``/``instructions``/``mm_count``/
    ``bypass_count``/``weight_loads`` are the multiset-weighted sums —
    i.e. what a back-to-back run of every suite GEMM would accumulate.
    """

    suite: str
    design_key: str
    gemm_count: int      # suite GEMMs, duplicates included
    simulations: int     # distinct points actually simulated
    cycles: int
    instructions: int
    mm_count: int
    bypass_count: int
    weight_loads: int
    per_shape: Tuple[Tuple[GemmShape, int, SimResult], ...]

    @property
    def dedup_factor(self) -> float:
        """How many per-layer simulations each distinct point stood in for."""
        return self.gemm_count / self.simulations if self.simulations else 0.0

    def normalized_to(self, baseline: "SuiteTotals") -> float:
        """End-to-end runtime normalized to a baseline suite run."""
        return self.cycles / baseline.cycles if baseline.cycles else 0.0

    def speedup_over(self, baseline: "SuiteTotals") -> float:
        """End-to-end speedup over a baseline suite run (>1 is faster)."""
        return baseline.cycles / self.cycles if self.cycles else 0.0


def _pool_context():
    """Prefer ``fork`` (cheap, inherits warm caches); fall back otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


class SweepRunner:
    """Run sweep grids through the backend layer, in parallel, memoized.

    Args:
        cache: a :class:`ResultCache` for persistent memoization, or
            ``None`` to always simulate.
        workers: worker process count for cache misses; defaults to the
            CPU count.  ``1`` forces serial in-process execution.
    """

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        workers: Optional[int] = None,
    ):
        self.cache = cache
        self.workers = workers if workers is not None else (os.cpu_count() or 1)

    # -- flat job lists ----------------------------------------------------------

    def run(self, jobs: Sequence[SweepJob]) -> List[SimResult]:
        """Execute ``jobs``; returns results aligned with the input order.

        Jobs are deduplicated by cache key *before* anything simulates:
        each distinct (design, dims, core, codegen, fidelity) point runs —
        and counts one cache miss — exactly once per sweep, however many
        input jobs collapse onto it.
        """
        jobs = list(jobs)
        by_key: Dict[str, SimResult] = {}
        misses: Dict[str, SweepJob] = {}  # insertion-ordered, key-distinct
        for job in jobs:
            key = job.key
            if key in by_key or key in misses:
                continue
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None:
                by_key[key] = cached
            else:
                misses[key] = job
        miss_jobs = list(misses.values())
        for job, result in zip(miss_jobs, self._simulate(miss_jobs)):
            by_key[job.key] = result
            if self.cache is not None:
                self.cache.put(job.key, result)
        if self.cache is not None:
            self.cache.flush()
        return [by_key[job.key] for job in jobs]

    def _simulate(self, jobs: Sequence[SweepJob]) -> List[SimResult]:
        if not jobs:
            return []
        workers = min(self.workers, len(jobs))
        if workers <= 1:
            return [_execute_job(job) for job in jobs]
        ctx = _pool_context()
        chunksize = max(1, len(jobs) // (workers * 4))
        with ctx.Pool(processes=workers) as pool:
            return pool.map(_execute_job, jobs, chunksize=chunksize)

    # -- (design x workload) grids ----------------------------------------------

    def run_grid(
        self,
        design_keys: Iterable[str],
        shapes: Mapping[str, GemmShape],
        core: Optional[CoreConfig] = None,
        codegen: Optional[CodegenOptions] = None,
        fidelity: str = "fast",
    ) -> Dict[str, Dict[str, SimResult]]:
        """Run every design on every workload.

        Returns ``results[workload_name][design_key]`` — the layout the
        experiment drivers consume.
        """
        core = core if core is not None else CoreConfig()
        codegen = codegen if codegen is not None else CodegenOptions()
        design_keys = list(design_keys)
        jobs = [
            SweepJob(
                design_key=design,
                shape=shape,
                workload=name,
                core=core,
                codegen=codegen,
                fidelity=fidelity,
            )
            for name, shape in shapes.items()
            for design in design_keys
        ]
        results = self.run(jobs)
        grid: Dict[str, Dict[str, SimResult]] = {name: {} for name in shapes}
        for job, result in zip(jobs, results):
            grid[job.workload][job.design_key] = result
        return grid

    # -- (design x suite) multisets ----------------------------------------------

    def run_suite(
        self,
        design_keys: Iterable[str],
        suite: WorkloadSuite,
        core: Optional[CoreConfig] = None,
        codegen: Optional[CodegenOptions] = None,
        fidelity: str = "fast",
    ) -> Dict[str, SuiteTotals]:
        """Run a whole-model suite on every design, dedup-aware.

        Only the suite's *distinct* shapes are submitted — one job per
        (design, dims) — and each result is expanded back by its occurrence
        count into end-to-end totals, so a full BERT-base stack costs 3
        simulations per design instead of 72 while the aggregate matches a
        brute-force per-layer run bit for bit.

        Returns ``totals[design_key]`` in design order.
        """
        return self.run_suites(design_keys, [suite], core, codegen, fidelity)[
            suite.name
        ]

    def run_suites(
        self,
        design_keys: Iterable[str],
        suites: Sequence[WorkloadSuite],
        core: Optional[CoreConfig] = None,
        codegen: Optional[CodegenOptions] = None,
        fidelity: str = "fast",
    ) -> Dict[str, Dict[str, SuiteTotals]]:
        """Run several suites through **one** sweep, dedup-aware across them.

        All suites' distinct shapes are submitted as a single job list, so
        :meth:`run`'s key dedup also collapses *cross-suite* duplicates
        (e.g. training's forward GEMMs are dimensionally identical to the
        Table I FC layers): each distinct point simulates once for the
        whole batch, then every suite's totals are expanded from the shared
        results.

        Returns ``totals[suite_name][design_key]``.
        """
        core = core if core is not None else CoreConfig()
        codegen = codegen if codegen is not None else CodegenOptions()
        design_keys = list(design_keys)
        names = [suite.name for suite in suites]
        if len(set(names)) != len(names):
            raise ExperimentError(
                "run_suites totals are keyed by suite name; got duplicates: "
                f"{', '.join(sorted({n for n in names if names.count(n) > 1}))}"
            )
        distinct = {suite.name: suite.distinct() for suite in suites}
        jobs = [
            SweepJob(
                design_key=design,
                shape=entry.shape,
                workload=entry.shape.name,
                core=core,
                codegen=codegen,
                fidelity=fidelity,
            )
            for suite in suites
            for design in design_keys
            for entry in distinct[suite.name]
        ]
        results = iter(self.run(jobs))
        totals: Dict[str, Dict[str, SuiteTotals]] = {}
        for suite in suites:
            entries = distinct[suite.name]
            totals[suite.name] = {}
            for design in design_keys:
                per_shape = tuple(
                    (entry.shape, entry.count, next(results)) for entry in entries
                )
                totals[suite.name][design] = SuiteTotals(
                    suite=suite.name,
                    design_key=design,
                    gemm_count=len(suite),
                    simulations=len(entries),
                    cycles=sum(c * r.cycles for _, c, r in per_shape),
                    instructions=sum(c * r.instructions for _, c, r in per_shape),
                    mm_count=sum(c * r.mm_count for _, c, r in per_shape),
                    bypass_count=sum(c * r.bypass_count for _, c, r in per_shape),
                    weight_loads=sum(c * r.weight_loads for _, c, r in per_shape),
                    per_shape=per_shape,
                )
        return totals
