"""Deprecated ``run_*`` method family, shimmed onto plans and sessions.

Historically this module *was* the execution layer: a
:class:`SweepRunner` with one ``run_*`` method per sweep shape — flat job
lists, (design x workload) grids, whole-model suites, suite batch curves —
each with its own parameter list and return type.  That family is now a
compatibility veneer over the declarative API:

- :class:`repro.runtime.plan.SweepPlan` declares any of those sweeps (and
  every future axis) as one frozen, serializable, shardable value;
- :class:`repro.runtime.session.Session` executes plans — dedup, the
  on-disk result cache, and the worker pool all live there;
- :class:`repro.runtime.plan.SweepReport` carries the results, with typed
  views (``grid()``, ``suite_totals()``, ``batch_curves()``, ``flat()``)
  replacing the per-method return shapes.

Every ``SweepRunner.run_*`` call below builds the equivalent plan, runs it
through the runner's :class:`Session`, reads the matching report view, and
emits a :class:`DeprecationWarning`.  Return values are identical to the
historical behavior — the shims exist so downstream code can migrate one
call site at a time.  New code should build plans directly::

    from repro.runtime import Session, SweepPlan

    plan = SweepPlan(designs=("baseline", "rasa-dmdb-wls"),
                     suites=("bert-base",), scale=4)
    report = Session.from_env().run(plan)
    totals = report.suite_totals()["bert-base"]

The result types (:class:`SuiteTotals`, :class:`SuiteBatchCurve`), the
:class:`SweepJob` unit and the per-process :func:`cached_program` memo are
re-exported here for backward compatibility; they live in
:mod:`repro.runtime.plan` and :mod:`repro.runtime.session` now.
"""

from __future__ import annotations

import warnings
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.cpu.config import CoreConfig
from repro.cpu.result import SimResult
from repro.runtime.cache import ResultCache
from repro.errors import ExperimentError
from repro.runtime.plan import (  # noqa: F401  (compat re-exports)
    SuiteBatchCurve,
    SuiteLike,
    SuiteTotals,
    SweepJob,
    SweepPlan,
    _duplicates,
    _expand_totals,
    _resolve_spec,
    _suite_name,
    _validated_batches,
)
from repro.runtime.session import (  # noqa: F401  (compat re-exports)
    PROGRAM_CACHE_SIZE,
    Session,
    _execute_job,
    _pool_context,
    cached_program,
)
from repro.workloads.codegen import CodegenOptions
from repro.workloads.gemm import GemmShape
from repro.workloads.suites import SuiteSpec, WorkloadSuite


def _warn_deprecated(method: str, replacement: str) -> None:
    warnings.warn(
        f"SweepRunner.{method} is deprecated; declare the sweep as a "
        f"SweepPlan and run it through Session.run — {replacement}",
        DeprecationWarning,
        stacklevel=3,
    )


def _unique(keys: Iterable[str]) -> Tuple[str, ...]:
    return tuple(dict.fromkeys(keys))


def _check_suite_names(suites: Sequence) -> Tuple[str, ...]:
    """Resolve + duplicate-check suite entries (the historical order)."""
    names = [_suite_name(_resolve_spec(entry)) for entry in suites]
    dup = _duplicates(names)
    if dup:
        raise ExperimentError(
            "suite totals are keyed by suite name; got duplicates: "
            f"{', '.join(dup)}"
        )
    return tuple(names)


class SweepRunner:
    """Deprecated facade over :class:`Session` + :class:`SweepPlan`.

    Still constructible everywhere it used to be — same ``cache`` /
    ``workers`` arguments, same validation — but every ``run_*`` method
    warns and delegates.  The owned session is available as
    :attr:`session` for incremental migration.
    """

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        workers: Optional[int] = None,
    ):
        self.session = Session(cache=cache, workers=workers)

    @property
    def cache(self) -> Optional[ResultCache]:
        return self.session.cache

    @cache.setter
    def cache(self, cache: Optional[ResultCache]) -> None:
        # Plain attributes pre-refactor; assignment keeps working and
        # steers the owned session.
        self.session.cache = cache

    @property
    def workers(self) -> int:
        return self.session.workers

    @workers.setter
    def workers(self, workers: Optional[int]) -> None:
        # Re-validate exactly like construction: a bad count must not
        # silently degrade later runs.
        self.session = Session(cache=self.session.cache, workers=workers)

    # -- flat job lists ----------------------------------------------------------

    def run(self, jobs: Sequence[SweepJob]) -> List[SimResult]:
        """Deprecated: ``Session.run(SweepPlan(jobs=...)).flat()``."""
        _warn_deprecated("run", "SweepPlan(jobs=jobs), then report.flat()")
        jobs = tuple(jobs)
        if not jobs:
            return []
        return self.session.run(SweepPlan(jobs=jobs)).flat()

    # -- (design x workload) grids ----------------------------------------------

    def run_grid(
        self,
        design_keys: Iterable[str],
        shapes: Mapping[str, GemmShape],
        core: Optional[CoreConfig] = None,
        codegen: Optional[CodegenOptions] = None,
        fidelity: str = "fast",
    ) -> Dict[str, Dict[str, SimResult]]:
        """Deprecated: ``SweepPlan(designs, workloads=shapes)`` + ``grid()``."""
        _warn_deprecated(
            "run_grid", "SweepPlan(designs=..., workloads=shapes), then "
            "report.grid()"
        )
        design_keys = _unique(design_keys)
        if not design_keys or not shapes:
            # The historical degenerate shapes: nothing runs, empty rows.
            return {name: {} for name in shapes}
        plan = SweepPlan(
            designs=design_keys,
            workloads=tuple(shapes.items()),
            core=core if core is not None else CoreConfig(),
            codegen=codegen if codegen is not None else CodegenOptions(),
            fidelity=fidelity,
        )
        return self.session.run(plan).grid()

    # -- (design x suite) multisets ----------------------------------------------

    def run_suite(
        self,
        design_keys: Iterable[str],
        suite: WorkloadSuite,
        core: Optional[CoreConfig] = None,
        codegen: Optional[CodegenOptions] = None,
        fidelity: str = "fast",
    ) -> Dict[str, SuiteTotals]:
        """Deprecated: ``SweepPlan(suites=(suite,))`` + ``suite_totals()``."""
        _warn_deprecated(
            "run_suite", "SweepPlan(designs=..., suites=(suite,)), then "
            "report.suite_totals()[suite.name]"
        )
        return self._suite_totals(design_keys, [suite], core, codegen, fidelity)[
            suite.name
        ]

    def run_suites(
        self,
        design_keys: Iterable[str],
        suites: Sequence[WorkloadSuite],
        core: Optional[CoreConfig] = None,
        codegen: Optional[CodegenOptions] = None,
        fidelity: str = "fast",
    ) -> Dict[str, Dict[str, SuiteTotals]]:
        """Deprecated: ``SweepPlan(suites=suites)`` + ``suite_totals()``."""
        _warn_deprecated(
            "run_suites", "SweepPlan(designs=..., suites=suites), then "
            "report.suite_totals()"
        )
        return self._suite_totals(design_keys, suites, core, codegen, fidelity)

    def _suite_totals(self, design_keys, suites, core, codegen, fidelity):
        design_keys = _unique(design_keys)
        suites = tuple(suites)
        if not design_keys or not suites:
            # Historical degenerate shape: validate names, run nothing.
            return {name: {} for name in _check_suite_names(suites)}
        plan = SweepPlan(
            designs=design_keys,
            suites=suites,
            core=core if core is not None else CoreConfig(),
            codegen=codegen if codegen is not None else CodegenOptions(),
            fidelity=fidelity,
        )
        return self.session.run(plan).suite_totals()

    # -- (design x suite x batch) curves ------------------------------------------

    def run_suite_batches(
        self,
        design_keys: Iterable[str],
        spec: Union[str, SuiteSpec],
        batches: Sequence[int],
        core: Optional[CoreConfig] = None,
        codegen: Optional[CodegenOptions] = None,
        fidelity: str = "fast",
        scale: int = 1,
    ) -> Dict[str, SuiteBatchCurve]:
        """Deprecated: ``SweepPlan(suites=(spec,), batches=...)`` + curves."""
        _warn_deprecated(
            "run_suite_batches", "SweepPlan(designs=..., suites=(spec,), "
            "batches=batches, scale=scale), then report.batch_curves()[name]"
        )
        curves = self._batch_curves(
            design_keys, [spec], batches, core, codegen, fidelity, scale
        )
        return curves[spec if isinstance(spec, str) else spec.name]

    def run_suites_batches(
        self,
        design_keys: Iterable[str],
        specs: Sequence[Union[str, SuiteSpec]],
        batches: Sequence[int],
        core: Optional[CoreConfig] = None,
        codegen: Optional[CodegenOptions] = None,
        fidelity: str = "fast",
        scale: int = 1,
    ) -> Dict[str, Dict[str, SuiteBatchCurve]]:
        """Deprecated: ``SweepPlan(suites=specs, batches=...)`` + curves."""
        _warn_deprecated(
            "run_suites_batches", "SweepPlan(designs=..., suites=specs, "
            "batches=batches, scale=scale), then report.batch_curves()"
        )
        return self._batch_curves(
            design_keys, specs, batches, core, codegen, fidelity, scale
        )

    def _batch_curves(
        self, design_keys, specs, batches, core, codegen, fidelity, scale
    ):
        design_keys = _unique(design_keys)
        specs = tuple(specs)
        if not design_keys or not specs:
            # Historical degenerate shape: batches and names still validate.
            _validated_batches(batches)
            return {name: {} for name in _check_suite_names(specs)}
        plan = SweepPlan(
            designs=design_keys,
            suites=specs,
            batches=tuple(batches),
            scale=scale,
            core=core if core is not None else CoreConfig(),
            codegen=codegen if codegen is not None else CodegenOptions(),
            fidelity=fidelity,
        )
        return self.session.run(plan).batch_curves()
