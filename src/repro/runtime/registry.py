"""Backend registry: (design key x fidelity) -> ready :class:`SimBackend`.

Call sites never hand-wire ``FastCoreModel``/``MatrixEngine``/``OoOCore``
constructors anymore; they ask the registry::

    backend = resolve_backend("rasa-dmdb-wls")                  # fast model
    backend = resolve_backend("baseline", fidelity="ooo")       # cycle-accurate
    backend = resolve_backend("rasa-pipe", fidelity="engine",
                              functional="oracle")              # engine-bound

New fidelities register a factory under a unique name::

    @register_backend("my-fidelity")
    def _make(engine, core, functional):
        return MyBackend(engine, core)
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.cpu.config import CoreConfig
from repro.engine.config import EngineConfig
from repro.engine.designs import get_design
from repro.errors import ConfigError
from repro.runtime.backend import (
    AnalyticBackend,
    EngineBackend,
    FastCoreBackend,
    FastRefBackend,
    OoOCoreBackend,
    SimBackend,
)

#: Factory signature: (engine config, core config, functional mode) -> backend.
BackendFactory = Callable[[EngineConfig, CoreConfig, str], SimBackend]

#: The registered fidelities, by name.
FIDELITIES: Dict[str, BackendFactory] = {}

#: Functional data-movement modes understood by the engine fidelity.
FUNCTIONAL_MODES = ("array", "oracle", "off")


def register_backend(name: str) -> Callable[[BackendFactory], BackendFactory]:
    """Decorator registering a backend factory under ``name``."""

    def _register(factory: BackendFactory) -> BackendFactory:
        if name in FIDELITIES:
            raise ConfigError(f"backend fidelity {name!r} is already registered")
        FIDELITIES[name] = factory
        return factory

    return _register


@register_backend("analytic")
def _analytic_factory(
    engine: EngineConfig, core: CoreConfig, functional: str
) -> SimBackend:
    if functional != "off":
        raise ConfigError(
            "the 'analytic' fidelity is timing-only; functional execution "
            "requires fidelity='engine'"
        )
    return AnalyticBackend(engine, core)


@register_backend("fast")
def _fast_factory(engine: EngineConfig, core: CoreConfig, functional: str) -> SimBackend:
    if functional != "off":
        raise ConfigError(
            "the 'fast' fidelity is timing-only; functional execution "
            "requires fidelity='engine'"
        )
    return FastCoreBackend(engine, core)


@register_backend("fast-ref")
def _fast_ref_factory(
    engine: EngineConfig, core: CoreConfig, functional: str
) -> SimBackend:
    if functional != "off":
        raise ConfigError(
            "the 'fast-ref' fidelity is timing-only; functional execution "
            "requires fidelity='engine'"
        )
    return FastRefBackend(engine, core)


@register_backend("ooo")
def _ooo_factory(engine: EngineConfig, core: CoreConfig, functional: str) -> SimBackend:
    if functional != "off":
        raise ConfigError(
            "the 'ooo' fidelity is timing-only; functional execution "
            "requires fidelity='engine'"
        )
    return OoOCoreBackend(engine, core)


@register_backend("engine")
def _engine_factory(engine: EngineConfig, core: CoreConfig, functional: str) -> SimBackend:
    return EngineBackend(engine, core, functional=functional)


def resolve_backend(
    design_key: str,
    fidelity: str = "fast",
    core: Optional[CoreConfig] = None,
    functional: str = "off",
) -> SimBackend:
    """One registry lookup: design key + fidelity -> a ready backend.

    Args:
        design_key: a key from :data:`repro.engine.designs.DESIGNS`.
        fidelity: ``"fast"`` (default), ``"ooo"``, ``"engine"``, or any
            fidelity added via :func:`register_backend`.
        core: CPU core configuration (default :class:`CoreConfig`).
        functional: data-movement mode, engine fidelity only
            (``"array"`` / ``"oracle"`` / ``"off"``).
    """
    if functional not in FUNCTIONAL_MODES:
        raise ConfigError(
            f"functional must be one of {FUNCTIONAL_MODES}, got {functional!r}"
        )
    try:
        factory = FIDELITIES[fidelity]
    except KeyError:
        raise ConfigError(
            f"unknown fidelity {fidelity!r}; registered: {', '.join(FIDELITIES)}"
        ) from None
    design = get_design(design_key)
    return factory(design.config, core if core is not None else CoreConfig(), functional)
