"""Declarative sweep plans: one serializable value describes a whole sweep.

A :class:`SweepPlan` declares the full cross-product a sweep covers —
design keys, named GEMM workloads and/or model suites, an optional batch
axis, the core/codegen/scale knobs and the simulation fidelity — as one
frozen value.  Nothing executes at construction: :meth:`SweepPlan.iter_jobs`
expands the declaration lazily into dedup-keyed :class:`SweepJob`\\ s, and a
:class:`repro.runtime.session.Session` turns a plan into a
:class:`SweepReport`.

Because a plan is a value, it composes the ways values do:

- **serialization** — :meth:`SweepPlan.to_json` renders the plan as
  canonical JSON (sorted keys, compact separators — the same convention
  the result-cache keys use) and :func:`SweepPlan.from_json` reconstructs
  an equal plan, so plans travel between processes and hosts;
- **sharding** — :meth:`SweepPlan.shard` marks a deterministic partition
  of the plan's *distinct cache keys*: shard ``i`` of ``n`` owns every
  ``sorted(keys)[i::n]`` point.  Shards are disjoint and exhaustive, each
  runs independently (on another host, say), and
  :meth:`SweepReport.merge` reassembles results that are bit-identical
  to an unsharded run;
- **inspection** — job counts, distinct points and the dedup factor are
  all derivable before anything simulates.

The report type at the other end replaces the old ``run_*`` return-shape
zoo: :meth:`SweepReport.grid` is the (workload x design) table,
:meth:`SweepReport.suite_totals` the occurrence-weighted
:class:`SuiteTotals` per (suite, design), :meth:`SweepReport.batch_curves`
the per-batch :class:`SuiteBatchCurve` view, and :meth:`SweepReport.point`
the single-result access path.
"""

from __future__ import annotations

import dataclasses
import json
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.cpu.config import CoreConfig
from repro.cpu.result import SimResult
from repro.engine.designs import get_design
from repro.errors import ExperimentError
from repro.runtime.cache import cache_key
from repro.workloads.codegen import CodegenOptions
from repro.workloads.gemm import GemmShape
from repro.workloads.ops import DEFAULT_LOWERING, LoweringConfig
from repro.workloads.suites import SUITES, SuiteSpec, WorkloadSuite
from repro.workloads.tiling import BlockingConfig, MMOrder

#: Bump when the plan/report JSON schema changes incompatibly.
PLAN_FORMAT = 1

#: What a plan's ``suites`` axis accepts: a registered suite name, a
#: rebuildable :class:`SuiteSpec`, or an already-built multiset.
SuiteLike = Union[str, SuiteSpec, WorkloadSuite]


@dataclasses.dataclass(frozen=True)
class SweepJob:
    """One simulation of the grid: design x shape under shared settings."""

    design_key: str
    shape: GemmShape
    workload: str = ""
    core: CoreConfig = dataclasses.field(default_factory=CoreConfig)
    codegen: CodegenOptions = dataclasses.field(default_factory=CodegenOptions)
    fidelity: str = "fast"

    @property
    def key(self) -> str:
        """The job's stable cache key."""
        return cache_key(
            self.design_key, self.shape, self.core, self.codegen, self.fidelity
        )


@dataclasses.dataclass(frozen=True)
class SuiteTotals:
    """Occurrence-weighted end-to-end totals of one suite on one design.

    ``per_shape`` keeps the distinct points behind the aggregate as
    ``(representative shape, occurrence count, result)`` triples, so
    downstream consumers (energy models, reports) can re-weight without
    re-simulating.  ``cycles``/``instructions``/``mm_count``/
    ``bypass_count``/``weight_loads`` are the multiset-weighted sums —
    i.e. what a back-to-back run of every suite GEMM would accumulate.
    """

    suite: str
    design_key: str
    gemm_count: int      # suite GEMMs, duplicates included
    simulations: int     # distinct points actually simulated
    cycles: int
    instructions: int
    mm_count: int
    bypass_count: int
    weight_loads: int
    per_shape: Tuple[Tuple[GemmShape, int, SimResult], ...]

    @property
    def dedup_factor(self) -> float:
        """How many per-layer simulations each distinct point stood in for."""
        return self.gemm_count / self.simulations if self.simulations else 0.0

    def normalized_to(self, baseline: "SuiteTotals") -> float:
        """End-to-end runtime normalized to a baseline suite run.

        Raises :class:`ExperimentError` when the baseline ran in zero
        cycles — a silent 0.0 here would read as "infinitely fast".
        """
        if baseline.cycles == 0:
            raise ExperimentError(
                f"cannot normalize suite {self.suite!r}: baseline suite "
                f"{baseline.suite!r} on design {baseline.design_key!r} "
                "ran in zero cycles"
            )
        return self.cycles / baseline.cycles

    def speedup_over(self, baseline: "SuiteTotals") -> float:
        """End-to-end speedup over a baseline suite run (>1 is faster).

        Raises :class:`ExperimentError` when this suite ran in zero
        cycles — a silent 0.0 here would read as "no speedup at all".
        """
        if self.cycles == 0:
            raise ExperimentError(
                f"cannot compute speedup: suite {self.suite!r} on design "
                f"{self.design_key!r} ran in zero cycles"
            )
        return baseline.cycles / self.cycles


@dataclasses.dataclass(frozen=True)
class SuiteBatchCurve:
    """One suite's end-to-end totals along the batch axis, on one design.

    ``totals[i]`` are the occurrence-weighted :class:`SuiteTotals` of the
    suite rebuilt at ``batches[i]``.  Batches whose rebuilt shapes lower
    to streams already simulated at another batch (sub-tile batches, or
    batches the suite's geometry maps onto the same padded dims) share
    results — the curve stores the expanded per-batch view regardless, so
    every point is directly comparable to a standalone single-batch suite
    sweep.
    """

    suite: str
    design_key: str
    batches: Tuple[int, ...]
    totals: Tuple[SuiteTotals, ...]

    def __post_init__(self) -> None:
        if len(self.batches) != len(self.totals):
            raise ExperimentError(
                f"suite {self.suite!r} curve has {len(self.batches)} batches "
                f"but {len(self.totals)} totals"
            )

    def totals_by_batch(self) -> Dict[int, SuiteTotals]:
        """``{batch: totals}`` — the mapping view of the curve."""
        return dict(zip(self.batches, self.totals))

    def cycles_by_batch(self) -> Dict[int, int]:
        """``{batch: end-to-end cycles}`` along the curve."""
        return {b: t.cycles for b, t in zip(self.batches, self.totals)}

    def normalized_to(self, baseline: "SuiteBatchCurve") -> Dict[int, float]:
        """Per-batch normalized runtime against a baseline design's curve.

        This is the Fig. 7 y-axis at suite granularity: each batch's
        end-to-end cycles divided by the baseline design's cycles *at the
        same batch*.
        """
        if baseline.batches != self.batches:
            raise ExperimentError(
                f"cannot normalize suite {self.suite!r}: curve batches "
                f"{self.batches} do not match baseline batches "
                f"{baseline.batches}"
            )
        return {
            batch: mine.normalized_to(theirs)
            for batch, mine, theirs in zip(
                self.batches, self.totals, baseline.totals
            )
        }


def _validated_batches(batches: Sequence[int]) -> Tuple[int, ...]:
    """Check a batch axis: non-empty, positive integers, no duplicates."""
    batches = tuple(batches)
    if not batches:
        raise ExperimentError("a suite batch sweep needs at least one batch size")
    for batch in batches:
        if not isinstance(batch, int) or isinstance(batch, bool) or batch < 1:
            raise ExperimentError(
                f"batch sizes must be positive integers, got {batch!r}"
            )
    duplicates = sorted({b for b in batches if batches.count(b) > 1})
    if duplicates:
        raise ExperimentError(
            "suite batch curves are keyed by batch size; got duplicates: "
            f"{', '.join(str(b) for b in duplicates)}"
        )
    return batches


def _resolve_spec(spec: SuiteLike) -> Union[SuiteSpec, WorkloadSuite]:
    """Resolve a registered suite name; pass specs/built suites through."""
    if isinstance(spec, (SuiteSpec, WorkloadSuite)):
        return spec
    try:
        return SUITES[spec]
    except KeyError:
        raise ExperimentError(
            f"unknown workload suite {spec!r}; known: {', '.join(SUITES)}"
        ) from None


def _suite_name(entry: SuiteLike) -> str:
    return entry if isinstance(entry, str) else entry.name


def _expand_totals(
    suite: WorkloadSuite,
    design: str,
    entries: Sequence,
    results: Iterator[SimResult],
) -> SuiteTotals:
    """Re-weight one design's distinct-point results into suite totals.

    Consumes exactly ``len(entries)`` results from ``results`` — callers
    iterate a flat result stream in job-submission order.
    """
    per_shape = tuple(
        (entry.shape, entry.count, next(results)) for entry in entries
    )
    return SuiteTotals(
        suite=suite.name,
        design_key=design,
        gemm_count=len(suite),
        simulations=len(entries),
        cycles=sum(c * r.cycles for _, c, r in per_shape),
        instructions=sum(c * r.instructions for _, c, r in per_shape),
        mm_count=sum(c * r.mm_count for _, c, r in per_shape),
        bypass_count=sum(c * r.bypass_count for _, c, r in per_shape),
        weight_loads=sum(c * r.weight_loads for _, c, r in per_shape),
        per_shape=per_shape,
    )


def _duplicates(names: Sequence[str]) -> List[str]:
    return sorted({n for n in names if names.count(n) > 1})


@dataclasses.dataclass(frozen=True)
class SweepPlan:
    """A frozen, declarative description of one sweep.

    The cross-product it declares:

    - ``designs`` x ``workloads`` — the classic (workload x design) grid
      (``workloads`` maps display names to :class:`GemmShape`\\ s);
    - ``designs`` x ``suites`` [x ``batches``] — whole-model multisets,
      optionally swept along a batch axis.  A suite entry is a registered
      name (serializable), a :class:`SuiteSpec` (rebuildable, in-process
      only) or a built :class:`WorkloadSuite` (serializable, but a fixed
      multiset — it cannot be rebatched);
    - ``jobs`` — pre-built :class:`SweepJob`\\ s appended verbatim, the
      escape hatch for heterogeneous per-job settings.

    ``core``/``codegen``/``fidelity`` apply to every declared (non-``jobs``)
    point; ``scale`` shrinks suite GEMMs exactly like
    :meth:`repro.workloads.suites.SuiteSpec.build` and named workload
    shapes via :meth:`repro.workloads.gemm.GemmShape.scaled` (same
    floors), so plans serialize the *unscaled* declaration; ``batch`` is a
    single streamed-rows override, ``batches`` the sweep axis (mutually
    exclusive).  ``scale_batch``/``scale_spatial`` are the dimension-
    role-aware lowering knobs (:class:`repro.workloads.ops.LoweringConfig`)
    — they apply at op lowering, before the generic ``scale``, and only to
    suites built from op factories (registered names / op-level
    :class:`SuiteSpec`\\ s; pre-built multisets are already lowered).
    ``shard`` marks the plan as one deterministic slice of the full key
    set — see :meth:`shard`.

    Plans validate eagerly — unknown designs (including pre-built jobs'),
    unknown suites, bad batches and bad shards all raise at construction —
    and expand lazily (:meth:`iter_jobs`).  Fidelity is the one knob
    resolved only at execution: the backend registry is open (fidelities
    register at run time, possibly on the host that finally runs a
    shipped plan), so a name unknown *here* may be valid *there*.
    """

    designs: Tuple[str, ...] = ()
    workloads: Tuple[Tuple[str, GemmShape], ...] = ()
    suites: Tuple[SuiteLike, ...] = ()
    batches: Optional[Tuple[int, ...]] = None
    batch: Optional[int] = None
    scale: int = 1
    scale_batch: int = 1
    scale_spatial: int = 1
    core: CoreConfig = dataclasses.field(default_factory=CoreConfig)
    codegen: CodegenOptions = dataclasses.field(default_factory=CodegenOptions)
    fidelity: str = "fast"
    jobs: Tuple[SweepJob, ...] = ()
    shard_spec: Optional[Tuple[int, int]] = None

    # -- construction-time normalization + validation ------------------------------

    def __post_init__(self) -> None:
        object.__setattr__(self, "designs", tuple(self.designs))
        workloads = self.workloads
        if isinstance(workloads, Mapping):
            workloads = tuple(workloads.items())
        object.__setattr__(
            self, "workloads", tuple((str(n), s) for n, s in workloads)
        )
        # Registered specs normalize to their names: the two spellings
        # declare the same sweep, and names keep the plan serializable.
        object.__setattr__(
            self,
            "suites",
            tuple(
                entry.name
                if isinstance(entry, SuiteSpec)
                and SUITES.get(entry.name) is entry
                else entry
                for entry in self.suites
            ),
        )
        if self.batches is not None:
            object.__setattr__(self, "batches", _validated_batches(self.batches))
        object.__setattr__(self, "jobs", tuple(self.jobs))
        self._validate()

    def _validate(self) -> None:
        if not (self.workloads or self.suites or self.jobs):
            raise ExperimentError(
                "plan declares no work: give it workloads, suites, or jobs"
            )
        if (self.workloads or self.suites) and not self.designs:
            raise ExperimentError(
                "a plan with workloads or suites needs at least one design key"
            )
        dup = _duplicates([key for key in self.designs])
        if dup:
            raise ExperimentError(
                f"plan designs must be unique; got duplicates: {', '.join(dup)}"
            )
        for key in self.designs:
            get_design(key)  # raises ConfigError naming the known designs
        dup = _duplicates([name for name, _ in self.workloads])
        if dup:
            raise ExperimentError(
                "plan workloads are keyed by name; got duplicates: "
                f"{', '.join(dup)}"
            )
        for name, shape in self.workloads:
            if not isinstance(shape, GemmShape):
                raise ExperimentError(
                    f"workload {name!r} must be a GemmShape, got {shape!r}"
                )
        for entry in self.suites:
            _resolve_spec(entry)  # unknown names raise here
            if isinstance(entry, WorkloadSuite) and not entry.gemms:
                # from_gemms rejects this, but decoded/hand-built suites
                # can bypass it — an empty multiset would make the plan
                # declare zero points while claiming a suite.
                raise ExperimentError(
                    f"suite {entry.name!r} has no GEMMs"
                )
        dup = _duplicates([_suite_name(entry) for entry in self.suites])
        if dup:
            raise ExperimentError(
                "plan totals are keyed by suite name; got duplicates: "
                f"{', '.join(dup)}"
            )
        if self.batch is not None and self.batches is not None:
            raise ExperimentError(
                "batch (a single override) and batches (a sweep axis) are "
                "mutually exclusive"
            )
        if self.batch is not None and (
            not isinstance(self.batch, int)
            or isinstance(self.batch, bool)
            or self.batch < 1
        ):
            raise ExperimentError(
                f"batch must be a positive integer, got {self.batch!r}"
            )
        if (self.batch is not None or self.batches is not None) and not self.suites:
            raise ExperimentError(
                "batch/batches apply to suite workloads; the plan has no suites"
            )
        if self.batches is not None or self.batch is not None:
            for entry in self.suites:
                if isinstance(entry, WorkloadSuite):
                    raise ExperimentError(
                        f"suite {entry.name!r} is an already-built multiset "
                        "and cannot be rebatched; use a registered name or a "
                        "SuiteSpec for batch sweeps"
                    )
        for knob in ("scale", "scale_batch", "scale_spatial"):
            value = getattr(self, knob)
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise ExperimentError(
                    f"{knob} must be a positive integer, got {value!r}"
                )
        if self.scale_batch != 1 or self.scale_spatial != 1:
            if not self.suites:
                raise ExperimentError(
                    "scale_batch/scale_spatial are dimension-role-aware "
                    "lowering knobs; they apply to suite workloads only"
                )
            for entry in self.suites:
                resolved = (
                    entry
                    if isinstance(entry, (SuiteSpec, WorkloadSuite))
                    else _resolve_spec(entry)
                )
                if isinstance(resolved, WorkloadSuite) or resolved.ops() is None:
                    # Probe the spec's factory eagerly: a pre-lowered
                    # (shape-mapping) factory would only fail deep inside
                    # built_suites(), breaking the eager-validation contract.
                    raise ExperimentError(
                        f"suite {_suite_name(entry)!r} is already lowered "
                        "(shapes, not ops); scale_batch/scale_spatial need a "
                        "registered name or an op-level SuiteSpec"
                    )
        if not self.fidelity or not isinstance(self.fidelity, str):
            raise ExperimentError(
                f"fidelity must be a non-empty backend name, got {self.fidelity!r}"
            )
        for job in self.jobs:
            if not isinstance(job, SweepJob):
                raise ExperimentError(f"plan jobs must be SweepJobs, got {job!r}")
            get_design(job.design_key)  # fail on the authoring host, not mid-run
        if self.shard_spec is not None:
            object.__setattr__(
                self, "shard_spec", _validated_shard(self.shard_spec)
            )

    # -- lazy expansion ------------------------------------------------------------

    def built_suites(self) -> List[Tuple[WorkloadSuite, Optional[int]]]:
        """Every (built suite, batch) point of the suite axes, in job order.

        Without a batch axis this is one entry per suite (``batch`` is the
        plan-level override or ``None``); with one, it is the suite rebuilt
        at every batch — ``len(suites) * len(batches)`` entries, suite-major
        like :meth:`iter_jobs`.  Memoized per plan instance: the executor,
        every report view, and the CLI stats all share one build.
        """
        cached = self.__dict__.get("_built_suites")
        if cached is not None:
            return cached
        lowering = self.lowering_config()
        built: List[Tuple[WorkloadSuite, Optional[int]]] = []
        for entry in self.suites:
            resolved = _resolve_spec(entry)
            if isinstance(resolved, WorkloadSuite):
                built.append((resolved.scaled(self.scale), None))
            elif self.batches is None:
                built.append((resolved.build(batch=self.batch, scale=self.scale,
                                             lowering=lowering),
                              self.batch))
            else:
                built.extend(
                    (resolved.build(batch=batch, scale=self.scale,
                                    lowering=lowering), batch)
                    for batch in self.batches
                )
        object.__setattr__(self, "_built_suites", built)
        return built

    def lowering_config(self) -> LoweringConfig:
        """The plan's role-aware lowering knobs as one config value."""
        if self.scale_batch == 1 and self.scale_spatial == 1:
            return DEFAULT_LOWERING
        return LoweringConfig(
            scale_batch=self.scale_batch, scale_spatial=self.scale_spatial
        )

    def iter_jobs(self) -> Iterator[SweepJob]:
        """Lazily expand the declaration into the flat job stream.

        Order is part of the contract (views consume results positionally):
        explicit ``jobs`` first, then the workload grid (workload-major),
        then the suite axes — suite-major, batch-major within a suite,
        design-major within a batch, distinct entries innermost.
        """
        yield from self.jobs
        for name, shape in self.workloads:
            scaled = shape.scaled(self.scale)
            for design in self.designs:
                yield SweepJob(
                    design_key=design,
                    shape=scaled,
                    workload=name,
                    core=self.core,
                    codegen=self.codegen,
                    fidelity=self.fidelity,
                )
        for suite, batch in self.built_suites():
            label = "" if batch is None else f"@b{batch}"
            entries = suite.distinct()
            for design in self.designs:
                for entry in entries:
                    yield SweepJob(
                        design_key=design,
                        shape=entry.shape,
                        workload=f"{entry.shape.name}{label}",
                        core=self.core,
                        codegen=self.codegen,
                        fidelity=self.fidelity,
                    )

    def job_count(self) -> int:
        """Total declared jobs, duplicates included (the pre-dedup count)."""
        return len(self.job_keys())

    def expanded_jobs(self) -> Tuple[SweepJob, ...]:
        """The full job stream, materialized once per plan instance.

        :meth:`iter_jobs` rebuilds every suite on each pass; the executor
        and the key memo below share this single expansion instead.
        """
        cached = self.__dict__.get("_expanded_jobs")
        if cached is None:
            cached = tuple(self.iter_jobs())
            object.__setattr__(self, "_expanded_jobs", cached)
        return cached

    def job_keys(self) -> Tuple[str, ...]:
        """Every job's cache key, aligned with :meth:`iter_jobs` order.

        Each job hashes exactly once per plan instance: the tuple is
        memoized, and the session, the shard filter and every report view
        read from it — repeated inspection (``plan show``, stats lines)
        costs no re-hashing.
        """
        cached = self.__dict__.get("_job_keys")
        if cached is None:
            cached = tuple(job.key for job in self.expanded_jobs())
            object.__setattr__(self, "_job_keys", cached)
        return cached

    def distinct_keys(self) -> Tuple[str, ...]:
        """The plan's distinct cache keys, first-occurrence order.

        This is the dedup identity — label-free, tile-padded — so it is
        also the unit of sharding and of cache accounting.  Memoized like
        :meth:`job_keys`.
        """
        cached = self.__dict__.get("_distinct_keys")
        if cached is None:
            cached = tuple(dict.fromkeys(self.job_keys()))
            object.__setattr__(self, "_distinct_keys", cached)
        return cached

    def shard_keys(self) -> Tuple[str, ...]:
        """The distinct keys this plan actually owns (all, when unsharded).

        Shard ``i`` of ``n`` owns ``sorted(distinct)[i::n]`` — a
        deterministic, disjoint, exhaustive partition that depends only on
        the key set, never on expansion order or host.
        """
        distinct = self.distinct_keys()
        if self.shard_spec is None:
            return distinct
        index, count = self.shard_spec
        owned = set(sorted(distinct)[index::count])
        return tuple(key for key in distinct if key in owned)

    # -- sharding ------------------------------------------------------------------

    def unsharded(self) -> "SweepPlan":
        """This plan with any shard annotation removed (the merge identity)."""
        if self.shard_spec is None:
            return self
        return dataclasses.replace(self, shard_spec=None)

    def shard(self, index: int, count: int) -> "SweepPlan":
        """Deterministic shard ``index`` of ``count`` — see :meth:`shard_keys`.

        Sharding a shard would silently re-partition an already-partial
        key set, so it is rejected; shard the unsharded plan instead.
        """
        if self.shard_spec is not None:
            raise ExperimentError(
                f"plan is already shard {self.shard_spec[0]}/"
                f"{self.shard_spec[1]}; shard the unsharded plan instead"
            )
        return dataclasses.replace(
            self, shard_spec=_validated_shard((index, count))
        )

    # -- serialization -------------------------------------------------------------

    def to_json(self, indent: Optional[int] = None) -> str:
        """Canonical JSON (sorted keys; compact when ``indent`` is None)."""
        payload = {"format": PLAN_FORMAT, "plan": _encode_plan(self)}
        return _dumps(payload, indent)

    @classmethod
    def from_json(cls, text: str) -> "SweepPlan":
        """Inverse of :meth:`to_json`: ``from_json(p.to_json()) == p``."""
        return _decode_plan(_loads_payload(text, "plan"))


def _validated_shard(shard: Sequence[int]) -> Tuple[int, int]:
    shard = tuple(shard)
    if len(shard) != 2:
        raise ExperimentError(f"shard must be (index, count), got {shard!r}")
    index, count = shard
    for value in (index, count):
        if not isinstance(value, int) or isinstance(value, bool):
            raise ExperimentError(f"shard must be two integers, got {shard!r}")
    if count < 1 or not 0 <= index < count:
        raise ExperimentError(
            f"shard index must satisfy 0 <= index < count, got {index}/{count}"
        )
    return index, count


# -- JSON codecs -------------------------------------------------------------------
#
# Hand-written, reversible encoders for the small closed set of frozen
# dataclasses a plan can contain.  Unlike the cache's canonical rendering,
# these *keep* display labels: ``from_json(to_json(p)) == p`` must hold for
# plan equality, which includes workload names.


def _dumps(payload: Any, indent: Optional[int] = None) -> str:
    if indent is None:
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return json.dumps(payload, sort_keys=True, indent=indent)


def _loads_payload(text: str, section: str) -> Dict[str, Any]:
    try:
        raw = json.loads(text)
    except ValueError as exc:
        raise ExperimentError(f"malformed {section} JSON: {exc}") from None
    if not isinstance(raw, dict) or raw.get("format") != PLAN_FORMAT:
        raise ExperimentError(
            f"not a format-{PLAN_FORMAT} {section} document"
        )
    body = raw.get(section)
    if not isinstance(body, dict):
        raise ExperimentError(f"{section} document has no {section!r} section")
    return body


def _encode_shape(shape: GemmShape) -> Dict[str, Any]:
    return {"m": shape.m, "n": shape.n, "k": shape.k, "name": shape.name}


def _decode_shape(raw: Dict[str, Any]) -> GemmShape:
    return GemmShape(m=raw["m"], n=raw["n"], k=raw["k"], name=raw.get("name", ""))


def _encode_core(core: CoreConfig) -> Dict[str, Any]:
    return dataclasses.asdict(core)


def _decode_core(raw: Dict[str, Any]) -> CoreConfig:
    return CoreConfig(**raw)


def _encode_codegen(codegen: CodegenOptions) -> Dict[str, Any]:
    return {
        "blocking": {
            "bm": codegen.blocking.bm,
            "bn": codegen.blocking.bn,
            "mm_order": codegen.blocking.mm_order.value,
        },
        "scalar_overhead_per_kstep": codegen.scalar_overhead_per_kstep,
        "scalar_overhead_per_block": codegen.scalar_overhead_per_block,
    }


def _decode_codegen(raw: Dict[str, Any]) -> CodegenOptions:
    blocking = raw["blocking"]
    return CodegenOptions(
        blocking=BlockingConfig(
            bm=blocking["bm"],
            bn=blocking["bn"],
            mm_order=MMOrder(blocking["mm_order"]),
        ),
        scalar_overhead_per_kstep=raw["scalar_overhead_per_kstep"],
        scalar_overhead_per_block=raw["scalar_overhead_per_block"],
    )


def _encode_suite_entry(entry: SuiteLike) -> Dict[str, Any]:
    if isinstance(entry, str):
        return {"name": entry}
    if isinstance(entry, SuiteSpec) and SUITES.get(entry.name) is entry:
        # A registered spec is just its name — decoding resolves it back
        # through the registry, so the round trip stays rebuildable.
        return {"name": entry.name}
    if isinstance(entry, WorkloadSuite):
        return {
            "inline": {
                "name": entry.name,
                "gemms": [
                    [label, _encode_shape(shape)] for label, shape in entry.gemms
                ],
            }
        }
    raise ExperimentError(
        f"suite {entry.name!r} is an ad-hoc SuiteSpec, whose factory cannot "
        "serialize; register it in repro.workloads.suites.SUITES or inline "
        "the built suite (spec.build(...))"
    )


def _decode_suite_entry(raw: Dict[str, Any]) -> SuiteLike:
    if "name" in raw:
        return raw["name"]
    inline = raw["inline"]
    return WorkloadSuite(
        name=inline["name"],
        gemms=tuple(
            (label, _decode_shape(shape)) for label, shape in inline["gemms"]
        ),
    )


def _encode_job(job: SweepJob) -> Dict[str, Any]:
    return {
        "design_key": job.design_key,
        "shape": _encode_shape(job.shape),
        "workload": job.workload,
        "core": _encode_core(job.core),
        "codegen": _encode_codegen(job.codegen),
        "fidelity": job.fidelity,
    }


def _decode_job(raw: Dict[str, Any]) -> SweepJob:
    return SweepJob(
        design_key=raw["design_key"],
        shape=_decode_shape(raw["shape"]),
        workload=raw.get("workload", ""),
        core=_decode_core(raw["core"]),
        codegen=_decode_codegen(raw["codegen"]),
        fidelity=raw.get("fidelity", "fast"),
    )


def _encode_plan(plan: SweepPlan) -> Dict[str, Any]:
    return {
        "designs": list(plan.designs),
        "workloads": [
            [name, _encode_shape(shape)] for name, shape in plan.workloads
        ],
        "suites": [_encode_suite_entry(entry) for entry in plan.suites],
        "batches": None if plan.batches is None else list(plan.batches),
        "batch": plan.batch,
        "scale": plan.scale,
        "scale_batch": plan.scale_batch,
        "scale_spatial": plan.scale_spatial,
        "core": _encode_core(plan.core),
        "codegen": _encode_codegen(plan.codegen),
        "fidelity": plan.fidelity,
        "jobs": [_encode_job(job) for job in plan.jobs],
        "shard": None if plan.shard_spec is None else list(plan.shard_spec),
    }


def _decode_plan(raw: Dict[str, Any]) -> SweepPlan:
    try:
        return SweepPlan(
            designs=tuple(raw["designs"]),
            workloads=tuple(
                (name, _decode_shape(shape)) for name, shape in raw["workloads"]
            ),
            suites=tuple(
                _decode_suite_entry(entry) for entry in raw["suites"]
            ),
            batches=None if raw["batches"] is None else tuple(raw["batches"]),
            batch=raw["batch"],
            scale=raw["scale"],
            # Absent in pre-IR plan documents: identity lowering.
            scale_batch=raw.get("scale_batch", 1),
            scale_spatial=raw.get("scale_spatial", 1),
            core=_decode_core(raw["core"]),
            codegen=_decode_codegen(raw["codegen"]),
            fidelity=raw["fidelity"],
            jobs=tuple(_decode_job(job) for job in raw["jobs"]),
            shard_spec=None if raw["shard"] is None else tuple(raw["shard"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ExperimentError(f"malformed plan JSON: {exc!r}") from None


# -- reports -----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class SweepReport:
    """The results of running one :class:`SweepPlan` (or one shard of it).

    ``results`` maps each owned distinct cache key to its
    :class:`SimResult`; everything else is a *view* recomputed from the
    plan, so two reports are equal — and serialize identically — whenever
    their plans and result sets are, regardless of how the work was
    scheduled, cached or sharded.  ``simulated``/``cache_hits`` are run
    diagnostics and deliberately excluded from equality and JSON.
    """

    plan: SweepPlan
    results: Dict[str, SimResult]
    simulated: int = dataclasses.field(default=0, compare=False)
    cache_hits: int = dataclasses.field(default=0, compare=False)

    # -- completeness --------------------------------------------------------------

    @property
    def is_partial(self) -> bool:
        """Whether this report covers only one shard of its plan."""
        return self.plan.shard_spec is not None

    def _require_complete(self, view: str) -> None:
        if self.is_partial:
            index, count = self.plan.shard_spec
            raise ExperimentError(
                f"report covers shard {index}/{count} only; merge all "
                f"{count} shard reports before reading {view}"
            )

    # -- positional result access --------------------------------------------------

    def job_keys(self) -> Tuple[str, ...]:
        """Cache keys aligned with :meth:`SweepPlan.iter_jobs` order.

        Delegates to the plan's memoized :meth:`SweepPlan.job_keys`, so a
        run plus any number of views never hashes a job twice.
        """
        return self.plan.job_keys()

    def _results_in_order(self) -> Iterator[SimResult]:
        for key in self.job_keys():
            yield self.results[key]

    # -- typed views ---------------------------------------------------------------

    def flat(self) -> List[SimResult]:
        """Every job's result, in :meth:`SweepPlan.iter_jobs` order."""
        self._require_complete("flat()")
        return list(self._results_in_order())

    def grid(self) -> Dict[str, Dict[str, SimResult]]:
        """``grid[workload_name][design_key]`` over the plan's workloads."""
        self._require_complete("grid()")
        stream = self._results_in_order()
        for _ in self.plan.jobs:
            next(stream)
        table: Dict[str, Dict[str, SimResult]] = {}
        for name, _ in self.plan.workloads:
            table[name] = {design: next(stream) for design in self.plan.designs}
        return table

    def _suite_stream(self) -> Iterator[SimResult]:
        stream = self._results_in_order()
        for _ in range(len(self.plan.jobs)
                       + len(self.plan.workloads) * len(self.plan.designs)):
            next(stream)
        return stream

    def suite_totals(self) -> Dict[str, Dict[str, SuiteTotals]]:
        """``totals[suite_name][design_key]`` — occurrence-weighted totals.

        Only for plans without a batch axis; batch sweeps read
        :meth:`batch_curves` instead.
        """
        self._require_complete("suite_totals()")
        if self.plan.batches is not None:
            raise ExperimentError(
                "this plan sweeps a batch axis; read batch_curves() instead "
                "of suite_totals()"
            )
        stream = self._suite_stream()
        totals: Dict[str, Dict[str, SuiteTotals]] = {}
        for suite, _ in self.plan.built_suites():
            entries = suite.distinct()
            totals[suite.name] = {
                design: _expand_totals(suite, design, entries, stream)
                for design in self.plan.designs
            }
        return totals

    def suite_layer_cycles(self) -> Dict[str, Dict[str, Dict[str, int]]]:
        """``cycles[suite][design][label]`` — per-layer-label cycle totals.

        Labels that occur multiple times in the multiset (e.g. the 24
        per-head copies of one attention matmul) aggregate
        occurrence-weighted, so summing a suite's labels reproduces its
        :class:`SuiteTotals` cycles exactly.  Like :meth:`suite_totals`,
        this view is for plans without a batch axis; the experiments use
        it to split training suites into fwd/dgrad/wgrad shares.
        """
        self._require_complete("suite_layer_cycles()")
        if self.plan.batches is not None:
            raise ExperimentError(
                "this plan sweeps a batch axis; suite_layer_cycles() reads "
                "single-batch suite plans only"
            )
        stream = self._suite_stream()
        table: Dict[str, Dict[str, Dict[str, int]]] = {}
        for suite, _ in self.plan.built_suites():
            entries = suite.distinct()
            per_design: Dict[str, Dict[str, int]] = {}
            for design in self.plan.designs:
                cycles: Dict[str, int] = {}
                for entry in entries:
                    result = next(stream)
                    for label in entry.layers:
                        cycles[label] = cycles.get(label, 0) + result.cycles
                per_design[design] = cycles
            table[suite.name] = per_design
        return table

    def batch_curves(self) -> Dict[str, Dict[str, SuiteBatchCurve]]:
        """``curves[suite_name][design_key]`` along the plan's batch axis."""
        self._require_complete("batch_curves()")
        if self.plan.batches is None:
            raise ExperimentError(
                "this plan has no batch axis; read suite_totals() instead "
                "of batch_curves()"
            )
        stream = self._suite_stream()
        per_point: Dict[Tuple[str, int, str], SuiteTotals] = {}
        names: List[str] = []
        for suite, batch in self.plan.built_suites():
            if suite.name not in names:
                names.append(suite.name)
            entries = suite.distinct()
            for design in self.plan.designs:
                per_point[(suite.name, batch, design)] = _expand_totals(
                    suite, design, entries, stream
                )
        return {
            name: {
                design: SuiteBatchCurve(
                    suite=name,
                    design_key=design,
                    batches=self.plan.batches,
                    totals=tuple(
                        per_point[(name, batch, design)]
                        for batch in self.plan.batches
                    ),
                )
                for design in self.plan.designs
            }
            for name in names
        }

    def point(
        self,
        design_key: str,
        shape: GemmShape,
        fidelity: Optional[str] = None,
    ) -> SimResult:
        """One (design, shape) result under the plan's shared settings.

        ``shape`` is the shape *as declared* — plans store unscaled
        declarations, so the plan's ``scale`` is applied here exactly as
        expansion applies it to workload shapes.
        """
        key = cache_key(
            design_key,
            shape.scaled(self.plan.scale),
            self.plan.core,
            self.plan.codegen,
            fidelity if fidelity is not None else self.plan.fidelity,
        )
        try:
            return self.results[key]
        except KeyError:
            raise ExperimentError(
                f"no result for design {design_key!r} x {shape} in this "
                "report (not part of the plan, or owned by another shard)"
            ) from None

    # -- stats ---------------------------------------------------------------------

    @property
    def job_count(self) -> int:
        """Expanded jobs this report's shard covers (pre-dedup)."""
        if not self.is_partial:
            return len(self.job_keys())
        owned = set(self.plan.shard_keys())
        return sum(1 for key in self.job_keys() if key in owned)

    @property
    def distinct_points(self) -> int:
        """Distinct simulation points this report's shard owns."""
        return len(self.results)

    @property
    def dedup_factor(self) -> float:
        """Expanded jobs per distinct point, within this report's shard."""
        return self.job_count / self.distinct_points if self.results else 0.0

    # -- merging -------------------------------------------------------------------

    def merge(self, *others: "SweepReport") -> "SweepReport":
        """Reassemble shard reports into the full report, bit-identically.

        All reports must stem from the same unsharded plan; the union of
        their result sets must cover every distinct key (no missing
        shard).  Overlap is fine when the overlapping results agree —
        simulations are deterministic, so disagreement means the reports
        came from different code versions and is an error.
        """
        base = self.plan.unsharded()
        merged: Dict[str, SimResult] = dict(self.results)
        simulated = self.simulated
        cache_hits = self.cache_hits
        for other in others:
            if other.plan.unsharded() != base:
                raise ExperimentError(
                    "cannot merge reports from different plans; shards must "
                    "share one unsharded SweepPlan"
                )
            for key, result in other.results.items():
                if key in merged and merged[key] != result:
                    raise ExperimentError(
                        "shard reports disagree on a result (key "
                        f"{key[:12]}…); were they produced by different "
                        "code versions?"
                    )
                merged[key] = result
            simulated += other.simulated
            cache_hits += other.cache_hits
        missing = [k for k in base.distinct_keys() if k not in merged]
        if missing:
            raise ExperimentError(
                f"merged shards cover {len(merged)} of "
                f"{len(merged) + len(missing)} distinct points; "
                f"{len(missing)} missing — run and merge every shard"
            )
        return SweepReport(
            plan=base,
            results=merged,
            simulated=simulated,
            cache_hits=cache_hits,
        )

    # -- serialization -------------------------------------------------------------

    def to_json(self, indent: Optional[int] = None) -> str:
        """Canonical JSON of (plan, results) — diagnostics excluded.

        Two complete reports over equal plans and results render the very
        same string, which is what makes the sharded CI smoke's
        ``merged == single-shot`` comparison a plain file diff.
        """
        payload = {
            "format": PLAN_FORMAT,
            "report": {
                "plan": _encode_plan(self.plan),
                "results": {
                    key: dataclasses.asdict(result)
                    for key, result in self.results.items()
                },
            },
        }
        return _dumps(payload, indent)

    @classmethod
    def from_json(cls, text: str) -> "SweepReport":
        """Inverse of :meth:`to_json` (diagnostic counters reset to zero)."""
        body = _loads_payload(text, "report")
        try:
            plan = _decode_plan(body["plan"])
            results = {
                key: SimResult(**entry)
                for key, entry in body["results"].items()
            }
        except (KeyError, TypeError) as exc:
            raise ExperimentError(f"malformed report JSON: {exc!r}") from None
        return cls(plan=plan, results=results)
