"""The :class:`SimBackend` protocol and its three adapters.

A backend binds one engine design point (plus, for the CPU-attached models,
one :class:`repro.cpu.config.CoreConfig`) and executes programs in two
phases::

    backend = resolve_backend("rasa-dmdb-wls", fidelity="fast")
    result = backend.prepare(program).run()     # -> SimResult

``prepare`` binds the instruction stream (and lets a backend do per-program
setup — the engine adapter resets its register file and scheduler there);
``run`` executes and returns the uniform :class:`repro.cpu.result.SimResult`
record every layer above consumes.  ``simulate`` is the one-shot
convenience combining both.

Four fidelities exist, cheapest first:

- ``"analytic"`` — :class:`repro.cpu.analytic.AnalyticCoreModel`, the
  closed-form O(1)-per-point model.  Shape-level: it never builds a
  program, so it implements :meth:`ShapeBackend.run_shape` instead of
  ``prepare``/``run`` (the runtime layer dispatches on that);
- ``"engine"`` — engine-bound :class:`repro.engine.engine.MatrixEngine`
  execution: operands always ready, optional functional data movement
  (``"array"`` / ``"oracle"`` / ``"off"``);
- ``"fast"``   — :class:`repro.cpu.fastvec.FastVecCoreModel`, the
  vectorized O(n) timestamp-propagation core model (the default for
  sweeps), bit-identical to the scalar reference;
- ``"fast-ref"`` — :class:`repro.cpu.fast.FastCoreModel`, the scalar
  per-instruction reference the vectorized kernel is cross-checked
  against (the oracle tier; same results, slower);
- ``"ooo"``    — :class:`repro.cpu.ooo.core.OutOfOrderCore`, the
  cycle-accurate validation model.
"""

from __future__ import annotations

from typing import Optional, Protocol, runtime_checkable

from repro.cpu.analytic import AnalyticCoreModel
from repro.cpu.config import CoreConfig
from repro.cpu.fast import FastCoreModel
from repro.cpu.fastvec import FastVecCoreModel
from repro.cpu.ooo.core import OutOfOrderCore
from repro.cpu.result import SimResult
from repro.engine.config import EngineConfig
from repro.engine.engine import MatrixEngine
from repro.errors import SimError
from repro.isa.program import Program
from repro.workloads.codegen import CodegenOptions
from repro.workloads.gemm import GemmShape


@runtime_checkable
class SimBackend(Protocol):
    """Uniform execution interface: ``prepare(program)`` then ``run()``."""

    fidelity: str

    def prepare(self, program: Program) -> "SimBackend":
        """Bind ``program`` for the next :meth:`run`; returns ``self``."""
        ...

    def run(self) -> SimResult:
        """Execute the prepared program and return its :class:`SimResult`."""
        ...

    def simulate(self, program: Program) -> SimResult:
        """One-shot ``prepare(program).run()``."""
        ...


@runtime_checkable
class ShapeBackend(Protocol):
    """A backend that executes (shape, codegen) points without a program.

    The runtime layer's single dispatch rule: if a resolved backend has
    ``run_shape``, jobs skip program generation entirely and call it with
    the job's shape and codegen options.
    """

    fidelity: str

    def run_shape(
        self, shape: GemmShape, codegen: CodegenOptions
    ) -> SimResult:
        """Estimate the point directly from the shape's structure."""
        ...


class _BaseBackend:
    """Shared prepare/run plumbing for the concrete adapters."""

    fidelity = "abstract"

    def __init__(self, engine: EngineConfig, core: Optional[CoreConfig] = None) -> None:
        self.engine = engine
        self.core = core if core is not None else CoreConfig()
        self._program: Optional[Program] = None

    def prepare(self, program: Program) -> "_BaseBackend":
        self._program = program
        return self

    def run(self) -> SimResult:
        if self._program is None:
            raise SimError(
                f"{type(self).__name__}.run() called before prepare(); "
                "bind a program first (or use simulate(program))"
            )
        program, self._program = self._program, None
        return self._execute(program)

    def simulate(self, program: Program) -> SimResult:
        return self.prepare(program).run()

    def _execute(self, program: Program) -> SimResult:
        raise NotImplementedError


class AnalyticBackend:
    """Adapter over the closed-form analytic model (shape-level).

    This backend deliberately does *not* implement the program-based
    :class:`SimBackend` phases: the whole point of the analytic tier is
    that no program ever exists.  Probe memoization lives in the model, so
    holding one backend across a sweep amortizes the scheduler probes over
    every shape that hits the same block geometries.
    """

    fidelity = "analytic"

    def __init__(self, engine: EngineConfig, core: Optional[CoreConfig] = None) -> None:
        self.engine = engine
        self.core = core if core is not None else CoreConfig()
        self._model = AnalyticCoreModel(core=self.core, engine=engine)

    def run_shape(
        self, shape: GemmShape, codegen: CodegenOptions = CodegenOptions()
    ) -> SimResult:
        return self._model.run_shape(shape, codegen)

    def prepare(self, program: Program) -> "AnalyticBackend":
        raise SimError(
            "the 'analytic' fidelity is shape-level and never executes "
            "programs; call run_shape(shape, codegen) instead (the Session "
            "layer does this automatically)"
        )

    def run(self) -> SimResult:
        raise SimError(
            "the 'analytic' fidelity is shape-level; use run_shape(shape, codegen)"
        )

    def simulate(self, program: Program) -> SimResult:
        return self.prepare(program).run()


class FastCoreBackend(_BaseBackend):
    """Adapter over the vectorized O(n) timestamp-propagation core model.

    The vectorized kernel shares one :class:`repro.cpu.decode.DecodedProgram`
    per distinct program across every design and is bit-identical to the
    scalar reference (``"fast-ref"``), so existing ``"fast"`` cache entries
    stay valid.
    """

    fidelity = "fast"

    def _execute(self, program: Program) -> SimResult:
        model = FastVecCoreModel(core=self.core, engine=self.engine)
        return model.run(program)


class FastRefBackend(_BaseBackend):
    """Adapter over the scalar per-instruction reference model.

    Kept as its own fidelity so the cross-check oracles
    (:func:`repro.analysis.bounds.cross_check_bounds`,
    :func:`repro.analysis.verifier.cross_check_counters`, the hypothesis
    property suite) can assert ``fast == fast-ref`` end to end.
    """

    fidelity = "fast-ref"

    def _execute(self, program: Program) -> SimResult:
        model = FastCoreModel(core=self.core, engine=self.engine)
        return model.run(program)


class OoOCoreBackend(_BaseBackend):
    """Adapter over the cycle-accurate out-of-order core."""

    fidelity = "ooo"

    def __init__(
        self,
        engine: EngineConfig,
        core: Optional[CoreConfig] = None,
        max_cycles: int = 50_000_000,
    ) -> None:
        super().__init__(engine, core)
        self.max_cycles = max_cycles

    def _execute(self, program: Program) -> SimResult:
        model = OutOfOrderCore(core=self.core, engine=self.engine)
        return model.run(program, max_cycles=self.max_cycles)


class EngineBackend(_BaseBackend):
    """Adapter over engine-bound :class:`MatrixEngine` execution.

    Cycles are reported in the CPU clock domain (engine completion time
    times the clock ratio) so results stay comparable with the CPU-attached
    fidelities; ``engine_busy_cycles`` keeps the engine-clock busy window.
    """

    fidelity = "engine"

    def __init__(
        self,
        engine: EngineConfig,
        core: Optional[CoreConfig] = None,
        functional: str = "off",
    ) -> None:
        super().__init__(engine, core)
        self.functional = functional
        self._engine_sim = MatrixEngine(engine, functional=functional)

    def prepare(self, program: Program) -> "EngineBackend":
        # A fresh program gets a cold engine: clear weights + dirty bits so
        # back-to-back simulate() calls are independent, like the CPU models.
        self._engine_sim.reset()
        return super().prepare(program)

    def _execute(self, program: Program) -> SimResult:
        report = self._engine_sim.run(program)
        ratio = self.core.engine_clock_ratio(self.engine.clock_mhz)
        complete = report.schedule[-1].complete if report.schedule else 0
        return SimResult(
            design=self.engine.describe(),
            program=program.name,
            cycles=complete * ratio,
            instructions=len(program),
            mm_count=report.stats.mm_count,
            bypass_count=report.stats.bypass_count,
            weight_loads=report.stats.weight_load_count,
            engine_busy_cycles=report.stats.total_cycles,
            clock_mhz=self.core.clock_mhz,
        )
