"""RASA: Register-Aware Systolic Array Matrix Engine for CPU — reproduction.

A from-scratch Python implementation of the full system described in
G. Jeong et al., *"RASA: Efficient Register-Aware Systolic Array Matrix
Engine for CPU"* (DAC 2021): the AMX-like tile ISA, the weight-stationary
systolic array (functional and cycle-accurate), the RASA sub-stage
pipelining engine with its control (PIPE/WLBP/WLS) and data (DB/DM/DMDB)
optimizations, a Skylake-like trace-driven out-of-order CPU model, the
LIBXSMM-style GEMM/convolution code generator, and Nangate-15nm-calibrated
area/energy models — plus experiment drivers regenerating every table and
figure in the paper's evaluation.  All simulation flows through
:mod:`repro.runtime`: a pluggable :class:`SimBackend` registry, an on-disk
result cache, and declarative, serializable, shardable :class:`SweepPlan`\\ s
executed by a multiprocessing :class:`Session`.

Quickstart::

    from repro import GemmShape, get_design, FastCoreModel, generate_gemm_program

    shape = GemmShape(m=256, n=256, k=256, name="demo")
    program = generate_gemm_program(shape)
    baseline = FastCoreModel(engine=get_design("baseline").config).run(program)
    rasa = FastCoreModel(engine=get_design("rasa-dmdb-wls").config).run(program)
    print(rasa.cycles / baseline.cycles)   # ~0.17-0.2: the paper's headline
"""

from repro.cpu import CoreConfig, FastCoreModel, OutOfOrderCore, SimResult
from repro.engine import (
    BASELINE_DESIGN,
    ControlPolicy,
    DESIGNS,
    DesignPoint,
    EngineConfig,
    MatrixEngine,
    get_design,
)
from repro.isa import Program, ProgramBuilder, assemble, disassemble
from repro.runtime import (
    ResultCache,
    Session,
    SimBackend,
    SweepJob,
    SweepPlan,
    SweepReport,
    resolve_backend,
)
from repro.systolic import SystolicArray
from repro.tile import TileMemory, TileRegisterFile
from repro.workloads import (
    CodegenOptions,
    ConvLayer,
    FCLayer,
    GemmShape,
    TABLE1_LAYERS,
    gemm_reference,
    generate_gemm_program,
)
from repro.workloads.codegen import build_gemm_kernel

__version__ = "1.0.0"

__all__ = [
    "CoreConfig",
    "FastCoreModel",
    "OutOfOrderCore",
    "SimResult",
    "ControlPolicy",
    "EngineConfig",
    "MatrixEngine",
    "DesignPoint",
    "DESIGNS",
    "BASELINE_DESIGN",
    "get_design",
    "Program",
    "ProgramBuilder",
    "SimBackend",
    "resolve_backend",
    "ResultCache",
    "SweepJob",
    "SweepPlan",
    "SweepReport",
    "Session",
    "assemble",
    "disassemble",
    "SystolicArray",
    "TileMemory",
    "TileRegisterFile",
    "GemmShape",
    "ConvLayer",
    "FCLayer",
    "TABLE1_LAYERS",
    "CodegenOptions",
    "generate_gemm_program",
    "build_gemm_kernel",
    "gemm_reference",
    "__version__",
]
