"""A single tile register: 1 KB of raw bytes plus a write-version counter.

Like Intel AMX tiles, a tile register is *untyped storage* — ``rasa_tl``
copies bytes in, ``rasa_ts`` copies bytes out, and only ``rasa_mm`` imposes
an interpretation (BF16 16x32 for A/B, FP32 16x16 for C).  The typed
``read_bf16``/``write_fp32`` helpers do the bit-faithful encode/decode.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TileError
from repro.numerics.bf16 import bf16_bits_to_f32, f32_to_bf16_bits
from repro.tile.layout import BF16_TILE, FP32_TILE, ROW_BYTES, ROWS


class TileRegister:
    """One 1 KB tile register (16 rows x 64 B of raw bytes).

    The register tracks a monotonically increasing ``version`` that bumps on
    every write.  Versions give the engine an exact "has this register
    changed since I last loaded weights from it?" test — the architectural
    dirty bit of WLBP is a hardware approximation of the same information.
    """

    def __init__(self, index: int):
        self.index = index
        self._bytes = np.zeros((ROWS, ROW_BYTES), dtype=np.uint8)
        self.version = 0
        self._written = False

    @property
    def is_written(self) -> bool:
        """True once the register has been written at least once."""
        return self._written

    def touch(self) -> None:
        """Bump the write version without supplying data (timing-only runs)."""
        self.version += 1
        self._written = True

    # -- raw byte access (rasa_tl / rasa_ts) ------------------------------------

    def write_bytes(self, data: np.ndarray) -> None:
        """Replace the register contents with a (16, 64) uint8 payload."""
        array = np.asarray(data, dtype=np.uint8)
        if array.shape != (ROWS, ROW_BYTES):
            raise TileError(
                f"tile payload must be ({ROWS}, {ROW_BYTES}) bytes, got {array.shape}"
            )
        self._bytes = array.copy()
        self.version += 1
        self._written = True

    def read_bytes(self) -> np.ndarray:
        """Read the raw (16, 64) uint8 contents."""
        self._check_initialized()
        return self._bytes.copy()

    # -- typed views (rasa_mm operand interpretation) ------------------------------

    def read_bf16(self) -> np.ndarray:
        """Interpret the contents as a 16x32 BF16 tile; returns float32 values."""
        self._check_initialized()
        bits = self._bytes.reshape(ROWS, ROW_BYTES).view(np.uint16)
        return bf16_bits_to_f32(bits).reshape(BF16_TILE.shape)

    def read_fp32(self) -> np.ndarray:
        """Interpret the contents as a 16x16 FP32 tile."""
        self._check_initialized()
        return self._bytes.view(np.float32).reshape(FP32_TILE.shape).copy()

    def write_bf16(self, matrix: np.ndarray) -> None:
        """Encode a 16x32 matrix as BF16 (RNE) and store it."""
        matrix = BF16_TILE.check(matrix)
        bits = f32_to_bf16_bits(matrix.astype(np.float32))
        self.write_bytes(bits.view(np.uint8).reshape(ROWS, ROW_BYTES))

    def write_fp32(self, matrix: np.ndarray) -> None:
        """Store a 16x16 float32 matrix."""
        matrix = FP32_TILE.check(matrix)
        payload = np.ascontiguousarray(matrix, dtype=np.float32)
        self.write_bytes(payload.view(np.uint8).reshape(ROWS, ROW_BYTES))

    def _check_initialized(self) -> None:
        if not self._written:
            raise TileError(f"read of uninitialized tile register treg{self.index}")

    def __repr__(self) -> str:
        state = f"v{self.version}" if self._written else "empty"
        return f"TileRegister(treg{self.index}, {state})"
