"""Tile register file substrate (Intel-AMX-like, Sec. II-B / IV-A).

Eight architectural tile registers, each 16 rows x 64 B (1 KB).  A register
holds either a BF16 tile (16x32) or an FP32 tile (16x16); the register file
additionally tracks the per-register *dirty bits* that the WLBP control
optimization consults to detect safe weight reuse.
"""

from repro.tile.layout import TileLayout, BF16_TILE, FP32_TILE
from repro.tile.register import TileRegister
from repro.tile.regfile import TileRegisterFile
from repro.tile.memory import TileMemory
from repro.tile.hostmem import HostMatrix, layout_gemm_operands
from repro.tile.vnni import pack_b_vnni, unpack_b_vnni, unpack_b_tile

__all__ = [
    "TileLayout",
    "BF16_TILE",
    "FP32_TILE",
    "TileRegister",
    "TileRegisterFile",
    "TileMemory",
    "HostMatrix",
    "layout_gemm_operands",
    "pack_b_vnni",
    "unpack_b_vnni",
    "unpack_b_tile",
]
