"""VNNI (K-pair) packing of B tiles.

An AMX-style ``rasa_mm`` reads its B operand from a tile register whose 64 B
rows interleave *pairs of adjacent K rows*: register row ``r``, element
``2n + j`` holds logical ``B[2r + j, n]``.  Software pre-packs B into this
layout (exactly what LIBXSMM does for AMX), which makes a 32x16 logical B
tile fit the 16x32-element register geometry — and, not coincidentally,
delivers both weights of a double-multiplier PE in one register row.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TileError

#: K rows interleaved per packed row (BF16 pairs fill a 32-bit lane).
PACK = 2


def pack_b_vnni(b: np.ndarray) -> np.ndarray:
    """Pack a logical (K, N) matrix into the (K/2, 2N) VNNI layout."""
    b = np.asarray(b)
    if b.ndim != 2:
        raise TileError(f"B must be 2-D, got shape {b.shape}")
    k, n = b.shape
    if k % PACK:
        raise TileError(f"K={k} must be a multiple of {PACK} for VNNI packing")
    # (K/2, 2, N) -> (K/2, N, 2) -> (K/2, 2N): row r = [b[2r,0], b[2r+1,0], ...]
    return np.ascontiguousarray(b.reshape(k // PACK, PACK, n).transpose(0, 2, 1).reshape(k // PACK, PACK * n))


def unpack_b_vnni(packed: np.ndarray) -> np.ndarray:
    """Invert :func:`pack_b_vnni`: (K/2, 2N) packed -> (K, N) logical."""
    packed = np.asarray(packed)
    if packed.ndim != 2 or packed.shape[1] % PACK:
        raise TileError(f"packed B must be (K/2, 2N), got shape {packed.shape}")
    half_k, two_n = packed.shape
    n = two_n // PACK
    return np.ascontiguousarray(
        packed.reshape(half_k, n, PACK).transpose(0, 2, 1).reshape(half_k * PACK, n)
    )


def unpack_b_tile(tile: np.ndarray) -> np.ndarray:
    """Decode one 16x32 register-view B tile into its logical 32x16 matrix."""
    tile = np.asarray(tile)
    if tile.shape != (16, 32):
        raise TileError(f"register B tile must be 16x32, got {tile.shape}")
    return unpack_b_vnni(tile)
