"""Byte-addressable simulation memory for tile loads and stores.

``rasa_tl``/``rasa_ts`` move 16 rows of 64 B between memory and a tile
register, with a fixed byte stride between rows (Sec. II-B).  This memory is
sparse (paged) so programs can lay matrices out at natural addresses without
allocating gigabytes of backing store.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.errors import TileError
from repro.tile.layout import ROW_BYTES, ROWS

_PAGE_SIZE = 1 << 16


class TileMemory:
    """Sparse byte-addressable memory (64 KiB pages, zero-fill on first touch)."""

    def __init__(self) -> None:
        self._pages: Dict[int, np.ndarray] = {}

    def _page(self, base: int) -> np.ndarray:
        page = self._pages.get(base)
        if page is None:
            page = np.zeros(_PAGE_SIZE, dtype=np.uint8)
            self._pages[base] = page
        return page

    def write(self, address: int, data: np.ndarray) -> None:
        """Write a flat uint8 array at ``address`` (may cross pages)."""
        if address < 0:
            raise TileError(f"negative address {address}")
        data = np.ascontiguousarray(data, dtype=np.uint8).ravel()
        offset = 0
        while offset < data.size:
            addr = address + offset
            base, page_off = divmod(addr, _PAGE_SIZE)
            chunk = min(data.size - offset, _PAGE_SIZE - page_off)
            self._page(base)[page_off : page_off + chunk] = data[offset : offset + chunk]
            offset += chunk

    def read(self, address: int, size: int) -> np.ndarray:
        """Read ``size`` bytes from ``address`` as a flat uint8 array."""
        if address < 0 or size < 0:
            raise TileError(f"bad read range ({address}, {size})")
        out = np.empty(size, dtype=np.uint8)
        offset = 0
        while offset < size:
            addr = address + offset
            base, page_off = divmod(addr, _PAGE_SIZE)
            chunk = min(size - offset, _PAGE_SIZE - page_off)
            page = self._pages.get(base)
            if page is None:
                out[offset : offset + chunk] = 0
            else:
                out[offset : offset + chunk] = page[page_off : page_off + chunk]
            offset += chunk
        return out

    # -- tile granularity ----------------------------------------------------------

    def load_tile(self, address: int, stride: int = ROW_BYTES) -> np.ndarray:
        """Assemble a (16, 64) uint8 tile from 16 strided rows (a rasa_tl)."""
        rows = [self.read(address + r * stride, ROW_BYTES) for r in range(ROWS)]
        return np.stack(rows)

    def store_tile(self, address: int, data: np.ndarray, stride: int = ROW_BYTES) -> None:
        """Scatter a (16, 64) uint8 tile to 16 strided rows (a rasa_ts)."""
        data = np.asarray(data, dtype=np.uint8)
        if data.shape != (ROWS, ROW_BYTES):
            raise TileError(f"tile payload must be ({ROWS}, {ROW_BYTES}), got {data.shape}")
        for r in range(ROWS):
            self.write(address + r * stride, data[r])

    @property
    def touched_bytes(self) -> int:
        """Bytes of backing store currently allocated (diagnostics)."""
        return len(self._pages) * _PAGE_SIZE
