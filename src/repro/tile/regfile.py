"""The architectural tile register file with WLBP dirty bits (Sec. IV-B).

RASA-WLBP adds one dirty bit per tile register: set on any write to the
register, cleared when a ``rasa_mm`` loads weights from it.  A subsequent
``rasa_mm`` naming the same B register with a clear dirty bit may skip its
Weight Load stage entirely.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import TileError
from repro.isa.instructions import NUM_TILE_REGS, TileReg
from repro.tile.register import TileRegister


class TileRegisterFile:
    """Eight architectural tile registers plus per-register dirty bits."""

    def __init__(self, num_regs: int = NUM_TILE_REGS):
        if num_regs <= 0:
            raise TileError(f"register file needs at least one register, got {num_regs}")
        self.num_regs = num_regs
        self._regs: List[TileRegister] = [TileRegister(i) for i in range(num_regs)]
        # Dirty bits start set: nothing has been consumed as weights yet.
        self._dirty: List[bool] = [True] * num_regs
        #: Which register the array's weight buffers currently mirror (if any).
        self._loaded_weight_reg: Optional[int] = None

    def _index(self, reg: TileReg) -> int:
        if reg.index >= self.num_regs:
            raise TileError(f"{reg} out of range for {self.num_regs}-entry file")
        return reg.index

    def __getitem__(self, reg: TileReg) -> TileRegister:
        return self._regs[self._index(reg)]

    # -- architectural accesses -------------------------------------------------

    def write_bytes(self, reg: TileReg, data: np.ndarray) -> None:
        """Write raw tile bytes (a ``rasa_tl``); sets the dirty bit."""
        self._mark_written(self._index(reg))
        self._regs[reg.index].write_bytes(data)

    def write_fp32(self, reg: TileReg, matrix: np.ndarray) -> None:
        """Write an FP32 tile (an mm accumulator writeback); sets the dirty bit."""
        self._mark_written(self._index(reg))
        self._regs[reg.index].write_fp32(matrix)

    def write_bf16(self, reg: TileReg, matrix: np.ndarray) -> None:
        """Write a BF16 tile; sets the dirty bit."""
        self._mark_written(self._index(reg))
        self._regs[reg.index].write_bf16(matrix)

    def touch(self, reg: TileReg) -> None:
        """Record a write without data (timing-only runs); sets the dirty bit."""
        self._mark_written(self._index(reg))
        self._regs[reg.index].touch()

    def _mark_written(self, index: int) -> None:
        self._dirty[index] = True
        if self._loaded_weight_reg == index:
            # The weights resident in the array no longer mirror the register.
            self._loaded_weight_reg = None

    def read_bytes(self, reg: TileReg) -> np.ndarray:
        return self._regs[self._index(reg)].read_bytes()

    def read_bf16(self, reg: TileReg) -> np.ndarray:
        return self._regs[self._index(reg)].read_bf16()

    def read_fp32(self, reg: TileReg) -> np.ndarray:
        return self._regs[self._index(reg)].read_fp32()

    def version(self, reg: TileReg) -> int:
        """Current write version of ``reg`` (the engine's weight-content key)."""
        return self._regs[self._index(reg)].version

    # -- WLBP dirty-bit protocol -------------------------------------------------

    def is_dirty(self, reg: TileReg) -> bool:
        """True if ``reg`` changed since it was last consumed as weights."""
        return self._dirty[self._index(reg)]

    def can_bypass_weight_load(self, reg: TileReg) -> bool:
        """WLBP test: the array already holds this register's weights and the
        register has not been written since they were loaded."""
        index = self._index(reg)
        return self._loaded_weight_reg == index and not self._dirty[index]

    def mark_weights_loaded(self, reg: TileReg) -> None:
        """Record a completed Weight Load from ``reg`` and clear its dirty bit."""
        index = self._index(reg)
        self._dirty[index] = False
        self._loaded_weight_reg = index

    @property
    def loaded_weight_reg(self) -> Optional[int]:
        """Index of the register whose weights are resident in the array."""
        return self._loaded_weight_reg

    def reset(self) -> None:
        """Clear all contents and dirty state (start of a new program)."""
        self._regs = [TileRegister(i) for i in range(self.num_regs)]
        self._dirty = [True] * self.num_regs
        self._loaded_weight_reg = None

    def __repr__(self) -> str:
        dirty = "".join("d" if d else "." for d in self._dirty)
        return f"TileRegisterFile({self.num_regs} regs, dirty={dirty})"
