"""Tile register geometry.

A tile register is ``ROWS`` rows of ``ROW_BYTES`` bytes (16 x 64 B = 1 KB,
matching Intel AMX).  Matrix views over that storage:

- BF16 (2 B/element): 16 x 32 — the A-operand tile, and the B-operand tile
  when interpreted as two logical 32-element K-rows per physical register row.
- FP32 (4 B/element): 16 x 16 — the C-operand (accumulator) tile.

Simulation note: BF16 elements are *stored* as ``np.float32`` values that are
exactly BF16-representable (see :mod:`repro.numerics.bf16`), so a layout
carries both the in-register element size (``element_bytes``, used for
capacity checks) and the simulation dtype.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import TileError

#: Physical tile register geometry (Sec. IV-A: "16 rows of 64B").
ROWS = 16
ROW_BYTES = 64
TILE_BYTES = ROWS * ROW_BYTES


@dataclasses.dataclass(frozen=True)
class TileLayout:
    """A typed matrix view over the 1 KB tile register storage.

    Attributes:
        name: layout name ("bf16" or "fp32").
        dtype: the NumPy dtype used *in simulation* (float32 for both).
        element_bytes: the architectural element size in the register (2 for
            BF16, 4 for FP32), used to check the view fills exactly 1 KB.
        rows, cols: matrix dimensions of the view.
    """

    name: str
    dtype: np.dtype
    element_bytes: int
    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows * self.cols * self.element_bytes != TILE_BYTES:
            raise TileError(
                f"layout {self.name}: {self.rows}x{self.cols} of "
                f"{self.element_bytes}B does not fill a {TILE_BYTES}B tile register"
            )

    @property
    def shape(self) -> tuple:
        return (self.rows, self.cols)

    def zeros(self) -> np.ndarray:
        """A zero-initialized matrix with this layout's shape and dtype."""
        return np.zeros(self.shape, dtype=self.dtype)

    def check(self, data: np.ndarray) -> np.ndarray:
        """Validate and coerce ``data`` to this layout; raise TileError if wrong."""
        array = np.asarray(data)
        if array.shape != self.shape:
            raise TileError(
                f"layout {self.name}: expected shape {self.shape}, got {array.shape}"
            )
        return array.astype(self.dtype, copy=False)


#: BF16 tile view: 16 rows x 32 columns (values stored as bf16-exact float32).
BF16_TILE = TileLayout("bf16", np.dtype(np.float32), 2, ROWS, 2 * ROWS)
#: FP32 tile view: 16 rows x 16 columns.
FP32_TILE = TileLayout("fp32", np.dtype(np.float32), 4, ROWS, ROWS)
