"""Host-side matrix layout helpers: place matrices in TileMemory, find tiles.

The code generator lays each GEMM operand out row-major at a base address
and emits tile loads/stores whose addresses this module computes.  The same
arithmetic is used on the functional side to write inputs into simulation
memory and read results back, so addresses can never diverge between the
two paths.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import TileError
from repro.numerics.bf16 import bf16_bits_to_f32, f32_to_bf16_bits
from repro.tile.layout import ROWS
from repro.tile.memory import TileMemory


@dataclasses.dataclass(frozen=True)
class HostMatrix:
    """A matrix resident in simulation memory.

    Attributes:
        base: byte address of element (0, 0).
        rows, cols: logical dimensions.
        element_bytes: 2 for BF16, 4 for FP32.
        name: label used in instruction tags.
    """

    base: int
    rows: int
    cols: int
    element_bytes: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.element_bytes not in (2, 4):
            raise TileError(f"element_bytes must be 2 or 4, got {self.element_bytes}")
        if self.rows <= 0 or self.cols <= 0:
            raise TileError(f"matrix dims must be positive: {self.rows}x{self.cols}")

    @property
    def stride(self) -> int:
        """Leading dimension in bytes (row-major, densely packed)."""
        return self.cols * self.element_bytes

    @property
    def tile_cols_elems(self) -> int:
        """Elements per 64 B tile row (32 for BF16, 16 for FP32)."""
        return 64 // self.element_bytes

    @property
    def size_bytes(self) -> int:
        return self.rows * self.stride

    def tile_address(self, row_tile: int, col_tile: int) -> int:
        """Byte address of the (row_tile, col_tile) tile's element (0, 0).

        A tile spans 16 rows x ``tile_cols_elems`` columns.
        """
        row = row_tile * ROWS
        col = col_tile * self.tile_cols_elems
        if row >= self.rows or col >= self.cols:
            raise TileError(
                f"tile ({row_tile}, {col_tile}) out of range for "
                f"{self.rows}x{self.cols} matrix {self.name!r}"
            )
        return self.base + row * self.stride + col * self.element_bytes

    @property
    def row_tiles(self) -> int:
        return -(-self.rows // ROWS)

    @property
    def col_tiles(self) -> int:
        return -(-self.cols // self.tile_cols_elems)

    @property
    def end(self) -> int:
        """One past the last byte — the next free base address."""
        return self.base + self.size_bytes

    # -- functional data movement ---------------------------------------------------

    def store(self, memory: TileMemory, values: np.ndarray) -> None:
        """Write ``values`` (rows x cols floats) into simulation memory.

        BF16 matrices are encoded with RNE rounding; FP32 stored verbatim.
        """
        values = np.asarray(values, dtype=np.float32)
        if values.shape != (self.rows, self.cols):
            raise TileError(
                f"matrix {self.name!r} expects shape {(self.rows, self.cols)}, "
                f"got {values.shape}"
            )
        if self.element_bytes == 2:
            payload = f32_to_bf16_bits(values).view(np.uint8)
        else:
            payload = np.ascontiguousarray(values).view(np.uint8)
        memory.write(self.base, payload.reshape(-1))

    def load(self, memory: TileMemory) -> np.ndarray:
        """Read the matrix back from simulation memory as float32 values."""
        raw = memory.read(self.base, self.size_bytes)
        if self.element_bytes == 2:
            bits = raw.view(np.uint16).reshape(self.rows, self.cols)
            return bf16_bits_to_f32(bits)
        return raw.view(np.float32).reshape(self.rows, self.cols).copy()


def layout_gemm_operands(
    m: int, n: int, k: int, base: int = 0x10000
) -> "tuple[HostMatrix, HostMatrix, HostMatrix]":
    """Lay out A (MxK bf16), B (VNNI-packed, bf16), C (MxN fp32) back to back.

    B is stored in the VNNI K-pair layout (see :mod:`repro.tile.vnni`): the
    host matrix has ``K/2`` rows of ``2N`` BF16 elements, so its (k_tile,
    n_tile) tile is exactly one 16x64 B register payload.  Dimensions must
    already be padded to whole tiles (M, N multiples of 16; K multiple of
    32) — the tiling layer guarantees that.
    """
    a = HostMatrix(base, m, k, element_bytes=2, name="A")
    b = HostMatrix(a.end, k // 2, 2 * n, element_bytes=2, name="B")
    c = HostMatrix(b.end, m, n, element_bytes=4, name="C")
    return a, b, c
