"""Analysis utilities over engine schedules (PE occupancy, utilization)."""

from repro.analysis.occupancy import (
    OccupancyReport,
    occupancy_timeline,
    schedule_utilization,
    single_mm_active_pes,
)

__all__ = [
    "single_mm_active_pes",
    "occupancy_timeline",
    "schedule_utilization",
    "OccupancyReport",
]
