"""Analysis passes over programs and schedules: static verification, occupancy."""

from repro.analysis.occupancy import (
    OccupancyReport,
    occupancy_timeline,
    schedule_utilization,
    single_mm_active_pes,
)
from repro.analysis.verifier import (
    CounterMismatch,
    Diagnostic,
    HazardReport,
    PolicyCounters,
    Region,
    StaticCounters,
    VerifierReport,
    cross_check_counters,
    hazard_report,
    kernel_regions,
    lint_shape,
    static_counters,
    verify_kernel,
    verify_program,
)

__all__ = [
    "single_mm_active_pes",
    "occupancy_timeline",
    "schedule_utilization",
    "OccupancyReport",
    "CounterMismatch",
    "Diagnostic",
    "HazardReport",
    "PolicyCounters",
    "Region",
    "StaticCounters",
    "VerifierReport",
    "cross_check_counters",
    "hazard_report",
    "kernel_regions",
    "lint_shape",
    "static_counters",
    "verify_kernel",
    "verify_program",
]
