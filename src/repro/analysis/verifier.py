"""Static ISA verifier and hazard analyzer: prove streams well-formed without simulating.

Everything the repository reports — Table I cycles, the Fig. 7 batch
curves, the PPA frontier — is computed from :class:`repro.isa.program.Program`
streams that codegen emits; a register clobber or mis-strided
:class:`~repro.isa.instructions.MemOperand` would silently corrupt results
across every fidelity at once.  This module is the check: one abstract
interpretation / dataflow pass over the stream, no simulator involved.

Three products per program:

1. **Well-formedness diagnostics** (:class:`Diagnostic`).  Under the
   documented dependency convention (``rasa_tl`` writes its tile register,
   ``rasa_ts`` reads its source, ``rasa_mm`` reads C/A/B and writes C):

   - *def-before-use* for tile and scalar registers.  Tile registers are
     always kernel-owned — the first access must be a write.  Scalar
     registers default to live-in at program entry (the surrounding code
     materializes loop counters and pointers before the kernel runs, and
     the builder's ``loop_overhead`` pattern reads ``r0`` on its first
     instruction); pass ``scalar_live_in=frozenset()`` to demand strict
     scalar def-before-use on self-contained programs.
   - *memory legality* against the kernel's operand regions: every
     ``rasa_tl``/``rasa_ts`` must address one whole 16-row x 64 B tile that
     lies inside exactly one operand matrix, 16-row/64-byte aligned on the
     matrix's own grid, with the operand's stride equal to the matrix row
     stride (VNNI-packed B included: its host matrix is (K/2) x 2N BF16, so
     a legal B tile is exactly one register payload).  Stores may only
     target writable (output) regions — a store landing in A or B is the
     *store/load aliasing* failure mode.
   - a region-free stride floor: ``stride < 64`` makes consecutive tile
     rows overlap in memory and is rejected even without region info.

2. **Static counters** (:class:`StaticCounters`).  ``instructions`` /
   ``mm_count`` and the policy-dependent ``weight_loads`` / ``bypass_count``
   derived purely from the stream by replaying the engine's weight-residency
   rule (:meth:`repro.engine.scheduler.EngineScheduler.schedule_mm`): a
   ``rasa_mm`` reuses resident weights iff its B register *contents* — the
   (register, version) pair the fast model keys on — match the previous
   mm's.  :func:`cross_check_counters` asserts these equal both
   :class:`~repro.cpu.analytic.AnalyticCoreModel` and
   :class:`~repro.cpu.fast.FastCoreModel` counts, a three-way oracle.
   Two lints ride on the same walk: *dead tile stores* (overwritten before
   any read) and *redundant weight reloads* (reloading bytes a register
   already holds — the anti-pattern RASA's register reuse exists to
   eliminate).

3. **Hazard report** (:class:`HazardReport`).  Per-program RAW/WAR/WAW
   edge counts over tile registers, the longest RAW dependence chain (the
   K-dimension accumulation feedback the analytic tier models), and a
   tile-register pressure histogram from backward liveness — the inputs
   the future issue-pipeline ``ooo`` tier needs to size rename/ROB/RS
   structures.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, cast

from repro.cpu.config import CoreConfig
from repro.engine.designs import DESIGNS, get_design
from repro.isa.instructions import (
    NUM_SCALAR_REGS,
    NUM_TILE_REGS,
    Instruction,
    MemOperand,
    TileReg,
)
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.runtime.registry import resolve_backend
from repro.tile.hostmem import HostMatrix
from repro.tile.layout import ROW_BYTES, ROWS
from repro.workloads.codegen import CodegenOptions, GemmKernel, build_gemm_kernel
from repro.workloads.gemm import GemmShape

#: Default: every scalar register is live-in (loop counters / pointers are
#: materialized by the code surrounding the kernel; see the module docstring).
ALL_SCALARS_LIVE_IN: FrozenSet[int] = frozenset(range(NUM_SCALAR_REGS))


@dataclasses.dataclass(frozen=True)
class Diagnostic:
    """One structured verifier finding, anchored to a program point.

    Attributes:
        code: machine-readable kind (``use-before-def``, ``oob-access``,
            ``bad-stride``, ``misaligned-tile``, ``store-aliases-input``,
            ``dead-store``, ``redundant-load``).
        pc: index of the offending instruction in the program.
        opcode: its mnemonic.
        registers: the register names involved (may be empty for pure
            memory-legality findings).
        reason: human-readable explanation.
        severity: ``"error"`` for violations, ``"warning"`` for lints.
    """

    code: str
    pc: int
    opcode: str
    registers: Tuple[str, ...]
    reason: str
    severity: str = "error"

    def __str__(self) -> str:
        regs = f" [{', '.join(self.registers)}]" if self.registers else ""
        return f"pc {self.pc}: {self.opcode}{regs}: {self.code}: {self.reason}"


@dataclasses.dataclass(frozen=True)
class PolicyCounters:
    """The four :class:`~repro.cpu.result.SimResult` counters for one policy."""

    instructions: int
    mm_count: int
    weight_loads: int
    bypass_count: int


@dataclasses.dataclass(frozen=True)
class StaticCounters:
    """Instruction counts derived purely from the stream.

    ``weight_reuses`` counts the ``rasa_mm`` instructions whose B-register
    contents are already resident under the engine's residency rule; it
    becomes ``bypass_count`` on designs whose control policy bypasses on
    reuse and 0 on the others (:meth:`for_policy`).
    """

    instructions: int
    mm_count: int
    tile_loads: int
    tile_stores: int
    scalars: int
    weight_reuses: int

    def for_policy(self, bypasses_on_reuse: bool) -> PolicyCounters:
        """Project onto one design's control policy."""
        bypasses = self.weight_reuses if bypasses_on_reuse else 0
        return PolicyCounters(
            instructions=self.instructions,
            mm_count=self.mm_count,
            weight_loads=self.mm_count - bypasses,
            bypass_count=bypasses,
        )


@dataclasses.dataclass(frozen=True)
class HazardReport:
    """Tile-register hazard structure of one program.

    Attributes:
        raw, war, waw: dependence edge counts (one RAW edge per read with a
            prior writer, one WAW/WAR edge per write with a prior
            writer/reader; an instruction's own same-pc read — the mm C
            accumulate — never WARs against its write).
        longest_raw_chain: depth of the longest RAW dependence chain, in
            instructions — the serial spine an OoO core cannot hide.
        max_live: peak number of simultaneously live tile registers.
        pressure: histogram over program points; ``pressure[r]`` counts the
            instructions at which exactly ``r`` tile registers are live-in.
    """

    raw: int
    war: int
    waw: int
    longest_raw_chain: int
    max_live: int
    pressure: Tuple[int, ...]


@dataclasses.dataclass(frozen=True)
class Region:
    """One operand matrix a program may address, with write permission."""

    matrix: HostMatrix
    writable: bool = False


@dataclasses.dataclass(frozen=True)
class VerifierReport:
    """Everything the verifier derives from one program."""

    name: str
    diagnostics: Tuple[Diagnostic, ...]
    counters: StaticCounters
    hazards: HazardReport

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    @property
    def errors(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == "error")

    @property
    def warnings(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == "warning")


@dataclasses.dataclass(frozen=True)
class CounterMismatch:
    """One field where the static, analytic, and fast counts disagree.

    ``fast`` is the vectorized kernel and ``fast_ref`` the scalar
    reference model; the two must always agree exactly.
    """

    design_key: str
    field: str
    static: int
    analytic: int
    fast: int
    fast_ref: int

    def __str__(self) -> str:
        return (
            f"{self.design_key}: {self.field}: static={self.static} "
            f"analytic={self.analytic} fast={self.fast} "
            f"fast-ref={self.fast_ref}"
        )


# -- well-formedness -----------------------------------------------------------------


def _regs(*names: object) -> Tuple[str, ...]:
    return tuple(str(n) for n in names)


def _check_tile_access(
    diags: List[Diagnostic],
    pc: int,
    inst: Instruction,
    mem: MemOperand,
    regions: Optional[Sequence[Region]],
    is_store: bool,
) -> None:
    """Memory legality of one tile load/store."""
    op = inst.opcode.value
    registers = _regs(*(inst.tile_writes + inst.tile_reads))
    if mem.stride < ROW_BYTES:
        diags.append(Diagnostic(
            "bad-stride", pc, op, registers,
            f"stride {mem.stride} < {ROW_BYTES} makes consecutive tile rows "
            "overlap in memory",
        ))
        return
    if regions is None:
        return
    region = next(
        (r for r in regions
         if r.matrix.base <= mem.address < r.matrix.end),
        None,
    )
    if region is None:
        known = ", ".join(
            f"{r.matrix.name or '?'}=[0x{r.matrix.base:x},0x{r.matrix.end:x})"
            for r in regions
        )
        diags.append(Diagnostic(
            "oob-access", pc, op, registers,
            f"address 0x{mem.address:x} is outside every operand region ({known})",
        ))
        return
    matrix = region.matrix
    if is_store and not region.writable:
        diags.append(Diagnostic(
            "store-aliases-input", pc, op, registers,
            f"store into read-only operand {matrix.name!r} "
            f"(base 0x{matrix.base:x}) would corrupt an input matrix",
        ))
        # Fall through: alignment/bounds findings still apply.
    if mem.stride != matrix.stride:
        diags.append(Diagnostic(
            "bad-stride", pc, op, registers,
            f"stride {mem.stride} does not match operand {matrix.name!r} "
            f"row stride {matrix.stride}",
        ))
        return  # Row decomposition below assumes the matrix stride.
    offset = mem.address - matrix.base
    row, col_bytes = divmod(offset, matrix.stride)
    if row % ROWS or col_bytes % ROW_BYTES:
        diags.append(Diagnostic(
            "misaligned-tile", pc, op, registers,
            f"address 0x{mem.address:x} is row {row}, byte column {col_bytes} "
            f"of operand {matrix.name!r}; tiles start on "
            f"{ROWS}-row / {ROW_BYTES}-byte boundaries",
        ))
        return
    if row + ROWS > matrix.rows or col_bytes + ROW_BYTES > matrix.stride:
        diags.append(Diagnostic(
            "oob-access", pc, op, registers,
            f"tile at 0x{mem.address:x} (row {row}, byte column {col_bytes}) "
            f"extends past operand {matrix.name!r} "
            f"({matrix.rows} rows x {matrix.stride} B)",
        ))


def _well_formedness(
    program: Program,
    regions: Optional[Sequence[Region]],
    scalar_live_in: FrozenSet[int],
) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    tile_defined = [False] * NUM_TILE_REGS
    scalar_defined = [i in scalar_live_in for i in range(NUM_SCALAR_REGS)]
    for pc, inst in enumerate(program):
        op = inst.opcode.value
        for reg in inst.tile_reads:
            if not tile_defined[reg.index]:
                diags.append(Diagnostic(
                    "use-before-def", pc, op, _regs(reg),
                    f"tile register {reg} is read before any write",
                ))
                tile_defined[reg.index] = True  # report each register once
        for reg in inst.scalar_reads:
            if not scalar_defined[reg.index]:
                diags.append(Diagnostic(
                    "use-before-def", pc, op, _regs(reg),
                    f"scalar register {reg} is read before any write and is "
                    "not declared live-in",
                ))
                scalar_defined[reg.index] = True
        if inst.mem is not None:
            _check_tile_access(
                diags, pc, inst, inst.mem, regions,
                is_store=inst.opcode is Opcode.RASA_TS,
            )
        for reg in inst.tile_writes:
            tile_defined[reg.index] = True
        for reg in inst.scalar_writes:
            scalar_defined[reg.index] = True
    return diags


# -- static counters -----------------------------------------------------------------


def static_counters(program: Program) -> StaticCounters:
    """Derive the count side of a :class:`~repro.cpu.result.SimResult` statically.

    Replays exactly the state the fast model hands the engine scheduler: a
    per-register version counter (bumped by every tile write) and a resident
    weight key ``(B register index, version)``.  A ``rasa_mm`` whose key
    equals the previous mm's resident key is a weight reuse — the scheduler
    bypasses it under WLBP/WLS and reloads under BASE/PIPE, which is what
    :meth:`StaticCounters.for_policy` projects.
    """
    version = [0] * NUM_TILE_REGS
    resident: Optional[Tuple[int, int]] = None
    reuses = loads = stores = mms = scalars = 0
    for inst in program:
        op = inst.opcode
        if op is Opcode.RASA_TL:
            loads += 1
            assert inst.dst is not None  # _validate invariant
            version[inst.dst.index] += 1
        elif op is Opcode.RASA_TS:
            stores += 1
        elif op is Opcode.RASA_MM:
            mms += 1
            key = (inst.mm_b.index, version[inst.mm_b.index])
            if resident is not None and resident == key:
                reuses += 1
            resident = key
            version[inst.mm_c.index] += 1
        else:
            scalars += 1
    return StaticCounters(
        instructions=len(program),
        mm_count=mms,
        tile_loads=loads,
        tile_stores=stores,
        scalars=scalars,
        weight_reuses=reuses,
    )


# -- lints ---------------------------------------------------------------------------


def _tiles_overlap(a: MemOperand, b: MemOperand) -> bool:
    """Whether two 16-row x 64 B strided tile regions share any byte.

    Same-stride regions (the overwhelmingly common case — all tiles of one
    operand matrix) resolve in O(1): rows of ``a`` sit at ``a.address + i*s``
    and rows of ``b`` at ``b.address + j*s``, so a row pair overlaps iff
    ``|d + t*s| < 64`` for ``t = i - j`` in [-15, 15] and ``d`` the base
    delta — only the two ``t`` nearest ``-d/s`` can qualify.  Mixed strides
    fall back to the exact 16 x 16 row-interval scan.
    """
    if a.stride == b.stride:
        s = a.stride
        d = a.address - b.address
        for t in (-(d // s) - 1, -(d // s), -(d // s) + 1):
            if -(ROWS - 1) <= t <= ROWS - 1 and abs(d + t * s) < ROW_BYTES:
                return True
        return False
    rows_b = [(b.address + j * b.stride) for j in range(ROWS)]
    for i in range(ROWS):
        start = a.address + i * a.stride
        for other in rows_b:
            if start < other + ROW_BYTES and other < start + ROW_BYTES:
                return True
    return False


def _lints(program: Program) -> List[Diagnostic]:
    """Dead tile stores and redundant weight reloads, as warnings.

    - *dead-store*: a ``rasa_ts`` whose exact (address, stride) region is
      stored again before any overlapping ``rasa_tl`` reads it back —
      the first store can never be observed.
    - *redundant-load*: a ``rasa_tl`` that reloads the very bytes the
      engine's *currently-resident weight register* already holds (same
      operand, register unwritten since, no overlapping store to the region
      in between) *and* the next ``rasa_mm`` reads that register as its
      weight operand.  Reloading identical weights bumps the register
      version, so that ``rasa_mm`` — which would have bypassed its WL
      stage — pays a full weight load instead: the anti-pattern RASA's
      register reuse exists to eliminate.  Content-identical reloads that
      do **not** kill a bypass (streaming A tiles revisited by a later
      register block, or a weight register whose residency an intervening
      ``rasa_mm`` on another register resets anyway) are deliberately not
      flagged: eliding those loads would not change the weight-load count.
    """
    diags: List[Diagnostic] = []
    # Candidate dead-store pairs: consecutive stores with an identical key.
    last_store: Dict[Tuple[int, int], int] = {}
    candidates: List[Tuple[int, int]] = []  # (earlier store pc, later store pc)
    loads: List[Tuple[int, MemOperand]] = []
    for pc, inst in enumerate(program):
        mem = inst.mem
        if inst.opcode is Opcode.RASA_TL and mem is not None:
            loads.append((pc, mem))
        elif inst.opcode is Opcode.RASA_TS and mem is not None:
            key = (mem.address, mem.stride)
            if key in last_store:
                candidates.append((last_store[key], pc))
            last_store[key] = pc
    for first, second in candidates:
        mem = cast(MemOperand, program[first].mem)
        if any(first < pc < second and _tiles_overlap(mem, load_mem)
               for pc, load_mem in loads):
            continue  # an intervening load observes the first store
        src = program[first].srcs[0]
        diags.append(Diagnostic(
            "dead-store", first, Opcode.RASA_TS.value, _regs(src),
            f"store to 0x{mem.address:x} is overwritten at pc {second} "
            "before any load reads it",
            severity="warning",
        ))
    # Redundant weight reloads: track what (address, stride) each register
    # holds, plus the engine's resident weight key (the same replay as
    # :func:`static_counters`).  A reload only costs a bypass when the
    # *next* mm reads the reloaded register as its weight operand, so
    # precompute that with one backward pass.
    next_mm_b: List[Optional[int]] = [None] * len(program)
    pending_b: Optional[int] = None
    for pc in range(len(program) - 1, -1, -1):
        next_mm_b[pc] = pending_b
        if program[pc].opcode is Opcode.RASA_MM:
            pending_b = program[pc].mm_b.index

    holds: List[Optional[Tuple[int, int]]] = [None] * NUM_TILE_REGS
    version = [0] * NUM_TILE_REGS
    resident: Optional[Tuple[int, int]] = None
    for pc, inst in enumerate(program):
        if inst.opcode is Opcode.RASA_TL:
            mem = cast(MemOperand, inst.mem)
            key = (mem.address, mem.stride)
            reg = cast(TileReg, inst.dst)
            if (
                holds[reg.index] == key
                and resident == (reg.index, version[reg.index])
                and next_mm_b[pc] == reg.index
            ):
                diags.append(Diagnostic(
                    "redundant-load", pc, Opcode.RASA_TL.value, _regs(reg),
                    f"{reg} already holds the resident weight tile at "
                    f"0x{mem.address:x}; the reload turns the next "
                    "mm's WL bypass into a weight load",
                    severity="warning",
                ))
            holds[reg.index] = key
            version[reg.index] += 1
        elif inst.opcode is Opcode.RASA_TS:
            # Memory changed: registers sourced from overlapping bytes are
            # no longer redundant to reload.
            store_mem = cast(MemOperand, inst.mem)
            for index, held in enumerate(holds):
                if held is not None and _tiles_overlap(
                    MemOperand(held[0], held[1]), store_mem
                ):
                    holds[index] = None
        elif inst.opcode is Opcode.RASA_MM:
            resident = (inst.mm_b.index, version[inst.mm_b.index])
            version[inst.mm_c.index] += 1
            holds[inst.mm_c.index] = None
    return diags


# -- hazards -------------------------------------------------------------------------


def hazard_report(program: Program) -> HazardReport:
    """RAW/WAR/WAW structure and register pressure over tile registers.

    Within one instruction the architectural order is read-then-write (the
    mm accumulate reads C before producing the new C), so a WAR edge is
    checked against readers from *earlier* instructions only — an mm never
    WARs against its own C read — while its read does guard later writers.
    """
    last_writer: List[Optional[int]] = [None] * NUM_TILE_REGS
    read_since_write = [False] * NUM_TILE_REGS
    raw = war = waw = 0
    depth = [0] * len(program)  # RAW chain depth ending at each instruction
    longest = 0
    for pc, inst in enumerate(program):
        chain = 0
        for reg in inst.tile_reads:
            writer = last_writer[reg.index]
            if writer is not None:
                raw += 1
                chain = max(chain, depth[writer])
        for reg in inst.tile_writes:  # against pre-instruction state
            if last_writer[reg.index] is not None:
                waw += 1
            if read_since_write[reg.index]:
                war += 1
        for reg in inst.tile_reads:
            read_since_write[reg.index] = True
        for reg in inst.tile_writes:
            last_writer[reg.index] = pc
            read_since_write[reg.index] = False
        if inst.tile_reads or inst.tile_writes:
            depth[pc] = chain + 1
            longest = max(longest, depth[pc])
    live: set = set()
    max_live = 0
    pressure = [0] * (NUM_TILE_REGS + 1)
    for pc in range(len(program) - 1, -1, -1):
        inst = program[pc]
        for reg in inst.tile_writes:
            live.discard(reg.index)
        for reg in inst.tile_reads:
            live.add(reg.index)
        pressure[len(live)] += 1
        max_live = max(max_live, len(live))
    return HazardReport(
        raw=raw,
        war=war,
        waw=waw,
        longest_raw_chain=longest,
        max_live=max_live,
        pressure=tuple(pressure),
    )


# -- entry points --------------------------------------------------------------------


def verify_program(
    program: Program,
    regions: Optional[Sequence[Region]] = None,
    scalar_live_in: FrozenSet[int] = ALL_SCALARS_LIVE_IN,
) -> VerifierReport:
    """Run the full pass over one program.

    Args:
        program: the instruction stream.
        regions: the operand matrices the program may address (memory
            legality is skipped when ``None`` — only the stride floor
            applies).
        scalar_live_in: scalar register indices defined at entry; defaults
            to all of them (see the module docstring).
    """
    diagnostics = _well_formedness(program, regions, scalar_live_in)
    diagnostics.extend(_lints(program))
    diagnostics.sort(key=lambda d: (d.pc, d.code))
    return VerifierReport(
        name=program.name,
        diagnostics=tuple(diagnostics),
        counters=static_counters(program),
        hazards=hazard_report(program),
    )


def kernel_regions(kernel: GemmKernel) -> Tuple[Region, ...]:
    """The three operand regions of a generated kernel: A/B read-only, C writable."""
    return (
        Region(kernel.a_host, writable=False),
        Region(kernel.b_host, writable=False),
        Region(kernel.c_host, writable=True),
    )


def verify_kernel(kernel: GemmKernel) -> VerifierReport:
    """Verify a generated kernel's program against its own operand layout."""
    return verify_program(kernel.program, regions=kernel_regions(kernel))


def lint_shape(
    shape: GemmShape,
    codegen: CodegenOptions = CodegenOptions(),
) -> VerifierReport:
    """Generate and verify the kernel for ``shape`` — the one-call lint."""
    return verify_kernel(build_gemm_kernel(shape, codegen))


def cross_check_counters(
    shape: GemmShape,
    codegen: CodegenOptions = CodegenOptions(),
    design_keys: Optional[Sequence[str]] = None,
    core: Optional[CoreConfig] = None,
) -> Tuple[CounterMismatch, ...]:
    """The four-way counter oracle: static vs analytic vs fast vs fast-ref.

    Counts depend on a design only through its control policy's
    ``bypasses_on_reuse``, so the fast and fast-ref simulations are
    memoized per policy class within one call; every requested design is
    still compared field-for-field.  ``fast-ref`` is the scalar model the
    vectorized kernel must replicate bit for bit; comparing both here
    keeps the vectorization honest on every oracle path.  Returns the
    (ideally empty) mismatch tuple.
    """
    keys = list(design_keys) if design_keys is not None else list(DESIGNS)
    kernel = build_gemm_kernel(shape, codegen)
    counters = static_counters(kernel.program)
    fast_by_policy: Dict[bool, object] = {}
    fast_ref_by_policy: Dict[bool, object] = {}
    mismatches: List[CounterMismatch] = []
    for key in keys:
        design = get_design(key)
        bypasses = design.config.control.bypasses_on_reuse
        static = counters.for_policy(bypasses)
        analytic = resolve_backend(key, fidelity="analytic", core=core).run_shape(
            shape, codegen
        )
        if bypasses not in fast_by_policy:
            fast_by_policy[bypasses] = (
                resolve_backend(key, fidelity="fast", core=core)
                .prepare(kernel.program)
                .run()
            )
            fast_ref_by_policy[bypasses] = (
                resolve_backend(key, fidelity="fast-ref", core=core)
                .prepare(kernel.program)
                .run()
            )
        fast = fast_by_policy[bypasses]
        fast_ref = fast_ref_by_policy[bypasses]
        for field in ("instructions", "mm_count", "weight_loads", "bypass_count"):
            s = getattr(static, field)
            a = getattr(analytic, field)
            f = getattr(fast, field)
            fr = getattr(fast_ref, field)
            if not (s == a == f == fr):
                mismatches.append(CounterMismatch(
                    design_key=key, field=field, static=s, analytic=a,
                    fast=f, fast_ref=fr,
                ))
    return tuple(mismatches)
