"""Analytical PE-occupancy timelines for scheduled rasa_mm streams.

From the per-PE MAC windows (PE ``(k, n)`` of an instruction with feed
start ``s`` computes during ``[s + k + n, s + k + n + TM)``), the number of
active PEs of one instruction at cycle offset ``t − s`` is a trapezoid over
the anti-diagonals ``d = k + n``.  Summing trapezoids across a whole
schedule gives the array's activity timeline *without* cycle-level
simulation — validated bit-for-bit against the cycle-accurate array's
activity trace for serialized instructions.

This is the quantitative form of the paper's under-utilization argument:
``schedule_utilization`` over a BASE schedule returns exactly Fig. 2's
``TM / (2·TK + TM + TN − 1)``, and rises to ~1 for WLS schedules.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from repro.engine.config import EngineConfig
from repro.engine.scheduler import StageTimes


def _diagonal_counts(rows: int, cols: int) -> np.ndarray:
    """counts[d] = number of PEs (k, n) with k + n == d."""
    counts = np.zeros(rows + cols - 1, dtype=np.int64)
    for d in range(rows + cols - 1):
        low = max(0, d - cols + 1)
        high = min(rows - 1, d)
        counts[d] = max(0, high - low + 1)
    return counts


def single_mm_active_pes(config: EngineConfig, offset: int) -> int:
    """Active PEs of one rasa_mm at ``offset`` cycles after its FF start."""
    rows, cols, tm = config.phys_rows, config.phys_cols, config.tile_m
    counts = _diagonal_counts(rows, cols)
    # Diagonal d is active during [d, d + tm).
    low = max(0, offset - tm + 1)
    high = min(offset, rows + cols - 2)
    if high < low:
        return 0
    return int(counts[low : high + 1].sum())


def occupancy_timeline(
    schedule: Sequence[StageTimes], config: EngineConfig
) -> np.ndarray:
    """Per-cycle active-PE counts over the whole schedule's span.

    Cycle 0 of the returned array corresponds to the earliest WL start.
    """
    if not schedule:
        return np.zeros(0, dtype=np.int64)
    origin = min(t.wl_start for t in schedule)
    span = max(t.complete for t in schedule) - origin
    rows, cols, tm = config.phys_rows, config.phys_cols, config.tile_m
    counts = _diagonal_counts(rows, cols)
    # Difference-array trick: each diagonal contributes a [start, start+tm)
    # rectangle of `counts[d]` PEs.
    delta = np.zeros(span + 1, dtype=np.int64)
    for times in schedule:
        base = times.ff_start - origin
        for d, count in enumerate(counts):
            start = base + d
            end = min(start + tm, span)
            if start < span and count:
                delta[start] += count
                delta[end] -= count
    return np.cumsum(delta[:span])


@dataclasses.dataclass(frozen=True)
class OccupancyReport:
    """Summary of a schedule's array activity."""

    span_cycles: int
    active_pe_cycles: int
    num_pes: int
    peak_active: int

    @property
    def utilization(self) -> float:
        if not self.span_cycles:
            return 0.0
        return self.active_pe_cycles / (self.span_cycles * self.num_pes)


def schedule_utilization(
    schedule: Sequence[StageTimes], config: EngineConfig
) -> OccupancyReport:
    """Compute the average/peak PE occupancy of a schedule."""
    timeline = occupancy_timeline(schedule, config)
    return OccupancyReport(
        span_cycles=int(timeline.size),
        active_pe_cycles=int(timeline.sum()),
        num_pes=config.num_pes,
        peak_active=int(timeline.max()) if timeline.size else 0,
    )
