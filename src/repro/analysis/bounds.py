"""Static cycle-bound analyzer: provable bounds that sandwich the simulators.

PR 7's verifier proved the *counters* identical across the static, analytic
and fast models; this module does the same for *cycles* — the paper's
headline metric — by turning the hazard structure of a program into a
latency-weighted dependence DAG and bounding, per (program, design), what
any legal execution under the fast model's machine description can achieve:

- **lower bounds**, each sound against :class:`repro.cpu.fast.FastCoreModel`
  by construction:

  - *critical-path* — one O(n) longest-path pass over the RAW dependence
    DAG.  Each instruction's completion floor is the max over its operand
    producers plus its minimum latency (load: L1 hit + tile transfer; mm:
    engine-domain ceil of readiness, plus the WL cost when the residency
    replay says this mm loads weights, plus the FF→complete dataflow
    latency; scalar: 1 cycle), anchored at the frontend dispatch floor
    (:meth:`repro.cpu.config.CoreConfig.dispatch_floor`) and closed with
    the in-order retire recurrence.
  - *mm-issue* — engine throughput: consecutive mm completions advance by
    at least :meth:`repro.engine.config.EngineConfig.min_issue_delta`
    (per-policy WL/FF/FS/DR overlap floors plus drain-port serialization),
    summed over the program's weight-load/bypass mix.
  - *weight-load* — WL bandwidth: WL windows serialize on the load links,
    so the last completion trails the first readiness by at least
    ``weight_loads · wl`` plus one full dataflow latency.
  - *load-ports* / *store-port* — port occupancy: each tile transfer holds
    a port for 16 cycles, so the busiest of the P ports serves
    ``ceil(count / P)`` back-to-back transfers.
  - *frontend* / *retire* — pipeline pacing on the instruction count.

- an **upper bound**: a greedy program-order list schedule of the same DAG
  onto the full resource model (frontend pacing, ROB window, ALU/load/store
  ports, the per-policy engine overlap recurrence, in-order retire).  The
  recurrence is written out here independently of
  :class:`repro.engine.scheduler.EngineScheduler` — a transcription of the
  documented policy floors, not a call into the scheduler — so the bound
  doubles as a cross-check of the scheduler itself.  Greedy program-order
  issue is exactly the fast model's discipline, so on the runtime's default
  ideal memory the UB lands exactly on the fast model's cycles; any
  divergence in either direction is a bug in one of the two.

- **bottleneck attribution**: the binding resource is the largest lower
  bound — the static roofline naming what limits each design on each
  program — with tightness ratios against achieved cycles.

:func:`cross_check_bounds` is the cycle-level three-way oracle (the cycles
analogue of :func:`repro.analysis.verifier.cross_check_counters`): per
design it asserts ``LB <= fast <= UB`` exactly, and holds the analytic
tier's cycle estimate to its documented contract
(:data:`repro.cpu.analytic.ANALYTIC_CYCLE_ERROR_BOUND`) against the fast
cycles and against both bounds.  CI gates it over every suite times all
eight designs.

Like the analytic tier, the bounds assume the runtime's default ideal
memory (fixed-latency tile loads); custom memory hierarchies change the
fast model's load latencies and void the sandwich.

The future Pareto search uses the lower bound as a simulation-free pruner:
a candidate design whose LB already exceeds the incumbent's achieved
cycles cannot win, and is discarded without lowering a single program.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cpu.analytic import ANALYTIC_CYCLE_ERROR_BOUND
from repro.cpu.config import CoreConfig
from repro.engine.config import ControlPolicy, EngineConfig
from repro.engine.designs import DESIGNS, get_design
from repro.errors import ExperimentError
from repro.isa.instructions import NUM_SCALAR_REGS, NUM_TILE_REGS
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.runtime.registry import resolve_backend
from repro.systolic.substage import StageDurations
from repro.workloads.codegen import CodegenOptions, build_gemm_kernel
from repro.workloads.gemm import GemmShape

#: Attribution order: ties in the lower-bound components resolve to the
#: earliest entry, so the binding resource is deterministic.
RESOURCE_ORDER: Tuple[str, ...] = (
    "critical-path",
    "mm-issue",
    "weight-load",
    "load-ports",
    "store-port",
    "frontend",
    "retire",
)


def _mm_dataflow_cycles(stages: StageDurations) -> int:
    """Engine cycles from FF start to instruction completion.

    The FF→FS→DR(+extra) dataflow latency every mm pays after its weights
    are in place.  Both the critical-path lower bound and the list-schedule
    upper bound charge mm edges through this one seam, so a seeded mutation
    (dropping or inflating the dependence-edge latency) moves both bounds
    coherently and must be caught by :func:`cross_check_bounds` — the
    mutation test monkeypatches exactly this function.
    """
    return stages.ff + stages.fs + stages.dr + stages.extra


def _ceil(value: float) -> int:
    return int(-(-value // 1))


@dataclasses.dataclass(frozen=True)
class ResourceBound:
    """One lower-bound component: the cycles ``resource`` alone enforces."""

    resource: str
    cycles: int


@dataclasses.dataclass(frozen=True)
class BoundsReport:
    """Static cycle bounds and bottleneck attribution for one (program, design).

    Attributes:
        name: the program's name.
        design_key: the design the bounds were computed for.
        lower_bound: max over ``components`` — no legal execution under the
            fast model's machine description finishes earlier.
        upper_bound: the greedy list-schedule cycles — the fast model never
            finishes later.
        components: every per-resource lower bound, in
            :data:`RESOURCE_ORDER`.
        binding: the resource whose component equals ``lower_bound`` (first
            in :data:`RESOURCE_ORDER` on ties) — the bottleneck attribution.
    """

    name: str
    design_key: str
    lower_bound: int
    upper_bound: int
    components: Tuple[ResourceBound, ...]
    binding: str

    def component(self, resource: str) -> int:
        """The cycles of one named component; raises on unknown names."""
        for bound in self.components:
            if bound.resource == resource:
                return bound.cycles
        raise ExperimentError(
            f"unknown bound resource {resource!r}; "
            f"known: {', '.join(b.resource for b in self.components)}"
        )

    def tightness(self, achieved_cycles: int) -> float:
        """``lower_bound / achieved`` — 1.0 means the bound is exact."""
        if achieved_cycles <= 0:
            return 0.0
        return self.lower_bound / achieved_cycles


@dataclasses.dataclass(frozen=True)
class BoundViolation:
    """One broken invariant found by :func:`cross_check_bounds`."""

    design_key: str
    kind: str
    detail: str

    def __str__(self) -> str:
        return f"{self.design_key}: {self.kind}: {self.detail}"


@dataclasses.dataclass(frozen=True)
class BoundsCheck:
    """One design's bounds next to its achieved cycles, with any violations."""

    design_key: str
    report: BoundsReport
    analytic_cycles: int
    fast_cycles: int
    violations: Tuple[BoundViolation, ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def lb_tightness(self) -> float:
        return self.report.tightness(self.fast_cycles)

    @property
    def ub_tightness(self) -> float:
        if self.fast_cycles <= 0:
            return 0.0
        return self.report.upper_bound / self.fast_cycles


@dataclasses.dataclass(frozen=True)
class BoundsSweep:
    """Per-point :class:`BoundsReport`\\ s for (a shard of) a sweep plan.

    ``reports`` maps each owned distinct cache key to its report, exactly
    like :class:`repro.runtime.plan.SweepReport.results` maps keys to
    results — so shard reports :meth:`merge` bit-identically into the
    unsharded run's.
    """

    reports: Dict[str, BoundsReport]

    def merge(self, *others: "BoundsSweep") -> "BoundsSweep":
        """Union shard sweeps; overlapping keys must carry equal reports."""
        merged = dict(self.reports)
        for other in others:
            for key, report in other.reports.items():
                if key in merged and merged[key] != report:
                    raise ExperimentError(
                        f"bounds sweeps disagree on key {key[:12]}…: "
                        f"{merged[key]} vs {report}"
                    )
                merged[key] = report
        return BoundsSweep(reports=merged)


# -- the residency replay ------------------------------------------------------------


def _loads_weights(
    bypasses_on_reuse: bool,
    resident: Optional[Tuple[int, int]],
    key: Tuple[int, int],
) -> bool:
    """Whether this mm pays a WL — the scheduler's residency rule.

    Identical to :meth:`repro.engine.scheduler.EngineScheduler.schedule_mm`'s
    bypass test and :func:`repro.analysis.verifier.static_counters`' replay
    (the counter oracle proves the three agree).
    """
    return not (bypasses_on_reuse and resident is not None and resident == key)


# -- lower bounds --------------------------------------------------------------------


def _critical_path_lb(
    program: Program, core: CoreConfig, engine: EngineConfig, ratio: int
) -> int:
    """Longest path through the latency-weighted RAW dependence DAG.

    One program-order pass: every timestamp is a provable floor on the fast
    model's corresponding timestamp (dispatch ignores ROB stalls, execution
    ignores port contention, mm readiness splits B from A/C — each
    relaxation only lowers the result), so the final retire ceiling is a
    sound lower bound on the fast model's cycles.
    """
    inv_fetch = 1.0 / core.fetch_width
    inv_retire = 1.0 / core.retire_width
    frontend = float(core.frontend_latency)
    transfer = core.tile_transfer_cycles
    load_latency = core.tile_load_latency
    stages = engine.stages
    wl = stages.wl
    dataflow = _mm_dataflow_cycles(stages)
    bypasses_on = engine.control.bypasses_on_reuse

    tile = [0.0] * NUM_TILE_REGS
    scalar = [0.0] * NUM_SCALAR_REGS
    version = [0] * NUM_TILE_REGS
    resident: Optional[Tuple[int, int]] = None
    retire = 0.0

    for i, inst in enumerate(program):
        dispatch = frontend + (i + 1) * inv_fetch
        op = inst.opcode
        if op is Opcode.RASA_TL:
            complete = dispatch + load_latency
            assert inst.dst is not None  # _validate invariant
            reg = inst.dst.index
            tile[reg] = complete
            version[reg] += 1
        elif op is Opcode.RASA_TS:
            complete = max(dispatch, tile[inst.srcs[0].index]) + transfer
        elif op is Opcode.RASA_MM:
            b = inst.mm_b.index
            a = inst.mm_a.index
            c = inst.mm_c.index
            key = (b, version[b])
            loading = _loads_weights(bypasses_on, resident, key)
            resident = key
            ready_b = int(-(-max(dispatch, tile[b]) // ratio))
            ready_ac = int(-(-max(dispatch, tile[a], tile[c]) // ratio))
            ff_start = max(ready_b + (wl if loading else 0), ready_ac)
            complete = float((ff_start + dataflow) * ratio)
            tile[c] = complete
            version[c] += 1
        else:  # scalar ALU / branch
            start = dispatch
            for src in inst.scalar_reads:
                start = max(start, scalar[src.index])
            complete = start + 1
            for dst in inst.scalar_writes:
                scalar[dst.index] = complete
        retire = max(complete + 1, retire + inv_retire)
    return _ceil(retire)


def _resource_lbs(
    program: Program, core: CoreConfig, engine: EngineConfig, ratio: int
) -> Dict[str, int]:
    """The per-resource throughput lower bounds (everything but the DAG walk)."""
    from repro.analysis.verifier import static_counters

    counts = static_counters(program)
    policy_counts = counts.for_policy(engine.control.bypasses_on_reuse)
    n = counts.instructions
    stages = engine.stages
    inv_retire = 1.0 / core.retire_width
    transfer = core.tile_transfer_cycles
    d1 = core.dispatch_floor(0)
    bounds: Dict[str, int] = {name: 0 for name in RESOURCE_ORDER}

    if n == 0:
        return bounds

    # Frontend pacing: the last instruction dispatches no earlier than the
    # sustained-fetch floor, executes >= 1 cycle, retires one cycle later.
    bounds["frontend"] = _ceil(core.dispatch_floor(n - 1) + 2)
    # Retire pacing: the first retire is at least the first complete + 1;
    # every further instruction adds the in-order retire interval.
    bounds["retire"] = _ceil(d1 + 2 + (n - 1) * inv_retire)

    if counts.tile_loads:
        # The busiest of the P load ports serves ceil(L/P) transfers
        # back-to-back; its last load still pays the full load latency.
        queued = -(-counts.tile_loads // core.load_ports)
        bounds["load-ports"] = _ceil(
            d1 + (queued - 1) * transfer + core.tile_load_latency + 1
        )
    if counts.tile_stores:
        queued = -(-counts.tile_stores // core.store_ports)
        bounds["store-port"] = _ceil(d1 + (queued - 1) * transfer + transfer + 1)

    if counts.mm_count:
        e0 = int(-(-d1 // ratio))  # earliest engine cycle any WL can start
        loads = policy_counts.weight_loads
        bypasses = policy_counts.bypass_count
        # The first mm always loads (nothing is resident); the remaining
        # completions each advance by at least the per-policy issue delta.
        first = stages.wl + _mm_dataflow_cycles(stages)
        issue_end = (
            e0
            + first
            + (loads - 1) * engine.min_issue_delta(loading=True)
            + bypasses * engine.min_issue_delta(loading=False)
        )
        bounds["mm-issue"] = _ceil(issue_end * ratio + 1)
        # WL windows serialize on the weight-load links; after the last of
        # them the final mm still flows through FF/FS/DR.
        wl_end = e0 + loads * stages.wl + _mm_dataflow_cycles(stages)
        bounds["weight-load"] = _ceil(wl_end * ratio + 1)
    return bounds


# -- the list-schedule upper bound ---------------------------------------------------


@dataclasses.dataclass
class _EngineWindow:
    """The previous mm's stage boundaries the overlap recurrence needs."""

    wl_end: int
    ff_start: int
    ff_end: int
    fs_end: int
    dr_end: int


def _list_schedule_ub(
    program: Program, core: CoreConfig, engine: EngineConfig, ratio: int
) -> int:
    """Greedy program-order list schedule onto the full resource model.

    Mirrors the fast model's machine description — frontend pacing, the
    ROB window, least-loaded port selection, in-order retire — with the
    engine's per-policy overlap recurrence transcribed from its documented
    floors (Fig. 4b) rather than delegated to
    :class:`repro.engine.scheduler.EngineScheduler`.  Greedy program-order
    issue is the fast model's own discipline, so the result is an upper
    bound that is *exact* on the default ideal memory; the oracle treats
    ``UB < fast`` as a hard violation.
    """
    inv_fetch = 1.0 / core.fetch_width
    inv_retire = 1.0 / core.retire_width
    transfer = core.tile_transfer_cycles
    load_latency = core.tile_load_latency
    stages = engine.stages
    policy = engine.control
    bypasses_on = policy.bypasses_on_reuse
    dataflow = _mm_dataflow_cycles(stages)

    tile = [0.0] * NUM_TILE_REGS
    scalar = [0.0] * NUM_SCALAR_REGS
    version = [0] * NUM_TILE_REGS
    load_ports = [0.0] * core.load_ports
    store_ports = [0.0] * core.store_ports
    alu_ports = [0.0] * core.alu_ports
    rob_size = core.rob_size
    retire_ring = [0.0] * rob_size
    dispatch_prev = float(core.frontend_latency)
    retire_prev = 0.0
    window: Optional[_EngineWindow] = None
    resident: Optional[Tuple[int, int]] = None

    for i, inst in enumerate(program):
        dispatch = dispatch_prev + inv_fetch
        if i >= rob_size:
            dispatch = max(dispatch, retire_ring[i % rob_size])
        dispatch_prev = dispatch
        op = inst.opcode

        if op is Opcode.RASA_TL:
            port = min(range(core.load_ports), key=load_ports.__getitem__)
            start = max(dispatch, load_ports[port])
            load_ports[port] = start + transfer
            complete = start + load_latency
            assert inst.dst is not None  # _validate invariant
            reg = inst.dst.index
            tile[reg] = complete
            version[reg] += 1

        elif op is Opcode.RASA_TS:
            port = min(range(core.store_ports), key=store_ports.__getitem__)
            start = max(dispatch, tile[inst.srcs[0].index], store_ports[port])
            store_ports[port] = start + transfer
            complete = start + transfer

        elif op is Opcode.RASA_MM:
            b = inst.mm_b.index
            a = inst.mm_a.index
            c = inst.mm_c.index
            ready = int(-(-max(dispatch, tile[a], tile[b], tile[c]) // ratio))
            key = (b, version[b])
            loading = _loads_weights(bypasses_on, resident, key)
            resident = key
            if not loading:
                ff_start = ready
                if window is not None:
                    ff_start = max(
                        ff_start,
                        window.ff_end
                        if engine.wlbp_ff_overlaps_fs
                        else window.fs_end,
                    )
                wl_end = ff_start
            else:
                wl_floor = ready
                if window is not None:
                    wl_floor = max(wl_floor, window.wl_end)
                    if policy is ControlPolicy.BASE:
                        wl_floor = max(wl_floor, window.dr_end)
                    elif policy in (ControlPolicy.PIPE, ControlPolicy.WLBP):
                        wl_floor = max(wl_floor, window.fs_end)
                    else:  # WLS: wait only for the shadow to be vacated
                        wl_floor = max(wl_floor, window.ff_start)
                wl_end = wl_floor + stages.wl
                ff_start = max(wl_end, ready)
                if window is not None:
                    ff_start = max(ff_start, window.ff_end)
            ff_end = ff_start + stages.ff
            fs_end = ff_end + stages.fs
            window = _EngineWindow(
                wl_end=wl_end,
                ff_start=ff_start,
                ff_end=ff_end,
                fs_end=fs_end,
                dr_end=fs_end + stages.dr,
            )
            complete = float((ff_start + dataflow) * ratio)
            tile[c] = complete
            version[c] += 1

        else:  # scalar ALU / branch
            port = min(range(core.alu_ports), key=alu_ports.__getitem__)
            start = max(dispatch, alu_ports[port])
            for src in inst.scalar_reads:
                start = max(start, scalar[src.index])
            alu_ports[port] = start + 1
            complete = start + 1
            for dst in inst.scalar_writes:
                scalar[dst.index] = complete

        retire = max(complete + 1, retire_prev + inv_retire)
        retire_prev = retire
        retire_ring[i % rob_size] = retire
    return _ceil(retire_prev)


# -- entry points --------------------------------------------------------------------


def bound_program(
    program: Program,
    design_key: str,
    core: Optional[CoreConfig] = None,
) -> BoundsReport:
    """Compute the full :class:`BoundsReport` for one (program, design)."""
    core = core if core is not None else CoreConfig()
    engine = get_design(design_key).config
    ratio = core.engine_clock_ratio(engine.clock_mhz)

    components = _resource_lbs(program, core, engine, ratio)
    if len(program):
        components["critical-path"] = _critical_path_lb(program, core, engine, ratio)
        upper = _list_schedule_ub(program, core, engine, ratio)
    else:
        upper = 0
    lower = max(components.values())
    binding = next(
        name for name in RESOURCE_ORDER if components[name] == lower
    )
    return BoundsReport(
        name=program.name,
        design_key=design_key,
        lower_bound=lower,
        upper_bound=upper,
        components=tuple(
            ResourceBound(resource=name, cycles=components[name])
            for name in RESOURCE_ORDER
        ),
        binding=binding,
    )


def bound_shape(
    shape: GemmShape,
    codegen: CodegenOptions = CodegenOptions(),
    design_key: str = "baseline",
    core: Optional[CoreConfig] = None,
) -> BoundsReport:
    """Generate the kernel for ``shape`` and bound it — the one-call entry."""
    kernel = build_gemm_kernel(shape, codegen)
    return bound_program(kernel.program, design_key, core=core)


def cross_check_bounds(
    shape: GemmShape,
    codegen: CodegenOptions = CodegenOptions(),
    design_keys: Optional[Sequence[str]] = None,
    core: Optional[CoreConfig] = None,
) -> Tuple[BoundsCheck, ...]:
    """The cycle-level three-way oracle: bounds vs analytic vs fast, per design.

    Cycles depend on the full (PE, control) design pair — unlike the
    counters, which collapse onto the two policy classes — so the fast
    model runs once per requested design.  Per design the check asserts

    - the vectorized ``fast`` result equal, field for field, to the scalar
      ``fast-ref`` reference (the vectorization equality oracle — any
      drift is a bug in the numpy kernel or the pre-decode),
    - ``LB <= fast <= UB`` exactly (a violation in either direction is a
      bug in the bounds, the scheduler, or the fast model), and
    - the analytic estimate within its documented
      :data:`~repro.cpu.analytic.ANALYTIC_CYCLE_ERROR_BOUND` of the fast
      cycles and of both bounds.

    Returns one :class:`BoundsCheck` per design; gate on
    ``all(c.ok for c in checks)``.
    """
    keys = list(design_keys) if design_keys is not None else list(DESIGNS)
    program = build_gemm_kernel(shape, codegen).program
    tolerance = ANALYTIC_CYCLE_ERROR_BOUND
    checks: List[BoundsCheck] = []
    for key in keys:
        report = bound_program(program, key, core=core)
        fast = resolve_backend(key, fidelity="fast", core=core).prepare(program).run()
        fast_ref = (
            resolve_backend(key, fidelity="fast-ref", core=core)
            .prepare(program)
            .run()
        )
        analytic = resolve_backend(key, fidelity="analytic", core=core).run_shape(
            shape, codegen
        )
        lb, ub = report.lower_bound, report.upper_bound
        violations: List[BoundViolation] = []
        if fast != fast_ref:
            violations.append(BoundViolation(
                key, "fast-ref-mismatch",
                f"vectorized fast {fast} != scalar reference {fast_ref}",
            ))
        if lb > fast.cycles:
            violations.append(BoundViolation(
                key, "lb-exceeds-fast",
                f"lower bound {lb} > fast cycles {fast.cycles}",
            ))
        if ub < fast.cycles:
            violations.append(BoundViolation(
                key, "ub-below-fast",
                f"upper bound {ub} < fast cycles {fast.cycles}",
            ))
        if abs(analytic.cycles - fast.cycles) > tolerance * fast.cycles:
            violations.append(BoundViolation(
                key, "analytic-fast-drift",
                f"analytic {analytic.cycles} vs fast {fast.cycles} exceeds "
                f"the {tolerance:.0%} contract",
            ))
        if analytic.cycles < lb * (1 - tolerance):
            violations.append(BoundViolation(
                key, "analytic-below-lb",
                f"analytic {analytic.cycles} < lower bound {lb} beyond "
                f"the {tolerance:.0%} contract",
            ))
        if analytic.cycles > ub * (1 + tolerance):
            violations.append(BoundViolation(
                key, "analytic-above-ub",
                f"analytic {analytic.cycles} > upper bound {ub} beyond "
                f"the {tolerance:.0%} contract",
            ))
        checks.append(BoundsCheck(
            design_key=key,
            report=report,
            analytic_cycles=analytic.cycles,
            fast_cycles=fast.cycles,
            violations=tuple(violations),
        ))
    return tuple(checks)
