"""Software bfloat16: bit-exact conversion between IEEE-754 binary32 and BF16.

BF16 is the top 16 bits of binary32 (1 sign, 8 exponent, 7 mantissa bits).
Hardware converts FP32 -> BF16 with round-to-nearest-even (RNE) on the
discarded 16 mantissa bits; this module reproduces that rounding exactly
using integer bit manipulation, vectorized over NumPy arrays.

A "BF16 value" in this library is stored as ``np.float32`` whose low 16 bits
are zero — i.e. the exact real value the BF16 encoding denotes.  This keeps
all downstream arithmetic in ordinary float32 while remaining bit-faithful.
"""

from __future__ import annotations

import numpy as np

#: Worst-case relative rounding error of BF16 RNE (half an ulp at the bottom
#: of a binade: ulp spacing in [1, 2) is 2**-7, so the bound is 2**-8).
BF16_EPS = 2.0 ** -8


def f32_to_bf16_bits(values: np.ndarray) -> np.ndarray:
    """Convert float32 values to uint16 BF16 bit patterns with RNE rounding.

    NaNs are canonicalized to the BF16 quiet-NaN pattern 0x7FC0 (matching
    common hardware behaviour); +/-inf round to +/-inf.  The output has the
    input's shape (scalars come back as 0-d arrays).
    """
    scalar = np.ndim(values) == 0
    f32 = np.ascontiguousarray(values, dtype=np.float32)
    bits = f32.view(np.uint32)
    # RNE: add 0x7FFF plus the LSB of the surviving mantissa ("round to even"
    # tiebreak), then truncate.  Overflow of the mantissa correctly carries
    # into the exponent, rounding up to the next binade or to infinity.
    lsb = (bits >> np.uint32(16)) & np.uint32(1)
    rounded = (bits + np.uint32(0x7FFF) + lsb) >> np.uint32(16)
    out = rounded.astype(np.uint16)
    nan_mask = np.isnan(f32)
    if nan_mask.any():
        out = np.where(nan_mask, np.uint16(0x7FC0), out)
    return out.reshape(()) if scalar else out


def bf16_bits_to_f32(bits: np.ndarray) -> np.ndarray:
    """Expand uint16 BF16 bit patterns to the float32 values they denote."""
    scalar = np.ndim(bits) == 0
    u16 = np.ascontiguousarray(bits, dtype=np.uint16)
    u32 = u16.astype(np.uint32) << np.uint32(16)
    out = u32.view(np.float32)
    return out.reshape(()) if scalar else out


def quantize_bf16(values: np.ndarray) -> np.ndarray:
    """Round float values to the nearest BF16 value, returned as float32.

    This is the composition ``bf16_bits_to_f32(f32_to_bf16_bits(x))`` — the
    canonical "what the hardware sees" quantization applied to A and B tiles
    before they enter the systolic array.
    """
    return bf16_bits_to_f32(f32_to_bf16_bits(np.asarray(values, dtype=np.float32)))


def is_bf16_exact(values: np.ndarray) -> np.ndarray:
    """Boolean mask: True where the float32 value is exactly BF16-representable."""
    f32 = np.asarray(values, dtype=np.float32)
    low_bits = f32.view(np.uint32) & np.uint32(0xFFFF)
    return (low_bits == 0) | np.isnan(f32)
