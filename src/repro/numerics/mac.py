"""Reference semantics of the RASA PE multiply-accumulate datapath.

Each PE multiplies a BF16 input by a BF16 weight into an FP32 product and
adds it to an FP32 partial sum (Fig. 4c).  A BF16 x BF16 product is exact in
FP32 (7-bit mantissas multiply into at most 15 bits, well under FP32's 24),
so the only rounding in the datapath is the FP32 addition — which NumPy's
float32 arithmetic reproduces exactly.

``matmul_bf16_fp32`` is the *golden oracle* every simulator output is checked
against: it accumulates in the same K-order the weight-stationary array does
(ascending k), so results are bit-identical, not merely close.
"""

from __future__ import annotations

import numpy as np

from repro.numerics.bf16 import quantize_bf16


def mac_bf16(acc: float, a: float, b: float) -> np.float32:
    """One PE MAC: ``acc + bf16(a) * bf16(b)`` with FP32 accumulation."""
    product = np.float32(quantize_bf16(a) * quantize_bf16(b))
    return np.float32(np.float32(acc) + product)


def matmul_bf16_fp32(a: np.ndarray, b: np.ndarray, c: np.ndarray = None) -> np.ndarray:
    """Golden GEMM: ``C += bf16(A) @ bf16(B)`` accumulating in FP32.

    Accumulation order is ascending ``k`` — the order a weight-stationary
    systolic array reduces partial sums down a column — making this oracle
    bit-exact against the cycle-accurate array, not just approximately equal.

    Args:
        a: (M, K) input matrix (any float dtype; quantized to BF16).
        b: (K, N) weight matrix (quantized to BF16).
        c: optional (M, N) float32 accumulator; zeros if omitted.

    Returns:
        (M, N) float32 result.
    """
    qa = quantize_bf16(a)
    qb = quantize_bf16(b)
    if qa.ndim != 2 or qb.ndim != 2 or qa.shape[1] != qb.shape[0]:
        raise ValueError(f"incompatible GEMM shapes {qa.shape} x {qb.shape}")
    m, k = qa.shape
    _, n = qb.shape
    if c is None:
        out = np.zeros((m, n), dtype=np.float32)
    else:
        c = np.asarray(c, dtype=np.float32)
        if c.shape != (m, n):
            raise ValueError(f"accumulator shape {c.shape} != ({m}, {n})")
        out = c.copy()
    # Rank-1 updates in ascending k: mirrors the array's reduction order and
    # keeps every intermediate rounded to float32, like the hardware adders.
    # Overflow to inf is the hardware behaviour, not an error.
    with np.errstate(over="ignore", invalid="ignore"):
        for kk in range(k):
            out += np.outer(qa[:, kk], qb[kk, :]).astype(np.float32)
    return out


def matmul_bf16_fp32_chained(
    a: np.ndarray, b: np.ndarray, c: np.ndarray = None, chains: int = 2
) -> np.ndarray:
    """Golden GEMM for double-multiplier (DM) arrays.

    A DM PE at physical row ``r`` holds weights ``b[chains*r + j]`` and feeds
    chain ``j``; chain 0 carries the architectural C value and the chains are
    summed left-to-right by the merge-adder row.  Accumulation order per
    chain is ascending physical row, i.e. ascending k within each residue
    class modulo ``chains`` — a different FP32 rounding sequence than the
    plain oracle, so DM arrays are tested bit-exactly against *this* oracle.

    Args:
        a: (M, K) input matrix.
        b: (K, N) weight matrix.
        c: optional (M, N) float32 accumulator.
        chains: psum chains per PE (2 for DM; 1 degenerates to the plain oracle).

    Returns:
        (M, N) float32 result.
    """
    qa = quantize_bf16(a)
    qb = quantize_bf16(b)
    if qa.ndim != 2 or qb.ndim != 2 or qa.shape[1] != qb.shape[0]:
        raise ValueError(f"incompatible GEMM shapes {qa.shape} x {qb.shape}")
    m, k = qa.shape
    _, n = qb.shape
    if k % chains:
        raise ValueError(f"K={k} must be a multiple of chains={chains}")
    if c is None:
        c = np.zeros((m, n), dtype=np.float32)
    else:
        c = np.asarray(c, dtype=np.float32)
        if c.shape != (m, n):
            raise ValueError(f"accumulator shape {c.shape} != ({m}, {n})")
    partials = []
    with np.errstate(over="ignore", invalid="ignore"):
        for j in range(chains):
            chain = c.copy() if j == 0 else np.zeros((m, n), dtype=np.float32)
            for kk in range(j, k, chains):
                chain += np.outer(qa[:, kk], qb[kk, :]).astype(np.float32)
            partials.append(chain)
        out = partials[0]
        for chain in partials[1:]:  # merge-adder row sums chains left to right
            out = (out + chain).astype(np.float32)
    return out
