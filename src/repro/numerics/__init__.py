"""Mixed-precision arithmetic substrate (BF16 in, FP32 accumulate).

The RASA PEs perform BF16 x BF16 multiplies accumulated in FP32 (Sec. IV-B,
Fig. 4c).  NumPy has no native bfloat16, so this package represents a BF16
value as the FP32 value whose low 16 mantissa bits are zero, and provides
bit-exact round-to-nearest-even conversion plus the PE MAC semantics.
"""

from repro.numerics.bf16 import (
    BF16_EPS,
    bf16_bits_to_f32,
    f32_to_bf16_bits,
    is_bf16_exact,
    quantize_bf16,
)
from repro.numerics.mac import mac_bf16, matmul_bf16_fp32, matmul_bf16_fp32_chained

__all__ = [
    "BF16_EPS",
    "quantize_bf16",
    "is_bf16_exact",
    "f32_to_bf16_bits",
    "bf16_bits_to_f32",
    "mac_bf16",
    "matmul_bf16_fp32",
    "matmul_bf16_fp32_chained",
]
