"""Whole-GEMM oracle mirroring the engine's accumulation order.

The generated kernels accumulate K tiles in ascending order, and within a
tile the array reduces in ascending k (or in two even/odd chains on DM
designs).  This oracle composes the per-tile oracles in the same order, so a
full program executed on the functional engine must match it *bit-exactly*
— the strongest end-to-end check the test suite has.

The module also carries the **conv training oracles**
(:func:`conv_dgrad_reference` / :func:`conv_wgrad_reference`): direct
numpy adjoint computations — structured like the forward
:func:`repro.workloads.lowering.conv_reference` loop, never touching
im2col — that the transposed-filter GEMM lowerings must match exactly.
Because convolution is linear, these adjoints satisfy the inner-product
identities ``<dY, conv(X, W)> == <dgrad(dY, W), X> == <wgrad(X, dY), W>``
(what a finite-difference/autograd check would verify, but exact), which
the tests assert alongside the element-wise comparison.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.numerics.mac import matmul_bf16_fp32, matmul_bf16_fp32_chained
from repro.workloads.gemm import TILE_K, GemmShape


def gemm_reference(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray = None,
    chains: int = 1,
) -> np.ndarray:
    """Compute ``C += A @ B`` exactly as the simulated pipeline does.

    Args:
        a: (M, K) inputs (will be BF16-quantized).
        b: (K, N) weights (BF16-quantized).
        c: optional (M, N) float32 initial accumulator.
        chains: psum chains of the PE variant (1 baseline/DB, 2 DM/DMDB).

    Returns:
        (M, N) float32 result, bit-exact against the functional engine.
    """
    a = np.asarray(a, dtype=np.float32)
    b = np.asarray(b, dtype=np.float32)
    m, k = a.shape
    _, n = b.shape
    shape = GemmShape(m=m, n=n, k=k)
    pa = np.zeros((shape.padded_m, shape.padded_k), dtype=np.float32)
    pa[:m, :k] = a
    pb = np.zeros((shape.padded_k, shape.padded_n), dtype=np.float32)
    pb[:k, :n] = b
    out = np.zeros((shape.padded_m, shape.padded_n), dtype=np.float32)
    if c is not None:
        out[:m, :n] = np.asarray(c, dtype=np.float32)
    for kt in range(shape.k_tiles):
        a_slab = pa[:, kt * TILE_K : (kt + 1) * TILE_K]
        b_slab = pb[kt * TILE_K : (kt + 1) * TILE_K, :]
        if chains == 1:
            out = matmul_bf16_fp32(a_slab, b_slab, out)
        else:
            out = matmul_bf16_fp32_chained(a_slab, b_slab, out, chains=chains)
    return out[:m, :n]


def _check_grad_operands(grad_output: np.ndarray, r: int, s: int) -> None:
    if grad_output.ndim != 4:
        raise WorkloadError(
            f"expected a 4-D NKXY output gradient, got shape {grad_output.shape}"
        )
    if r % 2 == 0 or s % 2 == 0:
        raise WorkloadError("'same' padding requires odd filter dims R, S")


def conv_dgrad_reference(grad_output: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Direct adjoint dX of a stride-1 'same' convolution (float64 oracle).

    Scatters each output gradient back through every filter tap:
    ``dXp[n, c, x+dr, y+ds] += Σ_k dY[n, k, x, y] · W[k, c, dr, ds]``,
    then crops the padding ring — the exact transpose of the forward
    gather in :func:`repro.workloads.lowering.conv_reference`, computed
    without im2col so it independently checks the GEMM lowering.
    """
    if weights.ndim != 4:
        raise WorkloadError(f"expected KCRS weights, got shape {weights.shape}")
    k, c, r, s = weights.shape
    _check_grad_operands(grad_output, r, s)
    if grad_output.shape[1] != k:
        raise WorkloadError(
            f"filter mismatch: grad K={grad_output.shape[1]}, weight K={k}"
        )
    n, _, x, y = grad_output.shape
    pad_r, pad_s = r // 2, s // 2
    dx_padded = np.zeros((n, c, x + 2 * pad_r, y + 2 * pad_s), dtype=np.float64)
    for dr in range(r):
        for ds in range(s):
            dx_padded[:, :, dr : dr + x, ds : ds + y] += np.einsum(
                "nkxy,kc->ncxy", grad_output, weights[:, :, dr, ds]
            )
    return dx_padded[:, :, pad_r : pad_r + x, pad_s : pad_s + y]


def conv_wgrad_reference(
    inputs: np.ndarray, grad_output: np.ndarray, r: int, s: int
) -> np.ndarray:
    """Direct adjoint dW of a stride-1 'same' convolution (float64 oracle).

    Correlates the padded inputs with the output gradient per tap:
    ``dW[k, c, dr, ds] = Σ_{n,x,y} Xp[n, c, x+dr, y+ds] · dY[n, k, x, y]``
    — again the plain transpose of the forward loop, no im2col involved.
    """
    _check_grad_operands(grad_output, r, s)
    if inputs.ndim != 4:
        raise WorkloadError(f"expected NCHW inputs, got shape {inputs.shape}")
    if inputs.shape[0] != grad_output.shape[0] or inputs.shape[2:] != grad_output.shape[2:]:
        raise WorkloadError(
            f"batch/spatial mismatch: inputs {inputs.shape}, grads {grad_output.shape}"
        )
    n, c, x, y = inputs.shape
    k = grad_output.shape[1]
    pad_r, pad_s = r // 2, s // 2
    padded = np.zeros((n, c, x + 2 * pad_r, y + 2 * pad_s), dtype=np.float64)
    padded[:, :, pad_r : pad_r + x, pad_s : pad_s + y] = inputs
    dw = np.zeros((k, c, r, s), dtype=np.float64)
    for dr in range(r):
        for ds in range(s):
            window = padded[:, :, dr : dr + x, ds : ds + y]
            dw[:, :, dr, ds] = np.einsum("ncxy,nkxy->kc", window, grad_output)
    return dw
