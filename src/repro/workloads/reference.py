"""Whole-GEMM oracle mirroring the engine's accumulation order.

The generated kernels accumulate K tiles in ascending order, and within a
tile the array reduces in ascending k (or in two even/odd chains on DM
designs).  This oracle composes the per-tile oracles in the same order, so a
full program executed on the functional engine must match it *bit-exactly*
— the strongest end-to-end check the test suite has.
"""

from __future__ import annotations

import numpy as np

from repro.numerics.mac import matmul_bf16_fp32, matmul_bf16_fp32_chained
from repro.workloads.gemm import GemmShape, TILE_K


def gemm_reference(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray = None,
    chains: int = 1,
) -> np.ndarray:
    """Compute ``C += A @ B`` exactly as the simulated pipeline does.

    Args:
        a: (M, K) inputs (will be BF16-quantized).
        b: (K, N) weights (BF16-quantized).
        c: optional (M, N) float32 initial accumulator.
        chains: psum chains of the PE variant (1 baseline/DB, 2 DM/DMDB).

    Returns:
        (M, N) float32 result, bit-exact against the functional engine.
    """
    a = np.asarray(a, dtype=np.float32)
    b = np.asarray(b, dtype=np.float32)
    m, k = a.shape
    _, n = b.shape
    shape = GemmShape(m=m, n=n, k=k)
    pa = np.zeros((shape.padded_m, shape.padded_k), dtype=np.float32)
    pa[:m, :k] = a
    pb = np.zeros((shape.padded_k, shape.padded_n), dtype=np.float32)
    pb[:k, :n] = b
    out = np.zeros((shape.padded_m, shape.padded_n), dtype=np.float32)
    if c is not None:
        out[:m, :n] = np.asarray(c, dtype=np.float32)
    for kt in range(shape.k_tiles):
        a_slab = pa[:, kt * TILE_K : (kt + 1) * TILE_K]
        b_slab = pb[kt * TILE_K : (kt + 1) * TILE_K, :]
        if chains == 1:
            out = matmul_bf16_fp32(a_slab, b_slab, out)
        else:
            out = matmul_bf16_fp32_chained(a_slab, b_slab, out, chains=chains)
    return out[:m, :n]
