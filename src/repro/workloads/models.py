"""Full-model op catalogs (extension beyond Table I's nine layers).

The paper evaluates three layers per MLPerf model; these catalogs carry the
*complete* matrix-engine work of each network as sequences of
:mod:`repro.workloads.ops` ops, each of which knows its own GEMM lowering:
every ResNet-50 convolution (:func:`resnet50_ops`), every BERT-base encoder
projection/FFN GEMM (:func:`bert_encoder_ops`), the *full* BERT-base stack
including the head-batched attention score/context matmuls
(:func:`bert_full_ops`), and the DLRM MLP stacks (:func:`dlrm_ops`).

The ``*_gemms`` functions are the lowered ``{label: GemmShape}`` views the
original catalogs exposed — identical output, now produced by
:func:`repro.workloads.ops.lower` instead of ad-hoc shape arithmetic.
Attention matmuls are not tile-GEMMs *per head* (seq x head_dim slices),
but head-batched they are exactly ``heads x sequences`` independent GEMMs
of one shape, which is how :func:`bert_full_ops` models them; embedding
lookups remain excluded (not matrix-engine work).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.errors import WorkloadError
from repro.workloads.gemm import GemmShape
from repro.workloads.layers import ConvLayer
from repro.workloads.ops import (
    BatchedMatmulOp,
    ConvOp,
    FCOp,
    Op,
    lower,
)

# -- ResNet-50 ------------------------------------------------------------------

#: Bottleneck stage plan: (output spatial, mid channels, out channels, blocks).
_RESNET50_STAGES = (
    (56, 64, 256, 3),
    (28, 128, 512, 4),
    (14, 256, 1024, 6),
    (7, 512, 2048, 3),
)


def resnet50_conv_layers(batch: int = 32) -> List[ConvLayer]:
    """Every convolution of ResNet-50 (ImageNet geometry), in order."""
    layers: List[ConvLayer] = [
        ConvLayer("conv1", batch, filters=64, channels=3, x=224, y=224, r=7, s=7, stride=2)
    ]
    in_channels = 64
    for stage_index, (size, mid, out, blocks) in enumerate(_RESNET50_STAGES, start=2):
        for block in range(blocks):
            prefix = f"conv{stage_index}_{block + 1}"
            # First block of stages 3-5 downsamples; feature-map x/y below is
            # the *input* size of each conv.
            first = block == 0
            stride = 2 if (first and stage_index > 2) else 1
            in_size = size * stride
            layers.append(
                ConvLayer(f"{prefix}a", batch, mid, in_channels, in_size, in_size, 1, 1, stride)
            )
            layers.append(ConvLayer(f"{prefix}b", batch, mid, mid, size, size, 3, 3))
            layers.append(ConvLayer(f"{prefix}c", batch, out, mid, size, size, 1, 1))
            if first:
                layers.append(
                    ConvLayer(
                        f"{prefix}_proj", batch, out, in_channels,
                        in_size, in_size, 1, 1, stride,
                    )
                )
            in_channels = out
    return layers


def resnet50_ops(batch: int = 32) -> List[Op]:
    """Every ResNet-50 convolution as a forward :class:`ConvOp`."""
    return [ConvOp.from_layer(layer) for layer in resnet50_conv_layers(batch)]


def resnet50_gemms(batch: int = 32) -> Dict[str, GemmShape]:
    """Lowered GEMM of every ResNet-50 convolution."""
    return _lowered_dict(resnet50_ops(batch))


# -- BERT-base --------------------------------------------------------------------


def bert_encoder_ops(
    tokens: int = 256, hidden: int = 768, ffn: int = 3072, layers: int = 12
) -> List[Op]:
    """The projection/FFN ops of a BERT-base encoder stack.

    Per layer: Q, K, V projections (hidden -> hidden), attention output
    projection (hidden -> hidden), FFN up (hidden -> ffn), FFN down
    (ffn -> hidden), each an :class:`FCOp` with ``tokens`` batch rows —
    matching the paper's BERT-1/2/3 shapes at tokens = 256.
    """
    if layers <= 0:
        raise WorkloadError(f"layers must be positive, got {layers}")
    ops: List[Op] = []
    for i in range(layers):
        p = f"enc{i}"
        for proj in ("q", "k", "v", "attn_out"):
            ops.append(FCOp(f"{p}.{proj}", batch=tokens, nin=hidden, non=hidden))
        ops.append(FCOp(f"{p}.ffn_up", batch=tokens, nin=hidden, non=ffn))
        ops.append(FCOp(f"{p}.ffn_down", batch=tokens, nin=ffn, non=hidden))
    return ops


def bert_encoder_gemms(
    tokens: int = 256, hidden: int = 768, ffn: int = 3072, layers: int = 12
) -> Dict[str, GemmShape]:
    """The projection/FFN GEMMs of a BERT-base encoder stack."""
    return _lowered_dict(bert_encoder_ops(tokens, hidden, ffn, layers))


#: BERT-base attention geometry: 12 heads of 64 dims over 128-token sequences.
BERT_HEADS = 12
BERT_SEQ = 128


def bert_full_ops(
    tokens: int = 256,
    hidden: int = 768,
    ffn: int = 3072,
    layers: int = 12,
    heads: int = BERT_HEADS,
    seq: int = BERT_SEQ,
) -> List[Op]:
    """The *complete* BERT-base encoder stack, attention matmuls included.

    On top of the six projection/FFN :class:`FCOp`\\ s per layer, each
    encoder layer contributes two head-batched attention matmuls as
    :class:`BatchedMatmulOp`\\ s with ``count = heads x sequences``:

    - **score**:   Q_h (seq x head_dim) @ K_hᵀ -> (seq, seq, head_dim);
    - **context**: P_h (seq x seq) @ V_h       -> (seq, head_dim, seq).

    ``tokens`` is the total row count (batch x sequence), so the number of
    sequences is ``ceil(tokens / seq)`` — a trailing partial sequence
    still costs a (padded) attention pass, so rounding up matches padded
    execution where truncating would silently drop its score/context work.
    Below one full sequence the sequence itself shortens to ``tokens``
    (the batch-sweep small end).  Both matmuls mark their sequence dims as
    ``seq_axes`` for the role-aware ``scale_spatial`` knob.
    """
    if hidden % heads:
        raise WorkloadError(
            f"hidden {hidden} must divide evenly into {heads} heads"
        )
    head_dim = hidden // heads
    seq_eff = min(seq, tokens)
    sequences = -(-tokens // seq_eff)
    ops: List[Op] = []
    for op in bert_encoder_ops(tokens, hidden, ffn, layers):
        ops.append(op)
        if op.name.endswith(".v"):
            p = op.name[: -len(".v")]
            ops.append(
                BatchedMatmulOp(
                    f"{p}.attn_score",
                    count=heads * sequences,
                    m=seq_eff, n=seq_eff, k=head_dim,
                    seq_axes=("m", "n"),
                )
            )
            ops.append(
                BatchedMatmulOp(
                    f"{p}.attn_ctx",
                    count=heads * sequences,
                    m=seq_eff, n=head_dim, k=seq_eff,
                    seq_axes=("m", "k"),
                )
            )
    return ops


# -- DLRM -----------------------------------------------------------------------


def mlp_ops(batch: int, widths: Sequence[int], prefix: str) -> List[Op]:
    """Ops of an MLP with the given layer widths (forward FCs)."""
    if len(widths) < 2:
        raise WorkloadError("an MLP needs at least two widths")
    return [
        FCOp(f"{prefix}{i}", batch=batch, nin=nin, non=non)
        for i, (nin, non) in enumerate(zip(widths, widths[1:]))
    ]


def mlp_gemms(batch: int, widths: Sequence[int], prefix: str) -> Dict[str, GemmShape]:
    """GEMMs of an MLP with the given layer widths."""
    return _lowered_dict(mlp_ops(batch, widths, prefix))


def dlrm_ops(batch: int = 512) -> List[Op]:
    """DLRM MLP ops (RM2-class sizes, matching Table I's 1024/2048 FCs)."""
    return mlp_ops(batch, (256, 1024, 1024, 1024, 64), "bottom") + mlp_ops(
        batch, (512, 2048, 2048, 2048, 1024, 1), "top"
    )


def dlrm_gemms(batch: int = 512) -> Dict[str, GemmShape]:
    """DLRM MLP GEMMs (RM2-class sizes, matching Table I's 1024/2048 FCs)."""
    return _lowered_dict(dlrm_ops(batch))


# -- registry ----------------------------------------------------------------------


def _lowered_dict(ops: Sequence[Op]) -> Dict[str, GemmShape]:
    """Identity-lowered ``{label: shape}`` view of single-GEMM op lists."""
    out: Dict[str, GemmShape] = {}
    for op in ops:
        for label, shape, _ in lower(op):
            out[label] = shape
    return out


MODEL_CATALOGS = {
    "resnet50": resnet50_gemms,
    "bert-base": bert_encoder_gemms,
    "dlrm": dlrm_gemms,
}

#: Op-level catalogs, same keys plus the attention-complete BERT stack.
OP_CATALOGS = {
    "resnet50": resnet50_ops,
    "bert-base": bert_encoder_ops,
    "bert-full": bert_full_ops,
    "dlrm": dlrm_ops,
}


def model_gemms(model: str, **kwargs) -> Dict[str, GemmShape]:
    """Catalog lookup: the full GEMM suite of ``model``."""
    try:
        factory = MODEL_CATALOGS[model]
    except KeyError:
        raise WorkloadError(
            f"unknown model {model!r}; known: {', '.join(MODEL_CATALOGS)}"
        ) from None
    return factory(**kwargs)


def model_ops(model: str, **kwargs) -> List[Op]:
    """Catalog lookup: the full op sequence of ``model``."""
    try:
        factory = OP_CATALOGS[model]
    except KeyError:
        raise WorkloadError(
            f"unknown model {model!r}; known: {', '.join(OP_CATALOGS)}"
        ) from None
    return factory(**kwargs)
