"""Full-model GEMM catalogs (extension beyond Table I's nine layers).

The paper evaluates three layers per MLPerf model; these catalogs carry the
*complete* GEMM suite of each network so whole-model speedups can be
simulated: every ResNet-50 convolution (lowered via im2col dimensions),
every BERT-base encoder projection/FFN GEMM, and the DLRM MLP stacks.
Attention score/context batched matmuls and embedding lookups are excluded
(they are not tile-GEMM work on this engine); the catalogs cover the
GEMM-shaped portion the matrix engine would execute.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.errors import WorkloadError
from repro.workloads.gemm import GemmShape
from repro.workloads.layers import ConvLayer, FCLayer

# -- ResNet-50 ------------------------------------------------------------------

#: Bottleneck stage plan: (output spatial, mid channels, out channels, blocks).
_RESNET50_STAGES = (
    (56, 64, 256, 3),
    (28, 128, 512, 4),
    (14, 256, 1024, 6),
    (7, 512, 2048, 3),
)


def resnet50_conv_layers(batch: int = 32) -> List[ConvLayer]:
    """Every convolution of ResNet-50 (ImageNet geometry), in order."""
    layers: List[ConvLayer] = [
        ConvLayer("conv1", batch, filters=64, channels=3, x=224, y=224, r=7, s=7, stride=2)
    ]
    in_channels = 64
    for stage_index, (size, mid, out, blocks) in enumerate(_RESNET50_STAGES, start=2):
        for block in range(blocks):
            prefix = f"conv{stage_index}_{block + 1}"
            # First block of stages 3-5 downsamples; feature-map x/y below is
            # the *input* size of each conv.
            first = block == 0
            stride = 2 if (first and stage_index > 2) else 1
            in_size = size * stride
            layers.append(
                ConvLayer(f"{prefix}a", batch, mid, in_channels, in_size, in_size, 1, 1, stride)
            )
            layers.append(ConvLayer(f"{prefix}b", batch, mid, mid, size, size, 3, 3))
            layers.append(ConvLayer(f"{prefix}c", batch, out, mid, size, size, 1, 1))
            if first:
                layers.append(
                    ConvLayer(
                        f"{prefix}_proj", batch, out, in_channels,
                        in_size, in_size, 1, 1, stride,
                    )
                )
            in_channels = out
    return layers


def resnet50_gemms(batch: int = 32) -> Dict[str, GemmShape]:
    """Lowered GEMM of every ResNet-50 convolution."""
    return {layer.name: layer.gemm() for layer in resnet50_conv_layers(batch)}


# -- BERT-base --------------------------------------------------------------------


def bert_encoder_gemms(
    tokens: int = 256, hidden: int = 768, ffn: int = 3072, layers: int = 12
) -> Dict[str, GemmShape]:
    """The projection/FFN GEMMs of a BERT-base encoder stack.

    Per layer: Q, K, V projections (hidden -> hidden), attention output
    projection (hidden -> hidden), FFN up (hidden -> ffn), FFN down
    (ffn -> hidden).  ``tokens`` is batch x sequence rows, matching the
    paper's BERT-1/2/3 shapes at tokens = 256.
    """
    if layers <= 0:
        raise WorkloadError(f"layers must be positive, got {layers}")
    out: Dict[str, GemmShape] = {}
    for i in range(layers):
        p = f"enc{i}"
        for proj in ("q", "k", "v", "attn_out"):
            out[f"{p}.{proj}"] = GemmShape(tokens, hidden, hidden, name=f"{p}.{proj}")
        out[f"{p}.ffn_up"] = GemmShape(tokens, ffn, hidden, name=f"{p}.ffn_up")
        out[f"{p}.ffn_down"] = GemmShape(tokens, hidden, ffn, name=f"{p}.ffn_down")
    return out


# -- DLRM -----------------------------------------------------------------------


def mlp_gemms(batch: int, widths: Sequence[int], prefix: str) -> Dict[str, GemmShape]:
    """GEMMs of an MLP with the given layer widths."""
    if len(widths) < 2:
        raise WorkloadError("an MLP needs at least two widths")
    out: Dict[str, GemmShape] = {}
    for i, (nin, non) in enumerate(zip(widths, widths[1:])):
        layer = FCLayer(f"{prefix}{i}", batch=batch, nin=nin, non=non)
        out[layer.name] = layer.gemm()
    return out


def dlrm_gemms(batch: int = 512) -> Dict[str, GemmShape]:
    """DLRM MLP GEMMs (RM2-class sizes, matching Table I's 1024/2048 FCs)."""
    gemms = mlp_gemms(batch, (256, 1024, 1024, 1024, 64), "bottom")
    gemms.update(mlp_gemms(batch, (512, 2048, 2048, 2048, 1024, 1), "top"))
    return gemms


# -- registry ----------------------------------------------------------------------

MODEL_CATALOGS = {
    "resnet50": resnet50_gemms,
    "bert-base": bert_encoder_gemms,
    "dlrm": dlrm_gemms,
}


def model_gemms(model: str, **kwargs) -> Dict[str, GemmShape]:
    """Catalog lookup: the full GEMM suite of ``model``."""
    try:
        factory = MODEL_CATALOGS[model]
    except KeyError:
        raise WorkloadError(
            f"unknown model {model!r}; known: {', '.join(MODEL_CATALOGS)}"
        ) from None
    return factory(**kwargs)
