"""Tile loop nest and register blocking (Algorithm 1, generalized).

The code generator walks a GEMM's tile grid in a C-resident register-blocked
order: an (bm x bn) block of C tiles is loaded once, the K dimension streams
A and B tiles through the remaining registers, and the C block stores back.
With the default bm = bn = 2 this is exactly the paper's Algorithm 1 — four
C tiles (treg0-3), two B tiles (treg4-5), two A tiles (treg6-7).

The ``mm_order`` inside a K step controls B-register reuse distance and
therefore how often WLBP can bypass weight loads:

- ``WEIGHT_REUSE`` (Algorithm 1's order): all mm's sharing a B tile are
  consecutive -> (bm − 1)/bm of mm's can bypass (50 % at bm = 2).
- ``ALTERNATE``: B registers alternate every mm -> no bypass opportunities.
  (Ablation E10 quantifies the difference.)
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Iterator, List

from repro.errors import WorkloadError
from repro.isa.instructions import NUM_TILE_REGS, TileReg
from repro.utils.validation import check_positive
from repro.workloads.gemm import GemmShape


class MMOrder(enum.Enum):
    """Ordering of the rasa_mm's inside one K step of a register block."""

    WEIGHT_REUSE = "weight_reuse"
    ALTERNATE = "alternate"


@dataclasses.dataclass(frozen=True)
class BlockingConfig:
    """Register blocking factors and mm ordering.

    ``bm`` x ``bn`` C tiles stay register-resident per block; the register
    budget ``bm·bn + bm + bn <= 8`` must hold (8 architectural tregs).
    """

    bm: int = 2
    bn: int = 2
    mm_order: MMOrder = MMOrder.WEIGHT_REUSE

    def __post_init__(self) -> None:
        check_positive("bm", self.bm)
        check_positive("bn", self.bn)
        needed = self.bm * self.bn + self.bm + self.bn
        if needed > NUM_TILE_REGS:
            raise WorkloadError(
                f"blocking {self.bm}x{self.bn} needs {needed} tile registers, "
                f"only {NUM_TILE_REGS} exist"
            )

    # -- register allocation (Algorithm 1's assignment, generalized) ------------

    def c_reg(self, i: int, j: int) -> TileReg:
        """C tile register for block-local position (i, j)."""
        return TileReg(i * self.bn + j)

    def b_reg(self, j: int) -> TileReg:
        """B tile register for block-local column j."""
        return TileReg(self.bm * self.bn + j)

    def a_reg(self, i: int) -> TileReg:
        """A tile register for block-local row i."""
        return TileReg(self.bm * self.bn + self.bn + i)


@dataclasses.dataclass(frozen=True)
class Block:
    """One register block: a rectangle of C tiles at (m0, n0), size bm' x bn'."""

    m0: int
    n0: int
    bm: int
    bn: int

    def mm_pairs(self, order: MMOrder) -> List[tuple]:
        """Block-local (i, j) mm ordering for one K step."""
        if order is MMOrder.WEIGHT_REUSE:
            return [(i, j) for j in range(self.bn) for i in range(self.bm)]
        return [(i, j) for i in range(self.bm) for j in range(self.bn)]


class TileLoopNest:
    """Enumerates the register blocks covering a GEMM's tile grid."""

    def __init__(self, shape: GemmShape, blocking: BlockingConfig = BlockingConfig()):
        self.shape = shape
        self.blocking = blocking

    def blocks(self) -> Iterator[Block]:
        """Yield blocks in row-major (M-outer, N-inner) order, edge-clipped."""
        bm, bn = self.blocking.bm, self.blocking.bn
        for m0 in range(0, self.shape.m_tiles, bm):
            for n0 in range(0, self.shape.n_tiles, bn):
                yield Block(
                    m0=m0,
                    n0=n0,
                    bm=min(bm, self.shape.m_tiles - m0),
                    bn=min(bn, self.shape.n_tiles - n0),
                )

    @property
    def block_count(self) -> int:
        bm, bn = self.blocking.bm, self.blocking.bn
        return (-(-self.shape.m_tiles // bm)) * (-(-self.shape.n_tiles // bn))

    def expected_bypass_fraction(self) -> float:
        """Upper bound on WLBP bypasses this nest's streams allow.

        Within each K step, mm's sharing a B tile are consecutive under
        WEIGHT_REUSE ordering: (bm' − 1) of every bm' can bypass.  B tiles
        are reloaded every K step, so the first mm of each B group never
        bypasses.
        """
        total = 0
        bypasses = 0
        for block in self.blocks():
            per_step = block.bm * block.bn
            total += per_step * self.shape.k_tiles
            if self.blocking.mm_order is MMOrder.WEIGHT_REUSE:
                bypasses += (block.bm - 1) * block.bn * self.shape.k_tiles
        return bypasses / total if total else 0.0
