"""Workloads: DL layers -> ops -> GEMMs -> RASA instruction streams.

The paper evaluates nine MLPerf layers (Table I): three ResNet50
convolutions, three DLRM FC layers, three BERT FC layers.  This package

- catalogs those layers (:mod:`repro.workloads.layers`),
- models whole networks as sequences of ops that know their own GEMM
  lowering — matmuls, head-batched matmuls, conv and FC layers per
  training pass (:mod:`repro.workloads.ops`),
- lowers convolutions to GEMM via im2col, forward and backward
  (:mod:`repro.workloads.lowering`, adjoint oracles in
  :mod:`repro.workloads.reference`),
- tiles GEMMs onto the 16x16x32 rasa_mm granularity with Algorithm-1-style
  register blocking (:mod:`repro.workloads.tiling`),
- generates the LIBXSMM-like instruction streams the simulators replay
  (:mod:`repro.workloads.codegen`), substituting for the paper's Intel-SDE
  trace collection, and
- packages whole-model GEMM multisets as sweepable
  :class:`~repro.workloads.suites.WorkloadSuite`\\ s
  (:mod:`repro.workloads.suites`): ``table1``, ``resnet50``, ``bert-base``,
  ``bert-full``, ``dlrm``, ``training`` and ``resnet50-train``.
"""

from repro.workloads.gemm import GemmShape
from repro.workloads.layers import (
    ConvLayer,
    FCLayer,
    TABLE1_LAYERS,
    table1_gemms,
)
from repro.workloads.lowering import im2col, conv_to_gemm_shape, conv_reference
from repro.workloads.ops import (
    BatchedMatmulOp,
    ConvOp,
    FCOp,
    LoweringConfig,
    MatmulOp,
    Op,
    lower,
    lower_ops,
    op_kind_counts,
)
from repro.workloads.tiling import BlockingConfig, TileLoopNest
from repro.workloads.codegen import (
    CodegenOptions,
    GemmKernel,
    build_gemm_kernel,
    generate_gemm_program,
)
from repro.workloads.reference import gemm_reference
from repro.workloads.training import TrainingStep, training_gemms
from repro.workloads.models import (
    MODEL_CATALOGS,
    bert_encoder_gemms,
    dlrm_gemms,
    model_gemms,
    resnet50_conv_layers,
    resnet50_gemms,
)
from repro.workloads.suites import (
    DistinctGemm,
    SUITES,
    SuiteSpec,
    WorkloadSuite,
    get_suite,
    suite_names,
)

__all__ = [
    "GemmShape",
    "ConvLayer",
    "FCLayer",
    "TABLE1_LAYERS",
    "table1_gemms",
    "im2col",
    "conv_to_gemm_shape",
    "conv_reference",
    "Op",
    "MatmulOp",
    "BatchedMatmulOp",
    "ConvOp",
    "FCOp",
    "LoweringConfig",
    "lower",
    "lower_ops",
    "op_kind_counts",
    "BlockingConfig",
    "TileLoopNest",
    "CodegenOptions",
    "GemmKernel",
    "build_gemm_kernel",
    "generate_gemm_program",
    "gemm_reference",
    "TrainingStep",
    "training_gemms",
    "MODEL_CATALOGS",
    "model_gemms",
    "resnet50_conv_layers",
    "resnet50_gemms",
    "bert_encoder_gemms",
    "dlrm_gemms",
    "DistinctGemm",
    "SUITES",
    "SuiteSpec",
    "WorkloadSuite",
    "get_suite",
    "suite_names",
]
