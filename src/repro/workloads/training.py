"""Training-pass GEMMs (extension; Sec. V: "our proposed concept is not
limited to inference since GEMM is also a key building block for training").

For an FC layer ``Y = X · W`` with batch N, input width NIN, output width
NON, one training step runs three GEMMs:

- **forward**:  Y  = X · W        -> (M, N, K) = (batch, NON, NIN)
- **dgrad**:    dX = dY · Wᵀ      -> (batch, NIN, NON)
- **wgrad**:    dW = Xᵀ · dY      -> (NIN, NON, batch)

wgrad is the interesting one for RASA: its streamed M dimension equals NIN
(large), so even the serialized baseline amortizes fill/drain well there —
the RASA gain concentrates in forward/dgrad, whose M is the (small) batch.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.workloads.gemm import GemmShape
from repro.workloads.layers import FCLayer


@dataclasses.dataclass(frozen=True)
class TrainingStep:
    """The three GEMMs of one FC training step."""

    layer: FCLayer

    @property
    def forward(self) -> GemmShape:
        return GemmShape(
            m=self.layer.batch, n=self.layer.non, k=self.layer.nin,
            name=f"{self.layer.name}-fwd",
        )

    @property
    def dgrad(self) -> GemmShape:
        return GemmShape(
            m=self.layer.batch, n=self.layer.nin, k=self.layer.non,
            name=f"{self.layer.name}-dgrad",
        )

    @property
    def wgrad(self) -> GemmShape:
        return GemmShape(
            m=self.layer.nin, n=self.layer.non, k=self.layer.batch,
            name=f"{self.layer.name}-wgrad",
        )

    def gemms(self) -> Dict[str, GemmShape]:
        """All three passes, keyed by pass name."""
        return {"forward": self.forward, "dgrad": self.dgrad, "wgrad": self.wgrad}

    @property
    def total_macs(self) -> int:
        return sum(shape.macs for shape in self.gemms().values())


def training_gemms(layers: List[FCLayer]) -> Dict[str, GemmShape]:
    """Flat {``layer-pass``: shape} map over a list of FC layers."""
    out: Dict[str, GemmShape] = {}
    for layer in layers:
        step = TrainingStep(layer)
        for pass_name, shape in step.gemms().items():
            out[f"{layer.name}-{pass_name}"] = shape
    return out
