"""Training-pass GEMMs (extension; Sec. V: "our proposed concept is not
limited to inference since GEMM is also a key building block for training").

For an FC layer ``Y = X · W`` with batch N, input width NIN, output width
NON, one training step runs three GEMMs:

- **forward**:  Y  = X · W        -> (M, N, K) = (batch, NON, NIN)
- **dgrad**:    dX = dY · Wᵀ      -> (batch, NIN, NON)
- **wgrad**:    dW = Xᵀ · dY      -> (NIN, NON, batch)

wgrad is the interesting one for RASA: its streamed M dimension equals NIN
(large), so even the serialized baseline amortizes fill/drain well there —
the RASA gain concentrates in forward/dgrad, whose M is the (small) batch.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.workloads.gemm import GemmShape
from repro.workloads.layers import ConvLayer, FCLayer
from repro.workloads.ops import ConvOp, FCOp, Op


@dataclasses.dataclass(frozen=True)
class TrainingStep:
    """The three GEMMs of one FC training step."""

    layer: FCLayer

    @property
    def forward(self) -> GemmShape:
        return GemmShape(
            m=self.layer.batch, n=self.layer.non, k=self.layer.nin,
            name=f"{self.layer.name}-fwd",
        )

    @property
    def dgrad(self) -> GemmShape:
        return GemmShape(
            m=self.layer.batch, n=self.layer.nin, k=self.layer.non,
            name=f"{self.layer.name}-dgrad",
        )

    @property
    def wgrad(self) -> GemmShape:
        return GemmShape(
            m=self.layer.nin, n=self.layer.non, k=self.layer.batch,
            name=f"{self.layer.name}-wgrad",
        )

    def gemms(self) -> Dict[str, GemmShape]:
        """All three passes, keyed by pass name."""
        return {"forward": self.forward, "dgrad": self.dgrad, "wgrad": self.wgrad}

    @property
    def total_macs(self) -> int:
        return sum(shape.macs for shape in self.gemms().values())


def training_gemms(layers: List[FCLayer]) -> Dict[str, GemmShape]:
    """Flat {``layer-pass``: shape} map over a list of FC layers."""
    out: Dict[str, GemmShape] = {}
    for layer in layers:
        step = TrainingStep(layer)
        for pass_name, shape in step.gemms().items():
            out[f"{layer.name}-{pass_name}"] = shape
    return out


#: Suite label suffix per pass (``forward`` predates the op IR; kept so
#: the ``training`` suite's multiset labels stay byte-identical).
_FC_PASS_LABELS = (("forward", "fwd"), ("dgrad", "dgrad"), ("wgrad", "wgrad"))


def fc_training_ops(layers: List[FCLayer]) -> List[Op]:
    """fwd/dgrad/wgrad :class:`FCOp`\\ s of one training step per FC layer.

    The lowered shapes equal :func:`training_gemms` exactly — the op IR
    spelling of the same suite (golden-tested against the legacy dict).
    """
    return [
        FCOp.from_layer(layer, pass_=pass_, name=f"{layer.name}-{label}")
        for layer in layers
        for label, pass_ in _FC_PASS_LABELS
    ]


def conv_training_ops(layers: List[ConvLayer]) -> List[Op]:
    """fwd/dgrad/wgrad :class:`ConvOp`\\ s of one training step per conv.

    dgrad streams the *input* spatial extent (M = N·X·Y against
    K-dim = filters·R·S, the transposed-filter im2col); wgrad streams the
    filter taps (M = C·R·S) and reduces over every (batch, output
    spatial) position — the conv analogs of the FC pass shapes above,
    validated numerically in :mod:`repro.workloads.lowering` /
    :mod:`repro.workloads.reference`.
    """
    return [
        ConvOp.from_layer(layer, pass_=pass_, name=f"{layer.name}-{pass_}")
        for layer in layers
        for pass_ in ("fwd", "dgrad", "wgrad")
    ]
