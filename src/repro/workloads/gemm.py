"""GEMM shapes and their tiling arithmetic.

One ``rasa_mm`` computes a 16x16 output tile from a 16x32 A tile and a
32x16 B tile (TM x TN x TK = 16 x 16 x 32), so a GEMM is padded up to those
granularities and decomposed into a 3-D grid of tiles.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

from repro.errors import WorkloadError
from repro.utils.validation import check_positive

#: The rasa_mm tile granularity fixed by the 1 KB tile registers.
TILE_M = 16
TILE_N = 16
TILE_K = 32


def _ceil_to(value: int, multiple: int) -> int:
    return -(-value // multiple) * multiple


@dataclasses.dataclass(frozen=True)
class GemmShape:
    """A GEMM ``C(MxN) += A(MxK) @ B(KxN)`` with tiling helpers.

    ``m``, ``n``, ``k`` are the *logical* dimensions; the ``padded_*``
    properties round up to whole rasa_mm tiles (zero padding, which is exact
    for GEMM).

    ``name`` is a display label only — it never changes what gets simulated,
    so it is declared ``metadata={"cache_key": False}`` and the runtime layer
    excludes it from result-cache keys and the program memo: two shapes that
    differ only in label share one simulation.
    """

    m: int
    n: int
    k: int
    name: str = dataclasses.field(default="", metadata={"cache_key": False})

    def __post_init__(self) -> None:
        check_positive("m", self.m)
        check_positive("n", self.n)
        check_positive("k", self.k)

    @property
    def padded_m(self) -> int:
        return _ceil_to(self.m, TILE_M)

    @property
    def padded_n(self) -> int:
        return _ceil_to(self.n, TILE_N)

    @property
    def padded_k(self) -> int:
        return _ceil_to(self.k, TILE_K)

    @property
    def m_tiles(self) -> int:
        return self.padded_m // TILE_M

    @property
    def n_tiles(self) -> int:
        return self.padded_n // TILE_N

    @property
    def k_tiles(self) -> int:
        return self.padded_k // TILE_K

    @property
    def mm_count(self) -> int:
        """rasa_mm instructions needed for the whole (padded) GEMM."""
        return self.m_tiles * self.n_tiles * self.k_tiles

    @property
    def macs(self) -> int:
        """Useful multiply-accumulates (unpadded)."""
        return self.m * self.n * self.k

    @property
    def dims(self) -> Tuple[int, int, int]:
        """The label-free identity ``(m, n, k)`` — the suite multiset key."""
        return (self.m, self.n, self.k)

    def unlabeled(self) -> "GemmShape":
        """This shape with the display label stripped (memo/cache identity)."""
        if not self.name:
            return self
        return GemmShape(m=self.m, n=self.n, k=self.k)

    def tile_padded(self) -> "GemmShape":
        """The tile-aligned, unlabeled shape this GEMM actually executes as.

        Codegen pads every GEMM up to whole rasa_mm tiles before lowering,
        so two shapes with the same *padded* dimensions issue the same
        instruction stream and time identically — e.g. batches 1..16 of an
        FC layer all execute as one 16-row tile block.  This is the
        identity the runtime layer keys simulations on (cache keys dedup
        sub-tile variants onto one point).
        """
        padded = (self.padded_m, self.padded_n, self.padded_k)
        if not self.name and self.dims == padded:
            return self
        return GemmShape(m=padded[0], n=padded[1], k=padded[2])

    @property
    def padding_waste(self) -> float:
        """Fraction of tile MACs spent on zero padding (mapping inefficiency)."""
        padded = self.padded_m * self.padded_n * self.padded_k
        return 1.0 - self.macs / padded

    def scaled(self, factor: int) -> "GemmShape":
        """Shrink every dimension by ``factor`` (floored at one register block).

        Used by the benchmark harness to run the Fig. 5 sweep at reduced
        size: normalized runtimes converge quickly with size because the
        steady-state initiation interval dominates, so who-wins/by-how-much
        is preserved (validated by a dedicated convergence test).
        """
        check_positive("factor", factor)
        if factor == 1:
            return self
        return GemmShape(
            m=max(2 * TILE_M, self.m // factor),
            n=max(2 * TILE_N, self.n // factor),
            k=max(TILE_K, self.k // factor),
            name=f"{self.name}/s{factor}" if self.name else f"s{factor}",
        )

    def __str__(self) -> str:
        label = f"{self.name}: " if self.name else ""
        return f"{label}M={self.m} N={self.n} K={self.k}"


def validate_padded(shape: GemmShape) -> GemmShape:
    """Require a shape already aligned to tile granularity (codegen input)."""
    if (shape.m, shape.n, shape.k) != (shape.padded_m, shape.padded_n, shape.padded_k):
        raise WorkloadError(f"shape {shape} is not tile-aligned")
    return shape
