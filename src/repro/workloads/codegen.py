"""LIBXSMM-style code generation: GEMM -> RASA instruction stream.

This substitutes for the paper's Intel-SDE trace collection: instead of
tracing LIBXSMM binaries, we generate the equivalent dynamic stream
directly — the same C-resident register-blocked loop nest, the same
Algorithm-1 register assignment and mm ordering, plus configurable scalar
loop overhead standing in for the pointer arithmetic between tile ops.

The generator also lays the three operand matrices out in simulation memory
(A row-major BF16, B VNNI-packed BF16, C row-major FP32) so the very same
program can be executed functionally and checked against the NumPy oracle.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.errors import WorkloadError
from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.tile.hostmem import HostMatrix, layout_gemm_operands
from repro.tile.memory import TileMemory
from repro.tile.vnni import pack_b_vnni
from repro.workloads.gemm import GemmShape
from repro.workloads.tiling import Block, BlockingConfig, TileLoopNest


@dataclasses.dataclass(frozen=True)
class CodegenOptions:
    """Code generation knobs.

    Attributes:
        blocking: register blocking + mm ordering.
        scalar_overhead_per_kstep: scalar instructions emitted per K step
            (pointer bumps / loop test), approximating LIBXSMM's overhead.
        scalar_overhead_per_block: scalar instructions per register block
            (block setup / loop control).
    """

    blocking: BlockingConfig = BlockingConfig()
    scalar_overhead_per_kstep: int = 2
    scalar_overhead_per_block: int = 6


@dataclasses.dataclass
class GemmKernel:
    """A generated kernel: the program plus its operand layout in memory."""

    shape: GemmShape            # logical (possibly unaligned) dimensions
    padded: GemmShape           # tile-aligned dimensions the program covers
    options: CodegenOptions
    a_host: HostMatrix
    b_host: HostMatrix          # VNNI-packed: (K/2) x (2N)
    c_host: HostMatrix
    program: Program

    def write_inputs(
        self,
        memory: TileMemory,
        a: np.ndarray,
        b: np.ndarray,
        c: Optional[np.ndarray] = None,
    ) -> None:
        """Zero-pad operands to the padded shape and place them in memory."""
        a = np.asarray(a, dtype=np.float32)
        b = np.asarray(b, dtype=np.float32)
        if a.shape != (self.shape.m, self.shape.k):
            raise WorkloadError(f"A must be {self.shape.m}x{self.shape.k}, got {a.shape}")
        if b.shape != (self.shape.k, self.shape.n):
            raise WorkloadError(f"B must be {self.shape.k}x{self.shape.n}, got {b.shape}")
        pa = np.zeros((self.padded.m, self.padded.k), dtype=np.float32)
        pa[: self.shape.m, : self.shape.k] = a
        pb = np.zeros((self.padded.k, self.padded.n), dtype=np.float32)
        pb[: self.shape.k, : self.shape.n] = b
        pc = np.zeros((self.padded.m, self.padded.n), dtype=np.float32)
        if c is not None:
            c = np.asarray(c, dtype=np.float32)
            if c.shape != (self.shape.m, self.shape.n):
                raise WorkloadError(
                    f"C must be {self.shape.m}x{self.shape.n}, got {c.shape}"
                )
            pc[: self.shape.m, : self.shape.n] = c
        self.a_host.store(memory, pa)
        self.b_host.store(memory, pack_b_vnni(pb))
        self.c_host.store(memory, pc)

    def read_result(self, memory: TileMemory) -> np.ndarray:
        """Read back the (unpadded) M x N float32 result."""
        full = self.c_host.load(memory)
        return full[: self.shape.m, : self.shape.n]


def _emit_block(
    builder: ProgramBuilder,
    block: Block,
    kernel_shape: GemmShape,
    options: CodegenOptions,
    a_host: HostMatrix,
    b_host: HostMatrix,
    c_host: HostMatrix,
) -> None:
    blocking = options.blocking
    # Step 1: load the C block.
    for i in range(block.bm):
        for j in range(block.bn):
            addr = c_host.tile_address(block.m0 + i, block.n0 + j)
            builder.tl(blocking.c_reg(i, j), addr, c_host.stride,
                       tag=f"C[{block.m0 + i},{block.n0 + j}]")
    # Step 2: stream the K dimension, computing partial sums.
    for k in range(kernel_shape.k_tiles):
        for i in range(block.bm):
            addr = a_host.tile_address(block.m0 + i, k)
            builder.tl(blocking.a_reg(i), addr, a_host.stride,
                       tag=f"A[{block.m0 + i},{k}]")
        for j in range(block.bn):
            addr = b_host.tile_address(k, block.n0 + j)
            builder.tl(blocking.b_reg(j), addr, b_host.stride,
                       tag=f"B[{k},{block.n0 + j}]")
        for i, j in block.mm_pairs(blocking.mm_order):
            builder.mm(
                blocking.c_reg(i, j),
                blocking.a_reg(i),
                blocking.b_reg(j),
                tag=f"mm[{block.m0 + i},{block.n0 + j},{k}]",
            )
        builder.loop_overhead(options.scalar_overhead_per_kstep, tag="kstep")
    # Step 3: store the C block.
    for i in range(block.bm):
        for j in range(block.bn):
            addr = c_host.tile_address(block.m0 + i, block.n0 + j)
            builder.ts(addr, blocking.c_reg(i, j), c_host.stride,
                       tag=f"C[{block.m0 + i},{block.n0 + j}]")
    builder.loop_overhead(options.scalar_overhead_per_block, tag="block")


def build_gemm_kernel(
    shape: GemmShape,
    options: CodegenOptions = CodegenOptions(),
    base_address: int = 0x10000,
) -> GemmKernel:
    """Generate the full kernel (program + operand layout) for ``shape``."""
    padded = GemmShape(
        m=shape.padded_m, n=shape.padded_n, k=shape.padded_k, name=shape.name
    )
    a_host, b_host, c_host = layout_gemm_operands(
        padded.m, padded.n, padded.k, base=base_address
    )
    builder = ProgramBuilder(name=shape.name or f"gemm_{shape.m}x{shape.n}x{shape.k}")
    nest = TileLoopNest(padded, options.blocking)
    for block in nest.blocks():
        _emit_block(builder, block, padded, options, a_host, b_host, c_host)
    return GemmKernel(
        shape=shape,
        padded=padded,
        options=options,
        a_host=a_host,
        b_host=b_host,
        c_host=c_host,
        program=builder.build(),
    )


def generate_gemm_program(
    shape: GemmShape, options: CodegenOptions = CodegenOptions()
) -> Program:
    """Generate just the instruction stream for ``shape``."""
    return build_gemm_kernel(shape, options).program
