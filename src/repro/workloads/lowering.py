"""Convolution lowering: im2col transformation and a direct-conv oracle.

Many frameworks "lower" convolution to GEMM (Sec. II-A, ref. [9]).  For a
stride-1 'same'-padded convolution of input (N, C, X, Y) with filters
(K, C, R, S):

- ``im2col`` builds the (N·X·Y, C·R·S) patch matrix A;
- the filters reshape to (C·R·S, K) as the GEMM's B;
- the GEMM output (N·X·Y, K) reshapes back to (N, K, X, Y).

``conv_reference`` computes the same convolution directly, so tests can
confirm the lowering (and then the whole simulated pipeline) is exact.

The **training passes** lower to GEMM the same way:

- **dgrad** (``conv_dgrad``): dX is the 'same' convolution of dY with the
  *transposed, spatially flipped* filters (:func:`dgrad_filters` turns
  (K, C, R, S) into (C, K, R, S) rotated 180°), so it reuses ``im2col``
  on dY — GEMM dims (N·X·Y, C, K·R·S);
- **wgrad** (``conv_wgrad``): dW is the patch matrix of the *inputs*
  contracted with dY over every (batch, spatial) position —
  ``X_colᵀ @ dY_mat``, GEMM dims (C·R·S, K, N·X·Y), the conv analog of
  the FC wgrad ``Xᵀ @ dY``.

Both are validated against the independent adjoint oracles in
:mod:`repro.workloads.reference` (``conv_dgrad_reference`` /
``conv_wgrad_reference``), which never touch im2col.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.gemm import GemmShape
from repro.workloads.layers import ConvLayer


def _check_conv_operands(inputs: np.ndarray, weights: np.ndarray) -> None:
    if inputs.ndim != 4 or weights.ndim != 4:
        raise WorkloadError(
            f"conv expects NCHW inputs and KCRS weights, got {inputs.shape} / {weights.shape}"
        )
    if inputs.shape[1] != weights.shape[1]:
        raise WorkloadError(
            f"channel mismatch: input C={inputs.shape[1]}, weight C={weights.shape[1]}"
        )
    if weights.shape[2] % 2 == 0 or weights.shape[3] % 2 == 0:
        raise WorkloadError("'same' padding requires odd filter dims R, S")


def im2col(inputs: np.ndarray, r: int, s: int) -> np.ndarray:
    """Lower (N, C, X, Y) inputs to the (N·X·Y, C·R·S) patch matrix.

    Stride 1, 'same' zero padding (out-of-range taps read zero).  Column
    order is (c, dr, ds) row-major — matching the filter reshape below.
    """
    if r % 2 == 0 or s % 2 == 0:
        raise WorkloadError("'same' padding requires odd filter dims R, S")
    n, c, x, y = inputs.shape
    pad_r, pad_s = r // 2, s // 2
    padded = np.zeros((n, c, x + 2 * pad_r, y + 2 * pad_s), dtype=inputs.dtype)
    padded[:, :, pad_r : pad_r + x, pad_s : pad_s + y] = inputs
    columns = np.empty((n, x, y, c, r, s), dtype=inputs.dtype)
    for dr in range(r):
        for ds in range(s):
            columns[:, :, :, :, dr, ds] = padded[:, :, dr : dr + x, ds : ds + y].transpose(
                0, 2, 3, 1
            )
    return columns.reshape(n * x * y, c * r * s)


def filters_to_gemm_b(weights: np.ndarray) -> np.ndarray:
    """Reshape (K, C, R, S) filters to the GEMM B matrix (C·R·S, K)."""
    k = weights.shape[0]
    return weights.reshape(k, -1).T.copy()


def gemm_output_to_conv(output: np.ndarray, n: int, x: int, y: int) -> np.ndarray:
    """Reshape the GEMM output (N·X·Y, K) back to the (N, K, X, Y) tensor."""
    k = output.shape[1]
    return output.reshape(n, x, y, k).transpose(0, 3, 1, 2).copy()


def conv_to_gemm_shape(layer: ConvLayer) -> GemmShape:
    """The GEMM dimensions im2col produces for ``layer`` (same as layer.gemm())."""
    return layer.gemm()


def dgrad_filters(weights: np.ndarray) -> np.ndarray:
    """The transposed-filter bank dgrad convolves with.

    (K, C, R, S) forward filters become (C, K, R, S) filters rotated 180°
    spatially: ``W'[c, k, dr, ds] = W[k, c, R-1-dr, S-1-ds]``.  Convolving
    dY with these ('same' padding, stride 1) is exactly the adjoint of the
    forward convolution.
    """
    if weights.ndim != 4:
        raise WorkloadError(f"expected KCRS weights, got shape {weights.shape}")
    return weights.transpose(1, 0, 2, 3)[:, :, ::-1, ::-1].copy()


def conv_dgrad(grad_output: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Input gradient dX via the transposed-filter im2col GEMM (stride 1).

    ``grad_output`` is dY (N, K, X, Y); the result is dX (N, C, X, Y).
    This is the *lowered* path — ``im2col`` on dY times the reshaped
    :func:`dgrad_filters` — which tests compare against the direct
    adjoint oracle :func:`repro.workloads.reference.conv_dgrad_reference`.
    """
    _check_conv_operands(grad_output, weights.transpose(1, 0, 2, 3))
    n, _, x, y = grad_output.shape
    r, s = weights.shape[2], weights.shape[3]
    a = im2col(grad_output, r, s)
    b = filters_to_gemm_b(dgrad_filters(weights))
    return gemm_output_to_conv(a @ b, n, x, y)


def conv_wgrad(inputs: np.ndarray, grad_output: np.ndarray, r: int, s: int) -> np.ndarray:
    """Weight gradient dW via the im2col GEMM ``X_colᵀ @ dY_mat`` (stride 1).

    ``inputs`` (N, C, X, Y) and ``grad_output`` dY (N, K, X, Y) produce
    dW (K, C, R, S).  The GEMM streams M = C·R·S rows against
    K-dim = N·X·Y — the conv analog of the FC wgrad ``Xᵀ @ dY``.
    """
    if inputs.ndim != 4 or grad_output.ndim != 4:
        raise WorkloadError(
            "conv_wgrad expects NCHW inputs and NKXY grads, got "
            f"{inputs.shape} / {grad_output.shape}"
        )
    if inputs.shape[0] != grad_output.shape[0] or inputs.shape[2:] != grad_output.shape[2:]:
        raise WorkloadError(
            f"batch/spatial mismatch: inputs {inputs.shape}, grads {grad_output.shape}"
        )
    n, c, x, y = inputs.shape
    k = grad_output.shape[1]
    x_col = im2col(inputs, r, s)                                    # (NXY, CRS)
    dy_mat = grad_output.transpose(0, 2, 3, 1).reshape(n * x * y, k)  # (NXY, K)
    dw = x_col.T @ dy_mat                                           # (CRS, K)
    return dw.T.reshape(k, c, r, s).copy()


def conv_reference(inputs: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Direct stride-1 'same' convolution in float64 (the lowering oracle)."""
    _check_conv_operands(inputs, weights)
    n, c, x, y = inputs.shape
    k, _, r, s = weights.shape
    pad_r, pad_s = r // 2, s // 2
    padded = np.zeros((n, c, x + 2 * pad_r, y + 2 * pad_s), dtype=np.float64)
    padded[:, :, pad_r : pad_r + x, pad_s : pad_s + y] = inputs
    out = np.zeros((n, k, x, y), dtype=np.float64)
    for dr in range(r):
        for ds in range(s):
            window = padded[:, :, dr : dr + x, ds : ds + y]
            out += np.einsum("ncxy,kc->nkxy", window, weights[:, :, dr, ds])
    return out
