"""The MLPerf layer catalog of Table I.

Notation follows the paper: for convolutions, N = batch, K = filters,
C = input channels, X/Y = input spatial dims, R/S = filter dims; for FC
layers, N = batch, NIN/NON = input/output neurons.  All evaluation is on
inference (forward pass).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Union

from repro.utils.validation import check_positive
from repro.workloads.gemm import GemmShape


@dataclasses.dataclass(frozen=True)
class ConvLayer:
    """A convolution layer ('same' zero padding; Table I layers use stride 1).

    ``stride > 1`` is supported for GEMM-shape purposes (the full-model
    catalogs need it); the functional im2col path in
    :mod:`repro.workloads.lowering` implements stride 1 only.
    """

    name: str
    batch: int   # N
    filters: int  # K
    channels: int  # C
    x: int
    y: int
    r: int
    s: int
    stride: int = 1

    def __post_init__(self) -> None:
        for field in ("batch", "filters", "channels", "x", "y", "r", "s", "stride"):
            check_positive(field, getattr(self, field))

    @property
    def out_x(self) -> int:
        return -(-self.x // self.stride)  # 'same' padding

    @property
    def out_y(self) -> int:
        return -(-self.y // self.stride)

    def gemm(self) -> GemmShape:
        """Lower to GEMM dimensions via im2col (Sec. II-A):
        M = N·X'·Y', K = C·R·S, N = filters."""
        return GemmShape(
            m=self.batch * self.out_x * self.out_y,
            n=self.filters,
            k=self.channels * self.r * self.s,
            name=self.name,
        )

    def with_batch(self, batch: int) -> "ConvLayer":
        """The same layer at a different batch size (the ``Layer`` protocol).

        Every layer kind implements ``with_batch``, so suite factories
        rebatch uniformly instead of reaching for ``dataclasses.replace``
        on some kinds — a new layer type cannot silently miss batch
        overrides.
        """
        return dataclasses.replace(self, batch=batch)

    def __str__(self) -> str:
        return (
            f"{self.name}: N={self.batch} K={self.filters} C={self.channels} "
            f"X=Y={self.x} R=S={self.r}"
        )


@dataclasses.dataclass(frozen=True)
class FCLayer:
    """A fully connected layer; batched inference makes it a GEMM."""

    name: str
    batch: int  # N
    nin: int
    non: int

    def __post_init__(self) -> None:
        for field in ("batch", "nin", "non"):
            check_positive(field, getattr(self, field))

    def gemm(self) -> GemmShape:
        """M = batch, K = NIN, N = NON."""
        return GemmShape(m=self.batch, n=self.non, k=self.nin, name=self.name)

    def with_batch(self, batch: int) -> "FCLayer":
        """The same layer at a different batch size (Fig. 7's sweep)."""
        return FCLayer(name=self.name, batch=batch, nin=self.nin, non=self.non)

    def __str__(self) -> str:
        return f"{self.name}: N={self.batch} NIN={self.nin} NON={self.non}"


#: Every layer kind supports ``gemm()`` and ``with_batch(batch)`` — the
#: protocol suite factories and the op IR build on.
Layer = Union[ConvLayer, FCLayer]

#: Table I, verbatim.
TABLE1_LAYERS: Dict[str, Layer] = {
    layer.name: layer
    for layer in (
        ConvLayer("ResNet50-1", batch=32, filters=64, channels=64, x=56, y=56, r=1, s=1),
        ConvLayer("ResNet50-2", batch=32, filters=64, channels=64, x=56, y=56, r=3, s=3),
        ConvLayer("ResNet50-3", batch=32, filters=512, channels=1024, x=14, y=14, r=1, s=1),
        FCLayer("DLRM-1", batch=512, nin=1024, non=1024),
        FCLayer("DLRM-2", batch=512, nin=1024, non=64),
        FCLayer("DLRM-3", batch=512, nin=2048, non=2048),
        FCLayer("BERT-1", batch=256, nin=768, non=768),
        FCLayer("BERT-2", batch=256, nin=3072, non=768),
        FCLayer("BERT-3", batch=256, nin=768, non=3072),
    )
}

#: The six FC layers used in the Fig. 7 batch-size sensitivity study.
FC_LAYER_NAMES: List[str] = [
    name for name, layer in TABLE1_LAYERS.items() if isinstance(layer, FCLayer)
]


def table1_gemms() -> Dict[str, GemmShape]:
    """GEMM shapes of every Table I layer, in table order."""
    return {name: layer.gemm() for name, layer in TABLE1_LAYERS.items()}
