"""First-class model workload suites: name -> GEMM multiset.

The paper evaluates three layers per MLPerf model (Table I); the catalogs
in :mod:`repro.workloads.models` and :mod:`repro.workloads.training` carry
the *complete* GEMM work of each network.  A :class:`WorkloadSuite` makes
that sweepable: an ordered multiset of (layer label, GEMM shape) pairs
whose :meth:`~WorkloadSuite.distinct` view collapses dimensionally
identical layers into one representative plus an occurrence count — the
unit :meth:`repro.runtime.sweep.SweepRunner.run_suite` simulates.

Real models repeat shapes heavily: BERT-base's 72 encoder GEMMs are 3
distinct points (48 identical q/k/v/attn-out projections alone), DLRM's
MLP stacks repeat their 1024x1024 and 2048x2048 FCs, and ResNet-50's
within-stage bottleneck blocks reuse the same three convolutions.  The
registry (:data:`SUITES` / :func:`get_suite`) covers ``table1``,
``resnet50``, ``bert-base``, ``dlrm`` and ``training`` (fwd/dgrad/wgrad
over the Table I FC layers), each with an optional batch override and the
same ``scale`` convention the experiment layer uses.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.errors import WorkloadError
from repro.workloads.gemm import GemmShape
from repro.workloads.layers import FC_LAYER_NAMES, FCLayer, TABLE1_LAYERS, table1_gemms
from repro.workloads.models import (
    bert_encoder_gemms,
    dlrm_gemms,
    resnet50_gemms,
)
from repro.workloads.training import training_gemms
from repro.utils.validation import check_positive


@dataclasses.dataclass(frozen=True)
class DistinctGemm:
    """One distinct (m, n, k) point of a suite and the layers it covers."""

    shape: GemmShape          # first-occurrence representative (label kept)
    count: int                # occurrences in the suite multiset
    layers: Tuple[str, ...]   # every layer label that maps onto this point


@dataclasses.dataclass(frozen=True)
class WorkloadSuite:
    """An ordered GEMM multiset: the full matrix-engine work of one model.

    ``gemms`` keeps every (layer label, shape) pair in network order —
    duplicates included — so occurrence-weighted end-to-end aggregation
    stays exact; :meth:`distinct` is the deduplicated view sweeps simulate.
    """

    name: str
    gemms: Tuple[Tuple[str, GemmShape], ...]

    @classmethod
    def from_gemms(cls, name: str, gemms: Mapping[str, GemmShape]) -> "WorkloadSuite":
        if not gemms:
            raise WorkloadError(f"suite {name!r} has no GEMMs")
        return cls(name=name, gemms=tuple(gemms.items()))

    def __len__(self) -> int:
        """Total GEMM count, duplicates included."""
        return len(self.gemms)

    def as_dict(self) -> Dict[str, GemmShape]:
        """The suite as a {layer label: shape} mapping (network order)."""
        return dict(self.gemms)

    def distinct(self) -> List[DistinctGemm]:
        """The multiset collapsed by (m, n, k), in first-occurrence order."""
        order: List[Tuple[int, int, int]] = []
        rep: Dict[Tuple[int, int, int], GemmShape] = {}
        layers: Dict[Tuple[int, int, int], List[str]] = {}
        for label, shape in self.gemms:
            dims = shape.dims
            if dims not in rep:
                order.append(dims)
                rep[dims] = shape
                layers[dims] = []
            layers[dims].append(label)
        return [
            DistinctGemm(shape=rep[d], count=len(layers[d]), layers=tuple(layers[d]))
            for d in order
        ]

    @property
    def dedup_factor(self) -> float:
        """Per-layer simulations each distinct point stands in for."""
        return len(self) / len(self.distinct())

    @property
    def total_macs(self) -> int:
        """Useful MACs over the whole multiset (duplicates included)."""
        return sum(shape.macs for _, shape in self.gemms)

    def scaled(self, factor: int) -> "WorkloadSuite":
        """Every shape shrunk by ``factor`` (same floors as ``GemmShape.scaled``).

        Scaling can only merge distinct points (floored dimensions
        coincide), never split them, so dedup bookkeeping stays exact.
        """
        check_positive("factor", factor)
        if factor == 1:
            return self
        return WorkloadSuite(
            name=self.name,
            gemms=tuple((label, shape.scaled(factor)) for label, shape in self.gemms),
        )


# -- registry ----------------------------------------------------------------------


def _table1_suite(batch: Optional[int]) -> Dict[str, GemmShape]:
    if batch is None:
        return table1_gemms()
    out: Dict[str, GemmShape] = {}
    for name, layer in TABLE1_LAYERS.items():
        if isinstance(layer, FCLayer):
            layer = layer.with_batch(batch)
        else:
            layer = dataclasses.replace(layer, batch=batch)
        out[name] = layer.gemm()
    return out


def _training_suite(batch: Optional[int]) -> Dict[str, GemmShape]:
    layers = [TABLE1_LAYERS[name] for name in FC_LAYER_NAMES]
    if batch is not None:
        layers = [layer.with_batch(batch) for layer in layers]
    return training_gemms(layers)


@dataclasses.dataclass(frozen=True)
class SuiteSpec:
    """Registry entry: how to build one named suite.

    ``default_batch`` is the single source of the suite's batch fallback —
    :meth:`build` resolves it before calling the factory.  ``None`` means
    the factory keeps its catalog's per-layer defaults (Table I batches
    differ per model).
    """

    name: str
    description: str
    default_batch: Optional[int]
    factory: Callable[[Optional[int]], Dict[str, GemmShape]]

    def build(self, batch: Optional[int] = None, scale: int = 1) -> WorkloadSuite:
        if batch is not None:
            check_positive("batch", batch)
        else:
            batch = self.default_batch
        suite = WorkloadSuite.from_gemms(self.name, self.factory(batch))
        return suite.scaled(scale)


#: Every registered model workload suite, by name.
SUITES: Dict[str, SuiteSpec] = {
    spec.name: spec
    for spec in (
        SuiteSpec(
            "table1",
            "the paper's nine Table I layers (three per MLPerf model)",
            None,
            _table1_suite,
        ),
        SuiteSpec(
            "resnet50",
            "every ResNet-50 convolution, im2col-lowered (ImageNet geometry)",
            32,
            lambda batch: resnet50_gemms(batch=batch),
        ),
        SuiteSpec(
            "bert-base",
            "full 12-layer BERT-base encoder projections + FFNs "
            "(batch = token rows)",
            256,
            lambda batch: bert_encoder_gemms(tokens=batch),
        ),
        SuiteSpec(
            "dlrm",
            "DLRM bottom + top MLP stacks (RM2-class widths)",
            512,
            lambda batch: dlrm_gemms(batch=batch),
        ),
        SuiteSpec(
            "training",
            "fwd/dgrad/wgrad GEMMs of the six Table I FC layers",
            None,
            _training_suite,
        ),
    )
}


def suite_names() -> List[str]:
    """Registered suite names, registry order."""
    return list(SUITES)


def get_suite(
    name: str, batch: Optional[int] = None, scale: int = 1
) -> WorkloadSuite:
    """Build the named suite, optionally rebatched and scaled.

    ``batch`` overrides the streamed-rows dimension (FC/MLP batch, BERT
    token rows, conv batch); ``None`` keeps each catalog's defaults.
    """
    try:
        spec = SUITES[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload suite {name!r}; known: {', '.join(SUITES)}"
        ) from None
    return spec.build(batch=batch, scale=scale)
