"""First-class model workload suites: name -> GEMM multiset.

The paper evaluates three layers per MLPerf model (Table I); the op
catalogs in :mod:`repro.workloads.models` and
:mod:`repro.workloads.training` carry the *complete* matrix-engine work of
each network.  A :class:`WorkloadSuite` makes that sweepable: an ordered
multiset of (layer label, GEMM shape) pairs whose
:meth:`~WorkloadSuite.distinct` view collapses dimensionally identical
layers into one representative plus an occurrence count — the unit the
runtime layer simulates.

Suites are built from the **op IR** (:mod:`repro.workloads.ops`): each
registry entry holds an op factory, and :meth:`SuiteSpec.build` lowers the
ops through :func:`repro.workloads.ops.lower` under a
:class:`~repro.workloads.ops.LoweringConfig` — which is what gives every
suite the dimension-role-aware ``scale_batch`` / ``scale_spatial`` knobs
on top of the generic every-dimension ``scale``.

Real models repeat shapes heavily: BERT-base's 72 encoder GEMMs are 3
distinct points (48 identical q/k/v/attn-out projections alone), the full
attention-included stack's 648 GEMMs are 5 (each layer's 288 per-head
score and 288 context matmuls collapse onto one point apiece), DLRM's MLP
stacks repeat their 1024x1024 and 2048x2048 FCs, and ResNet-50's
within-stage bottleneck blocks reuse the same three convolutions.  The
registry (:data:`SUITES` / :func:`get_suite`) covers ``table1``,
``resnet50``, ``bert-base``, ``bert-full``, ``dlrm``, ``training``
(fwd/dgrad/wgrad over the Table I FC layers) and ``resnet50-train``
(fwd/dgrad/wgrad over every ResNet-50 convolution), each with an optional
batch override and the same ``scale`` convention the experiment layer
uses.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import WorkloadError
from repro.utils.validation import check_positive
from repro.workloads.gemm import GemmShape
from repro.workloads.layers import FC_LAYER_NAMES, TABLE1_LAYERS, FCLayer
from repro.workloads.models import (
    bert_encoder_ops,
    bert_full_ops,
    dlrm_ops,
    resnet50_conv_layers,
    resnet50_ops,
)
from repro.workloads.ops import (
    DEFAULT_LOWERING,
    ConvOp,
    FCOp,
    LoweringConfig,
    Op,
    lower_ops,
    op_kind_counts,
)
from repro.workloads.training import conv_training_ops, fc_training_ops

#: What a registry factory may return: an op sequence (preferred — lowers
#: through the op IR, role-aware knobs apply) or a pre-lowered
#: ``{label: shape}`` mapping (ad-hoc specs; identity lowering only).
SuiteSource = Union[Sequence[Op], Mapping[str, GemmShape]]


@dataclasses.dataclass(frozen=True)
class DistinctGemm:
    """One distinct (m, n, k) point of a suite and the layers it covers."""

    shape: GemmShape          # first-occurrence representative (label kept)
    count: int                # occurrences in the suite multiset
    layers: Tuple[str, ...]   # every layer label that maps onto this point


@dataclasses.dataclass(frozen=True)
class WorkloadSuite:
    """An ordered GEMM multiset: the full matrix-engine work of one model.

    ``gemms`` keeps every (layer label, shape) pair in network order —
    duplicates included — so occurrence-weighted end-to-end aggregation
    stays exact; :meth:`distinct` is the deduplicated view sweeps simulate.
    """

    name: str
    gemms: Tuple[Tuple[str, GemmShape], ...]

    @classmethod
    def from_gemms(cls, name: str, gemms: Mapping[str, GemmShape]) -> "WorkloadSuite":
        if not gemms:
            raise WorkloadError(f"suite {name!r} has no GEMMs")
        return cls(name=name, gemms=tuple(gemms.items()))

    @classmethod
    def from_ops(
        cls,
        name: str,
        ops: Sequence[Op],
        lowering: LoweringConfig = DEFAULT_LOWERING,
    ) -> "WorkloadSuite":
        """Lower an op sequence into a suite multiset.

        Batched ops expand to ``count`` rows apiece, so the multiset is
        the exact network-order GEMM stream (BERT-full's 24 attention ops
        become 576 rows) and occurrence weighting needs no special cases.
        """
        if not ops:
            raise WorkloadError(f"suite {name!r} has no ops")
        return cls(name=name, gemms=tuple(lower_ops(ops, lowering)))

    def __len__(self) -> int:
        """Total GEMM count, duplicates included."""
        return len(self.gemms)

    def as_dict(self) -> Dict[str, GemmShape]:
        """The suite as a {layer label: shape} mapping (network order)."""
        return dict(self.gemms)

    def distinct(self) -> List[DistinctGemm]:
        """The multiset collapsed by (m, n, k), in first-occurrence order."""
        order: List[Tuple[int, int, int]] = []
        rep: Dict[Tuple[int, int, int], GemmShape] = {}
        layers: Dict[Tuple[int, int, int], List[str]] = {}
        for label, shape in self.gemms:
            dims = shape.dims
            if dims not in rep:
                order.append(dims)
                rep[dims] = shape
                layers[dims] = []
            layers[dims].append(label)
        return [
            DistinctGemm(shape=rep[d], count=len(layers[d]), layers=tuple(layers[d]))
            for d in order
        ]

    @property
    def dedup_factor(self) -> float:
        """Per-layer simulations each distinct point stands in for."""
        return len(self) / len(self.distinct())

    @property
    def total_macs(self) -> int:
        """Useful MACs over the whole multiset (duplicates included)."""
        return sum(shape.macs for _, shape in self.gemms)

    def scaled(self, factor: int) -> "WorkloadSuite":
        """Every shape shrunk by ``factor`` (same floors as ``GemmShape.scaled``).

        Scaling can only merge distinct points (floored dimensions
        coincide), never split them, so dedup bookkeeping stays exact.
        """
        check_positive("factor", factor)
        if factor == 1:
            return self
        return WorkloadSuite(
            name=self.name,
            gemms=tuple((label, shape.scaled(factor)) for label, shape in self.gemms),
        )


# -- registry ----------------------------------------------------------------------


def _table1_ops(batch: Optional[int]) -> List[Op]:
    """Table I as ops: every layer kind rebatches via ``Layer.with_batch``."""
    ops: List[Op] = []
    for layer in TABLE1_LAYERS.values():
        if batch is not None:
            layer = layer.with_batch(batch)
        if isinstance(layer, FCLayer):
            ops.append(FCOp.from_layer(layer))
        else:
            ops.append(ConvOp.from_layer(layer))
    return ops


def _training_ops(batch: Optional[int]) -> List[Op]:
    layers = [TABLE1_LAYERS[name] for name in FC_LAYER_NAMES]
    if batch is not None:
        layers = [layer.with_batch(batch) for layer in layers]
    return fc_training_ops(layers)


def _resnet50_train_ops(batch: Optional[int]) -> List[Op]:
    return conv_training_ops(resnet50_conv_layers(batch=batch))


@dataclasses.dataclass(frozen=True)
class SuiteSpec:
    """Registry entry: how to build one named suite.

    ``default_batch`` is the single source of the suite's batch fallback —
    :meth:`build` resolves it before calling the factory.  ``None`` means
    the factory keeps its catalog's per-layer defaults (Table I batches
    differ per model).

    ``factory`` maps the resolved batch to either a sequence of ops
    (preferred — the lowering pipeline applies, role-aware scale knobs
    work) or a pre-lowered ``{label: shape}`` mapping (ad-hoc specs,
    identity lowering only).
    """

    name: str
    description: str
    default_batch: Optional[int]
    factory: Callable[[Optional[int]], SuiteSource]

    def _resolve_batch(self, batch: Optional[int]) -> Optional[int]:
        if batch is not None:
            check_positive("batch", batch)
            return batch
        return self.default_batch

    def ops(self, batch: Optional[int] = None) -> Optional[List[Op]]:
        """The suite's op sequence, or ``None`` for pre-lowered factories."""
        source = self.factory(self._resolve_batch(batch))
        if isinstance(source, Mapping):
            return None
        return list(source)

    def build(
        self,
        batch: Optional[int] = None,
        scale: int = 1,
        lowering: LoweringConfig = DEFAULT_LOWERING,
    ) -> WorkloadSuite:
        """Lower the suite at ``batch``, then apply the scale knobs.

        ``lowering`` scales *roles* (batch/spatial dims, at lowering
        time); ``scale`` then shrinks every dimension generically — the
        two compose, and both default to identity.
        """
        source = self.factory(self._resolve_batch(batch))
        if isinstance(source, Mapping):
            if not lowering.is_identity:
                raise WorkloadError(
                    f"suite {self.name!r} is pre-lowered (its factory returns "
                    "shapes, not ops); scale_batch/scale_spatial need an "
                    "op-level factory"
                )
            suite = WorkloadSuite.from_gemms(self.name, source)
        else:
            suite = WorkloadSuite.from_ops(self.name, source, lowering)
        return suite.scaled(scale)

    def op_composition(self, batch: Optional[int] = None) -> Dict[str, int]:
        """``{op kind: count}`` of the suite (empty for pre-lowered specs)."""
        ops = self.ops(batch)
        if ops is None:
            return {}
        return op_kind_counts(ops)


#: Every registered model workload suite, by name.
SUITES: Dict[str, SuiteSpec] = {
    spec.name: spec
    for spec in (
        SuiteSpec(
            "table1",
            "the paper's nine Table I layers (three per MLPerf model)",
            None,
            _table1_ops,
        ),
        SuiteSpec(
            "resnet50",
            "every ResNet-50 convolution, im2col-lowered (ImageNet geometry)",
            32,
            lambda batch: resnet50_ops(batch=batch),
        ),
        SuiteSpec(
            "bert-base",
            "full 12-layer BERT-base encoder projections + FFNs "
            "(batch = token rows)",
            256,
            lambda batch: bert_encoder_ops(tokens=batch),
        ),
        SuiteSpec(
            "bert-full",
            "BERT-base with head-batched attention score/context matmuls "
            "on top of the projections + FFNs",
            256,
            lambda batch: bert_full_ops(tokens=batch),
        ),
        SuiteSpec(
            "dlrm",
            "DLRM bottom + top MLP stacks (RM2-class widths)",
            512,
            lambda batch: dlrm_ops(batch=batch),
        ),
        SuiteSpec(
            "training",
            "fwd/dgrad/wgrad GEMMs of the six Table I FC layers",
            None,
            _training_ops,
        ),
        SuiteSpec(
            "resnet50-train",
            "fwd/dgrad/wgrad GEMMs of every ResNet-50 convolution "
            "(transposed-filter im2col backward lowerings)",
            32,
            _resnet50_train_ops,
        ),
    )
}


def suite_names() -> List[str]:
    """Registered suite names, registry order."""
    return list(SUITES)


def get_suite(
    name: str,
    batch: Optional[int] = None,
    scale: int = 1,
    lowering: LoweringConfig = DEFAULT_LOWERING,
) -> WorkloadSuite:
    """Build the named suite, optionally rebatched and scaled.

    ``batch`` overrides the streamed-rows dimension (FC/MLP batch, BERT
    token rows, conv batch); ``None`` keeps each catalog's defaults.
    ``lowering`` carries the dimension-role-aware ``scale_batch`` /
    ``scale_spatial`` knobs; ``scale`` shrinks every dimension
    generically on top.
    """
    try:
        spec = SUITES[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload suite {name!r}; known: {', '.join(SUITES)}"
        ) from None
    return spec.build(batch=batch, scale=scale, lowering=lowering)
